"""§6.3 scaling claims: Gigabit uplinks and replicated install servers.

Paper: "By adding a Gigabit Ethernet connection to the web server, it
will theoretically be able to support 10 times the number of concurrent
full-speed reinstallations" (7.0-9.5x in practice, per the Loeb et al.
footnote), and "by deploying N web servers, one can support N times the
number of concurrent full-speed reinstallations that a single web
server can support" — replication is trivial because serving RPMs is
strictly read-only.

We measure the *32-node* reinstall (the contended Table I point) under
(a) the baseline Fast Ethernet server, (b) a Gigabit server, and
(c) two replicated Fast Ethernet servers behind round-robin load
balancing, and check contention disappears.
"""

import pytest

from helpers import print_rows
from repro import build_cluster
from repro.netsim import GIGABIT_ETHERNET, LoadBalancer
from repro.services import InstallServer

N = 32

_cache = {}


def _span(reports):
    return (
        max(r.finished_at for r in reports) - min(r.started_at for r in reports)
    ) / 60.0


def _baseline():
    if "base" not in _cache:
        sim = build_cluster(n_compute=N)
        sim.integrate_all()
        _cache["base"] = _span(sim.reinstall_all())
        # uncontended single-node reference on the same topology
        sim1 = build_cluster(n_compute=1)
        sim1.integrate_all()
        _cache["one"] = _span(sim1.reinstall_all())
    return _cache["base"], _cache["one"]


def bench_gigabit_uplink(benchmark):
    """Upgrade the frontend NIC to Gigabit: 32 installs go flat again."""

    def run():
        sim = build_cluster(n_compute=N)
        sim.frontend.cluster.network.host(sim.frontend.machine.mac).set_speed(
            GIGABIT_ETHERNET
        )
        sim.frontend.install_server.http.refresh_link_speed()
        sim.integrate_all()
        return _span(sim.reinstall_all())

    gig = benchmark.pedantic(run, rounds=1, iterations=1)
    base, one = _baseline()
    benchmark.extra_info["fast_ethernet_minutes"] = round(base, 2)
    benchmark.extra_info["gigabit_minutes"] = round(gig, 2)
    # Gigabit removes the contention: back to the uncontended plateau.
    assert gig == pytest.approx(one, rel=0.12)
    assert gig < base
    # Capacity ratio: paper's footnote says 7.0-9.5x Fast Ethernet.
    print_rows(
        "§6.3 server scaling: Gigabit uplink (32 concurrent reinstalls)",
        ("configuration", "minutes"),
        [
            ("1 node, Fast Ethernet (reference)", f"{one:.1f}"),
            ("32 nodes, Fast Ethernet", f"{base:.1f}"),
            ("32 nodes, Gigabit", f"{gig:.1f}"),
        ],
    )


def bench_replicated_servers(benchmark):
    """Two read-only replicas behind a load balancer halve the contention."""

    def run():
        sim = build_cluster(n_compute=N)
        frontend = sim.frontend
        # Stand up a replica host serving the same distribution.
        replica_host = sim.hardware.network.attach("replica-0")
        replica = InstallServer(
            sim.env, sim.hardware.network, "replica-0", efficiency=1.0
        )
        dist = frontend.distributions[frontend.config.dist_name]
        replica.publish_packages(dist.name, dist.repository)
        replica.register_kickstart_cgi(frontend.cgi)
        lb = LoadBalancer([frontend.install_server.http, replica.http])

        # Point the installer at the balanced pair.
        class BalancedSource:
            def fetch_kickstart(self, client):
                return lb.get(client, "/install/kickstart.cgi")

            def fetch_package(self, client, dist_name, pkg, max_rate=None):
                return lb.get(
                    client,
                    f"/install/{dist_name}/RedHat/RPMS/{pkg.filename}",
                    max_rate=max_rate,
                )

        frontend.installer.source = BalancedSource()
        sim.integrate_all()
        return _span(sim.reinstall_all())

    two = benchmark.pedantic(run, rounds=1, iterations=1)
    base, one = _baseline()
    benchmark.extra_info["one_server_minutes"] = round(base, 2)
    benchmark.extra_info["two_server_minutes"] = round(two, 2)
    # N servers -> N times the concurrent capacity: the 32-node point
    # with two servers behaves like the 16-node point with one, i.e.
    # close to flat.  It must strictly beat the single server.
    assert two < base
    assert two <= one * 1.35
    print_rows(
        "§6.3 server scaling: HTTP load balancing (32 concurrent reinstalls)",
        ("configuration", "minutes"),
        [
            ("one 100 Mbit server", f"{base:.1f}"),
            ("two replicated servers", f"{two:.1f}"),
        ],
    )
