"""§5: upgrading production by queueing the reinstall through Maui.

Paper: "the production system can be upgraded by submitting a 'reinstall
cluster' job to Maui, as not to disturb any running applications.  Once
the reinstallation is complete, the next job will have a known,
consistent software base."

The measured claims: (a) running jobs finish untouched, (b) the next
user job starts on nodes that all carry the new software, and (c) the
whole rollout costs about one reinstall-time per busy node beyond the
application's own runtime.
"""

import pytest

from helpers import print_rows
from repro import build_cluster
from repro.core.tools import queue_cluster_reinstall
from repro.scheduler import JobState


def bench_rolling_upgrade(benchmark):
    def run():
        sim = build_cluster(n_compute=4)
        sim.integrate_all()
        f = sim.frontend
        f.maui.start()

        # a production application occupies half the cluster
        app = f.pbs.qsub("bruno", "gamess", nodes=2, walltime=1200)
        f.maui.schedule_once()
        assert app.state is JobState.RUNNING

        # new security updates arrive; rebuild the distribution
        from repro.rpm import UpdateStream

        stream = UpdateStream(f.rocks_dist.sources[0], updates_per_year=124)
        f.add_update_source(stream.updates_repository())
        new_dist = f.rebuild_distribution()
        f.generator.invalidate()

        # queue the reinstall, plus the *next* user job behind it
        campaign = queue_cluster_reinstall(f)
        next_job = f.pbs.qsub("amy", "namd", nodes=4, walltime=600)
        sim.env.run(until=campaign.wait_event(sim.env))
        sim.env.run(until=next_job.done)
        return sim, f, app, campaign, next_job, stream

    sim, f, app, campaign, next_job, stream = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    # (a) the running application was never disturbed
    assert app.state is JobState.COMPLETE
    assert app.finished_at - app.started_at == pytest.approx(1200)
    # (b) the next job ran only after every node was reinstalled...
    assert next_job.started_at >= max(j.finished_at for j in campaign.jobs)
    # ...on nodes that all carry the updated software base
    updated_names = {u.package.name for u in stream}
    for node in sim.nodes:
        assert node.install_count == 2
        for name in updated_names:
            installed = node.rpmdb.query(name)
            if installed is not None:
                newest = f.distributions[f.config.dist_name].latest(name)
                assert not newest.newer_than(installed), name
    # and the fleet is *consistent*: identical package sets everywhere
    reference = sim.nodes[0].rpmdb
    for node in sim.nodes[1:]:
        assert not reference.diff(node.rpmdb)

    rows = [
        ("app walltime honoured (s)", f"{app.finished_at - app.started_at:.0f}"),
        ("reinstall jobs", len(campaign.jobs)),
        ("campaign span (min)",
         f"{(max(j.finished_at for j in campaign.jobs) - min(j.started_at for j in campaign.jobs if j.started_at is not None)) / 60:.1f}"),
        ("next job start after campaign", next_job.started_at >= max(j.finished_at for j in campaign.jobs)),
    ]
    print_rows("§5: queued cluster reinstall", ("metric", "value"), rows)
