"""§6.3: the Myrinet driver source rebuild and its 20-30% penalty.

Paper: "The upper bound [of the 5-10 minute reinstall] is for compute
nodes with a Myrinet card, which rebuild the driver from source on its
first boot after an installation...  The seemingly heavy-weight solution
adds only a 20-30% time penalty on reinstallation" — and buys freedom
from keeping N binary driver packages for N kernel versions (16 stable
updates in the last year).
"""

import pytest

from helpers import print_rows
from repro import build_cluster
from repro.kernel import KernelModule, ModuleVersionError, MyrinetDriver, RunningKernel


def _reinstall_minutes(model: str) -> float:
    sim = build_cluster(n_compute=1, compute_model=model)
    sim.integrate_all()
    (report,) = sim.reinstall_all()
    return report.minutes, sim.nodes[0].last_install_report


def bench_myrinet_penalty(benchmark):
    def run():
        with_myri, rep_myri = _reinstall_minutes("pIII-733-myri")
        without, rep_plain = _reinstall_minutes("pIII-733-dual")
        return with_myri, without, rep_myri

    with_myri, without, report = benchmark.pedantic(run, rounds=1, iterations=1)
    penalty = (with_myri - without) / without
    benchmark.extra_info["penalty_percent"] = round(penalty * 100, 1)
    # "adds only a 20-30% time penalty on reinstallation"
    assert 0.18 <= penalty <= 0.32
    assert report.myrinet_rebuilt
    print_rows(
        "§6.3: Myrinet source-rebuild penalty",
        ("configuration", "minutes"),
        [
            ("with Myrinet (driver rebuilt)", f"{with_myri:.1f}"),
            ("without Myrinet", f"{without:.1f}"),
            ("penalty", f"{penalty * 100:.0f}% (paper: 20-30%)"),
        ],
    )


def bench_rebuild_vs_binary_packages(benchmark):
    """Why rebuild from source: module versioning across kernel churn.

    16 kernel updates in a year (§6.3).  A binary driver package works
    only for the kernel it was built against; the source rebuild works
    for all of them.
    """
    driver = MyrinetDriver()
    toolchain = [
        __import__("repro.rpm", fromlist=["Package"]).Package(n, v)
        for n, v in [("gcc", "2.96"), ("make", "3.79.1"), ("kernel-source", "2.4.9")]
    ]
    kernels = [f"2.4.{9 + i}-{i + 1}" for i in range(16)]

    def rebuild_all():
        built = []
        for kv in kernels:
            pkg, module = driver.rebuild(kv, toolchain)
            built.append((kv, module))
        return built

    built = benchmark(rebuild_all)
    # every rebuilt module loads on its own kernel...
    for kv, module in built:
        RunningKernel(kv).insmod(module)
    # ...while a single binary build refuses to load on 15 of the 16
    binary = KernelModule("gm", built_for=kernels[0])
    refused = 0
    for kv in kernels[1:]:
        try:
            RunningKernel(kv).insmod(binary)
        except ModuleVersionError:
            refused += 1
    assert refused == 15
    print_rows(
        "§6.3: driver strategy across 16 kernel updates",
        ("strategy", "kernels served"),
        [
            ("one binary gm package", f"1 of {len(kernels)}"),
            ("on-node source rebuild", f"{len(kernels)} of {len(kernels)}"),
        ],
    )
