"""Table I: total reinstall time vs. number of concurrent nodes.

Paper (§6.3, Table I): one dual-733 MHz PIII HTTP server on 100 Mbit
Ethernet, compute nodes 733 MHz-1 GHz PIIIs with Myrinet, ~225 MB
transferred per node, Myrinet driver rebuilt from source.

    Nodes   Total Reinstall Time (minutes)
      1          10.3
      2           9.8
      4          10.1
      8          10.4
     16          11.1
     32          13.7

The *shape* is the claim: flat out to ~8 concurrent nodes (the server
sources 7-8 MB/s against 1 MB/s average demand per node), then a gentle
rise as the server NIC saturates.  We assert that shape — flat within
10% to 8 nodes, a visible but sub-2x rise at 32 — and print
paper-vs-measured rows.
"""

import pytest

from helpers import print_rows, reinstall_experiment

PAPER_TABLE1 = {1: 10.3, 2: 9.8, 4: 10.1, 8: 10.4, 16: 11.1, 32: 13.7}

#: Package streams are capped at the single-stream HTTP payload rate
#: (7.5 of 12.5 MB/s = 60%, the paper's "7-8 MB/s" observation), so the
#: busiest link must peak at or above this floor in any traced run; its
#: *time-weighted mean* sits just above it for one stream (~64%), while
#: short uncapped control fetches and concurrency spike the peak to 100%.
SINGLE_STREAM_PEAK_UTIL = 0.60

_results = {}


def _run(n):
    if n not in _results:
        _results[n] = reinstall_experiment(n)
    return _results[n]


@pytest.mark.parametrize("n", sorted(PAPER_TABLE1))
def bench_table1_point(benchmark, n):
    result = benchmark.pedantic(_run, args=(n,), rounds=1, iterations=1)
    benchmark.extra_info["nodes"] = n
    benchmark.extra_info["simulated_minutes"] = round(result.minutes, 2)
    benchmark.extra_info["paper_minutes"] = PAPER_TABLE1[n]
    # every node moved its full payload (~225 MB each)
    assert result.bytes_served == pytest.approx(n * 225e6, rel=0.06)
    # absolute sanity: a reinstall is "5-10 minutes" per §5 (the 32-node
    # point stretches past that, as in the paper)
    assert 8 <= result.minutes <= 22


def bench_table1_shape(benchmark):
    """The headline assertion: Table I's flat-then-rising curve."""

    def run_missing():
        for n in sorted(PAPER_TABLE1):
            _run(n)
        return _results

    benchmark.pedantic(run_missing, rounds=1, iterations=1)
    base = _results[1].minutes
    # flat out to 8 concurrent reinstalls
    for n in (2, 4, 8):
        assert _results[n].minutes == pytest.approx(base, rel=0.10)
    # a visible knee past the server's ~7-concurrent capacity
    assert _results[16].minutes > _results[8].minutes
    assert _results[32].minutes > _results[16].minutes
    # ... but nowhere near linear slowdown (32x nodes < 2.2x time)
    assert _results[32].minutes < 2.2 * base

    rows = [
        (n, PAPER_TABLE1[n], f"{_results[n].minutes:.1f}")
        for n in sorted(PAPER_TABLE1)
    ]
    print_rows(
        "Table I: concurrent reinstallation (minutes)",
        ("nodes", "paper", "measured"),
        rows,
    )


def main(argv=None) -> int:
    """Standalone traced run: the evidence behind one Table I point.

    ``python bench_table1_reinstall.py --nodes 8 --trace table1.jsonl``
    reinstalls N nodes with telemetry on, exports the JSONL trace,
    validates it against the trace schema, and checks the trace actually
    carries the claim's evidence: per-node install-phase spans and a
    frontend-link utilization timeseries peaking at or above the
    single-stream HTTP payload ceiling.  Exit status is nonzero on any
    schema or evidence failure (CI runs this as the benchmark smoke).
    """
    import argparse

    from repro.telemetry import render_summary, validate_trace_lines

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=8)
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="export the run's telemetry as JSONL here")
    parser.add_argument("--summary", action="store_true",
                        help="print the aggregated trace summary")
    args = parser.parse_args(argv)

    result = reinstall_experiment(args.nodes, trace=args.trace)
    paper = PAPER_TABLE1.get(args.nodes)
    print_rows(
        f"Table I point: {args.nodes} concurrent reinstalls",
        ("nodes", "paper", "measured"),
        [(args.nodes, "-" if paper is None else paper, f"{result.minutes:.1f}")],
    )
    if args.trace is None:
        return 0

    failures = []
    with open(args.trace, encoding="utf-8") as fh:
        failures += validate_trace_lines(fh)
    summary = result.trace_summary
    phases = summary["phases"]
    if phases.get("packages", {}).get("count", 0) < args.nodes:
        failures.append(
            f"expected >= {args.nodes} 'packages' install-phase spans, "
            f"got {phases.get('packages', {}).get('count', 0)}"
        )
    peaks = summary["peak_link_utilization"]
    busiest = max(peaks.values(), default=0.0)
    if not SINGLE_STREAM_PEAK_UTIL - 0.01 <= busiest <= 1.0:
        failures.append(
            f"peak link utilization {busiest:.2f} outside "
            f"[{SINGLE_STREAM_PEAK_UTIL}, 1.0]"
        )
    if args.summary:
        print()
        print(render_summary(summary))
    if failures:
        for f in failures:
            print(f"FAIL: {f}")
        return 1
    print(f"trace OK: {args.trace} (peak link utilization {busiest:.0%})")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
