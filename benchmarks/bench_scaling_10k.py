"""Engine scaling benchmark: 100 / 1k / 10k nodes.

Drives a steady-state cluster workload through the raw netsim layer —
aligned per-node heartbeats (slotted timers), staggered pair-to-pair
bulk transfers, and small periodic fetches from a shared frontend — and
reports events/sec, peak RSS, and wall time per simulated hour at each
scale.  The committed ``BENCH_engine.json`` records the trajectory so
later PRs regress against it; the ``pre_pr`` section holds the same
workload measured against the pre-incremental engine.

Each scale runs in a subprocess so ``ru_maxrss`` is a true per-scale
peak.  The workload also emits a deterministic digest (a sha256 over
every transfer-completion instant), which CI byte-compares across two
runs to catch ordering regressions.

Usage:
    python bench_scaling_10k.py                    # 100, 1000, 10000
    python bench_scaling_10k.py --nodes 100 1000
    python bench_scaling_10k.py --quick            # CI smoke (50 nodes)
    python bench_scaling_10k.py --record           # rewrite BENCH_engine.json
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import random
import resource
import subprocess
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.netsim import Environment, Network, FAST_ETHERNET, GIGABIT_ETHERNET

HEARTBEAT = 10.0
PAIR_SIZE = 40e6
PAIR_THINK = 5.0
FETCH_SIZE = 100e3
FETCH_PERIOD = 600.0

BENCH_PATH = os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_engine.json")

#: The same workload measured against the engine before the incremental
#: fair-share/slotted-wakeup work (global progressive filling, O(flows)
#: wakeup scans, per-process timers).  events/sec there counts scheduled
#: events (the old engine had no dispatch counter) — a slight
#: overestimate of its dispatch rate, making speedup claims conservative.
PRE_PR_BASELINE = {
    "100": {"events_per_sec": 24701, "wall_per_sim_hour_s": 4.2, "peak_rss_mb": 22.3},
    "1000": {"events_per_sec": 2876, "wall_per_sim_hour_s": 360.6, "peak_rss_mb": 27.0},
    "10000": {"events_per_sec": 292, "wall_per_sim_hour_s": 35571.4, "peak_rss_mb": 59.0},
}


def build(n_nodes: int, seed: int):
    env = Environment()
    net = Network(env)
    net.attach("frontend", GIGABIT_ETHERNET)
    names = [f"node{i}" for i in range(n_nodes)]
    for name in names:
        net.attach(name, FAST_ETHERNET)
    rng = random.Random(("scaling-bench", seed).__repr__())
    stats = {
        "heartbeats": 0,
        "transfers": 0,
        "fetches": 0,
        "digest": hashlib.sha256(),
    }

    def heartbeat(name):
        host = net.host(name)
        while True:
            host.tx.utilization()
            stats["heartbeats"] += 1
            # All nodes beat in lockstep: one shared heap entry per tick.
            yield env.slotted_timeout(HEARTBEAT)

    def pair_loop(src, dst, start):
        yield start
        while True:
            flow = net.send(src, dst, PAIR_SIZE, label=f"{src}->{dst}")
            yield flow.done
            stats["transfers"] += 1
            stats["digest"].update(repr(env.now).encode())
            yield env.timeout(PAIR_THINK)

    def fetch_loop(name, start):
        yield start
        while True:
            flow = net.send("frontend", name, FETCH_SIZE, label=f"fetch:{name}")
            yield flow.done
            stats["fetches"] += 1
            stats["digest"].update(repr(env.now).encode())
            yield env.timeout(FETCH_PERIOD)

    for name in names:
        env.process(heartbeat(name), name=f"hb:{name}")
    # Staggered first wakeups, created in bulk: one heapify instead of
    # one sift per timer.
    pair_span = PAIR_SIZE / FAST_ETHERNET + PAIR_THINK
    pair_names = [(names[i], names[i + 1]) for i in range(0, n_nodes - 1, 2)]
    pair_starts = env.timeout_batch(rng.uniform(0.0, pair_span) for _ in pair_names)
    for (src, dst), start in zip(pair_names, pair_starts):
        env.process(pair_loop(src, dst, start), name=f"pair:{src}")
    fetch_starts = env.timeout_batch(rng.uniform(0.0, FETCH_PERIOD) for _ in names)
    for name, start in zip(names, fetch_starts):
        env.process(fetch_loop(name, start), name=f"fetch:{name}")
    return env, net, stats


def run_scale(n_nodes: int, warmup: float, measure: float, seed: int) -> dict:
    env, net, stats = build(n_nodes, seed)
    env.run(until=warmup)
    dispatched0 = env.events_dispatched
    scheduled0 = next(env._seq)
    t0 = time.perf_counter()
    env.run(until=warmup + measure)
    wall = time.perf_counter() - t0
    dispatched = env.events_dispatched - dispatched0
    scheduled = next(env._seq) - scheduled0 - 1
    peak_rss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0
    return {
        "nodes": n_nodes,
        "sim_seconds": measure,
        "wall_seconds": round(wall, 3),
        "events_dispatched": dispatched,
        "events_scheduled": scheduled,
        "events_per_sec": round(dispatched / wall) if wall > 0 else None,
        "scheduled_per_sec": round(scheduled / wall) if wall > 0 else None,
        "wall_per_sim_hour_s": round(wall / measure * 3600.0, 1),
        "peak_rss_mb": round(peak_rss_mb, 1),
        "transfers": stats["transfers"],
        "heartbeats": stats["heartbeats"],
        "fetches": stats["fetches"],
        "active_flows_at_end": net.flows.active_flows,
        "queue_len_at_end": len(env._queue),
        "digest": stats["digest"].hexdigest(),
    }


def check_sanitizer_off_overhead(quick_result: dict) -> int:
    """Guard: the sanitizer must cost nothing when it is off.

    Two layers.  Structurally, a default ``Environment()`` must be the
    base class with the original hot methods — the sanitizer swaps in a
    subclass at construction, so any branch leaking into the default
    path shows up as an overridden ``_schedule``/``run``/``step``.
    Empirically, the quick run must clear a generous events/sec floor
    against the committed ``BENCH_engine.json`` 100-node figure (half,
    to absorb CI noise — this catches "sanitizer hooks slowed the world
    down", not single-digit regressions).
    """
    failures = []
    env = Environment()
    if type(env) is not Environment:
        failures.append(f"default Environment() builds {type(env).__name__}")
    for name in ("_schedule", "step", "run", "timeout_batch"):
        if getattr(type(env), name) is not getattr(Environment, name):
            failures.append(f"Environment.{name} is overridden by default")
    # Telemetry must also be off by default: tracing-off runs ride the
    # shared NULL_TRACER singleton, whose `enabled=False` is what every
    # instrumented hot path checks before doing any work.
    from repro.telemetry import NULL_TRACER

    if env.tracer is not NULL_TRACER:
        failures.append(
            f"default Environment().tracer is {type(env.tracer).__name__}, "
            "not the NULL_TRACER singleton"
        )

    try:
        with open(BENCH_PATH) as fh:
            committed = json.load(fh)
        recorded = next(
            r["events_per_sec"] for r in committed["results"]
            if r["nodes"] == 100
        )
    except (OSError, KeyError, StopIteration):
        recorded = None
    if recorded is not None and quick_result["events_per_sec"] is not None:
        floor = recorded // 2
        if quick_result["events_per_sec"] < floor:
            failures.append(
                f"sanitizer-off throughput {quick_result['events_per_sec']} "
                f"events/sec is below the floor {floor} (half the "
                f"committed 100-node {recorded})"
            )

    for failure in failures:
        print(f"OVERHEAD GUARD FAILED: {failure}")
    if not failures:
        print(
            f"overhead guard: default path structurally untouched, "
            f"{quick_result['events_per_sec']} events/sec >= floor "
            f"{(recorded // 2) if recorded else 'n/a'}"
        )
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, nargs="+", default=[100, 1000, 10000])
    parser.add_argument("--warmup", type=float, default=30.0)
    parser.add_argument("--measure", type=float, default=120.0)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--quick", action="store_true", help="CI smoke: 50 nodes, short window"
    )
    parser.add_argument(
        "--record", action="store_true", help=f"rewrite {os.path.basename(BENCH_PATH)}"
    )
    parser.add_argument(
        "--digest-file", help="write the deterministic digests (one line per scale)"
    )
    parser.add_argument(
        "--single",
        type=int,
        help="internal: run one scale in-process and print JSON",
    )
    args = parser.parse_args()
    if args.quick:
        args.nodes = [50]
        args.warmup = 5.0
        args.measure = 20.0

    if args.single is not None:
        result = run_scale(args.single, args.warmup, args.measure, args.seed)
        print(json.dumps(result))
        return 0

    results = []
    for n in args.nodes:
        cmd = [
            sys.executable,
            os.path.abspath(__file__),
            "--single",
            str(n),
            "--warmup",
            str(args.warmup),
            "--measure",
            str(args.measure),
            "--seed",
            str(args.seed),
        ]
        out = subprocess.run(cmd, capture_output=True, text=True, check=True)
        result = json.loads(out.stdout.strip().splitlines()[-1])
        results.append(result)
        print(
            f"nodes={result['nodes']:>6}  events/sec={result['events_per_sec']:>8}  "
            f"wall/sim-hour={result['wall_per_sim_hour_s']:>8.1f}s  "
            f"peak RSS={result['peak_rss_mb']:>7.1f}MB  "
            f"transfers={result['transfers']}  digest={result['digest'][:16]}"
        )

    if args.quick:
        guard = check_sanitizer_off_overhead(results[0])
        if guard:
            return guard

    pre_1k = PRE_PR_BASELINE["1000"]["events_per_sec"]
    for result in results:
        if result["nodes"] >= 10000:
            speedup = result["scheduled_per_sec"] / pre_1k
            print(
                f"10k-node run: {result['scheduled_per_sec']} scheduled events/sec "
                f"= {speedup:.1f}x the pre-PR engine at 1k nodes ({pre_1k})"
            )

    if args.digest_file:
        with open(args.digest_file, "w") as fh:
            for result in results:
                fh.write(f"{result['nodes']} {result['digest']}\n")

    if args.record:
        payload = {
            "schema": "repro/bench-engine@1",
            "workload": {
                "heartbeat_s": HEARTBEAT,
                "pair_transfer_bytes": PAIR_SIZE,
                "pair_think_s": PAIR_THINK,
                "fetch_bytes": FETCH_SIZE,
                "fetch_period_s": FETCH_PERIOD,
                "warmup_s": args.warmup,
                "measure_s": args.measure,
                "seed": args.seed,
            },
            "pre_pr": PRE_PR_BASELINE,
            "results": results,
        }
        with open(BENCH_PATH, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {BENCH_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
