"""Figure 1: the Rocks hardware architecture.

"A minimal traditional cluster architecture": frontend + compute nodes
on one Ethernet, network-controlled power units, optional Myrinet — and
pointedly **no dedicated management network** (§4: "yet another network
increases the physical deployment and the management burden").

We assemble that architecture and verify its structural claims: every
machine is reachable over the single Ethernet once Linux is up, every
machine hangs off a PDU outlet that can force a reinstall, and the
management path (shoot-node) works over the same wire the applications
use.
"""

import pytest

from helpers import print_rows
from repro import build_cluster
from repro.cluster import NicKind


def bench_fig1_assembly(benchmark):
    def build():
        sim = build_cluster(n_compute=8)
        sim.integrate_all()
        return sim

    sim = benchmark.pedantic(build, rounds=1, iterations=1)
    machines = list(sim.hardware.machines())

    # one Ethernet, no management network: every machine has exactly one
    # attachment to the single simulated segment
    for m in machines:
        assert sim.hardware.network.has_host(m.mac)
    n_segments = 1  # the Network object IS the single segment
    assert n_segments == 1

    # every machine is wired to a PDU outlet (the remote recovery path)
    for m in machines:
        assert sim.hardware.pdu_for(m) is not None

    # frontend is reachable from every up node over that Ethernet
    f = sim.frontend.machine
    for node in sim.nodes:
        assert sim.hardware.ethernet_reachable(f, node)

    # optional high-performance interconnect: present on compute nodes,
    # NOT used for management (install traffic rides Ethernet)
    myri_nodes = [m for m in sim.nodes if m.has_myrinet]
    assert myri_nodes
    eth = sim.nodes[0].spec.nics(sim.nodes[0].mac)
    assert eth[0].kind is NicKind.ETHERNET

    rows = [
        ("machines", len(machines)),
        ("ethernet segments", 1),
        ("management networks", 0),
        ("PDU-wired machines", sum(1 for m in machines if sim.hardware.pdu_for(m))),
        ("nodes with Myrinet", len(myri_nodes)),
        ("cabinets", len(sim.hardware.cabinets)),
    ]
    print_rows("Figure 1: hardware architecture", ("component", "count"), rows)


def bench_fig1_no_management_network_tradeoff(benchmark):
    """The §4 trade-off: when Ethernet is dark (POST), the admin is 'in
    the dark' — eKV fails and the PDU/crash-cart path is the recovery."""
    from repro.core.tools import CrashCart, EkvConsole, EkvUnreachable

    def run():
        sim = build_cluster(n_compute=1)
        sim.integrate_all()
        node = sim.nodes[0]
        node.power_off()
        node.power_on()  # POST: dark window
        ekv = EkvConsole(sim.hardware, node)
        dark = False
        try:
            ekv.read()
        except EkvUnreachable:
            dark = True
        cart = CrashCart(sim.env)
        console = sim.env.run(until=cart.attach(node))
        sim.env.run(until=node.wait_for_state(node.state.UP))
        return dark, len(console), ekv.reachable

    dark, console_lines, ekv_after = benchmark.pedantic(run, rounds=1, iterations=1)
    assert dark  # in the dark during POST
    assert console_lines >= 0  # the crash cart always shows video
    assert ekv_after  # once Linux brings up eth0, remote management works
    print_rows(
        "§4: the dark window",
        ("probe", "result"),
        [
            ("eKV during POST", "unreachable (as designed)"),
            ("crash cart during POST", "console visible"),
            ("eKV once eth0 up", "reachable"),
        ],
    )
