"""Figure 7: shoot-node's eKV window — the redirected installer screen.

The paper's screenshot shows Red Hat's "Package Installation" screen
(name/size/summary of the current package; Total/Completed/Remaining
packages, bytes, time) inside an xterm on the frontend, redirected over
Ethernet from an installing node.  We reinstall a node, attach eKV
mid-install, and regenerate that screen — checking the same fields the
figure shows, including the figure's 162-package total.
"""

import pytest

from helpers import print_rows
from repro import build_cluster
from repro.cluster import MachineState
from repro.core.tools import EkvConsole, shoot_node


def bench_fig7_screen(benchmark):
    def run():
        sim = build_cluster(n_compute=1)
        sim.integrate_all()
        node = sim.nodes[0]
        proc = shoot_node(sim.frontend, node)
        sim.env.run(until=node.wait_for_state(MachineState.INSTALLING))
        ekv = EkvConsole(sim.hardware, node)
        # sample the screen midway through the package phase
        sim.env.run(until=sim.env.now + 200)
        screen = ekv.screen()
        progress = node.install_progress
        # snapshot NOW: the progress object keeps mutating as the
        # install continues after this sample
        sample = (progress.total_packages, progress.done_packages)
        report = sim.env.run(until=proc)
        return screen, sample, report

    screen, (total, done), report = benchmark.pedantic(run, rounds=1, iterations=1)
    # the figure's fields
    assert "Package Installation" in screen
    assert "Name   :" in screen and "Size   :" in screen and "Summary:" in screen
    for row in ("Total", "Completed", "Remaining"):
        assert row in screen
    assert "<F12> next screen" in screen
    # the figure's totals: 162 packages
    assert total == 162
    assert 0 < done < 162  # genuinely mid-install
    assert report.ok

    print("\n=== Figure 7: the eKV screen, regenerated mid-install ===")
    print(screen)
    print_rows(
        "Figure 7 fields",
        ("field", "figure", "measured"),
        [
            ("Total packages", 162, total),
            ("Completed", 38, done),
            ("interactive keys", "<Tab>/<Space>/<F12>", "rendered"),
        ],
    )


def bench_fig7_ekv_stream_rate(benchmark):
    """eKV console reads are cheap (telnet-speed text, not video)."""
    sim = build_cluster(n_compute=1)
    sim.integrate_all()
    node = sim.nodes[0]
    node.request_reinstall()
    sim.env.run(until=node.wait_for_state(MachineState.INSTALLING))
    sim.env.run(until=sim.env.now + 300)
    ekv = EkvConsole(sim.hardware, node)

    def read_all():
        ekv._cursor = 0
        return ekv.read()

    lines = benchmark(read_all)
    assert len(lines) > 5
    total_bytes = sum(len(l) for l in lines)
    assert total_bytes < 64_000  # a telnet screenful, not a framebuffer
