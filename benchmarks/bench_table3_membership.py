"""Table III: the memberships table and SQL-directed cluster tools.

The paper's §6.4 example: cluster-kill fed a two-table join selects only
the nodes whose membership is marked compute, so a runaway job is killed
on compute nodes while appliance servers are untouched.  We reproduce
the memberships table, run the *verbatim* query from the paper, and
benchmark the join.
"""

import pytest

from helpers import print_rows
from repro import build_cluster
from repro.core.tools import InsertEthers, cluster_kill

PAPER_QUERY = (
    "select nodes.name from nodes,memberships where "
    "nodes.membership = memberships.id and memberships.name = 'Compute'"
)


def _mixed_cluster():
    sim = build_cluster(n_compute=3)
    f = sim.frontend
    nfs_machine = sim.hardware.add_machine("nfs-server")
    f.adopt(nfs_machine)
    with InsertEthers(f, membership="NFS Servers") as ie:
        ie.insert(nfs_machine.mac)
    sim.integrate_all()
    nfs_machine.power_on()
    sim.env.run(until=nfs_machine.wait_for_state(nfs_machine.state.UP))
    return sim


def bench_table3_membership_catalog(benchmark):
    sim = benchmark.pedantic(_mixed_cluster, rounds=1, iterations=1)
    rows = sim.db.memberships()
    catalog = {name: (appliance, compute) for _, name, appliance, compute in rows}
    # Table III's shape: Frontend/Compute/... with only Compute marked yes
    assert catalog["Frontend"][1] == "no"
    assert catalog["Compute"][1] == "yes"
    assert catalog["Power Units"][1] == "no"
    assert sum(1 for _, c in catalog.values() if c == "yes") == 1
    print_rows(
        "Table III: memberships",
        ("ID", "Name", "Appliance", "Compute"),
        rows,
    )


def bench_table3_join_query(benchmark):
    sim = _mixed_cluster()
    rows = benchmark(sim.db.query, PAPER_QUERY)
    names = [r[0] for r in rows]
    assert names == [f"compute-0-{i}" for i in range(3)]
    assert "nfs-0-0" not in names


def bench_table3_cluster_kill_join(benchmark):
    """The paper's cluster-kill example, end to end, repeatedly."""
    sim = _mixed_cluster()
    nfs = sim.hardware.by_name("nfs-0-0")

    def seed_and_kill():
        for node in sim.nodes:
            node.user_processes.append("bad-job")
        nfs.user_processes.append("bad-job")
        session = cluster_kill(sim.frontend, "bad-job", query=PAPER_QUERY)
        return session

    session = benchmark.pedantic(seed_and_kill, rounds=5, iterations=1)
    assert session.ok
    # compute nodes cleaned, the NFS appliance untouched:
    assert all("bad-job" not in n.user_processes for n in sim.nodes)
    assert nfs.user_processes.count("bad-job") >= 1
    print_rows(
        "§6.4: cluster-kill --query (paper's join)",
        ("target", "killed"),
        [(p.host, p.stdout[0]) for p in session.processes],
    )
