"""Table I under fire: mass reinstallation with faults injected.

The paper's §4 claim is that complete reinstallation keeps clusters
manageable *because* failure is routine at scale.  This benchmark
re-runs the Table I experiment while a fault plan fires — the default
plan crashes the install server two minutes in, corrupts 5% of package
payloads, and hangs two nodes mid-install — and reports how the
self-healing campaign degrades:

* completion rate (installed / total nodes) must stay >= 90%;
* wall-time overhead versus the clean campaign is the price paid;
* every node is accounted for in the report, whatever its fate.

Run standalone for a narrated report::

    PYTHONPATH=src python benchmarks/bench_chaos_reinstall.py --quick
"""

from __future__ import annotations

import pytest

from helpers import print_rows

CHAOS_NODES = 32
QUICK_NODES = 8

_cache: dict = {}


def _run(n_nodes: int, plan: str):
    key = (n_nodes, plan)
    if key not in _cache:
        from repro.faults import chaos_reinstall

        _cache[key] = chaos_reinstall(n_nodes=n_nodes, plan=plan)
    return _cache[key]


def bench_chaos_completion(benchmark):
    """The acceptance bar: >= 90% installed under the default plan."""
    result = benchmark.pedantic(
        _run, args=(CHAOS_NODES, "default"), rounds=1, iterations=1
    )
    report = result.report
    benchmark.extra_info["completion_rate"] = round(report.completion_rate, 3)
    benchmark.extra_info["summary"] = report.summary()
    assert len(report.nodes) == CHAOS_NODES  # every node accounted for
    assert report.completion_rate >= 0.90
    # the injector actually fired: crash + repair + at least the 2 hangs
    kinds = [r.kind for r in result.injector.log]
    assert "service-fail" in kinds and "service-repair" in kinds
    assert kinds.count("node-hang") == 2


def bench_chaos_overhead(benchmark):
    """Wall-time overhead of the default plan vs the clean campaign."""

    def run_both():
        return _run(CHAOS_NODES, "none"), _run(CHAOS_NODES, "default")

    clean, chaos = benchmark.pedantic(run_both, rounds=1, iterations=1)
    overhead = chaos.minutes / clean.minutes
    benchmark.extra_info["clean_minutes"] = round(clean.minutes, 2)
    benchmark.extra_info["chaos_minutes"] = round(chaos.minutes, 2)
    benchmark.extra_info["overhead_x"] = round(overhead, 2)
    # clean campaign has no drama at all
    assert clean.completion_rate == 1.0
    assert clean.report.count(clean.report.nodes[0].outcome.__class__.INSTALLED) \
        == CHAOS_NODES
    # chaos costs something but the campaign still converges well under
    # the escalation deadline budget (3 attempts x 45 min)
    assert 1.0 <= overhead < 6.0
    print_rows(
        "Chaos reinstall: 32 nodes, default fault plan",
        ("campaign", "minutes", "installed"),
        [
            ("clean", f"{clean.minutes:.1f}", f"{clean.report.n_installed}/{CHAOS_NODES}"),
            ("chaos", f"{chaos.minutes:.1f}", f"{chaos.report.n_installed}/{CHAOS_NODES}"),
        ],
    )


def bench_chaos_determinism(benchmark):
    """Same plan + seed => identical injection log and campaign verdicts."""

    def run_twice():
        from repro.faults import chaos_reinstall

        return (
            chaos_reinstall(n_nodes=QUICK_NODES, plan="default", seed=7),
            chaos_reinstall(n_nodes=QUICK_NODES, plan="default", seed=7),
        )

    a, b = benchmark.pedantic(run_twice, rounds=1, iterations=1)
    assert a.injector.signature() == b.injector.signature()
    assert a.report.render() == b.report.render()


def main(argv=None) -> int:
    import argparse

    from repro.faults import PLANS, chaos_reinstall

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--plan", default="default", choices=sorted(PLANS))
    parser.add_argument("--nodes", type=int, default=CHAOS_NODES)
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--quick", action="store_true",
                        help=f"use {QUICK_NODES} nodes (CI smoke test)")
    args = parser.parse_args(argv)
    n = QUICK_NODES if args.quick else args.nodes
    clean = chaos_reinstall(n_nodes=n, plan="none")
    chaos = chaos_reinstall(n_nodes=n, plan=args.plan, seed=args.seed)
    print(chaos.render())
    print_rows(
        f"Chaos reinstall: {n} nodes, plan '{args.plan}'",
        ("campaign", "minutes", "installed"),
        [
            ("clean", f"{clean.minutes:.1f}", f"{clean.report.n_installed}/{n}"),
            ("chaos", f"{chaos.minutes:.1f}", f"{chaos.report.n_installed}/{n}"),
        ],
    )
    ok = chaos.completion_rate >= 0.90 and len(chaos.report.nodes) == n
    print(f"\noverhead: {chaos.minutes / clean.minutes:.2f}x; "
          + ("PASS" if ok else "FAIL"))
    return 0 if ok else 1


if __name__ == "__main__":
    import sys

    sys.exit(main())
