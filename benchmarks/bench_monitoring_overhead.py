"""The monitoring tax: what does watching the cluster cost?

Ganglia's pitch (and §2's praise for SCE's monitor) only works if the
observer does not perturb the experiment.  Our gmond/gmetad stack is
*purely observational by construction*: agents read machine state and
publish over a synchronous multicast primitive that adds no flows to
the fluid-flow network, so a monitored Table I campaign must produce
**bit-identical simulated results** to an unmonitored one — a much
stronger claim than "low overhead", and asserted here per node.

The only cost monitoring is allowed is host-side compute, and that must
stay **under 5%** at Table I scale (32 nodes).  Wall-clock cannot
honestly resolve 5% on shared or virtualized hardware — on a noisy CI
box the same campaign's runtime swings far more than that between
back-to-back runs — so the asserted metric is *interpreter work*: total
function calls executed during the campaign, counted with the profiler
and byte-reproducible for a given seed.  That proxy is conservative:
the monitoring stack's calls are tiny leaf operations (list appends,
dict probes), cheaper than the simulator's average call, so the call
ratio overstates the true time ratio.  Wall clock is still measured and
reported, for the curious, but never gates.

With monitoring disabled the stack costs exactly zero: no agents, no
processes, no multicast group — nothing is constructed at all.

Run standalone for a narrated report::

    PYTHONPATH=src python benchmarks/bench_monitoring_overhead.py --quick
"""

from __future__ import annotations

import cProfile
import gc
import pstats
import time

from helpers import print_rows

FULL_NODES = 32   # Table I scale: where the 5% budget is defined
QUICK_NODES = 8   # observational (bit-identity) check only
REPEATS = 3       # wall-clock repeats (informational)
MAX_OVERHEAD = 0.05  # 5% interpreter-work budget for the monitored run


def _campaign(n_nodes: int, monitored: bool):
    """One Table I campaign; returns (stack, per-node minutes, span min)."""
    from repro import build_cluster
    from repro.monitoring import enable_cluster_monitoring

    sim = build_cluster(n_compute=n_nodes)
    sim.integrate_all()
    stack = None
    if monitored:
        stack = enable_cluster_monitoring(sim.frontend, sim.nodes)
    reports = sim.reinstall_all()
    span = (
        max(r.finished_at for r in reports)
        - min(r.started_at for r in reports)
    ) / 60
    per_node = [
        round(r.minutes, 9) for r in sorted(reports, key=lambda r: r.host)
    ]
    return stack, per_node, span


def _work(n_nodes: int, monitored: bool):
    """One campaign under the deterministic work counter.

    GC is pinned off during the count: abandoned generators collected
    mid-run would otherwise execute cleanup frames at arbitrary points
    and break run-to-run reproducibility of the call count.
    """
    gc.disable()
    try:
        prof = cProfile.Profile()
        prof.enable()
        result = _campaign(n_nodes, monitored)
        prof.disable()
    finally:
        gc.enable()
    return pstats.Stats(prof).total_calls, result


def _wall(n_nodes: int, monitored: bool, repeats: int) -> float:
    """Best-of-N wall clock, unprofiled (informational only)."""
    best = None
    for _ in range(repeats):
        gc.collect()
        t0 = time.perf_counter()
        _campaign(n_nodes, monitored)
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
    return best


def _compare(n_nodes: int, repeats: int = REPEATS):
    plain_work, (_, plain_nodes, plain_span) = _work(n_nodes, False)
    mon_work, (stack, mon_nodes, mon_span) = _work(n_nodes, True)
    plain_s = _wall(n_nodes, False, repeats)
    mon_s = _wall(n_nodes, True, repeats)
    return {
        "stack": stack,
        "plain_nodes": plain_nodes,
        "mon_nodes": mon_nodes,
        "plain_span": plain_span,
        "mon_span": mon_span,
        "plain_work": plain_work,
        "mon_work": mon_work,
        "plain_s": plain_s,
        "mon_s": mon_s,
        "overhead": mon_work / plain_work - 1.0,
    }


def _assert_observational(r) -> None:
    # The load-bearing claim: monitoring never touches the timeline.
    assert r["mon_nodes"] == r["plain_nodes"]
    assert r["mon_span"] == r["plain_span"]
    # ...while the agents really were watching the whole campaign.
    stack = r["stack"]
    assert stack.aggregator.packets_received > 0
    assert stack.store.n_series > 0


def bench_monitoring_observational(benchmark):
    """Monitored Table I == unmonitored Table I, bit for bit, per node."""
    r = benchmark.pedantic(
        _compare, args=(QUICK_NODES,), kwargs={"repeats": 1},
        rounds=1, iterations=1,
    )
    _assert_observational(r)
    benchmark.extra_info["span_minutes"] = round(r["mon_span"], 3)
    benchmark.extra_info["series"] = r["stack"].store.n_series


def bench_monitoring_work_budget(benchmark):
    """At Table I scale the agents add <5% deterministic interpreter work."""
    r = benchmark.pedantic(
        _compare, args=(FULL_NODES,), kwargs={"repeats": 1},
        rounds=1, iterations=1,
    )
    _assert_observational(r)
    benchmark.extra_info["plain_calls"] = r["plain_work"]
    benchmark.extra_info["monitored_calls"] = r["mon_work"]
    benchmark.extra_info["overhead_pct"] = round(100 * r["overhead"], 2)
    assert r["overhead"] < MAX_OVERHEAD


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=FULL_NODES,
                        help="cluster size (the 5%% budget is defined at "
                             f"{FULL_NODES}; tiny clusters read high because "
                             "the per-packet cost is fixed)")
    parser.add_argument("--repeats", type=int, default=REPEATS,
                        help="wall-clock repeats (informational)")
    parser.add_argument("--quick", action="store_true",
                        help="single wall-clock repeat (CI smoke test)")
    args = parser.parse_args(argv)
    repeats = 1 if args.quick else args.repeats
    n = args.nodes

    r = _compare(n, repeats=repeats)
    identical = (
        r["mon_nodes"] == r["plain_nodes"] and r["mon_span"] == r["plain_span"]
    )
    under_budget = r["overhead"] < MAX_OVERHEAD
    print_rows(
        f"Monitoring overhead: {n} nodes "
        f"(wall = best of {repeats}, informational)",
        ("campaign", "sim minutes", "work (calls)", "wall seconds"),
        [
            ("unmonitored", f"{r['plain_span']:.2f}",
             f"{r['plain_work']}", f"{r['plain_s']:.2f}"),
            ("monitored", f"{r['mon_span']:.2f}",
             f"{r['mon_work']}", f"{r['mon_s']:.2f}"),
        ],
    )
    stack = r["stack"]
    print(f"\nagents heard: {stack.aggregator.packets_received} packets "
          f"into {stack.store.n_series} series")
    print("simulated results: "
          + ("bit-identical per node" if identical else "DIVERGED"))
    print(f"interpreter-work overhead: {100 * r['overhead']:+.2f}% "
          f"(budget {100 * MAX_OVERHEAD:.0f}%): "
          + ("PASS" if identical and under_budget else "FAIL"))
    print(f"wall-clock delta (noisy, not asserted): "
          f"{100 * (r['mon_s'] / r['plain_s'] - 1.0):+.1f}%")
    return 0 if identical and under_budget else 1


if __name__ == "__main__":
    import sys

    sys.exit(main())
