"""Figure 2: an XML node file compiles into a kickstart fragment.

The paper's Figure 2 shows the DHCP-server node file — one <package>
plus an awk %post that pins dhcpd to eth0.  We verify the shipped file
parses to exactly that structure, that it lands verbatim in a generated
frontend kickstart, and we benchmark the parse + generate path (the CGI
must be fast: it runs once per booting node).
"""

from helpers import print_rows
from repro.core.kickstart import (
    DEFAULT_NODE_XML,
    KickstartGenerator,
    NodeFile,
    default_graph,
    default_node_files,
)
from repro.rpm import Repository, community_packages, npaci_packages, stock_redhat


def _repo():
    repo = Repository("rocks-dist")
    for src in (stock_redhat(), community_packages(), npaci_packages()):
        repo.add_all(src)
    return repo


def bench_fig2_parse_node_file(benchmark):
    node = benchmark(
        NodeFile.from_xml, "dhcp-server", DEFAULT_NODE_XML["dhcp-server"]
    )
    assert node.description == "Setup the DHCP server for the cluster"
    assert node.package_names("i386") == ["dhcp"]
    assert "DHCPD_INTERFACES" in node.post[0].script
    print_rows(
        "Figure 2: DHCP-server node file",
        ("element", "value"),
        [
            ("description", node.description),
            ("packages", ",".join(node.package_names("i386"))),
            ("post fragments", len(node.post)),
        ],
    )


def bench_fig2_fragment_lands_in_kickstart(benchmark):
    repo = _repo()
    gen = KickstartGenerator(default_graph(), default_node_files(), lambda d: repo)

    ks = benchmark(gen.kickstart, "frontend", "i386", "rocks-dist")
    text = ks.render()
    assert "dhcp" in ks.packages
    assert "DHCPD_INTERFACES" in text
    assert "# --- begin dhcp-server ---" in text


def bench_fig2_xml_roundtrip(benchmark):
    def roundtrip():
        out = {}
        for name, xml in DEFAULT_NODE_XML.items():
            node = NodeFile.from_xml(name, xml)
            out[name] = NodeFile.from_xml(name, node.to_xml())
        return out

    nodes = benchmark(roundtrip)
    assert len(nodes) == len(DEFAULT_NODE_XML)
    originals = default_node_files()
    for name, node in nodes.items():
        assert node.package_names("i386") == originals[name].package_names("i386")
