"""Parallel-exec fanout sweep: completion time vs window size.

Runs the same 4096-node command fork (5% dead nodes, 2% stragglers)
through :class:`repro.exec.ExecTask` at fanout 64 / 256 / 1024 and
reports, per point:

  * simulated completion time (launch of first worker to last terminal
    classification, including dead-node timeout+retry chains);
  * wall-clock cost of driving the simulation;
  * the per-state classification counts — every target must land in
    exactly one terminal state at every fanout.  (The counts themselves
    shift slightly with the window: a doomed node dispatched earlier
    can finish its command before the PDU cut lands, OK instead of
    NODE_DEAD.  That race is physical, not a bug.)
  * straggler count as flagged by the rolling-percentile monitor.

The sweep is fully seeded: the same invocation produces byte-identical
output, which is what lets EXPERIMENTS.md quote the table verbatim.

Usage:
    python bench_exec_fanout.py                    # 4096 nodes, 64/256/1024
    python bench_exec_fanout.py --nodes 512 --fanout 16 64
    python bench_exec_fanout.py --quick            # CI smoke (256 nodes)
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.exec import ExecLab, ExecOptions, ExecState, LabOptions


def run_point(n_nodes: int, fanout: int, seed: int) -> dict:
    lab = ExecLab(
        LabOptions(
            nodes=n_nodes,
            seed=seed,
            dead_fraction=0.05,
            straggler_fraction=0.02,
        )
    )
    opts = ExecOptions(
        fanout=fanout, command_timeout=60.0, max_retries=2, seed=seed
    )
    t0 = time.perf_counter()
    report = lab.run(exec_options=opts)
    wall = time.perf_counter() - t0
    return {
        "fanout": fanout,
        "sim_s": report.finished_at - report.started_at,
        "wall_s": wall,
        "ok": report.count(ExecState.OK),
        "dead": report.count(ExecState.NODE_DEAD),
        "timeout": report.count(ExecState.TIMEOUT),
        "exhausted": report.count(ExecState.RETRIES_EXHAUSTED),
        "stragglers": len(report.stragglers),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=4096)
    parser.add_argument("--fanout", type=int, nargs="+",
                        default=[64, 256, 1024])
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: 256 nodes, fanout 32/128")
    args = parser.parse_args()
    if args.quick:
        args.nodes, args.fanout = 256, [32, 128]

    print(f"exec fanout sweep: {args.nodes} nodes, 5% dead, "
          f"2% stragglers, seed {args.seed}")
    print(f"{'fanout':>6}  {'sim time':>9}  {'wall':>7}  "
          f"{'OK':>5}  {'DEAD':>5}  {'stragglers':>10}")
    for fanout in args.fanout:
        p = run_point(args.nodes, fanout, args.seed)
        print(f"{p['fanout']:>6}  {p['sim_s']:>8.1f}s  {p['wall_s']:>6.2f}s  "
              f"{p['ok']:>5}  {p['dead']:>5}  {p['stragglers']:>10}")
        classified = p["ok"] + p["dead"] + p["timeout"] + p["exhausted"]
        if classified != args.nodes:
            print(f"FAIL: fanout {fanout} classified {classified} of "
                  f"{args.nodes} targets", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
