"""Ablation: per-package interleaved pull vs. bulk image pull.

Rocks pulls one RPM at a time and installs it before fetching the next,
so a reinstalling node's *average* network demand is ~1 MB/s even though
its burst rate is 7.5 MB/s (§6.3).  A cloning-style installer streams
the whole 225 MB image first and unpacks afterwards.  Both move the same
bytes; the difference is the demand profile — interleaving lets CPU time
of some nodes absorb wire time of others, while bulk pulls synchronise
every node onto the wire at once.

We compare the two at the contended 16-node point and report both the
completion time and the peak concurrent wire demand.
"""

import pytest

from helpers import print_rows
from repro import build_cluster
from repro.installer import InstallCalibration

N = 16


def _interleaved():
    sim = build_cluster(n_compute=N)
    sim.integrate_all()
    reports = sim.reinstall_all()
    span = max(r.finished_at for r in reports) - min(r.started_at for r in reports)
    return span / 60.0, sim


def _bulk():
    """Model a bulk-image installer on identical hardware and timing.

    Identical total bytes and CPU seconds; the only change is ordering:
    one 225 MB transfer up front, then all unpack CPU time.
    """
    sim = build_cluster(n_compute=N)
    sim.integrate_all()
    frontend = sim.frontend
    env = sim.env
    cal = frontend.installer.cal
    profile = frontend.cgi.generate(sim.nodes[0].mac)
    image_bytes = profile.total_bytes
    cpu_seconds = sum(
        cal.cpu_install_seconds(p.size, 1.0) for p in profile.packages
    )
    frontend.install_server.http.publish("/images/compute.img", image_bytes)

    spans = []

    def bulk_driver(machine):
        t0 = env.now
        lease = None
        while lease is None:
            yield env.timeout(cal.dhcp_seconds)
            lease = frontend.dhcp.discover(machine.mac)
        yield env.timeout(cal.hwdetect_seconds + cal.format_seconds)
        # the whole image in one stream (it may exceed one stream's cap
        # only by sharing; same per-stream ceiling as the RPM pull)
        yield frontend.install_server.http.get(
            machine.mac, "/images/compute.img", max_rate=cal.single_stream_rate
        )
        yield env.timeout(cpu_seconds)  # unpack the image
        machine.rpmdb.wipe()  # a reinstall replaces the old root
        for pkg in profile.packages:
            machine.rpmdb.install(pkg, nodeps=True)
        yield env.timeout(cal.post_config_seconds)
        yield env.timeout(130.0)  # same Myrinet rebuild cost
        spans.append(env.now - t0)

    for node in sim.nodes:
        node.install_driver = bulk_driver
        node.request_reinstall()
    for node in sim.nodes:
        env.run(until=node.wait_for_state(node.state.UP))
    return None, sim, spans


def bench_interleave_vs_bulk(benchmark):
    inter_minutes, _ = benchmark.pedantic(_interleaved, rounds=1, iterations=1)
    _, bulk_sim, bulk_spans = _bulk()
    bulk_minutes = max(bulk_spans) / 60.0 + 2.2  # + POST/boot like shoot-node

    # Same bytes moved either way; similar completion when the server is
    # the bottleneck -- the difference is *smoothness*, quantified below.
    print_rows(
        "Ablation: per-package interleave vs bulk image (16 nodes)",
        ("strategy", "completion (min)"),
        [
            ("interleaved RPM pull (Rocks)", f"{inter_minutes:.1f}"),
            ("bulk 225 MB image pull", f"{bulk_minutes:.1f}"),
        ],
    )
    assert inter_minutes < bulk_minutes * 1.25  # never meaningfully worse


def bench_demand_smoothness(benchmark):
    """Interleaving's real win: sub-capacity average demand per node."""

    def measure():
        sim = build_cluster(n_compute=1)
        sim.integrate_all()
        report = sim.nodes[0].last_install_report
        phase = report.phase_seconds["packages"]
        avg = report.bytes_transferred / phase
        return avg

    avg = benchmark.pedantic(measure, rounds=1, iterations=1)
    burst = 7.5e6
    duty_cycle = avg / burst
    # ~1 MB/s average vs 7.5 MB/s burst: the wire is idle ~85% of the time
    assert duty_cycle < 0.2
    print_rows(
        "Ablation: demand profile of one interleaved install",
        ("metric", "value"),
        [
            ("average demand", f"{avg / 1e6:.2f} MB/s"),
            ("burst rate", f"{burst / 1e6:.1f} MB/s"),
            ("wire duty cycle", f"{duty_cycle * 100:.0f}%"),
            ("full-speed installs one server sustains", f"{burst / avg:.1f}"),
        ],
    )
