"""Figures 5 and 6: rocks-dist gathering and hierarchical composition.

Figure 5: rocks-dist merges Red Hat stock + updates + contrib + local
RPMs into one distribution.  Figure 6: the process is repeatable — a
Rocks distribution can itself be a parent, so a campus adds packages
once and departments build from the campus tree.  §6.2.3 quantifies the
tree: "each distribution is lightweight (on the order of 25MB) and can
be built in under a minute."
"""

import pytest

from helpers import print_rows
from repro.core.distribution import RocksDist
from repro.netsim import Environment
from repro.rpm import (
    Package,
    Repository,
    UpdateStream,
    community_packages,
    npaci_packages,
    stock_redhat,
)

_stock = stock_redhat()


def _standard():
    stream = UpdateStream(_stock, updates_per_year=124)
    return RocksDist.standard(
        _stock,
        updates=stream.updates_repository(),
        contrib=community_packages(),
        local=npaci_packages(),
    )


def bench_fig5_gather_resolves_newest(benchmark):
    rd = _standard()
    resolved, dropped = benchmark(rd.gather)
    assert dropped > 0  # updates shadowed stock builds
    assert "glibc" in resolved and "mpich" in resolved and "rocks-dist" in resolved
    for name in resolved.names():
        assert len(resolved.versions(name)) <= 2  # one per arch at most
    print_rows(
        "Figure 5: rocks-dist gather",
        ("metric", "value"),
        [
            ("sources", len(rd.sources)),
            ("resolved packages", len(resolved)),
            ("older builds dropped", dropped),
        ],
    )


def bench_fig5_dist_build_time_and_size(benchmark):
    rd = _standard()
    env = Environment()
    dist = benchmark.pedantic(rd.dist, kwargs={"env": env}, rounds=1, iterations=1)
    benchmark.extra_info["simulated_build_seconds"] = round(dist.build_seconds, 1)
    benchmark.extra_info["tree_MB"] = round(dist.tree_bytes() / 1e6, 1)
    # "built in under a minute"
    assert dist.build_seconds < 60
    # "on the order of 25MB"
    assert 8e6 < dist.tree_bytes() < 40e6
    print_rows(
        "§6.2.3: distribution tree",
        ("metric", "paper", "measured"),
        [
            ("build time (s)", "< 60", f"{dist.build_seconds:.1f}"),
            ("tree size (MB)", "~25", f"{dist.tree_bytes() / 1e6:.1f}"),
            ("payload behind symlinks (MB)", "-", f"{dist.payload_bytes() / 1e6:.0f}"),
        ],
    )


def bench_fig6_hierarchical_composition(benchmark):
    """NPACI -> campus -> department, the object-oriented model."""

    def compose():
        npaci = _standard().dist()
        campus = RocksDist(name="campus-dist", parent=npaci)
        campus.add_source(
            Repository("campus", [Package("campus-compiler", "6.0", size=40_000_000)])
        )
        campus_dist = campus.dist()
        dept = RocksDist(name="chem-dist", parent=campus_dist)
        dept.add_source(Repository("chem", [Package("gaussian", "98", size=120_000_000)]))
        return npaci, campus_dist, dept.dist()

    npaci, campus_dist, dept_dist = benchmark.pedantic(compose, rounds=1, iterations=1)
    # department inherits the whole ancestry plus its own software
    for name in ("glibc", "mpich", "campus-compiler", "gaussian"):
        assert name in dept_dist.repository, name
    assert dept_dist.lineage() == "campus-dist -> chem-dist"
    rows = [
        (d.name, len(d.repository), f"{d.tree_bytes() / 1e6:.1f}")
        for d in (npaci, campus_dist, dept_dist)
    ]
    print_rows(
        "Figure 6: distribution hierarchy",
        ("distribution", "packages", "tree MB"),
        rows,
    )


def bench_fig6_child_rebuild_is_fast(benchmark):
    """Re-running rocks-dist on an existing mirror is quick (symlinks)."""
    npaci = _standard().dist()
    campus = RocksDist(name="campus-dist", parent=npaci)
    rebuilt = benchmark(campus.dist)
    assert rebuilt.build_seconds < 60
