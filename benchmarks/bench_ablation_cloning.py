"""Ablation (§3.1): description-based installs vs. disk cloning.

The paper's argument against cloning: clusters drift heterogeneous —
Meteor grew "seven different types of nodes, two different CPU
architectures... three different types of disk-storage adapters" — and
a bit-image is bound to one hardware type, so the cloning administrator
maintains one golden image per node type and re-masters every one of
them after each update.  Rocks maintains *one* XML graph whose traversal
specialises per node, and an update touches one place.

We quantify both costs on the Meteor-like mix.
"""

import pytest

from helpers import print_rows
from repro.core.kickstart import (
    KickstartGenerator,
    default_graph,
    default_node_files,
)
from repro.rpm import Repository, community_packages, npaci_packages, stock_redhat

#: the Meteor mix (§3.1): (cpu arch, disk, myrinet?) hardware variants
METEOR_NODE_TYPES = [
    ("i386", "scsi", False),
    ("i386", "ide", True),
    ("i386", "ide", False),
    ("i386", "raid", True),
    ("athlon", "ide", False),
    ("athlon", "ide", True),
    ("ia64", "raid", False),
]


def _repo_all_arches():
    repo = Repository("rocks-dist")
    for arch in ("i386", "athlon", "ia64"):
        repo.add_all(stock_redhat(arch=arch))
        repo.add_all(community_packages(arch))
    repo.add_all(npaci_packages())
    return repo


def bench_description_one_graph_covers_meteor(benchmark):
    """One graph + one node-file set generates all 7 hardware variants."""
    repo = _repo_all_arches()
    gen = KickstartGenerator(default_graph(), default_node_files(), lambda d: repo)

    def generate_all():
        return [
            gen.profile("compute", arch, "rocks-dist")
            for arch, _disk, _myri in METEOR_NODE_TYPES
        ]

    profiles = benchmark.pedantic(generate_all, rounds=1, iterations=1)
    assert len(profiles) == len(METEOR_NODE_TYPES)
    # description artifacts: the XML files, shared by every variant
    n_artifacts = len(gen.node_files) + 1  # + the graph
    artifact_bytes = sum(
        len(nf.to_xml().encode()) for nf in gen.node_files.values()
    ) + len(gen.graph.to_xml().encode())
    assert artifact_bytes < 64_000  # kilobytes, not gigabytes
    print_rows(
        "Ablation §3.1 — Rocks (description-based)",
        ("metric", "value"),
        [
            ("hardware variants served", len(METEOR_NODE_TYPES)),
            ("maintained artifacts", f"{n_artifacts} XML files"),
            ("artifact bytes", artifact_bytes),
            ("artifacts touched per update", 1),
        ],
    )


def bench_cloning_image_sprawl(benchmark):
    """Disk cloning: one golden image per hardware variant, re-mastered
    on every update."""
    repo = _repo_all_arches()
    gen = KickstartGenerator(default_graph(), default_node_files(), lambda d: repo)

    def master_images():
        images = {}
        for arch, disk, myri in METEOR_NODE_TYPES:
            profile = gen.profile("compute", arch, "rocks-dist")
            # a bit-image captures the installed payload (root filesystem)
            images[(arch, disk, myri)] = profile.total_bytes
        return images

    images = benchmark.pedantic(master_images, rounds=1, iterations=1)
    image_bytes = sum(images.values())
    # the sprawl: ~7 images x ~225 MB each vs ~50 KB of XML
    assert len(images) == len(METEOR_NODE_TYPES)
    assert image_bytes > 1e9
    updates_per_year = 124  # §6.2.1
    remasters = updates_per_year * len(images)
    print_rows(
        "Ablation §3.1 — disk cloning",
        ("metric", "value"),
        [
            ("golden images maintained", len(images)),
            ("image bytes", f"{image_bytes / 1e9:.2f} GB"),
            ("re-masterings per year (124 updates)", remasters),
            ("vs Rocks: artifacts touched per update", 1),
        ],
    )
