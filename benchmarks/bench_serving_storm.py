"""Surviving the install storm: power-restore recovery with autoscaling.

The whole-site power-restore is the worst serving scenario a frontend
faces: every node boots at once and the herd DHCPs, kickstarts, and
pulls its full distribution against one httpd (§6.1).  This benchmark
replays that scenario twice — once with the gauge-driven autoscaler
adding install-server replicas behind the load balancer, once with the
hardened-but-fixed-capacity baseline — and gates on the headline claim:

* the autoscaled run reaches a *stable cluster* (every node installed
  and UP, shedding quiesced) within the deadline;
* the baseline either never stabilises or takes >= 2x as long.

The SLO trajectory (p99 install-HTTP latency, shed counts,
time-to-stable, the scale-event timeline) is canonical JSON —
byte-identical for the same seed — and ``--record`` writes it to
``BENCH_serving.json``.

Run standalone for a narrated report::

    PYTHONPATH=src python benchmarks/bench_serving_storm.py --quick
"""

from __future__ import annotations

import json

from helpers import print_rows
from repro.load import StormOptions, run_storm, slo_json

STORM_NODES = 64
QUICK_NODES = 12
SEED = 42

_cache: dict = {}


def _options(n_nodes: int, autoscale: bool, seed: int = SEED) -> StormOptions:
    return StormOptions(n_nodes=n_nodes, seed=seed, autoscale=autoscale)


def _run(n_nodes: int, autoscale: bool, seed: int = SEED):
    key = (n_nodes, autoscale, seed)
    if key not in _cache:
        _cache[key] = run_storm(_options(n_nodes, autoscale, seed))
    return _cache[key]


def _verdict(auto, base) -> dict:
    """The acceptance comparison between the two runs."""
    speedup = None
    if auto.stable and base.stable:
        speedup = base.time_to_stable / auto.time_to_stable
    return {
        "autoscaled_stable": auto.stable,
        "baseline_stable": base.stable,
        "autoscaled_time_to_stable_s": auto.time_to_stable,
        "baseline_time_to_stable_s": base.time_to_stable,
        "baseline_vs_autoscaled_x": (
            round(speedup, 3) if speedup is not None else None
        ),
        "accepted": auto.stable and (not base.stable or speedup >= 2.0),
    }


def bench_storm_autoscaled_recovers(benchmark):
    """64-node power restore: the autoscaled frontend reaches stability."""
    result = benchmark.pedantic(
        _run, args=(STORM_NODES, True), rounds=1, iterations=1
    )
    rep = result.report
    benchmark.extra_info["time_to_stable_s"] = rep["time_to_stable_s"]
    benchmark.extra_info["p99_s"] = rep["http"]["p99_s"]
    benchmark.extra_info["shed_total"] = rep["shed"]["total"]
    benchmark.extra_info["peak_replicas"] = rep["autoscaler"]["peak_replicas"]
    assert result.stable
    assert rep["nodes_up"] == STORM_NODES
    # the scaler actually acted — this is not a trivially survivable storm
    assert rep["autoscaler"]["actions"] >= 1
    assert rep["autoscaler"]["peak_replicas"] >= 1


def bench_storm_baseline_stalls_or_2x(benchmark):
    """Fixed-capacity baseline: stalls, or >= 2x slower to stability."""

    def run_both():
        return _run(STORM_NODES, True), _run(STORM_NODES, False)

    auto, base = benchmark.pedantic(run_both, rounds=1, iterations=1)
    verdict = _verdict(auto, base)
    benchmark.extra_info.update(verdict)
    assert verdict["accepted"], verdict
    print_rows(
        f"Install storm: {STORM_NODES} nodes, whole-site power restore",
        ("frontend", "stable", "time-to-stable", "shed", "p99 (s)"),
        [_row(auto, "autoscaled"), _row(base, "baseline")],
    )


def bench_storm_slo_byte_identity(benchmark):
    """Same seed => byte-identical SLO artifact (the CI invariant)."""

    def run_twice():
        a = run_storm(_options(QUICK_NODES, True))
        b = run_storm(_options(QUICK_NODES, True))
        return a.slo_json(), b.slo_json()

    a, b = benchmark.pedantic(run_twice, rounds=1, iterations=1)
    assert a.encode() == b.encode()
    # canonical form round-trips
    assert a == slo_json(json.loads(a))


def _row(result, label):
    rep = result.report
    return (
        label,
        "yes" if rep["stable"] else "NO",
        (
            f"{rep['time_to_stable_s']:.0f}s"
            if rep["time_to_stable_s"] is not None
            else f"> deadline ({rep['nodes_up']}/{rep['n_nodes']} up)"
        ),
        str(rep["shed"]["total"]),
        f"{rep['http']['p99_s']:.1f}",
    )


def trajectory(n_nodes: int, seed: int = SEED) -> dict:
    """The BENCH_serving.json payload: both runs plus the verdict."""
    auto = _run(n_nodes, True, seed)
    base = _run(n_nodes, False, seed)
    return {
        "benchmark": "serving_storm",
        "scenario": "whole-site power restore",
        "autoscaled": auto.report,
        "baseline": base.report,
        "verdict": _verdict(auto, base),
    }


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=STORM_NODES)
    parser.add_argument("--seed", type=int, default=SEED)
    parser.add_argument("--quick", action="store_true",
                        help=f"use {QUICK_NODES} nodes (CI smoke test)")
    parser.add_argument("--record", metavar="PATH",
                        help="write the SLO trajectory as canonical JSON")
    args = parser.parse_args(argv)
    n = QUICK_NODES if args.quick else args.nodes

    auto = _run(n, True, args.seed)
    base = _run(n, False, args.seed)
    print(auto.render())
    if auto.autoscaler is not None:
        print(auto.autoscaler.render_events())
    print()
    print(base.render())
    verdict = _verdict(auto, base)
    print_rows(
        f"Install storm: {n} nodes, whole-site power restore",
        ("frontend", "stable", "time-to-stable", "shed", "p99 (s)"),
        [_row(auto, "autoscaled"), _row(base, "baseline")],
    )
    if args.record:
        payload = slo_json(trajectory(n, args.seed))
        with open(args.record, "w") as fh:
            fh.write(payload)
        print(f"\nwrote {args.record}")
    ok = verdict["accepted"]
    label = verdict["baseline_vs_autoscaled_x"]
    print("\nautoscaled vs baseline: "
          + (f"{label}x faster to stable; " if label else "baseline stalled; ")
          + ("PASS" if ok else "FAIL"))
    return 0 if ok else 1


if __name__ == "__main__":
    import sys

    sys.exit(main())
