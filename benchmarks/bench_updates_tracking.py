"""§6.2.1: keeping up with software — automatic update tracking.

Paper: "in less than a year, Red Hat 6.2 for Intel had 124 updated
packages...  On average, this amounts to one update every three days",
and rocks-dist's answer: "We simply do not have the manpower, time, or
interest to inspect every software update and bless it.  If Red Hat
ships it, so do we."

We replay a year of synthetic updates and measure (a) the update rate,
(b) that rocks-dist always resolves to the newest build, and (c) the
*staleness* difference between a cluster that rebuilds+reinstalls
monthly versus one frozen at install time — the paper's motivating
failure mode ("software becomes stale, security holes remain
unpatched").
"""

import pytest

from helpers import print_rows
from repro.core.distribution import RocksDist
from repro.rpm import UpdateStream, community_packages, npaci_packages, stock_redhat

DAYS = 360


def bench_update_rate_one_every_three_days(benchmark):
    stock = stock_redhat()
    stream = benchmark(UpdateStream, stock, 62, 124, 0.45, DAYS)
    assert len(stream) == 124
    assert stream.mean_days_between_updates() == pytest.approx(2.9, abs=0.2)
    n_sec = len(stream.security_updates())
    assert 30 <= n_sec <= 90  # "74 security vulnerabilities" order
    print_rows(
        "§6.2.1: a year of vendor updates",
        ("metric", "paper (RH 6.2)", "measured"),
        [
            ("updated packages", 124, len(stream)),
            ("days between updates", "~3", f"{stream.mean_days_between_updates():.1f}"),
            ("security advisories", "several of 74", n_sec),
        ],
    )


def bench_rocks_dist_tracks_newest(benchmark):
    stock = stock_redhat()
    stream = UpdateStream(stock, updates_per_year=124, days=DAYS)

    def rebuild_at(day):
        rd = RocksDist.standard(
            stock,
            updates=stream.updates_repository(day),
            contrib=community_packages(),
            local=npaci_packages(),
        )
        return rd.dist()

    dist = benchmark.pedantic(rebuild_at, args=(DAYS,), rounds=1, iterations=1)
    for update in stream:
        assert not update.package.newer_than(dist.latest(update.package.name))


def bench_staleness_reinstall_vs_frozen(benchmark):
    """Unpatched-advisory count over a year: monthly reinstall vs frozen."""
    stock = stock_redhat()
    stream = UpdateStream(stock, updates_per_year=124, days=DAYS)

    def staleness(rebuild_every: int):
        """Advisory-days of exposure across the year."""
        exposure = 0
        installed_day = 0  # last day whose updates are on the nodes
        for day in range(DAYS):
            if rebuild_every and day % rebuild_every == 0:
                installed_day = day
            exposure += sum(
                1
                for u in stream.security_updates()
                if installed_day < u.day <= day
            )
        return exposure

    frozen = staleness(0)
    monthly = staleness(30)
    benchmark.pedantic(staleness, args=(30,), rounds=1, iterations=1)
    # the paper's argument: periodic reinstallation keeps exposure bounded
    assert monthly < frozen / 5
    print_rows(
        "§6.2.1: security staleness (advisory-days of exposure / year)",
        ("strategy", "advisory-days"),
        [
            ("frozen at install time", frozen),
            ("monthly rocks-dist + reinstall", monthly),
        ],
    )
