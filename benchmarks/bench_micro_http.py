"""§6.3 micro-benchmark: serial download throughput of the web server.

"By running a micro-benchmark that consisted of serially downloading all
the RPMs a compute node downloads during its reinstallation, we found
the web server sourced 7-8 MB/s."  The paper's model: each reinstalling
node demands 1 MB/s on average (225 MB / 223 s), so that server supports
~7 concurrent reinstallations at full speed.

We rerun exactly that: one client GETs the full 162-package compute set
back to back and we report payload bytes / simulated seconds.  A second
measurement recomputes the per-node demand from a real install report.
"""

import pytest

from helpers import print_rows
from repro import build_cluster
from repro.core.tools import shoot_node
from repro.installer import SINGLE_STREAM_HTTP_RATE

_state = {}


def _setup():
    if "sim" not in _state:
        sim = build_cluster(n_compute=1)
        sim.integrate_all()
        _state["sim"] = sim
    return _state["sim"]


def _serial_download():
    sim = _setup()
    env = sim.env
    frontend = sim.frontend
    node = sim.nodes[0]
    profile = frontend.cgi.generate(node.mac)

    def run():
        total = 0.0
        for pkg in profile.packages:
            resp = yield frontend.install_server.fetch_package(
                node.mac, profile.dist_name, pkg,
                max_rate=SINGLE_STREAM_HTTP_RATE,
            )
            total += resp.size
        return total

    t0 = env.now
    total = env.run(until=env.process(run()))
    seconds = env.now - t0
    return total, seconds


def bench_micro_serial_download(benchmark):
    total, seconds = benchmark.pedantic(_serial_download, rounds=1, iterations=1)
    rate = total / seconds / 1e6
    benchmark.extra_info["measured_MBps"] = round(rate, 2)
    benchmark.extra_info["paper_MBps"] = "7-8"
    # "the web server sourced 7-8 MB/s"
    assert 7.0 <= rate <= 8.0
    print_rows(
        "§6.3 micro-benchmark: serial RPM download",
        ("metric", "paper", "measured"),
        [("server payload rate (MB/s)", "7-8", f"{rate:.2f}")],
    )


def bench_per_node_demand_model(benchmark):
    """Validate '1 MB/s demand per reinstalling node' (225 MB / 223 s)."""

    def measure():
        sim = _setup()
        return sim.env.run(until=shoot_node(sim.frontend, sim.nodes[0]))

    report = benchmark.pedantic(measure, rounds=1, iterations=1)
    node_report = _state["sim"].nodes[0].last_install_report
    phase = node_report.phase_seconds["packages"]
    demand = node_report.bytes_transferred / phase / 1e6
    benchmark.extra_info["demand_MBps"] = round(demand, 2)
    benchmark.extra_info["paper_demand_MBps"] = 1.0
    # paper: 225 MB / 223 s ≈ 1 MB/s
    assert demand == pytest.approx(1.0, rel=0.15)
    # which supports ~7 concurrent full-speed installs on a 7-8 MB/s server
    concurrent = 7.5 / demand
    assert 6 <= concurrent <= 9
    print_rows(
        "§6.3 demand model",
        ("metric", "paper", "measured"),
        [
            ("per-node demand (MB/s)", "~1.0", f"{demand:.2f}"),
            ("full-speed concurrent installs", "~7", f"{concurrent:.1f}"),
        ],
    )
