"""§5: management effort vs. cluster size.

"Simplifying the role of a compute node, treating their base OS as
stateless, and requiring 100% automatic configuration makes scaling-out
tenable.  Each compute node added to the system only increments the
total management effort by a small amount."

We quantify "management effort" as the administrator-visible actions and
artifacts at three cluster sizes: manual steps per added node (zero —
insert-ethers reacts to the DHCP broadcast), maintained configuration
artifacts (constant: one XML set + one database), and the per-node
integration wall time (flat — installs pipeline behind insert-ethers).
"""

import pytest

from helpers import print_rows
from repro import build_cluster

SIZES = (2, 8, 24)


def _integrate(n):
    sim = build_cluster(n_compute=n)
    t0 = sim.env.now
    sim.integrate_all()
    span_min = (sim.env.now - t0) / 60
    f = sim.frontend
    artifacts = len(f.generator.node_files) + 1 + 1  # XML files + graph + DB
    return {
        "nodes": n,
        "manual_steps_per_node": 0,  # insert-ethers is syslog-driven
        "config_regens": f.config_regenerations,
        "artifacts": artifacts,
        "span_min": span_min,
        "per_node_min": span_min / n,
    }


def bench_admin_effort_scaling(benchmark):
    def run():
        return [_integrate(n) for n in SIZES]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    small, mid, large = results

    # artifacts maintained do NOT grow with the cluster
    assert small["artifacts"] == large["artifacts"]
    # config regeneration is linear (one automatic regen per insertion),
    # and each regen is machine work, not admin work
    assert large["config_regens"] == pytest.approx(large["nodes"] + 1, abs=1)
    # integration cost per node stays flat as the cluster grows 12x
    # (sequential boot dominates; installs overlap behind it)
    assert large["per_node_min"] <= small["per_node_min"] * 1.5

    print_rows(
        "§5: management effort vs cluster size",
        ("nodes", "manual steps/node", "XML+DB artifacts",
         "auto config regens", "integration min/node"),
        [
            (r["nodes"], r["manual_steps_per_node"], r["artifacts"],
             r["config_regens"], f"{r['per_node_min']:.1f}")
            for r in results
        ],
    )
