"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure from the paper's
evaluation.  Simulated results (minutes of reinstall time, MB/s of
throughput) are attached to pytest-benchmark's ``extra_info`` and also
printed as paper-vs-measured rows, so ``pytest benchmarks/
--benchmark-only`` reproduces the evaluation section in one run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import RocksCluster, build_cluster

__all__ = ["reinstall_experiment", "ReinstallResult", "print_rows"]


@dataclass
class ReinstallResult:
    """One cell of Table I: N concurrent reinstalls, wall-clock span."""

    n_nodes: int
    minutes: float
    per_node_minutes: list[float]
    bytes_served: float


def reinstall_experiment(n_nodes: int, **kwargs) -> ReinstallResult:
    """Build a cluster, integrate, then concurrently reinstall all nodes.

    Matches §6.3's setup: one dual-PIII 100 Mbit HTTP server feeding
    733 MHz-1 GHz PIII compute nodes with Myrinet (driver rebuilt from
    source during the reinstall).
    """
    sim = build_cluster(n_compute=n_nodes, **kwargs)
    sim.integrate_all()
    served_before = sim.frontend.install_server.bytes_served
    reports = sim.reinstall_all()
    span = max(r.finished_at for r in reports) - min(r.started_at for r in reports)
    return ReinstallResult(
        n_nodes=n_nodes,
        minutes=span / 60.0,
        per_node_minutes=[r.minutes for r in reports],
        bytes_served=sim.frontend.install_server.bytes_served - served_before,
    )


def print_rows(title: str, header: tuple, rows: list[tuple]) -> None:
    """Print a paper-vs-measured table to the terminal."""
    print(f"\n=== {title} ===")
    widths = [
        max(len(str(header[i])), max((len(str(r[i])) for r in rows), default=0))
        for i in range(len(header))
    ]
    fmt = "  ".join(f"{{:>{w}}}" for w in widths)
    print(fmt.format(*header))
    for row in rows:
        print(fmt.format(*row))
