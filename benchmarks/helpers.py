"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure from the paper's
evaluation.  Simulated results (minutes of reinstall time, MB/s of
throughput) are attached to pytest-benchmark's ``extra_info`` and also
printed as paper-vs-measured rows, so ``pytest benchmarks/
--benchmark-only`` reproduces the evaluation section in one run.

Benchmarks can opt into telemetry: ``reinstall_experiment(n, trace=path)``
attaches a :class:`repro.telemetry.Tracer` to the run, exports the
schema-validated JSONL evidence behind the headline number (per-node
install-phase spans, per-link utilization timeseries), and returns the
aggregated summary on the result.  Without ``trace`` the no-op tracer is
in place and the run costs nothing extra.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro import RocksCluster, build_cluster
from repro.telemetry import Tracer, summarize, write_jsonl

__all__ = ["reinstall_experiment", "ReinstallResult", "print_rows"]


@dataclass
class ReinstallResult:
    """One cell of Table I: N concurrent reinstalls, wall-clock span."""

    n_nodes: int
    minutes: float
    per_node_minutes: list[float]
    bytes_served: float
    #: aggregated telemetry (phases, peak link utilization) when traced
    trace_summary: Optional[dict] = field(default=None, repr=False)
    trace_path: Optional[str] = None


def reinstall_experiment(
    n_nodes: int, trace: Optional[str] = None, **kwargs
) -> ReinstallResult:
    """Build a cluster, integrate, then concurrently reinstall all nodes.

    Matches §6.3's setup: one dual-PIII 100 Mbit HTTP server feeding
    733 MHz-1 GHz PIII compute nodes with Myrinet (driver rebuilt from
    source during the reinstall).  ``trace`` names a JSONL file to
    receive the run's telemetry (tracing stays off when omitted).
    """
    tracer = Tracer() if trace else None
    sim = build_cluster(n_compute=n_nodes, tracer=tracer, **kwargs)
    sim.integrate_all()
    served_before = sim.frontend.install_server.bytes_served
    reports = sim.reinstall_all()
    span = max(r.finished_at for r in reports) - min(r.started_at for r in reports)
    summary = None
    if tracer is not None:
        write_jsonl(tracer, trace)
        summary = summarize(tracer)
    return ReinstallResult(
        n_nodes=n_nodes,
        minutes=span / 60.0,
        per_node_minutes=[r.minutes for r in reports],
        bytes_served=sim.frontend.install_server.bytes_served - served_before,
        trace_summary=summary,
        trace_path=trace,
    )


def print_rows(title: str, header: tuple, rows: list[tuple]) -> None:
    """Print a paper-vs-measured table to the terminal."""
    print(f"\n=== {title} ===")
    widths = [
        max(len(str(header[i])), max((len(str(r[i])) for r in rows), default=0))
        for i in range(len(header))
    ]
    fmt = "  ".join(f"{{:>{w}}}" for w in widths)
    print(fmt.format(*header))
    for row in rows:
        print(fmt.format(*row))
