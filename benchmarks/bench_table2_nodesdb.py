"""Table II: the nodes table, populated by insert-ethers.

The paper's Table II shows a mixed cabinet: frontend-0 at 10.1.1.1, an
Ethernet switch, an NFS server, four compute nodes with descending IPs
from 10.255.255.x, and a web server in cabinet 1.  We integrate exactly
that mix through insert-ethers (switches get no MAC-bound install; they
are inserted administratively) and print the resulting table.
"""

import pytest

from helpers import print_rows
from repro import build_cluster
from repro.core.tools import InsertEthers


def _build_table2():
    sim = build_cluster(n_compute=0)
    f = sim.frontend
    # administrative entries (no hardware boot): the cabinet switch
    f.db.add_node("network-0-0", membership="Ethernet Switches",
                  comment="Switch for Cabinet 0")
    # an NFS appliance integrated via insert-ethers in nfs mode
    nfs_machine = sim.hardware.add_machine("nfs-server")
    f.adopt(nfs_machine)
    with InsertEthers(f, membership="NFS Servers") as ie_nfs:
        ie_nfs.insert(nfs_machine.mac)
    # four compute nodes, booted sequentially under insert-ethers
    sim.add_compute_nodes(4)
    sim.integrate_all()
    # a web server in cabinet 1
    web_machine = sim.hardware.add_machine("pIII-733-dual", cabinet=None)
    f.adopt(web_machine)
    with InsertEthers(f, membership="Web Servers", cabinet=1) as ie_web:
        ie_web.insert(web_machine.mac)
    return sim


def bench_table2_population(benchmark):
    sim = benchmark.pedantic(_build_table2, rounds=1, iterations=1)
    db = sim.db
    rows = db.query(
        "select nodes.id, nodes.mac, nodes.name, memberships.name, "
        "nodes.rack, nodes.rank, nodes.ip from nodes, memberships "
        "where nodes.membership = memberships.id order by nodes.id"
    )
    by_name = {r[2]: r for r in rows}

    # Table II's structure:
    assert by_name["frontend-0"][6] == "10.1.1.1"
    assert by_name["network-0-0"][3] == "Ethernet Switches"
    assert by_name["nfs-0-0"][3] == "NFS Servers"
    assert by_name["web-1-0"][4] == 1  # rack 1
    computes = [r for r in rows if r[3] == "Compute"]
    assert [r[2] for r in computes] == [f"compute-0-{i}" for i in range(4)]
    assert [r[5] for r in computes] == [0, 1, 2, 3]  # rank follows boot order
    # compute IPs descend from the top of 10/8 (insert order)
    compute_ips = [r[6] for r in computes]
    assert compute_ips == sorted(compute_ips, reverse=True)
    # every MAC-bearing row is unique
    macs = [r[1] for r in rows if r[1]]
    assert len(macs) == len(set(macs))

    print_rows(
        "Table II: the nodes table",
        ("ID", "MAC", "Name", "Membership", "Rack", "Rank", "IP"),
        [(r[0], r[1] or "-", r[2], r[3], r[4], r[5], r[6]) for r in rows],
    )


def bench_table2_insert_rate(benchmark):
    """Database-side cost of one insert-ethers integration step."""
    sim = build_cluster(n_compute=0)
    f = sim.frontend
    counter = [0]

    def insert_one():
        i = counter[0]
        counter[0] += 1
        f.db.add_node(f"compute-9-{i}", mac=f"00:50:8b:ff:{i >> 8:02x}:{i & 255:02x}",
                      rack=9, rank=i)
        f.regenerate_configs()

    benchmark.pedantic(insert_one, rounds=50, iterations=1)
    assert f.dhcp.n_bindings >= 50
