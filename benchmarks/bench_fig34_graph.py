"""Figures 3 and 4: the XML graph file and its appliance traversal.

Figure 3 is an excerpt of the graph XML; Figure 4 visualises it and the
paper walks the example: a *compute* appliance's traversal reaches the
compute, mpi and c-development node files.  We check the shipped graph
reproduces that walk, that one graph serves every architecture
(§6.1: three processor types from a single graph), and benchmark
traversal + full kickstart generation (the per-boot CGI cost).
"""

from helpers import print_rows
from repro.core.kickstart import (
    Graph,
    KickstartGenerator,
    default_graph,
    default_node_files,
)
from repro.rpm import Repository, community_packages, npaci_packages, stock_redhat


def bench_fig4_compute_traversal(benchmark):
    g = default_graph()
    order = benchmark(g.traverse, "compute", "i386")
    assert order[0] == "compute"
    # the paper's example trio all appear, mpi before its child
    assert {"mpi", "c-development"} <= set(order)
    assert order.index("mpi") < order.index("c-development")
    print_rows(
        "Figure 4: compute appliance traversal",
        ("position", "node file"),
        list(enumerate(order)),
    )


def bench_fig4_one_graph_all_archs(benchmark):
    """One XML graph drives IA-32, Athlon and IA-64 kickstarts (§6.1)."""
    repo = Repository("rocks-dist")
    for arch in ("i386", "athlon", "ia64"):
        repo.add_all(stock_redhat(arch=arch))
        repo.add_all(community_packages(arch))
    repo.add_all(npaci_packages())
    gen = KickstartGenerator(default_graph(), default_node_files(), lambda d: repo)

    def generate_all():
        return {
            arch: gen.profile("compute", arch, "rocks-dist")
            for arch in ("i386", "athlon", "ia64")
        }

    profiles = benchmark.pedantic(generate_all, rounds=1, iterations=1)
    assert {p.appliance for p in profiles.values()} == {"compute"}
    # per-arch divergence handled by the same graph:
    assert any(p.name == "intel-mkl" for p in profiles["i386"].packages)
    assert any(p.name == "intel-mkl" for p in profiles["athlon"].packages)
    assert not any(p.name == "intel-mkl" for p in profiles["ia64"].packages)
    rows = [
        (arch, profiles[arch].n_packages, f"{profiles[arch].total_bytes / 1e6:.0f} MB")
        for arch in ("i386", "athlon", "ia64")
    ]
    print_rows(
        "§6.1: one graph, three architectures",
        ("arch", "packages", "payload"),
        rows,
    )


def bench_fig3_graph_xml_parse(benchmark):
    xml = default_graph().to_xml()
    g = benchmark(Graph.from_xml, xml)
    assert g.edges == default_graph().edges


def bench_fig4_dot_export(benchmark):
    dot = benchmark(default_graph().to_dot)
    assert '"compute" -> "mpi";' in dot
