"""Ablation (§1): reinstall-to-known-state vs. cfengine-style convergence.

The paper's core philosophy: "it becomes faster to reinstall all nodes
to a known configuration than it is to determine if nodes were out of
synchronization in the first place."  Cfengine-style management performs
"exhaustive examination and parity checking of an installed OS".

We model the comparison directly:

* *verify*: each node diffs its installed set against the reference and
  repairs drifted packages individually (per-package check cost plus
  download+install of each repair);
* *reinstall*: shoot-node, flat ~10 minutes, guaranteed consistent.

The crossover: verification wins only when drift is tiny and known;
reinstallation has constant cost, needs no drift knowledge, and is the
only option that also catches what scanners cannot see.
"""

import pytest

from helpers import print_rows
from repro import build_cluster

#: per-package verification cost (rpm -V: checksum every file), seconds
VERIFY_SECONDS_PER_PACKAGE = 1.1
#: per-package repair: fetch at single-stream rate + reinstall CPU
REPAIR_SECONDS_PER_PACKAGE = 2.4


def _drift_some(node, dist, n_drift):
    """Silently downgrade/mutate n packages (the 'incorrect command
    line sequence' failure of §3.2)."""
    names = node.rpmdb.installed_names()
    drifted = []
    for name in names:
        if len(drifted) >= n_drift:
            break
        pkg = node.rpmdb.query(name)
        node.rpmdb.erase(name, force=True)
        drifted.append(pkg)
    return drifted


def _verify_minutes(n_packages, n_drift):
    check = n_packages * VERIFY_SECONDS_PER_PACKAGE
    repair = n_drift * REPAIR_SECONDS_PER_PACKAGE
    return (check + repair) / 60.0


def bench_convergence_crossover(benchmark):
    def run():
        sim = build_cluster(n_compute=1)
        sim.integrate_all()
        (report,) = sim.reinstall_all()
        return sim, report.minutes

    sim, reinstall_minutes = benchmark.pedantic(run, rounds=1, iterations=1)
    n_packages = len(sim.nodes[0].rpmdb)

    rows = []
    crossover = None
    for drift in (0, 1, 5, 20, 80, 162):
        v = _verify_minutes(n_packages, drift)
        rows.append((drift, f"{v:.1f}", f"{reinstall_minutes:.1f}"))
        if crossover is None and v >= reinstall_minutes:
            crossover = drift
    print_rows(
        "Ablation §1: verify-and-repair vs reinstall (one node, minutes)",
        ("drifted pkgs", "verify+repair", "reinstall"),
        rows,
    )
    # verification of the full package set alone is already minutes of
    # work per node; with real drift it rapidly approaches a reinstall,
    # while giving a weaker guarantee.
    assert _verify_minutes(n_packages, 0) > 2.0
    assert _verify_minutes(n_packages, 162) > 0.8 * reinstall_minutes


def bench_reinstall_restores_known_state(benchmark):
    """The qualitative half: after drift, reinstall == reference exactly."""

    def run():
        sim = build_cluster(n_compute=2)
        sim.integrate_all()
        reference = sim.nodes[1].rpmdb
        dist = sim.frontend.distributions["rocks-dist"]
        drifted = _drift_some(sim.nodes[0], dist, 7)
        assert reference.diff(sim.nodes[0].rpmdb)  # drift is visible
        sim.reinstall_all([sim.nodes[0]])
        return sim, reference

    sim, reference = benchmark.pedantic(run, rounds=1, iterations=1)
    # §3.2's questions need never be asked: the node equals the reference
    assert not reference.diff(sim.nodes[0].rpmdb)
    assert sim.nodes[0].rpmdb.verify()
    print_rows(
        "Ablation §1: state after recovery",
        ("metric", "value"),
        [
            ("packages drifted before", 7),
            ("diff vs reference after reinstall", 0),
            ("rpmdb self-consistent", True),
        ],
    )
