"""Tests for machine lifecycle, PDU power control, and cabinets."""

import pytest

from repro.cluster import (
    CATALOG,
    BootTimes,
    Cabinet,
    CabinetFull,
    ClusterHardware,
    MachineState,
    OutletError,
    Partition,
    PowerDistributionUnit,
    PowerState,
)
from repro.netsim import Environment
from repro.rpm import Package


@pytest.fixture
def hw():
    env = Environment()
    return env, ClusterHardware(env, seed=1)


def preinstall_os(machine):
    """Give the machine an 'installed OS' so it boots instead of installing."""
    machine.rpmdb.install(Package("glibc", "2.2.4"))
    machine.partitions["/"] = Partition("/", 4096, is_root=True)


def test_machine_starts_off(hw):
    _, cluster = hw
    m = cluster.add_machine("pIII-733-myri")
    assert m.power is PowerState.OFF
    assert m.state is MachineState.OFF


def test_boot_with_os_reaches_up(hw):
    env, cluster = hw
    m = cluster.add_machine("pIII-733-myri")
    preinstall_os(m)
    m.power_on()
    env.run(until=m.wait_for_state(MachineState.UP))
    assert m.is_up
    # POST + boot_os, with jitter
    assert 30 < env.now < 200


def test_boot_without_os_and_without_installer_hangs(hw):
    env, cluster = hw
    m = cluster.add_machine("pIII-733-myri")
    m.power_on()
    env.run(until=m.wait_for_state(MachineState.HUNG))
    assert m.state is MachineState.HUNG


def test_install_driver_runs_on_first_boot(hw):
    env, cluster = hw
    m = cluster.add_machine("pIII-733-myri")
    calls = []

    def driver(machine):
        calls.append(machine.hostid)
        yield env.timeout(100)
        machine.rpmdb.install(Package("glibc", "2.2.4"))
        return "install-report"

    m.install_driver = driver
    m.power_on()
    env.run(until=m.wait_for_state(MachineState.UP))
    assert calls == [m.mac]
    assert m.install_count == 1
    assert m.last_install_report == "install-report"


def test_request_reinstall_runs_driver_again(hw):
    env, cluster = hw
    m = cluster.add_machine("pIII-733-myri")
    installs = []

    def driver(machine):
        yield env.timeout(50)
        machine.rpmdb.wipe()
        machine.rpmdb.install(Package("glibc", "2.2.4"))
        installs.append(env.now)

    m.install_driver = driver
    m.power_on()
    env.run(until=m.wait_for_state(MachineState.UP))
    m.request_reinstall()
    env.run(until=m.wait_for_state(MachineState.UP))
    assert m.install_count == 2


def test_hard_power_off_forces_reinstall(hw):
    env, cluster = hw
    m = cluster.add_machine("pIII-733-myri")
    preinstall_os(m)

    def driver(machine):
        yield env.timeout(10)
        machine.rpmdb.wipe()
        machine.rpmdb.install(Package("glibc", "2.2.4"))

    m.install_driver = driver
    m.power_on()
    env.run(until=m.wait_for_state(MachineState.UP))
    assert m.install_count == 0  # booted straight up, no install
    m.power_off(hard=True)
    m.power_on()
    env.run(until=m.wait_for_state(MachineState.UP))
    assert m.install_count == 1  # hard cycle forced the reinstall


def test_soft_reboot_does_not_reinstall(hw):
    env, cluster = hw
    m = cluster.add_machine("pIII-733-myri")
    preinstall_os(m)
    m.power_on()
    env.run(until=m.wait_for_state(MachineState.UP))
    m.reboot()
    env.run(until=m.wait_for_state(MachineState.UP))
    assert m.install_count == 0


def test_power_loss_mid_install_wipes_root(hw):
    env, cluster = hw
    m = cluster.add_machine("pIII-733-myri")

    def driver(machine):
        machine.partitions["/"] = Partition("/", 4096, is_root=True)
        machine.partitions["/"].data["half-written"] = True
        machine.rpmdb.install(Package("glibc", "2.2.4"))
        yield env.timeout(1000)

    m.install_driver = driver
    m.power_on()
    env.run(until=m.wait_for_state(MachineState.INSTALLING))
    env.run(until=env.now + 50)
    m.power_off(hard=True)
    assert len(m.rpmdb) == 0
    assert m.partitions["/"].data == {}
    assert m.reinstall_on_boot


def test_nonroot_partition_survives_power_loss(hw):
    env, cluster = hw
    m = cluster.add_machine("pIII-733-myri")
    m.partitions["/state"] = Partition("/state", 10_000)
    m.partitions["/state"].data["scratch"] = [1, 2, 3]

    def driver(machine):
        machine.partitions["/"] = Partition("/", 4096, is_root=True)
        yield env.timeout(1000)

    m.install_driver = driver
    m.power_on()
    env.run(until=m.wait_for_state(MachineState.INSTALLING))
    env.run(until=env.now + 10)
    m.power_off(hard=True)
    assert m.partitions["/state"].data == {"scratch": [1, 2, 3]}


def test_console_records_lifecycle(hw):
    env, cluster = hw
    m = cluster.add_machine("pIII-733-myri")
    preinstall_os(m)
    m.power_on()
    env.run(until=m.wait_for_state(MachineState.UP))
    assert any("multi-user boot complete" in line for line in m.console)


def test_link_follows_machine_state(hw):
    env, cluster = hw
    m = cluster.add_machine("pIII-733-myri")
    f = cluster.add_machine("pIII-733-dual", name="frontend-0")
    preinstall_os(m)
    preinstall_os(f)
    # Both off: links down.
    assert not cluster.network.reachable(m.mac, f.mac)
    m.power_on()
    f.power_on()
    env.run(until=m.wait_for_state(MachineState.UP))
    env.run(until=f.wait_for_state(MachineState.UP))
    assert cluster.network.reachable(m.mac, f.mac)
    m.power_off()
    assert not cluster.network.reachable(m.mac, f.mac)


# -- PDU ---------------------------------------------------------------------


def test_pdu_wiring_and_errors(hw):
    env, cluster = hw
    m = cluster.add_machine("pIII-733-myri")
    pdu = PowerDistributionUnit(env, "pdu-test", n_outlets=2)
    pdu.wire(0, m)
    assert pdu.machine_at(0) is m
    assert pdu.outlet_of(m) == 0
    with pytest.raises(OutletError):
        pdu.wire(0, m)
    with pytest.raises(OutletError):
        pdu.machine_at(1)
    with pytest.raises(OutletError):
        pdu.machine_at(7)
    with pytest.raises(ValueError):
        PowerDistributionUnit(env, "bad", n_outlets=0)


def test_pdu_hard_cycle_reinstalls(hw):
    env, cluster = hw
    m = cluster.add_machine("pIII-733-myri")
    preinstall_os(m)

    def driver(machine):
        yield env.timeout(10)
        machine.rpmdb.install(Package("bash", "2.05"), nodeps=True)

    m.install_driver = driver
    m.power_on()
    env.run(until=m.wait_for_state(MachineState.UP))
    pdu, outlet = cluster.pdu_for(m)
    env.process(pdu.hard_cycle(outlet))
    env.run(until=m.wait_for_state(MachineState.INSTALLING))
    env.run(until=m.wait_for_state(MachineState.UP))
    assert m.install_count == 1
    assert pdu.cycles_issued == 1


# -- cabinets / assembly ---------------------------------------------------------


def test_cabinet_assigns_ranks(hw):
    env, cluster = hw
    cab = cluster.add_cabinet(capacity=4)
    machines = [cluster.add_machine("pIII-733-myri", cabinet=cab) for _ in range(3)]
    assert [cluster.location(m) for m in machines] == [(0, 0), (0, 1), (0, 2)]
    assert cab.machine_at(1) is machines[1]


def test_cabinet_full(hw):
    env, cluster = hw
    cab = cluster.add_cabinet(capacity=1)
    cluster.add_machine("pIII-733-myri", cabinet=cab)
    with pytest.raises(CabinetFull):
        cluster.add_machine("pIII-733-myri", cabinet=cab)


def test_cluster_lookup_and_rename(hw):
    _, cluster = hw
    m = cluster.add_machine("pIII-733-myri")
    assert cluster.by_mac(m.mac) is m
    assert m.hostid == m.mac
    cluster.rename(m, "compute-0-0")
    assert cluster.by_name("compute-0-0") is m
    assert cluster.find("compute-0-0") is m
    assert cluster.find(m.mac) is m
    assert m.hostid == "compute-0-0"


def test_rename_collision_rejected(hw):
    _, cluster = hw
    a = cluster.add_machine("pIII-733-myri")
    b = cluster.add_machine("pIII-733-myri")
    cluster.rename(a, "compute-0-0")
    with pytest.raises(ValueError):
        cluster.rename(b, "compute-0-0")


def test_unknown_model_rejected(hw):
    _, cluster = hw
    with pytest.raises(KeyError, match="catalog"):
        cluster.add_machine("cray-1")


def test_unknown_lookup_raises(hw):
    _, cluster = hw
    with pytest.raises(KeyError):
        cluster.by_name("ghost")
    with pytest.raises(KeyError):
        cluster.by_mac("de:ad:be:ef:00:00")
