"""Tests for the hardware catalog and MAC allocation."""

import pytest

from repro.cluster import (
    CATALOG,
    Cpu,
    CpuArch,
    Disk,
    DiskController,
    MacAllocator,
    NicKind,
)


def test_catalog_reference_machines():
    ref = CATALOG["pIII-733-dual"]
    assert ref.cpu.mhz == 733
    assert ref.cpu.count == 2
    compute = CATALOG["pIII-733-myri"]
    assert compute.has_myrinet


def test_cpu_relative_speed():
    assert Cpu(CpuArch.I386, 733).relative_speed == pytest.approx(1.0)
    assert Cpu(CpuArch.I386, 1000).relative_speed == pytest.approx(1.364, abs=0.01)


def test_cpu_validation():
    with pytest.raises(ValueError):
        Cpu(CpuArch.I386, 0)
    with pytest.raises(ValueError):
        Cpu(CpuArch.I386, 733, 0)


def test_disk_controller_drivers():
    assert DiskController.SCSI.driver_module == "aic7xxx"
    assert DiskController.IDE.driver_module == "ide-disk"
    assert DiskController.RAID.driver_module == "megaraid"


def test_disk_device_names():
    assert Disk(DiskController.SCSI).device == "sda"
    assert Disk(DiskController.IDE).device == "hda"
    assert Disk(DiskController.RAID).device.startswith("rd/")


def test_nic_kinds_have_modules():
    assert NicKind.ETHERNET.driver_module == "eepro100"
    assert NicKind.MYRINET.driver_module == "gm"


def test_spec_nics_include_myrinet():
    spec = CATALOG["pIII-733-myri"]
    nics = spec.nics("00:50:8b:00:00:01")
    assert [n.kind for n in nics] == [NicKind.ETHERNET, NicKind.MYRINET]
    nics = CATALOG["pIII-733-dual"].nics("00:50:8b:00:00:02")
    assert [n.kind for n in nics] == [NicKind.ETHERNET]


def test_with_myrinet_derives_spec():
    spec = CATALOG["athlon-1200"].with_myrinet()
    assert spec.has_myrinet
    assert not CATALOG["athlon-1200"].has_myrinet  # original untouched


def test_mac_allocator_unique_and_deterministic():
    a, b = MacAllocator(), MacAllocator()
    seq_a = [a.allocate() for _ in range(300)]
    seq_b = [b.allocate() for _ in range(300)]
    assert seq_a == seq_b
    assert len(set(seq_a)) == 300
    assert all(m.startswith("00:50:8b:") for m in seq_a)


def test_mac_allocator_rolls_octets():
    alloc = MacAllocator()
    for _ in range(257):
        last = alloc.allocate()
    assert last == "00:50:8b:00:01:00"


def test_mac_allocator_bad_oui():
    with pytest.raises(ValueError):
        MacAllocator("00:50")
