"""Tests for PBS, Maui scheduling/drain, and REXEC."""

import pytest

from repro.cluster import ClusterHardware, MachineState, Partition
from repro.netsim import Environment
from repro.rpm import Package
from repro.scheduler import (
    JobState,
    MauiScheduler,
    NodeState,
    PbsError,
    PbsServer,
    RemoteEnvironment,
    Rexec,
    Signal,
)


@pytest.fixture
def pbs():
    env = Environment()
    server = PbsServer(env)
    for i in range(4):
        server.register_node(f"compute-0-{i}")
    return env, server


# -- PBS ----------------------------------------------------------------------


def test_qsub_queues_job(pbs):
    _, server = pbs
    job = server.qsub("bruno", "gamess", nodes=2, walltime=3600)
    assert job.state is JobState.QUEUED
    assert job.jid == "1.frontend-0"
    assert server.queued_jobs() == [job]


def test_qsub_validation(pbs):
    _, server = pbs
    with pytest.raises(PbsError):
        server.qsub("u", "j", nodes=0, walltime=10)
    with pytest.raises(PbsError):
        server.qsub("u", "j", nodes=1, walltime=0)
    with pytest.raises(PbsError):
        server.qsub("u", "j", nodes=1, walltime=10, queue="ghost")


def test_start_job_marks_nodes_exclusive(pbs):
    env, server = pbs
    job = server.qsub("bruno", "amber", nodes=2, walltime=100)
    server.start_job(job, ["compute-0-0", "compute-0-1"])
    assert job.state is JobState.RUNNING
    assert server.node_state("compute-0-0") is NodeState.JOB_EXCLUSIVE
    env.run(until=job.done)
    assert job.state is JobState.COMPLETE
    assert job.finished_at - job.started_at == pytest.approx(100)
    assert server.node_state("compute-0-0") is NodeState.FREE


def test_start_job_validates_node_count_and_state(pbs):
    _, server = pbs
    job = server.qsub("u", "j", nodes=2, walltime=10)
    with pytest.raises(PbsError, match="wants 2 nodes"):
        server.start_job(job, ["compute-0-0"])
    server.set_node_state("compute-0-1", NodeState.DOWN)
    with pytest.raises(PbsError, match="not free"):
        server.start_job(job, ["compute-0-0", "compute-0-1"])


def test_qdel_running_job_frees_nodes(pbs):
    env, server = pbs
    job = server.qsub("u", "runaway", nodes=1, walltime=1e9)
    server.start_job(job, ["compute-0-0"])
    server.qdel(job.job_id)
    assert job.state is JobState.CANCELLED
    assert server.node_state("compute-0-0") is NodeState.FREE


def test_qdel_queued_job(pbs):
    _, server = pbs
    job = server.qsub("u", "j", nodes=1, walltime=10)
    server.qdel(job.job_id)
    assert job.state is JobState.CANCELLED
    assert server.queued_jobs() == []


def test_nodes_file_format(pbs):
    _, server = pbs
    assert server.nodes_file().splitlines()[0] == "compute-0-0 np=1"


def test_duplicate_node_registration(pbs):
    _, server = pbs
    with pytest.raises(PbsError):
        server.register_node("compute-0-0")


# -- Maui -----------------------------------------------------------------------


def test_maui_dispatches_fifo(pbs):
    env, server = pbs
    maui = MauiScheduler(env, server)
    a = server.qsub("u", "a", nodes=2, walltime=50)
    b = server.qsub("u", "b", nodes=2, walltime=50)
    maui.schedule_once()
    assert a.state is JobState.RUNNING
    assert b.state is JobState.RUNNING
    assert set(a.assigned_nodes).isdisjoint(b.assigned_nodes)


def test_maui_priority_order(pbs):
    env, server = pbs
    maui = MauiScheduler(env, server)
    low = server.qsub("u", "low", nodes=4, walltime=50, priority=0)
    high = server.qsub("u", "high", nodes=4, walltime=50, priority=10)
    maui.schedule_once()
    assert high.state is JobState.RUNNING
    assert low.state is JobState.QUEUED


def test_maui_periodic_loop_runs_backlog(pbs):
    env, server = pbs
    maui = MauiScheduler(env, server)
    maui.start()
    jobs = [server.qsub("u", f"j{i}", nodes=4, walltime=100) for i in range(3)]
    env.run(until=400)
    maui.stop()
    assert all(j.state is JobState.COMPLETE for j in jobs)
    # strictly sequential: each started after the previous finished
    assert jobs[1].started_at >= jobs[0].finished_at
    assert jobs[2].started_at >= jobs[1].finished_at


def test_system_job_drains_without_killing(pbs):
    """§5: the reinstall job waits for running work, and free nodes are
    held for it rather than backfilled."""
    env, server = pbs
    maui = MauiScheduler(env, server)
    running = server.qsub("u", "app", nodes=2, walltime=200)
    maui.schedule_once()
    assert running.state is JobState.RUNNING

    reinstall = server.qsub("root", "reinstall-cluster", nodes=4, walltime=600,
                            priority=100, system=True)
    latecomer = server.qsub("u", "late", nodes=1, walltime=50)
    maui.schedule_once()
    # two nodes are free, but they are reserved for the system job:
    assert reinstall.state is JobState.QUEUED
    assert latecomer.state is JobState.QUEUED
    assert running.state is JobState.RUNNING  # never disturbed

    maui.start()
    env.run(until=reinstall.done)
    assert reinstall.started_at >= running.finished_at
    env.run(until=latecomer.done)
    assert latecomer.started_at >= reinstall.finished_at


# -- REXEC ------------------------------------------------------------------------


def up_cluster(n=3):
    env = Environment()
    cluster = ClusterHardware(env, seed=5)
    machines = []
    for i in range(n):
        m = cluster.add_machine("pIII-733-myri", name=f"compute-0-{i}")
        m.rpmdb.install(Package("glibc", "2.2.4"))
        m.partitions["/"] = Partition("/", 4096, is_root=True)
        m.power_on()
        machines.append(m)
    for m in machines:
        env.run(until=m.wait_for_state(MachineState.UP))
    return env, cluster, machines


def test_rexec_runs_on_all_nodes():
    env, cluster, machines = up_cluster()
    rexec = Rexec(env, cluster.find)
    renv = RemoteEnvironment("bruno", 500, 500, "/home/bruno", {"PATH": "/bin"})

    def command(machine, proc):
        proc.stdout.append(f"hello from {machine.hostid} cwd={proc.env.cwd}")
        return 0

    session = rexec.run([m.hostid for m in machines], command, renv)
    assert session.ok
    assert len(session.stdout) == 3
    assert "compute-0-1: hello from compute-0-1 cwd=/home/bruno" in session.stdout


def test_rexec_propagates_environment():
    env, cluster, machines = up_cluster(1)
    rexec = Rexec(env, cluster.find)
    renv = RemoteEnvironment("amy", 501, 501, "/home/amy", {"OMP_NUM_THREADS": "2"})
    seen = {}

    def command(machine, proc):
        seen.update(proc.env.variables)
        seen["uid"] = proc.env.uid
        return 0

    rexec.run(["compute-0-0"], command, renv)
    assert seen == {"OMP_NUM_THREADS": "2", "uid": 501}


def test_rexec_reports_unreachable_down_nodes():
    env, cluster, machines = up_cluster()
    machines[1].power_off()
    rexec = Rexec(env, cluster.find)
    renv = RemoteEnvironment("u", 1, 1, "/")
    session = rexec.run(
        [m.hostid for m in machines] + ["ghost-node"],
        lambda m, p: 0,
        renv,
    )
    assert session.unreachable == ["compute-0-1", "ghost-node"]
    assert not session.ok
    assert len(session.processes) == 2


def test_rexec_signal_forwarding():
    env, cluster, machines = up_cluster(2)
    rexec = Rexec(env, cluster.find)
    renv = RemoteEnvironment("u", 1, 1, "/")

    def never_ending(machine, proc):
        proc.stdout.append("spinning")
        return None  # still running

    session = rexec.run([m.hostid for m in machines], never_ending, renv)
    delivered = session.forward_signal(Signal.SIGTERM)
    assert delivered == 2
    assert all(p.exit_code == 143 for p in session.processes)
    assert all(Signal.SIGTERM in p.signals_received for p in session.processes)


def test_rexec_command_exception_becomes_stderr():
    env, cluster, machines = up_cluster(1)
    rexec = Rexec(env, cluster.find)

    def bad(machine, proc):
        raise RuntimeError("segfault")

    session = rexec.run(["compute-0-0"], bad, RemoteEnvironment("u", 1, 1, "/"))
    assert session.processes[0].exit_code == 1
    assert session.processes[0].stderr == ["segfault"]
