"""Tests for PBS jobs bound to real machines (resolve wiring)."""

import pytest

from repro import build_cluster
from repro.core.tools import queue_cluster_reinstall, shoot_node
from repro.scheduler import JobState


@pytest.fixture
def sim():
    s = build_cluster(n_compute=3)
    s.integrate_all()
    s.frontend.maui.start()
    return s


def test_job_processes_appear_on_machines(sim):
    f = sim.frontend
    job = f.pbs.qsub("bruno", "gamess", nodes=2, walltime=500)
    f.maui.schedule_once()
    assert job.state is JobState.RUNNING
    for hostname in job.assigned_nodes:
        assert "gamess" in sim.machine(hostname).user_processes
    sim.env.run(until=job.done)
    for hostname in job.assigned_nodes:
        assert "gamess" not in sim.machine(hostname).user_processes


def test_node_death_fails_the_job(sim):
    f = sim.frontend
    job = f.pbs.qsub("bruno", "namd", nodes=2, walltime=10_000)
    f.maui.schedule_once()
    victim = sim.machine(job.assigned_nodes[0])
    sim.env.run(until=sim.env.now + 100)
    victim.power_off(hard=True)
    assert job.state is JobState.FAILED
    # the other node's process was reaped too
    other = sim.machine(job.assigned_nodes[1])
    assert "namd" not in other.user_processes
    # and both nodes return to the free pool
    from repro.scheduler import NodeState

    assert all(
        f.pbs.node_state(n) is NodeState.FREE for n in job.assigned_nodes
    )
    victim.power_on()
    sim.env.run(until=victim.wait_for_state(victim.state.UP))


def test_reinstalling_a_busy_node_is_visibly_destructive(sim):
    """The §5 claim has teeth: shooting a node under a job FAILS the job
    — which is exactly why upgrades go through the queue instead."""
    f = sim.frontend
    job = f.pbs.qsub("bruno", "amber", nodes=3, walltime=5_000)
    f.maui.schedule_once()
    victim = sim.machine(job.assigned_nodes[0])
    report = sim.env.run(until=shoot_node(f, victim))
    assert report.ok
    assert job.state is JobState.FAILED  # the careless path kills work


def test_queued_reinstall_never_fails_jobs(sim):
    """...whereas the queued campaign completes with zero failed jobs."""
    f = sim.frontend
    job = f.pbs.qsub("bruno", "nwchem", nodes=2, walltime=800)
    f.maui.schedule_once()
    campaign = queue_cluster_reinstall(f)
    sim.env.run(until=campaign.wait_event(sim.env))
    assert job.state is JobState.COMPLETE
    assert all(r.ok for r in campaign.reports)


def test_system_jobs_not_bound_to_machines(sim):
    """The reinstall job itself must not die when its node reboots."""
    f = sim.frontend
    campaign = queue_cluster_reinstall(f)
    sim.env.run(until=campaign.wait_event(sim.env))
    assert all(j.state is JobState.COMPLETE for j in campaign.jobs)
