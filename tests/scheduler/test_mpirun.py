"""Tests for interactive mpirun over REXEC (§4.1)."""

import pytest

from repro import build_cluster
from repro.scheduler import MpirunError, RemoteEnvironment, Signal


@pytest.fixture(scope="module")
def sim():
    s = build_cluster(n_compute=3)
    s.integrate_all()
    return s


RENV = RemoteEnvironment("bruno", 500, 500, "/home/bruno", {"OMP_NUM_THREADS": "1"})


def pi_worker(machine, proc):
    """A toy MPI program: each rank integrates a slice of pi."""
    rank = int(proc.env.variables["MPI_RANK"])
    nprocs = int(proc.env.variables["MPI_NPROCS"])
    n = 10_000
    s = sum(
        4.0 / (1.0 + ((i + 0.5) / n) ** 2)
        for i in range(rank, n, nprocs)
    )
    proc.stdout.append(f"rank {rank}/{nprocs} partial {s / n:.6f}")
    return 0


def test_mpirun_assigns_ranks_round_robin(sim):
    session = sim.frontend.mpirun.run(6, pi_worker, RENV, program="cpi")
    assert session.ok
    assert len(session.processes) == 6
    # 6 ranks over 3 nodes: each node hosts exactly 2
    hosts = [p.host for p in session.processes]
    assert all(hosts.count(f"compute-0-{i}") == 2 for i in range(3))
    ranks = sorted(int(p.env.variables["MPI_RANK"]) for p in session.processes)
    assert ranks == list(range(6))


def test_mpirun_partials_sum_to_pi(sim):
    session = sim.frontend.mpirun.run(4, pi_worker, RENV)
    total = sum(float(line.split()[-1]) for p in session.processes
                for line in p.stdout)
    assert total == pytest.approx(3.14159, abs=1e-3)


def test_mpirun_propagates_caller_environment(sim):
    seen = []

    def env_probe(machine, proc):
        seen.append((proc.env.cwd, proc.env.variables["OMP_NUM_THREADS"]))
        return 0

    sim.frontend.mpirun.run(2, env_probe, RENV)
    assert seen == [("/home/bruno", "1")] * 2


def test_mpirun_skips_down_nodes(sim):
    sim.nodes[1].power_off()
    try:
        session = sim.frontend.mpirun.run(4, pi_worker, RENV)
        hosts = {p.host for p in session.processes}
        assert "compute-0-1" not in hosts
        assert session.ok
    finally:
        sim.nodes[1].power_on()
        sim.env.run(until=sim.nodes[1].wait_for_state(sim.nodes[1].state.UP))


def test_mpirun_machinefile_restricts_placement(sim):
    session = sim.frontend.mpirun.run(
        4, pi_worker, RENV, machinefile=["compute-0-2"]
    )
    assert {p.host for p in session.processes} == {"compute-0-2"}


def test_mpirun_no_nodes_raises(sim):
    with pytest.raises(MpirunError, match="no up nodes"):
        sim.frontend.mpirun.run(2, pi_worker, RENV, machinefile=["ghost"])


def test_mpirun_bad_np(sim):
    with pytest.raises(MpirunError, match="-np"):
        sim.frontend.mpirun.run(0, pi_worker, RENV)


def test_mpirun_signal_forwarding(sim):
    """§4.1: 'a sophisticated signal handling system which provides
    remote forwarding of signals'."""

    def spinner(machine, proc):
        proc.stdout.append("spinning")
        return None  # still running

    session = sim.frontend.mpirun.run(3, spinner, RENV)
    n = session.forward_signal(Signal.SIGINT)
    assert n == 3
    assert all(p.exit_code == 130 for p in session.processes)


def test_mpirun_program_visible_then_reaped(sim):
    """The launched binary shows in the process table during execution
    (cluster-ps would see it) and is reaped afterwards."""
    observed = []

    def worker(machine, proc):
        observed.append(list(machine.user_processes))
        return 0

    sim.frontend.mpirun.run(3, worker, RENV, program="gamess.x")
    assert all("gamess.x" in snapshot for snapshot in observed)
    for node in sim.nodes:
        assert "gamess.x" not in node.user_processes
