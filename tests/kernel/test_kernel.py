"""Tests for module versioning, make rpm, and the Myrinet driver."""

import pytest

from repro.kernel import (
    GM_BUILD_SECONDS_AT_733MHZ,
    KernelConfig,
    KernelModule,
    ModuleVersionError,
    MyrinetDriver,
    RunningKernel,
    STOCK_KERNEL_VERSION,
    make_rpm,
)
from repro.rpm import BuildError, Package


def toolchain():
    return [
        Package("gcc", "2.96"),
        Package("make", "3.79.1"),
        Package("kernel-source", "2.4.9"),
    ]


# -- module versioning --------------------------------------------------------


def test_insmod_matching_version():
    k = RunningKernel("2.4.9")
    k.insmod(KernelModule("gm", "2.4.9"))
    assert k.is_loaded("gm")
    assert k.lsmod() == ["gm"]


def test_insmod_wrong_version_refused():
    k = RunningKernel("2.4.9-31")
    with pytest.raises(ModuleVersionError, match="built for 2.4.9"):
        k.insmod(KernelModule("gm", "2.4.9"))


def test_versioning_disabled_loads_anything():
    k = RunningKernel("2.4.9-31", module_versioning=False)
    k.insmod(KernelModule("gm", "2.4.2"))
    assert k.is_loaded("gm")


def test_double_insmod_refused():
    k = RunningKernel("2.4.9")
    k.insmod(KernelModule("gm", "2.4.9"))
    with pytest.raises(ModuleVersionError, match="already loaded"):
        k.insmod(KernelModule("gm", "2.4.9"))


def test_rmmod():
    k = RunningKernel("2.4.9")
    k.insmod(KernelModule("gm", "2.4.9"))
    mod = k.rmmod("gm")
    assert mod.name == "gm"
    assert not k.is_loaded("gm")
    with pytest.raises(ModuleVersionError):
        k.rmmod("gm")


# -- make rpm -------------------------------------------------------------------


def test_make_rpm_produces_kernel_package():
    cfg = KernelConfig(release="meteor.1")
    pkg = make_rpm(cfg, toolchain())
    assert pkg.name == "kernel"
    assert pkg.version == STOCK_KERNEL_VERSION
    assert pkg.release == "meteor.1"
    assert "SMP" in pkg.summary


def test_make_rpm_needs_toolchain():
    with pytest.raises(BuildError, match="kernel-source"):
        make_rpm(KernelConfig(), [Package("gcc", "2.96")])


def test_kernel_config_full_version():
    assert KernelConfig("2.4.18", "7.x.1").full_version == "2.4.18-7.x.1"


# -- Myrinet driver ---------------------------------------------------------------


def test_gm_source_package():
    src = MyrinetDriver().source_package()
    assert src.is_source
    assert src.name == "myrinet-gm"


def test_gm_rebuild_embeds_kernel_version():
    pkg, module = MyrinetDriver().rebuild("2.4.9-31", toolchain())
    assert pkg.version == "1.4_2.4.9-31"
    assert module.built_for == "2.4.9-31"
    # And the produced module only loads on that kernel:
    RunningKernel("2.4.9-31").insmod(module)
    with pytest.raises(ModuleVersionError):
        RunningKernel("2.4.9-32").insmod(module)


def test_gm_rebuild_needs_kernel_source():
    with pytest.raises(BuildError):
        MyrinetDriver().rebuild("2.4.9", [Package("gcc", "2.96")])


def test_gm_build_time_scales_with_cpu():
    drv = MyrinetDriver()
    assert drv.build_seconds(1.0) == GM_BUILD_SECONDS_AT_733MHZ
    assert drv.build_seconds(2.0) == GM_BUILD_SECONDS_AT_733MHZ / 2
    with pytest.raises(ValueError):
        drv.build_seconds(0)


def test_gm_module_loads_without_reboot_semantics():
    """Paper: the GM module can be compiled, installed, and started
    without incurring a reboot — i.e. insmod on the *running* kernel."""
    running = RunningKernel("2.4.9")
    _, module = MyrinetDriver().rebuild(running.version, toolchain())
    running.insmod(module)  # no reboot needed
    assert running.is_loaded("gm")
