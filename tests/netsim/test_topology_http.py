"""Tests for the topology and HTTP layers."""

import pytest

from repro.netsim import (
    FAST_ETHERNET,
    GIGABIT_ETHERNET,
    MBIT,
    Environment,
    HostDown,
    HttpError,
    HttpServer,
    LoadBalancer,
    Network,
    TransferAborted,
)


@pytest.fixture
def net():
    env = Environment()
    network = Network(env)
    return env, network


def test_attach_and_lookup(net):
    _, network = net
    network.attach("frontend-0", FAST_ETHERNET)
    assert network.host("frontend-0").speed == FAST_ETHERNET
    assert network.has_host("frontend-0")
    assert not network.has_host("compute-0-0")


def test_duplicate_host_rejected(net):
    _, network = net
    network.attach("a")
    with pytest.raises(ValueError):
        network.attach("a")


def test_unknown_host_lookup_raises(net):
    _, network = net
    with pytest.raises(KeyError, match="nonesuch"):
        network.host("nonesuch")


def test_send_between_hosts_bottlenecked_by_slower_nic(net):
    env, network = net
    network.attach("server", GIGABIT_ETHERNET)
    network.attach("client", FAST_ETHERNET)
    flow = network.send("server", "client", FAST_ETHERNET * 10)
    env.run(until=flow.done)
    assert env.now == pytest.approx(10.0)


def test_host_down_blocks_send(net):
    _, network = net
    network.attach("a")
    network.attach("b")
    network.set_host_up("b", False)
    assert not network.reachable("a", "b")
    with pytest.raises(HostDown):
        network.send("a", "b", 100)


def test_taking_host_down_aborts_inflight(net):
    env, network = net
    network.attach("a")
    network.attach("b")
    flow = network.send("a", "b", FAST_ETHERNET * 100)

    def chaos():
        yield env.timeout(1.0)
        network.set_host_up("b", False)

    def waiter():
        with pytest.raises(TransferAborted):
            yield flow.done
        return True

    env.process(chaos())
    assert env.run(until=env.process(waiter()))


def test_concurrent_clients_share_server_uplink(net):
    env, network = net
    network.attach("server", FAST_ETHERNET)
    for i in range(4):
        network.attach(f"c{i}", FAST_ETHERNET)
    flows = [
        network.send("server", f"c{i}", FAST_ETHERNET * 2.5) for i in range(4)
    ]
    env.run()
    # 4 clients split the server tx link: each gets 1/4 of it.
    assert all(f.finished_at == pytest.approx(10.0) for f in flows)


def test_nic_upgrade_changes_speed(net):
    env, network = net
    host = network.attach("server", FAST_ETHERNET)
    host.set_speed(GIGABIT_ETHERNET)
    network.attach("client", GIGABIT_ETHERNET)
    flow = network.send("server", "client", GIGABIT_ETHERNET * 3)
    env.run(until=flow.done)
    assert env.now == pytest.approx(3.0)


# -- HTTP -------------------------------------------------------------------


def make_http():
    env = Environment()
    network = Network(env)
    network.attach("www", FAST_ETHERNET)
    network.attach("node", FAST_ETHERNET)
    server = HttpServer(network, "www", efficiency=0.7)
    return env, network, server


def test_http_get_static_document():
    env, _, server = make_http()
    server.publish("/dist/pkg.rpm", 7 * MBIT)  # < 1s at service speed
    resp = env.run(until=server.get("node", "/dist/pkg.rpm"))
    assert resp.status == 200
    assert resp.size == 7 * MBIT
    assert server.requests_served == 1
    assert server.bytes_served == 7 * MBIT


def test_http_service_link_caps_payload_rate():
    env, _, server = make_http()
    size = FAST_ETHERNET * 7  # 7 wire-seconds of bytes
    server.publish("/big", size)
    env.run(until=server.get("node", "/big"))
    # At 70% efficiency the payload takes 7/0.7 = 10s.
    assert env.now == pytest.approx(10.0)


def test_http_404():
    env, _, server = make_http()

    def go():
        with pytest.raises(HttpError, match="404"):
            yield server.get("node", "/missing")
        return True

    assert env.run(until=env.process(go()))


def test_http_cgi_handler_returns_body():
    env, _, server = make_http()
    server.register_cgi(
        "/install/kickstart.cgi",
        lambda client, path: (f"# kickstart for {client}", 4096),
    )
    resp = env.run(until=server.get("node", "/install/kickstart.cgi"))
    assert resp.body == "# kickstart for node"
    assert resp.size == 4096


def test_http_server_down_returns_503():
    env, _, server = make_http()
    server.publish("/x", 10)
    server.running = False

    def go():
        with pytest.raises(HttpError, match="503"):
            yield server.get("node", "/x")
        return True

    assert env.run(until=env.process(go()))


def test_http_unreachable_client_504():
    env, network, server = make_http()
    server.publish("/x", 10)
    network.set_host_up("node", False)

    def go():
        with pytest.raises(HttpError, match="504"):
            yield server.get("node", "/x")
        return True

    assert env.run(until=env.process(go()))


def test_http_path_normalisation():
    env, _, server = make_http()
    server.publish("dist/base.rpm", 100)
    assert server.has_document("/dist/base.rpm")
    resp = env.run(until=server.get("node", "//dist/base.rpm/"))
    assert resp.status == 200


def test_publish_tree_and_unpublish():
    _, _, server = make_http()
    server.publish_tree({"/a": 1, "/b": 2}, prefix="/dist")
    assert server.has_document("/dist/a")
    server.unpublish("/dist/a")
    assert not server.has_document("/dist/a")


def test_load_balancer_round_robin_doubles_throughput():
    env = Environment()
    network = Network(env)
    servers = []
    for i in range(2):
        network.attach(f"www{i}", FAST_ETHERNET)
        s = HttpServer(network, f"www{i}", efficiency=1.0)
        s.publish("/pkg", FAST_ETHERNET * 10)
        servers.append(s)
    for i in range(2):
        network.attach(f"c{i}", FAST_ETHERNET)
    lb = LoadBalancer(servers)
    p0 = lb.get("c0", "/pkg")
    p1 = lb.get("c1", "/pkg")
    env.run()
    # Each client got a dedicated backend: both finish at t=10, not t=20.
    assert env.now == pytest.approx(10.0)
    assert servers[0].requests_served == 1
    assert servers[1].requests_served == 1


def test_load_balancer_skips_dead_backend():
    env = Environment()
    network = Network(env)
    servers = []
    for i in range(2):
        network.attach(f"www{i}", FAST_ETHERNET)
        s = HttpServer(network, f"www{i}")
        s.publish("/pkg", 1000)
        servers.append(s)
    network.attach("client", FAST_ETHERNET)
    servers[0].running = False
    lb = LoadBalancer(servers)
    resp = env.run(until=lb.get("client", "/pkg"))
    assert resp.server == "www1"


def test_load_balancer_requires_backends():
    with pytest.raises(ValueError):
        LoadBalancer([])


def make_lb_pair():
    from repro.netsim import AdmissionConfig

    env = Environment()
    network = Network(env)
    servers = []
    for i in range(2):
        network.attach(f"www{i}", FAST_ETHERNET)
        s = HttpServer(network, f"www{i}")
        s.publish("/pkg", 1000)
        servers.append(s)
    network.attach("c0", FAST_ETHERNET)
    network.attach("c1", FAST_ETHERNET)
    return env, network, servers, AdmissionConfig


def test_load_balancer_fails_over_on_mid_request_503():
    """A backend that sheds the request (not merely down) is retried."""
    env, _, servers, AdmissionConfig = make_lb_pair()
    # www0 accepts one connection and queues nothing: the LB's request
    # reaches _do_get and is shed with a live 503.
    servers[0].configure_admission(
        AdmissionConfig(max_concurrent=1, queue_limit=0)
    )
    servers[0].publish("/slow", FAST_ETHERNET * 60)
    occupier = servers[0].get("c1", "/slow")
    lb = LoadBalancer(servers)
    resp = env.run(until=lb.get("c0", "/pkg"))
    assert resp.server == "www1"
    assert servers[0].rejected == 1
    env.run(until=occupier)


def test_load_balancer_does_not_fail_over_on_4xx():
    env, _, servers, _ = make_lb_pair()

    def go():
        with pytest.raises(HttpError, match="404"):
            yield LoadBalancer(servers).get("c0", "/missing")
        return True

    assert env.run(until=env.process(go()))


def test_load_balancer_fast_fails_when_every_backend_is_avoided():
    env, _, servers, _ = make_lb_pair()
    lb = LoadBalancer(servers)
    lb.should_avoid = lambda server: True

    def go():
        with pytest.raises(HttpError, match="avoided"):
            yield lb.get("c0", "/pkg")
        return True

    assert env.run(until=env.process(go()))
    assert all(s.requests_served == 0 for s in servers)


def make_lb_farm(n=3):
    env = Environment()
    network = Network(env)
    servers = []
    for i in range(n):
        network.attach(f"www{i}", FAST_ETHERNET)
        s = HttpServer(network, f"www{i}")
        s.publish("/pkg", 1000)
        servers.append(s)
    network.attach("c0", FAST_ETHERNET)
    return env, network, servers


def test_load_balancer_add_backend_joins_the_rotation():
    env, network, servers = make_lb_farm(n=2)
    lb = LoadBalancer(servers[:1])
    env.run(until=lb.get("c0", "/pkg"))
    lb.add_backend(servers[1])
    picked = [env.run(until=lb.get("c0", "/pkg")).server for _ in range(3)]
    # the new backend joins the tail of the rotation and gets its share
    assert picked == ["www0", "www1", "www0"]
    assert servers[1].requests_served == 1
    with pytest.raises(ValueError, match="already"):
        lb.add_backend(servers[1])


def test_load_balancer_remove_backend_validation():
    env, network, servers = make_lb_farm(n=2)
    lb = LoadBalancer(servers[:1])
    with pytest.raises(ValueError, match="not registered"):
        lb.remove_backend(servers[1])
    with pytest.raises(ValueError, match="last backend"):
        lb.remove_backend(servers[0])


def test_load_balancer_remove_keeps_rotation_fair():
    """Removing a backend behind the cursor must not skip the next one."""
    env, _, servers = make_lb_farm(n=3)
    lb = LoadBalancer(servers)
    env.run(until=lb.get("c0", "/pkg"))  # www0; cursor now at www1
    lb.remove_backend(servers[0])
    picked = []
    for _ in range(4):
        picked.append(env.run(until=lb.get("c0", "/pkg")).server)
    # www1 and www2 alternate, starting from the undisturbed cursor
    assert picked == ["www1", "www2", "www1", "www2"]


def test_load_balancer_skips_do_not_consume_failover_attempts():
    """An avoided/dead backend is skipped, not tried: with N-1 of N
    backends unavailable the single live one still serves every request."""
    env, _, servers = make_lb_farm(n=3)
    servers[0].running = False
    lb = LoadBalancer(servers)
    lb.should_avoid = lambda server: server.host == "www2"
    for _ in range(4):
        resp = env.run(until=lb.get("c0", "/pkg"))
        assert resp.server == "www1"
    assert lb.dispatches == 4
    # skipped backends ahead of www1 in each request's rotation:
    # starts 0,1,2,0 -> 1 + 0 + 2 + 1 skips, none of them dispatched
    assert lb.skips == 4
    assert servers[2].requests_served == 0
