"""Scaling-path tests: incremental fair-share vs the full recompute.

The incremental allocator must be *indistinguishable* from the legacy
full recompute — not approximately, but bit-for-bit: crediting,
completion sweeps and wakeup scheduling share one code path, and the
full mode merely refills components the incremental mode proves
untouched.  The differential tests here drive both modes through the
same randomized workload and assert exact float equality.
"""

import random

import pytest

from repro.netsim import (
    Environment,
    Event,
    Flow,
    FlowNetwork,
    Link,
    Process,
    Timeout,
)
from repro.netsim.engine import Environment as _Env
from repro.telemetry.tracer import Span


# -- differential: incremental vs full recompute --------------------------

def _random_script(seed, n_links=8, n_ops=80):
    """A deterministic op schedule: starts, cancels, capacity changes."""
    rng = random.Random(("netsim-diff", seed).__repr__())
    caps = [rng.choice([50.0, 100.0, 200.0, None]) for _ in range(n_links)]
    if all(c is None for c in caps):
        caps[0] = 100.0
    ops = []
    t = 0.0
    n_started = 0
    for _ in range(n_ops):
        t += rng.uniform(0.05, 2.5)
        roll = rng.random()
        if roll < 0.6 or n_started == 0:
            n = rng.randint(1, 3)
            idxs = sorted(rng.sample(range(n_links), n))
            size = rng.uniform(20.0, 800.0)
            max_rate = rng.choice([None, None, None, 15.0, 60.0])
            ops.append((t, "start", (tuple(idxs), size, max_rate)))
            n_started += 1
        elif roll < 0.8:
            ops.append((t, "cancel", (rng.randrange(n_started),)))
        else:
            j = rng.randrange(n_links)
            ops.append((t, "setcap", (j, rng.choice([25.0, 75.0, 150.0]))))
    return caps, ops


def _run_world(incremental, caps, ops):
    env = Environment()
    net = FlowNetwork(env, incremental=incremental)
    links = [Link(f"l{i}", c) for i, c in enumerate(caps)]
    created = []
    snapshots = []

    def driver():
        for at, op, params in ops:
            if at > env.now:
                yield env.timeout(at - env.now)
            if op == "start":
                idxs, size, max_rate = params
                flow = net.transfer(
                    [links[i] for i in idxs],
                    size,
                    max_rate=max_rate,
                    label=f"f{len(created)}",
                )
                flow.done.callbacks.append(lambda _ev: None)  # defuse failures
                created.append(flow)
            elif op == "cancel":
                (j,) = params
                if created[j].finished_at is None:
                    created[j].cancel()
            else:
                j, cap = params
                links[j].capacity = cap
                net.recompute([links[j]])
            snapshots.append((env.now, tuple(f.rate for f in created)))

    env.process(driver())
    env.run()
    outcomes = [(f.label, f.finished_at, f.remaining) for f in created]
    carried = [link.bytes_carried for link in links]
    return outcomes, snapshots, carried, net._bytes_moved


@pytest.mark.parametrize("seed", range(6))
def test_incremental_matches_full_recompute_exactly(seed):
    caps, ops = _random_script(seed)
    incr = _run_world(True, caps, ops)
    full = _run_world(False, caps, ops)
    # Exact equality, not approx: completion instants, every mid-run rate
    # snapshot, per-link byte counters, and the global moved total.
    assert incr == full


# -- satellite 1: completions must not leave stale allocation state -------

def test_chained_transfer_after_completion_gets_fair_share():
    """A new transfer started from a ``done`` callback at the completion
    timestamp must be allocated against the *live* flow set."""
    env = Environment()
    net = FlowNetwork(env)
    link = Link("l", 100.0)
    chained = []

    f1 = net.transfer([link], 100.0, label="f1")
    f2 = net.transfer([link], 200.0, label="f2")
    f1.done.callbacks.append(
        lambda _ev: chained.append(net.transfer([link], 300.0, label="chained"))
    )
    # Run through t=2.0 so the done callback itself dispatches.
    env.run(until=2.0)
    assert f1.finished_at == pytest.approx(2.0)
    assert f2.rate == 50.0 and chained[0].rate == 50.0
    env.run()
    assert f2.finished_at == pytest.approx(4.0)
    assert chained[0].finished_at == pytest.approx(6.0)


def test_reentrant_completion_rebuilds_membership(monkeypatch):
    """A transfer started *synchronously inside* completion handling
    (mid-reallocation) must still get a correct rate: the allocator
    detects the reentry and redoes the fill from live membership."""
    env = Environment()
    net = FlowNetwork(env)
    link = Link("l", 100.0)
    chained = []
    orig_complete = FlowNetwork._complete

    def complete_and_chain(self, flow):
        orig_complete(self, flow)
        if not chained:
            chained.append(self.transfer([link], 300.0, label="chained"))

    monkeypatch.setattr(FlowNetwork, "_complete", complete_and_chain)
    f1 = net.transfer([link], 100.0, label="f1")
    f2 = net.transfer([link], 200.0, label="f2")
    env.run(until=f1.done)
    # f1 finished at t=2; f2 (100 left) and the chained flow split the link.
    assert f2.rate == 50.0 and chained[0].rate == 50.0
    env.run()
    assert f2.finished_at == pytest.approx(4.0)
    assert chained[0].finished_at == pytest.approx(6.0)
    assert f2.remaining == 0.0 and chained[0].remaining == 0.0


# -- satellite 3: wakeup storms must not grow the event heap --------------

def test_recompute_storm_keeps_event_queue_bounded():
    """Fault flapping (capacity bouncing under live flows) reschedules
    the completion wakeup constantly; lazy cancellation + compaction
    must keep dead timers a bounded fraction of the queue."""
    env = Environment()
    net = FlowNetwork(env)
    link = Link("l", 100.0)
    flows = [net.transfer([link], 1e6, label=f"f{i}") for i in range(5)]

    def flapper():
        for i in range(2000):
            link.capacity = 80.0 if i % 2 else 100.0
            net.recompute([link])
            yield env.timeout(0.01)

    env.process(flapper())
    env.run(until=25.0)
    assert all(f.finished_at is None for f in flows)  # still in flight
    assert len(env._queue) < 200  # 2000 reschedules, bounded residue
    # The completion heap is lazily compacted on the same principle.
    assert len(net._eta_heap) <= max(64, 4 * (len(net._flows) + 1)) + 1


def test_flows_through_matches_path_scan():
    env = Environment()
    net = FlowNetwork(env)
    a, b = Link("a", 100.0), Link("b", 100.0)
    fa = net.transfer([a], 1e3, label="fa")
    fab = net.transfer([a, b], 1e3, label="fab")
    fb = net.transfer([b], 1e3, label="fb")
    for link in (a, b):
        scan = [f for f in net._flows if link in f.path]
        assert net.flows_through(link) == scan  # same members, same order
    fab.cancel()
    assert net.flows_through(a) == [fa]
    assert net.flows_through(b) == [fb]


# -- hot classes stay dict-free -------------------------------------------

@pytest.mark.parametrize(
    "cls", [Event, Timeout, Process, _Env, Flow, Link, FlowNetwork, Span]
)
def test_hot_classes_have_no_instance_dict(cls):
    # 10k nodes mean millions of these; a single slotless class in the
    # MRO silently re-grows a per-instance __dict__.
    offenders = [c.__name__ for c in cls.__mro__ if "__dict__" in vars(c)]
    assert not offenders
