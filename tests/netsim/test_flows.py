"""Unit and property tests for the max-min fair flow network."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim import Environment, Flow, FlowNetwork, Link, TransferAborted


def make_net():
    env = Environment()
    return env, FlowNetwork(env)


def test_single_flow_gets_full_capacity():
    env, net = make_net()
    link = Link("l", 100.0)
    flow = net.transfer([link], 1000.0)
    assert flow.rate == pytest.approx(100.0)
    env.run(until=flow.done)
    assert env.now == pytest.approx(10.0)
    assert flow.finished_at == pytest.approx(10.0)


def test_two_flows_share_equally():
    env, net = make_net()
    link = Link("l", 100.0)
    f1 = net.transfer([link], 500.0)
    f2 = net.transfer([link], 500.0)
    assert f1.rate == pytest.approx(50.0)
    assert f2.rate == pytest.approx(50.0)
    env.run()
    assert f1.finished_at == pytest.approx(10.0)
    assert f2.finished_at == pytest.approx(10.0)


def test_rate_cap_leaves_bandwidth_for_others():
    env, net = make_net()
    link = Link("l", 100.0)
    capped = net.transfer([link], 1000.0, max_rate=10.0)
    fast = net.transfer([link], 1000.0)
    assert capped.rate == pytest.approx(10.0)
    assert fast.rate == pytest.approx(90.0)
    env.run()
    assert capped.finished_at == pytest.approx(100.0)


def test_departure_redistributes_bandwidth():
    env, net = make_net()
    link = Link("l", 100.0)
    short = net.transfer([link], 100.0)  # finishes at t=2 (50 B/s share)
    long = net.transfer([link], 500.0)
    env.run(until=short.done)
    assert env.now == pytest.approx(2.0)
    # long moved 100 bytes so far; remaining 400 at the full 100 B/s.
    assert long.rate == pytest.approx(100.0)
    env.run(until=long.done)
    assert env.now == pytest.approx(6.0)


def test_arrival_slows_existing_flow():
    env, net = make_net()
    link = Link("l", 100.0)
    first = net.transfer([link], 1000.0)

    def late():
        yield env.timeout(5.0)
        second = net.transfer([link], 250.0)
        yield second.done

    env.process(late())
    env.run(until=first.done)
    # first: 500B alone in 5s, then 500B at 50 B/s while second runs
    # second finishes at t=10, first has 250 left, full rate again.
    assert env.now == pytest.approx(12.5)


def test_flows_through_selects_by_link():
    env, net = make_net()
    shared = Link("uplink", 100.0)
    a = Link("a", 100.0)
    b = Link("b", 100.0)
    on_a = net.transfer([shared, a], 1000.0)
    on_b = net.transfer([shared, b], 2000.0)
    assert set(net.flows_through(shared)) == {on_a, on_b}
    assert net.flows_through(a) == [on_a]
    assert net.flows_through(b) == [on_b]
    env.run(until=on_a.done)
    # the finished flow drops out of every link's view
    assert net.flows_through(a) == []
    assert net.flows_through(shared) == [on_b]


def test_multihop_bottleneck_is_min_link():
    env, net = make_net()
    fat = Link("fat", 1000.0)
    thin = Link("thin", 10.0)
    flow = net.transfer([fat, thin], 100.0)
    assert flow.rate == pytest.approx(10.0)
    env.run()
    assert flow.finished_at == pytest.approx(10.0)


def test_unconstrained_link_is_transparent():
    env, net = make_net()
    backplane = Link("switch", None)
    nic = Link("nic", 50.0)
    flow = net.transfer([nic, backplane], 500.0)
    assert flow.rate == pytest.approx(50.0)
    env.run()
    assert flow.finished_at == pytest.approx(10.0)


def test_fully_unconstrained_flow_completes_instantly():
    env, net = make_net()
    backplane = Link("switch", None)
    flow = net.transfer([backplane], 10_000.0)
    env.run(until=flow.done)
    assert env.now == pytest.approx(0.0)


def test_zero_byte_transfer_completes_immediately():
    env, net = make_net()
    link = Link("l", 10.0)
    flow = net.transfer([link], 0.0)
    assert flow.done.triggered
    assert flow.finished_at == env.now


def test_cancel_aborts_with_exception():
    env, net = make_net()
    link = Link("l", 100.0)
    flow = net.transfer([link], 1000.0, label="victim")

    def canceller():
        yield env.timeout(3.0)
        flow.cancel()

    def waiter():
        with pytest.raises(TransferAborted):
            yield flow.done
        return env.now

    env.process(canceller())
    assert env.run(until=env.process(waiter())) == pytest.approx(3.0)
    assert net.active_flows == 0


def test_cancel_frees_bandwidth():
    env, net = make_net()
    link = Link("l", 100.0)
    victim = net.transfer([link], 10_000.0)
    survivor = net.transfer([link], 500.0)

    def canceller():
        yield env.timeout(2.0)
        victim.cancel()

    env.process(canceller())

    def waiter():
        with pytest.raises(TransferAborted):
            yield victim.done

    env.process(waiter())
    env.run(until=survivor.done)
    # survivor: 100B in the first 2s at 50B/s, then 400B at 100 B/s.
    assert env.now == pytest.approx(6.0)


def test_crossing_flows_do_not_contend():
    env, net = make_net()
    a, b = Link("a", 100.0), Link("b", 100.0)
    f1 = net.transfer([a], 1000.0)
    f2 = net.transfer([b], 1000.0)
    assert f1.rate == pytest.approx(100.0)
    assert f2.rate == pytest.approx(100.0)


def test_three_way_maxmin_with_shared_middle():
    # Two flows share link m; a third uses only link a.
    env, net = make_net()
    a = Link("a", 100.0)
    m = Link("m", 60.0)
    f1 = net.transfer([a, m], 1e9)
    f2 = net.transfer([m], 1e9)
    f3 = net.transfer([a], 1e9)
    # m splits 30/30; a then has 70 left for f3.
    assert f1.rate == pytest.approx(30.0)
    assert f2.rate == pytest.approx(30.0)
    assert f3.rate == pytest.approx(70.0)


def test_bytes_moved_accounting():
    env, net = make_net()
    link = Link("l", 100.0)
    net.transfer([link], 300.0)
    net.transfer([link], 300.0)
    env.run()
    assert net.bytes_moved == pytest.approx(600.0)


def test_negative_size_rejected():
    _, net = make_net()
    with pytest.raises(ValueError):
        net.transfer([Link("l", 1.0)], -5)


def test_bad_max_rate_rejected():
    _, net = make_net()
    with pytest.raises(ValueError):
        net.transfer([Link("l", 1.0)], 5, max_rate=0)


def test_bad_link_capacity_rejected():
    with pytest.raises(ValueError):
        Link("l", 0)
    with pytest.raises(ValueError):
        Link("l", -3)


# ---------------------------------------------------------------------------
# Property-based invariants of the max-min allocation
# ---------------------------------------------------------------------------

flow_spec = st.tuples(
    st.integers(min_value=0, max_value=4),  # which links the flow crosses (bitmask-ish)
    st.one_of(st.none(), st.floats(min_value=0.5, max_value=50.0)),  # max_rate
)


@settings(max_examples=200, deadline=None)
@given(
    caps=st.lists(st.floats(min_value=1.0, max_value=100.0), min_size=1, max_size=4),
    flows=st.lists(flow_spec, min_size=1, max_size=8),
)
def test_maxmin_invariants(caps, flows):
    """No link oversubscribed; no flow exceeds its cap; allocation is
    work-conserving (every flow is limited by *something*)."""
    env = Environment()
    net = FlowNetwork(env)
    links = [Link(f"l{i}", c) for i, c in enumerate(caps)]
    live: list[Flow] = []
    for which, cap in flows:
        path = [links[which % len(links)]]
        if which % 2:
            path.append(links[(which + 1) % len(links)])
        live.append(net.transfer(path, 1e12, max_rate=cap))

    # Invariant 1: link capacities respected.
    for link in links:
        used = sum(f.rate for f in live if link in f.path)
        assert used <= link.capacity * (1 + 1e-6)

    for f in live:
        # Invariant 2: per-flow caps respected; rates non-negative.
        assert f.rate >= 0
        if f.max_rate is not None:
            assert f.rate <= f.max_rate * (1 + 1e-6)
        # Invariant 3 (work conservation / Pareto efficiency): each flow is
        # either at its own cap or crosses at least one saturated link.
        at_cap = f.max_rate is not None and f.rate >= f.max_rate * (1 - 1e-6)
        saturated = any(
            sum(g.rate for g in live if link in g.path) >= link.capacity * (1 - 1e-6)
            for link in f.path
        )
        assert at_cap or saturated


@settings(max_examples=100, deadline=None)
@given(
    sizes=st.lists(
        st.floats(min_value=1.0, max_value=1e6), min_size=1, max_size=10
    ),
    cap=st.floats(min_value=1.0, max_value=1e5),
)
def test_shared_link_completion_conserves_work(sizes, cap):
    """Total completion time of concurrent flows on one link is exactly
    total_bytes / capacity (the link never idles while work remains)."""
    env = Environment()
    net = FlowNetwork(env)
    link = Link("l", cap)
    flows = [net.transfer([link], s) for s in sizes]
    env.run()
    assert all(f.done.triggered for f in flows)
    expect = sum(sizes) / cap
    assert env.now == pytest.approx(expect, rel=1e-6)


# -- full-recompute mode (kept for differential testing) --------------------

def make_full_net():
    env = Environment()
    return env, FlowNetwork(env, incremental=False)


def test_full_mode_two_flows_share_equally():
    env, net = make_full_net()
    link = Link("l", 100.0)
    f1 = net.transfer([link], 500.0)
    f2 = net.transfer([link], 500.0)
    assert f1.rate == pytest.approx(50.0)
    assert f2.rate == pytest.approx(50.0)
    env.run()
    assert f1.finished_at == f2.finished_at == pytest.approx(10.0)


def test_full_mode_departure_redistributes():
    env, net = make_full_net()
    link = Link("l", 100.0)
    short = net.transfer([link], 100.0)
    long = net.transfer([link], 500.0)
    env.run(until=short.done)
    assert long.rate == pytest.approx(100.0)
    env.run(until=long.done)
    assert env.now == pytest.approx(6.0)


def test_full_mode_refills_untouched_components():
    # Two disjoint links: a change on one must still leave the other's
    # flow correct (full mode refills it; rates are reproduced exactly).
    env, net = make_full_net()
    a, b = Link("a", 100.0), Link("b", 40.0)
    fa = net.transfer([a], 1000.0)
    fb = net.transfer([b], 1000.0)
    assert (fa.rate, fb.rate) == (100.0, 40.0)
    fa2 = net.transfer([a], 1000.0)  # dirties only link a
    assert fa.rate == fa2.rate == 50.0
    assert fb.rate == 40.0


def test_incremental_change_preserves_other_components_rates():
    env, net = make_net()
    a, b = Link("a", 100.0), Link("b", 40.0)
    fa = net.transfer([a], 1000.0)
    fb = net.transfer([b], 1000.0)
    fa2 = net.transfer([a], 1000.0)
    # Incremental mode never even visited fb's component.
    assert fa.rate == fa2.rate == 50.0
    assert fb.rate == 40.0
    env.run()
    assert fb.finished_at == pytest.approx(25.0)
