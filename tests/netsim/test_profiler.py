"""Engine self-profiler: counts, attribution, ambient opt-in, zero overhead."""

import pytest

from repro import build_cluster
from repro.netsim import (
    Environment,
    ProfiledEnvironment,
    ProfileOptions,
    SimulationError,
    profiled,
)
from repro.netsim import engine as _engine


def drive(env, n=5, dt=1.0):
    def ticker():
        for _ in range(n):
            yield env.timeout(dt)

    env.process(ticker())
    env.run()
    return env


def test_profiled_env_counts_events_and_heap_traffic():
    env = drive(ProfiledEnvironment())
    prof = env.profile
    assert prof.events_dispatched == env.events_dispatched
    assert prof.heap_pops == prof.heap_pushes > 0
    assert prof.sim_seconds == pytest.approx(5.0)


def test_profiled_env_simulates_identically_to_plain():
    """Profiling must observe, never perturb: same clock, same event
    count, same sequence numbers."""
    plain = drive(Environment(), n=7, dt=0.5)
    prof = drive(ProfiledEnvironment(), n=7, dt=0.5)
    assert prof.now == plain.now
    assert prof.events_dispatched == plain.events_dispatched
    assert repr(prof._seq) == repr(plain._seq)  # same next sequence number


def test_by_site_attributes_wall_time_to_the_generator():
    env = drive(ProfiledEnvironment())
    sites = list(env.profile.by_site)
    assert any(site.endswith(":ticker") for site in sites)
    calls, wall = env.profile.by_site[
        next(s for s in sites if s.endswith(":ticker"))
    ]
    assert calls >= 5 and wall >= 0.0


def test_by_site_off_skips_wall_timing():
    env = drive(ProfiledEnvironment(profile=ProfileOptions(by_site=False)))
    assert env.profile.by_site == {}
    assert env.profile.callback_wall_s == 0.0
    assert env.profile.events_dispatched > 0


def test_timeout_batch_counted_in_bulk():
    env = ProfiledEnvironment()
    env.timeout_batch([1.0, 2.0, 3.0])
    assert env.profile.timeout_batches == 1
    assert env.profile.heap_pushes == 3


def test_step_on_empty_queue_still_raises():
    with pytest.raises(SimulationError):
        ProfiledEnvironment().step()


def test_run_until_event_and_deadline_match_base_semantics():
    env = ProfiledEnvironment()
    t = env.timeout(2.0, value="done")
    assert env.run(until=t) == "done"
    env.run(until=10.0)
    assert env.now == 10.0


def test_plain_environment_carries_no_profiler():
    env = Environment()
    assert type(env) is Environment
    assert not hasattr(env, "profile")


def test_profiled_context_swaps_internally_built_environments():
    with profiled() as session:
        sim = build_cluster(n_compute=1)
        sim.integrate_all()
    assert len(session.envs) == 1
    assert isinstance(sim.env, ProfiledEnvironment)
    report = session.profilers[0].report()
    assert report["events_dispatched"] > 0
    assert report["fair_share_refills"] > 0  # FlowNetwork self-registered
    assert "engine profile:" in session.render()
    # the ambient option does not leak past the block
    assert _engine._AMBIENT_PROFILE is None
    assert type(Environment()) is Environment


def test_profiled_render_lists_hottest_sites():
    with profiled() as session:
        sim = build_cluster(n_compute=1)
        sim.integrate_all()
    text = session.render(top=3)
    assert "hottest callback sites" in text
    assert "src/repro/" in text


def test_sanitizer_wins_over_ambient_profile():
    """When both ambient options are set the sanitizer's subclass is
    constructed — its diagnostics outrank profiling."""
    from repro.analysis import sanitized

    with profiled():
        with sanitized():
            env = Environment()
            assert type(env).__name__ == "SanitizedEnvironment"


def test_profile_session_empty_render():
    with profiled() as session:
        pass
    assert session.render() == "engine profile: no environments were built"
