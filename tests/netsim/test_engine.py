"""Unit tests for the discrete-event engine."""

import pytest

from repro.netsim import (
    AllOf,
    AnyOf,
    Environment,
    Interrupt,
    SimulationError,
)


def test_timeout_advances_clock():
    env = Environment()
    log = []

    def proc():
        yield env.timeout(5.0)
        log.append(env.now)
        yield env.timeout(2.5)
        log.append(env.now)

    env.process(proc())
    env.run()
    assert log == [5.0, 7.5]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1.0)


def test_process_return_value():
    env = Environment()

    def worker():
        yield env.timeout(1)
        return 42

    proc = env.process(worker())
    assert env.run(until=proc) == 42


def test_process_waits_on_process():
    env = Environment()
    order = []

    def inner():
        yield env.timeout(3)
        order.append("inner")
        return "payload"

    def outer():
        value = yield env.process(inner())
        order.append("outer")
        return value

    result = env.run(until=env.process(outer()))
    assert result == "payload"
    assert order == ["inner", "outer"]


def test_events_fire_in_time_order_with_fifo_ties():
    env = Environment()
    seen = []

    def make(tag, delay):
        def p():
            yield env.timeout(delay)
            seen.append(tag)

        return p

    for tag, delay in [("a", 2), ("b", 1), ("c", 2), ("d", 0)]:
        env.process(make(tag, delay)())
    env.run()
    assert seen == ["d", "b", "a", "c"]


def test_run_until_deadline_stops_midway():
    env = Environment()
    seen = []

    def p():
        for _ in range(10):
            yield env.timeout(1)
            seen.append(env.now)

    env.process(p())
    env.run(until=3.5)
    assert seen == [1, 2, 3]
    assert env.now == 3.5


def test_manual_event_succeed_value():
    env = Environment()
    ev = env.event()
    got = []

    def waiter():
        value = yield ev
        got.append(value)

    env.process(waiter())

    def firer():
        yield env.timeout(2)
        ev.succeed("hello")

    env.process(firer())
    env.run()
    assert got == ["hello"]


def test_event_fail_raises_in_waiter():
    env = Environment()
    ev = env.event()

    def waiter():
        with pytest.raises(ValueError, match="boom"):
            yield ev
        return "survived"

    proc = env.process(waiter())

    def firer():
        yield env.timeout(1)
        ev.fail(ValueError("boom"))

    env.process(firer())
    assert env.run(until=proc) == "survived"


def test_event_cannot_trigger_twice():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_interrupt_breaks_timeout_wait():
    env = Environment()
    outcome = {}

    def sleeper():
        try:
            yield env.timeout(100)
            outcome["finished"] = True
        except Interrupt as err:
            outcome["cause"] = err.cause
            outcome["at"] = env.now

    victim = env.process(sleeper())

    def killer():
        yield env.timeout(7)
        victim.interrupt("power cycle")

    env.process(killer())
    env.run()
    assert outcome == {"cause": "power cycle", "at": 7}


def test_interrupt_finished_process_is_error():
    env = Environment()

    def quick():
        yield env.timeout(1)

    proc = env.process(quick())
    env.run()
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_interrupted_process_can_continue():
    env = Environment()
    log = []

    def resilient():
        try:
            yield env.timeout(50)
        except Interrupt:
            log.append(("interrupted", env.now))
        yield env.timeout(5)
        log.append(("done", env.now))

    victim = env.process(resilient())

    def killer():
        yield env.timeout(10)
        victim.interrupt()

    env.process(killer())
    env.run()
    assert log == [("interrupted", 10), ("done", 15)]


def test_all_of_waits_for_every_event():
    env = Environment()

    def worker(d):
        yield env.timeout(d)
        return d

    def main():
        procs = [env.process(worker(d)) for d in (3, 1, 2)]
        values = yield AllOf(env, procs)
        return (env.now, values)

    when, values = env.run(until=env.process(main()))
    assert when == 3
    assert values == (3, 1, 2)


def test_any_of_returns_first():
    env = Environment()

    def worker(d):
        yield env.timeout(d)
        return d

    def main():
        procs = [env.process(worker(d)) for d in (5, 2, 9)]
        first = yield AnyOf(env, procs)
        return (env.now, first)

    when, first = env.run(until=env.process(main()))
    assert when == 2
    assert first == 2


def test_yield_non_event_is_error():
    env = Environment()

    def bad():
        yield 42

    with pytest.raises(SimulationError, match="must yield events"):
        env.process(bad())
        env.run()


def test_process_exception_propagates_to_waiter():
    env = Environment()

    def failing():
        yield env.timeout(1)
        raise RuntimeError("install failed")

    def main():
        try:
            yield env.process(failing())
        except RuntimeError as err:
            return str(err)

    assert env.run(until=env.process(main())) == "install failed"


def test_run_until_event_requires_pending_work():
    env = Environment()
    ev = env.event()
    with pytest.raises(SimulationError):
        env.run(until=ev)


def test_peek_reports_next_event_time():
    env = Environment()
    assert env.peek() == float("inf")
    env.timeout(4)
    assert env.peek() == 4


def test_zero_delay_timeout_runs_same_timestamp():
    env = Environment()
    seen = []

    def p():
        yield env.timeout(0)
        seen.append(env.now)

    env.process(p())
    env.run()
    assert seen == [0.0]


def test_interleaved_processes_share_clock():
    env = Environment()
    trace = []

    def ping():
        for _ in range(3):
            yield env.timeout(2)
            trace.append(("ping", env.now))

    def pong():
        yield env.timeout(1)
        for _ in range(3):
            yield env.timeout(2)
            trace.append(("pong", env.now))

    env.process(ping())
    env.process(pong())
    env.run()
    assert trace == [
        ("ping", 2),
        ("pong", 3),
        ("ping", 4),
        ("pong", 5),
        ("ping", 6),
        ("pong", 7),
    ]


# -- run(until=event) with a cancelled stop event ---------------------------

def test_run_until_cancelled_event_raises_immediately():
    env = Environment()
    stop = env.event()
    env.timeout(100.0)  # unrelated pending work
    env.cancel(stop)
    with pytest.raises(SimulationError, match="cancelled"):
        env.run(until=stop)
    # The failure is immediate: the queue was not drained to prove it.
    assert env.now == 0.0
    assert env.peek() == 100.0


def test_run_until_event_cancelled_mid_run_raises():
    env = Environment()
    stop = env.event()

    def saboteur():
        yield env.timeout(1.0)
        env.cancel(stop)

    env.process(saboteur())
    env.timeout(100.0)
    with pytest.raises(SimulationError, match="cancelled"):
        env.run(until=stop)
    # Raised right after the cancellation, not after draining to t=100.
    assert env.now == 1.0
    assert 100.0 in [entry[0] for entry in env._queue]


# -- timeout_batch ----------------------------------------------------------

def test_timeout_batch_matches_individual_timeouts():
    delays = [3.0, 1.0, 2.0, 1.0, 0.0]

    def world(batch):
        env = Environment()
        log = []
        touts = (
            env.timeout_batch(delays, value="v")
            if batch
            else [env.timeout(d, value="v") for d in delays]
        )
        for i, tout in enumerate(touts):
            tout.callbacks.append(lambda ev, i=i: log.append((env.now, i, ev.value)))
        env.run()
        return [(t.delay, t.value) for t in touts], log

    assert world(True) == world(False)  # same delays, same FIFO tie order


def test_timeout_batch_bulk_heapify_path():
    # Large batch vs near-empty queue takes the extend+heapify branch.
    env = Environment()
    delays = [float((i * 37) % 100) for i in range(200)]
    log = []
    for i, tout in enumerate(env.timeout_batch(delays)):
        tout.callbacks.append(lambda _ev, i=i: log.append(i))
    env.run()
    expected = sorted(range(200), key=lambda i: (delays[i], i))
    assert log == expected


def test_timeout_batch_rejects_negative_delay():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout_batch([1.0, -0.5])


# -- slotted timeouts -------------------------------------------------------

def test_slotted_timeout_shares_one_event_per_due_time():
    env = Environment()
    a = env.slotted_timeout(5.0)
    b = env.slotted_timeout(5.0)
    assert a is b
    assert env.slotted_timeout(6.0) is not a


def test_slotted_timeout_keys_on_absolute_due_time():
    env = Environment()
    early = env.slotted_timeout(5.0)  # due t=5

    def later():
        yield env.timeout(1.0)
        # Requested at t=1 with delay 4: same absolute due, same slot.
        assert env.slotted_timeout(4.0) is early

    env.process(later())
    env.run()


def test_slotted_timeout_wakes_every_waiter_and_cleans_up():
    env = Environment()
    woke = []

    def sleeper(name):
        yield env.slotted_timeout(7.0)
        woke.append((name, env.now))

    for name in ("a", "b", "c"):
        env.process(sleeper(name), name=name)
    env.run()
    assert woke == [("a", 7.0), ("b", 7.0), ("c", 7.0)]
    assert env._slots == {}  # fired slots are reaped
    # A new request for the same delay gets a fresh slot at the new due.
    again = env.slotted_timeout(7.0)
    assert again.delay == 7.0 and env._slots


def test_slotted_timeout_survives_interrupted_waiter():
    env = Environment()
    woke = []

    def sleeper(name):
        try:
            yield env.slotted_timeout(10.0)
            woke.append((name, env.now))
        except Interrupt:
            woke.append((name, "interrupted", env.now))

    procs = [env.process(sleeper(n), name=n) for n in ("a", "b")]

    def meddler():
        yield env.timeout(3.0)
        procs[0].interrupt()

    env.process(meddler())
    env.run()
    # The shared slot still fires for the remaining waiter.
    assert woke == [("a", "interrupted", 3.0), ("b", 10.0)]


def test_cancel_never_scheduled_event_is_accounted():
    env = Environment()
    ev = env.event()
    env.cancel(ev)
    env.cancel(ev)  # idempotent
    assert ev._cancelled
    # Cancelled-then-triggered events are skipped without accounting drift.
    env.timeout(1.0)
    env.run()
    assert env.now == 1.0
