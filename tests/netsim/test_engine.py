"""Unit tests for the discrete-event engine."""

import pytest

from repro.netsim import (
    AllOf,
    AnyOf,
    Environment,
    Interrupt,
    SimulationError,
)


def test_timeout_advances_clock():
    env = Environment()
    log = []

    def proc():
        yield env.timeout(5.0)
        log.append(env.now)
        yield env.timeout(2.5)
        log.append(env.now)

    env.process(proc())
    env.run()
    assert log == [5.0, 7.5]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1.0)


def test_process_return_value():
    env = Environment()

    def worker():
        yield env.timeout(1)
        return 42

    proc = env.process(worker())
    assert env.run(until=proc) == 42


def test_process_waits_on_process():
    env = Environment()
    order = []

    def inner():
        yield env.timeout(3)
        order.append("inner")
        return "payload"

    def outer():
        value = yield env.process(inner())
        order.append("outer")
        return value

    result = env.run(until=env.process(outer()))
    assert result == "payload"
    assert order == ["inner", "outer"]


def test_events_fire_in_time_order_with_fifo_ties():
    env = Environment()
    seen = []

    def make(tag, delay):
        def p():
            yield env.timeout(delay)
            seen.append(tag)

        return p

    for tag, delay in [("a", 2), ("b", 1), ("c", 2), ("d", 0)]:
        env.process(make(tag, delay)())
    env.run()
    assert seen == ["d", "b", "a", "c"]


def test_run_until_deadline_stops_midway():
    env = Environment()
    seen = []

    def p():
        for _ in range(10):
            yield env.timeout(1)
            seen.append(env.now)

    env.process(p())
    env.run(until=3.5)
    assert seen == [1, 2, 3]
    assert env.now == 3.5


def test_manual_event_succeed_value():
    env = Environment()
    ev = env.event()
    got = []

    def waiter():
        value = yield ev
        got.append(value)

    env.process(waiter())

    def firer():
        yield env.timeout(2)
        ev.succeed("hello")

    env.process(firer())
    env.run()
    assert got == ["hello"]


def test_event_fail_raises_in_waiter():
    env = Environment()
    ev = env.event()

    def waiter():
        with pytest.raises(ValueError, match="boom"):
            yield ev
        return "survived"

    proc = env.process(waiter())

    def firer():
        yield env.timeout(1)
        ev.fail(ValueError("boom"))

    env.process(firer())
    assert env.run(until=proc) == "survived"


def test_event_cannot_trigger_twice():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_interrupt_breaks_timeout_wait():
    env = Environment()
    outcome = {}

    def sleeper():
        try:
            yield env.timeout(100)
            outcome["finished"] = True
        except Interrupt as err:
            outcome["cause"] = err.cause
            outcome["at"] = env.now

    victim = env.process(sleeper())

    def killer():
        yield env.timeout(7)
        victim.interrupt("power cycle")

    env.process(killer())
    env.run()
    assert outcome == {"cause": "power cycle", "at": 7}


def test_interrupt_finished_process_is_error():
    env = Environment()

    def quick():
        yield env.timeout(1)

    proc = env.process(quick())
    env.run()
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_interrupted_process_can_continue():
    env = Environment()
    log = []

    def resilient():
        try:
            yield env.timeout(50)
        except Interrupt:
            log.append(("interrupted", env.now))
        yield env.timeout(5)
        log.append(("done", env.now))

    victim = env.process(resilient())

    def killer():
        yield env.timeout(10)
        victim.interrupt()

    env.process(killer())
    env.run()
    assert log == [("interrupted", 10), ("done", 15)]


def test_all_of_waits_for_every_event():
    env = Environment()

    def worker(d):
        yield env.timeout(d)
        return d

    def main():
        procs = [env.process(worker(d)) for d in (3, 1, 2)]
        values = yield AllOf(env, procs)
        return (env.now, values)

    when, values = env.run(until=env.process(main()))
    assert when == 3
    assert values == (3, 1, 2)


def test_any_of_returns_first():
    env = Environment()

    def worker(d):
        yield env.timeout(d)
        return d

    def main():
        procs = [env.process(worker(d)) for d in (5, 2, 9)]
        first = yield AnyOf(env, procs)
        return (env.now, first)

    when, first = env.run(until=env.process(main()))
    assert when == 2
    assert first == 2


def test_yield_non_event_is_error():
    env = Environment()

    def bad():
        yield 42

    with pytest.raises(SimulationError, match="must yield events"):
        env.process(bad())
        env.run()


def test_process_exception_propagates_to_waiter():
    env = Environment()

    def failing():
        yield env.timeout(1)
        raise RuntimeError("install failed")

    def main():
        try:
            yield env.process(failing())
        except RuntimeError as err:
            return str(err)

    assert env.run(until=env.process(main())) == "install failed"


def test_run_until_event_requires_pending_work():
    env = Environment()
    ev = env.event()
    with pytest.raises(SimulationError):
        env.run(until=ev)


def test_peek_reports_next_event_time():
    env = Environment()
    assert env.peek() == float("inf")
    env.timeout(4)
    assert env.peek() == 4


def test_zero_delay_timeout_runs_same_timestamp():
    env = Environment()
    seen = []

    def p():
        yield env.timeout(0)
        seen.append(env.now)

    env.process(p())
    env.run()
    assert seen == [0.0]


def test_interleaved_processes_share_clock():
    env = Environment()
    trace = []

    def ping():
        for _ in range(3):
            yield env.timeout(2)
            trace.append(("ping", env.now))

    def pong():
        yield env.timeout(1)
        for _ in range(3):
            yield env.timeout(2)
            trace.append(("pong", env.now))

    env.process(ping())
    env.process(pong())
    env.run()
    assert trace == [
        ("ping", 2),
        ("pong", 3),
        ("ping", 4),
        ("pong", 5),
        ("ping", 6),
        ("pong", 7),
    ]
