"""Regression tests for latent netsim/engine bugs fixed alongside telemetry.

Each test pins one fix:

* empty ``AnyOf`` deadlock — now triggers immediately, mirroring AllOf;
* interrupt-during-condition — the orphaned AllOf/AnyOf detaches from
  its children instead of ghost-firing later;
* ``Link.utilization()`` — infinite-rate flows excluded, result clamped
  to [0, 1];
* wakeup scheduling — recompute() storms no longer grow the event heap
  without bound.
"""

import math

import pytest

from repro.netsim import (
    AllOf,
    AnyOf,
    Environment,
    Interrupt,
    Link,
    FlowNetwork,
)


def make_net():
    env = Environment()
    return env, FlowNetwork(env)


# -- empty-condition semantics ------------------------------------------------

def test_empty_anyof_triggers_immediately():
    env = Environment()
    log = []

    def proc():
        value = yield env.any_of([])
        log.append((env.now, value))

    env.process(proc())
    env.run()
    assert log == [(0.0, ())]


def test_empty_allof_still_triggers_immediately():
    env = Environment()
    log = []

    def proc():
        value = yield env.all_of([])
        log.append((env.now, value))

    env.process(proc())
    env.run()
    assert log == [(0.0, ())]


def test_empty_anyof_mixed_with_real_work_does_not_deadlock():
    """The original symptom: a dynamically built empty wait-set hangs."""
    env = Environment()
    order = []

    def waiter():
        pending = []  # e.g. "wait for any in-flight download" with none active
        yield env.any_of(pending)
        order.append("anyof")
        yield env.timeout(3)
        order.append("done")

    env.process(waiter())
    env.run()
    assert order == ["anyof", "done"]
    assert env.now == 3.0


# -- interrupt during a condition ---------------------------------------------

def test_interrupt_during_anyof_detaches_condition():
    env = Environment()
    e1, e2 = env.event(), env.event()
    holder = {}
    caught = []

    def waiter():
        cond = AnyOf(env, (e1, e2))
        holder["cond"] = cond
        try:
            yield cond
        except Interrupt as err:
            caught.append(err.cause)

    proc = env.process(waiter())

    def killer():
        yield env.timeout(1)
        proc.interrupt("power cycle")

    env.process(killer())
    env.run()
    cond = holder["cond"]
    assert caught == ["power cycle"]
    # The orphaned condition is fully unhooked from its children ...
    assert cond._on_child not in e1.callbacks
    assert cond._on_child not in e2.callbacks
    # ... so their later dispatch cannot ghost-fire it.
    e1.succeed("late")
    e2.succeed("later")
    env.run()
    assert not cond.triggered


def test_interrupt_during_allof_no_double_count():
    env = Environment()
    ev = env.event()
    holder = {}

    def waiter():
        cond = AllOf(env, (ev, env.timeout(10)))
        holder["cond"] = cond
        try:
            yield cond
        except Interrupt:
            # Re-wait on the bare child: this resume path used to race
            # the orphaned condition's own bookkeeping on ``ev``.
            value = yield ev
            return value

    proc = env.process(waiter())

    def killer():
        yield env.timeout(1)
        proc.interrupt()
        yield env.timeout(1)
        ev.succeed("payload")

    env.process(killer())
    env.run()
    assert proc.value == "payload"
    assert not holder["cond"].triggered


def test_interrupt_during_plain_event_still_works():
    env = Environment()
    ev = env.event()
    caught = []

    def waiter():
        try:
            yield ev
        except Interrupt as err:
            caught.append(err.cause)

    proc = env.process(waiter())

    def killer():
        yield env.timeout(2)
        proc.interrupt("bye")

    env.process(killer())
    env.run()
    assert caught == ["bye"]
    assert ev.callbacks == []


# -- utilization bounds -------------------------------------------------------

def test_utilization_excludes_infinite_rate_flows():
    env, net = make_net()
    backplane = Link("backplane", None)
    flow = net.transfer([backplane], 1e6)
    assert math.isinf(flow.rate)
    # The link later regains a finite capacity (NIC re-provisioned)
    # before any recompute(): the stale inf-rate flow must not poison
    # the gauge.
    backplane.capacity = 100.0
    util = backplane.utilization()
    assert util == 0.0
    assert 0.0 <= util <= 1.0


def test_utilization_clamped_under_transient_oversubscription():
    env, net = make_net()
    link = Link("nic", 100.0)
    net.transfer([link], 1e6)
    assert link.utilization() == pytest.approx(1.0)
    # Degrade the capacity under a live flow, before recompute() runs.
    link.capacity = 40.0
    assert link.utilization() == 1.0
    net.recompute()
    assert link.utilization() == pytest.approx(1.0)


def test_utilization_unconstrained_link_is_zero():
    env, net = make_net()
    link = Link("switch", None)
    net.transfer([link, Link("nic", 50.0)], 1e6)
    assert link.utilization() == 0.0


# -- wakeup scheduling / event-queue growth -----------------------------------

def test_recompute_storm_keeps_event_queue_bounded():
    env, net = make_net()
    link = Link("l", 100.0)
    net.transfer([link], 1e9)  # completes far in the future
    baseline = len(env._queue)
    for _ in range(500):
        net.recompute()
    # The needed wake time never moved, so no new Timeout was pushed at
    # all (the seed behaviour leaked one dead Timeout per recompute).
    assert len(env._queue) <= baseline + 1


def test_flapping_recompute_keeps_event_queue_bounded():
    env, net = make_net()
    link = Link("l", 100.0)
    net.transfer([link], 1e9)
    for _ in range(300):
        link.capacity = 10.0  # degrade: completion recedes
        net.recompute()
        link.capacity = 100.0  # restore: completion moves closer -> new wakeup
        net.recompute()
    # Superseded wakeups are cancelled and compacted, so the heap holds
    # a bounded number of dead entries (compaction threshold), not one
    # per flap.
    assert len(env._queue) < 150


def test_stale_wakeup_does_not_fire_flow_logic():
    env, net = make_net()
    link = Link("l", 100.0)
    slow = net.transfer([link], 1000.0)  # due at t=10
    fast = net.transfer([link], 10.0)  # re-plans the wakeup
    env.run(until=slow.done)
    assert env.now == pytest.approx(10.1)  # 10B at 50B/s, then 990B at 100B/s
    assert slow.finished_at == pytest.approx(10.1)
    assert fast.finished_at == pytest.approx(0.2)


def test_completion_times_survive_recompute_storm():
    env, net = make_net()
    link = Link("l", 100.0)
    flow = net.transfer([link], 1000.0)
    for _ in range(50):
        net.recompute()
    env.run(until=flow.done)
    assert env.now == pytest.approx(10.0)
