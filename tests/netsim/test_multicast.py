"""Tests for the UDP multicast primitive (the gmond transport)."""

import pytest

from repro.netsim import Environment, MulticastGroup
from repro.netsim.topology import Network


@pytest.fixture
def net():
    env = Environment()
    network = Network(env)
    for name in ("fe", "n1", "n2"):
        network.attach(name)
    return env, network


def _collector(log, tag):
    def receive(src, payload, t):
        log.append((tag, src, payload, t))
    return receive


def test_groups_are_cached_by_address(net):
    _, network = net
    group = network.multicast("239.2.11.71")
    assert network.multicast("239.2.11.71") is group
    assert network.multicast("other") is not group
    assert isinstance(group, MulticastGroup)


def test_delivery_to_all_up_subscribers(net):
    env, network = net
    group = network.multicast("g")
    log = []
    group.join("fe", _collector(log, "fe"))
    group.join("n2", _collector(log, "n2"))
    env.run(until=5.0)
    assert group.send("n1", "hello") == 2
    assert log == [("fe", "n1", "hello", 5.0), ("n2", "n1", "hello", 5.0)]
    assert group.packets_sent == 1
    assert group.packets_delivered == 2
    assert group.packets_dropped == 0


def test_sender_hears_its_own_group_without_rx_credit(net):
    env, network = net
    group = network.multicast("g")
    log = []
    group.join("n1", _collector(log, "n1"))
    before = network.host("n1").rx.bytes_carried
    assert group.send("n1", "self") == 1
    assert [entry[1] for entry in log] == ["n1"]
    # loopback delivery never crosses the NIC
    assert network.host("n1").rx.bytes_carried == before


def test_down_subscriber_is_silently_dropped(net):
    env, network = net
    group = network.multicast("g")
    log = []
    group.join("fe", _collector(log, "fe"))
    group.join("n2", _collector(log, "n2"))
    network.set_host_up("n2", False)
    assert group.send("n1", "x") == 1
    assert [entry[0] for entry in log] == ["fe"]
    assert group.packets_dropped == 1
    # and it hears again once the link returns (UDP needs no rejoin)
    network.set_host_up("n2", True)
    assert group.send("n1", "y") == 2


def test_down_sender_reaches_nobody(net):
    env, network = net
    group = network.multicast("g")
    log = []
    group.join("fe", _collector(log, "fe"))
    network.set_host_up("n1", False)
    assert group.send("n1", "x") == 0
    assert log == []
    assert group.packets_dropped == 1


def test_leave_stops_delivery(net):
    env, network = net
    group = network.multicast("g")
    log = []
    group.join("fe", _collector(log, "fe"))
    assert group.n_subscribers == 1
    group.leave("fe")
    assert group.n_subscribers == 0
    assert group.send("n1", "x") == 0


def test_payload_bytes_credit_nic_counters(net):
    env, network = net
    group = network.multicast("g")
    group.join("fe", lambda *a: None)
    group.join("n2", lambda *a: None)
    group.send("n1", "x", nbytes=128.0)
    # sender tx credited once; each remote receiver rx credited once
    assert network.host("n1").tx.bytes_carried == 128.0
    assert network.host("fe").rx.bytes_carried == 128.0
    assert network.host("n2").rx.bytes_carried == 128.0


def test_delivery_is_synchronous_and_schedules_no_events(net):
    env, network = net
    group = network.multicast("g")
    group.join("fe", lambda *a: None)
    before = env.now
    group.send("n1", "x")
    # no timeout, no process: the event queue is untouched
    assert env.now == before
    assert env.peek() == float("inf")
