"""Edge-case tests for the engine and flow network."""

import pytest

from repro.netsim import (
    AllOf,
    AnyOf,
    Environment,
    FlowNetwork,
    Link,
    SimulationError,
)


def test_all_of_propagates_failure():
    env = Environment()

    def good():
        yield env.timeout(5)
        return "ok"

    def bad():
        yield env.timeout(2)
        raise ValueError("boom")

    def main():
        try:
            yield AllOf(env, [env.process(good()), env.process(bad())])
        except ValueError as err:
            return f"caught {err}"

    assert env.run(until=env.process(main())) == "caught boom"


def test_any_of_with_already_triggered_event():
    env = Environment()
    done = env.event()
    done.succeed("early")

    def main():
        value = yield AnyOf(env, [done, env.timeout(100)])
        return (env.now, value)

    when, value = env.run(until=env.process(main()))
    assert when == 0
    assert value == "early"


def test_all_of_empty_is_degenerate():
    env = Environment()

    def main():
        value = yield AllOf(env, [])
        return value

    assert env.run(until=env.process(main())) == ()


def test_mixed_environment_events_rejected():
    env1, env2 = Environment(), Environment()
    ev = env2.event()
    with pytest.raises(SimulationError, match="different environments"):
        AllOf(env1, [ev])


def test_link_utilization_tracks_flows():
    env = Environment()
    net = FlowNetwork(env)
    link = Link("l", 100.0)
    assert link.utilization() == 0.0
    net.transfer([link], 1e6)
    assert link.utilization() == pytest.approx(1.0)
    net.transfer([link], 1e6, max_rate=10.0)  # still saturated, shared
    assert link.utilization() == pytest.approx(1.0)
    assert link.n_flows == 2


def test_unconstrained_link_utilization_zero():
    assert Link("switch", None).utilization() == 0.0


def test_flow_elapsed_while_running():
    env = Environment()
    net = FlowNetwork(env)
    flow = net.transfer([Link("l", 10.0)], 100.0)
    env.run(until=5.0)
    assert flow.elapsed == pytest.approx(5.0)
    env.run(until=flow.done)
    assert flow.elapsed == pytest.approx(10.0)


def test_cancel_completed_flow_is_noop():
    env = Environment()
    net = FlowNetwork(env)
    flow = net.transfer([Link("l", 100.0)], 10.0)
    env.run(until=flow.done)
    flow.cancel()  # must not raise or double-trigger
    assert flow.done.triggered


def test_simultaneous_completions_all_fire():
    env = Environment()
    net = FlowNetwork(env)
    a, b = Link("a", 100.0), Link("b", 100.0)
    f1 = net.transfer([a], 500.0)
    f2 = net.transfer([b], 500.0)
    env.run()
    assert f1.finished_at == f2.finished_at == pytest.approx(5.0)


def test_timeout_value_passthrough():
    env = Environment()

    def main():
        value = yield env.timeout(3, value="payload")
        return value

    assert env.run(until=env.process(main())) == "payload"
