"""Tests for the alert rules and the edge-detecting engine."""

import pytest

from repro.monitoring import (
    AlertEngine,
    InstallStuckRule,
    LinkSaturationRule,
    MetricPacket,
    NodeDownRule,
    ServiceDownRule,
    ShedRateRule,
    default_rules,
)
from repro.netsim import Environment
from repro.telemetry import Tracer


def packet(host, t, metrics=(), labels=(), seq=0):
    return MetricPacket(
        host=host,
        addr=host,
        t=t,
        seq=seq,
        metrics=tuple(sorted(metrics)),
        labels=tuple(sorted(labels)),
    )


class FakeAggregator:
    """Just enough aggregator surface for rule/engine unit tests."""

    def __init__(self, env, stale_after=45.0):
        self.env = env
        self.stale_after = stale_after
        self._last = {}
        self._expected = []

    def expect(self, host):
        self._expected.append(host)

    def feed(self, pkt):
        self._last[pkt.host] = pkt

    def expected_hosts(self):
        return list(self._expected)

    def snapshot(self):
        return dict(self._last)

    def age(self, host):
        pkt = self._last.get(host)
        return float("inf") if pkt is None else self.env.now - pkt.t


@pytest.fixture
def agg():
    return FakeAggregator(Environment())


def test_node_down_rule_stale_and_never(agg):
    agg.expect("n1")
    agg.expect("n2")
    agg.env.run(until=100.0)
    agg.feed(packet("n1", 90.0))
    rule = NodeDownRule()
    assert rule.check(agg, 100.0) == {
        "n2": ("never heard a heartbeat", -1.0)
    }
    agg.env.run(until=200.0)
    conditions = rule.check(agg, 200.0)
    assert conditions["n1"] == ("no heartbeat for 110s", 110.0)
    assert conditions["n2"][1] == -1.0  # inf encoded JSON-safe


def test_service_down_rule_reads_svc_gauges(agg):
    agg.feed(packet("fe", 10.0, metrics=[("svc.dhcp", 1.0), ("svc.nfs", 0.0)]))
    conditions = ServiceDownRule().check(agg, 10.0)
    assert conditions == {"fe/nfs": ("service nfs is not running", 0.0)}


def test_install_stuck_rule_needs_frozen_progress(agg):
    rule = InstallStuckRule(threshold=100.0)

    def installing(t, done):
        return packet(
            "n1", t,
            metrics=[("install.done_pkgs", done)],
            labels=[("state", "installing"), ("phase", "packages")],
        )

    agg.feed(installing(0.0, 10.0))
    assert rule.check(agg, 0.0) == {}
    # progress advanced: the clock resets
    agg.feed(installing(50.0, 20.0))
    assert rule.check(agg, 120.0) == {}
    # frozen at the same (phase, done) pair past the threshold
    agg.feed(installing(130.0, 20.0))
    conditions = rule.check(agg, 260.0)
    assert "n1" in conditions
    assert "packages" in conditions["n1"][0]
    # leaving the installing state clears the tracking
    agg.feed(packet("n1", 300.0, labels=[("state", "up")]))
    assert rule.check(agg, 300.0) == {}
    assert rule._since == {}


def test_shed_rate_rule_fires_on_window_delta(agg):
    rule = ShedRateRule(min_sheds=5.0)
    agg.feed(packet("fe", 0.0, metrics=[("http.rejected", 2.0)]))
    assert rule.check(agg, 0.0) == {}  # 2 this window, below floor
    agg.feed(packet("fe", 15.0, metrics=[("http.rejected", 9.0)]))
    conditions = rule.check(agg, 15.0)
    assert conditions["fe"][1] == 7.0
    # flat total: no new sheds, condition clears
    agg.feed(packet("fe", 30.0, metrics=[("http.rejected", 9.0)]))
    assert rule.check(agg, 30.0) == {}


def test_link_saturation_needs_a_sustained_streak(agg):
    rule = LinkSaturationRule(threshold=0.98, sustain=3)
    hot = [("net.tx_util", 1.0), ("net.rx_util", 0.2)]
    for i in range(2):
        agg.feed(packet("fe", float(i)))
        agg.feed(packet("fe", float(i), metrics=hot))
        assert rule.check(agg, float(i)) == {}
    agg.feed(packet("fe", 2.0, metrics=hot))
    conditions = rule.check(agg, 2.0)
    assert conditions["fe"][1] == 1.0
    # one cool sample resets the streak
    agg.feed(packet("fe", 3.0, metrics=[("net.tx_util", 0.5)]))
    assert rule.check(agg, 3.0) == {}
    assert rule._streak["fe"] == 0


def test_engine_edge_detects_fire_and_clear(agg):
    agg.expect("n1")
    engine = AlertEngine((NodeDownRule(),))
    agg.env.run(until=50.0)
    engine.evaluate(agg, 50.0)
    engine.evaluate(agg, 60.0)  # still down: no duplicate page
    assert len(engine.alerts) == 1
    assert engine.active()[0].host == "n1"
    agg.feed(packet("n1", 60.0))
    engine.evaluate(agg, 61.0)
    assert engine.active() == []
    assert len(engine.cleared) == 1
    assert "cleared after 11s" in engine.cleared[0].message
    assert engine.kinds_fired() == ["node-down"]


def test_engine_emits_tracer_events_and_counters(agg):
    tracer = Tracer().attach(agg.env)
    agg.expect("n1")
    engine = AlertEngine((NodeDownRule(),))
    engine.evaluate(agg, 0.0)
    agg.feed(packet("n1", 0.0))
    engine.evaluate(agg, 1.0)
    assert len(tracer.events("alert")) == 1
    assert len(tracer.events("alert-clear")) == 1
    assert tracer.metrics.counter("alerts.fired/node-down") == 1


def test_engine_silent_under_null_tracer(agg):
    agg.expect("n1")
    engine = AlertEngine((NodeDownRule(),))
    engine.evaluate(agg, 0.0)  # must not blow up with NULL_TRACER
    assert len(engine.alerts) == 1
    assert agg.env.tracer.n_records == 0


def test_signature_and_records_are_deterministic(agg):
    agg.expect("n1")
    engine = AlertEngine((NodeDownRule(),))
    engine.evaluate(agg, 0.0)
    agg.feed(packet("n1", 0.0))
    engine.evaluate(agg, 1.0)
    sig = engine.signature()
    assert "CRIT node-down" in sig and "CLEAR node-down" in sig
    records = engine.to_records()
    assert [r["status"] for r in records] == ["fired", "cleared"]
    assert records[0]["value"] == -1.0


def test_default_rules_cover_the_documented_kinds():
    kinds = {rule.kind for rule in default_rules()}
    assert kinds == {
        "node-down", "service-down", "install-stuck",
        "http-shed", "link-saturated",
    }
