"""Same-seed monitored campaigns must be byte-identical, faults and all."""

import json

import pytest

from repro.faults import chaos_reinstall


def _run(plan, **kwargs):
    result = chaos_reinstall(n_nodes=8, plan=plan, seed=11, monitoring=True,
                             **kwargs)
    stack = result.monitoring
    return stack.export_json(), stack.engine.signature(), result


@pytest.mark.parametrize(
    "plan,kwargs",
    [
        ("frontend-crash", {"resilience": True}),
        ("chaos", {}),
    ],
)
def test_same_seed_runs_export_identical_bytes(plan, kwargs):
    export_a, sig_a, _ = _run(plan, **kwargs)
    export_b, sig_b, _ = _run(plan, **kwargs)
    assert export_a == export_b  # raw bytes, not just equal structures
    assert sig_a == sig_b


def test_chaos_plan_fires_three_distinct_alert_kinds():
    _, _, result = _run("chaos")
    kinds = result.monitoring.engine.kinds_fired()
    assert len(kinds) >= 3
    assert {"node-down", "service-down", "link-saturated"} <= set(kinds)
    # every fired alert eventually cleared: the campaign converged
    assert result.completion_rate == 1.0
    assert result.monitoring.engine.active() == []


def test_export_carries_series_and_alert_log():
    export, _, result = _run("chaos")
    doc = json.loads(export)
    assert doc["format"] == "repro-monitor"
    assert doc["packets"]["received"] > 0
    assert doc["packets"]["received"] <= doc["packets"]["sent"]
    assert "frontend-0/svc.install" in doc["series"]
    assert "compute-0-0/load" in doc["series"]
    statuses = {rec["status"] for rec in doc["alerts"]}
    assert statuses == {"fired", "cleared"}


def test_monitored_campaign_timeline_matches_unmonitored():
    """Monitoring is observational: it never perturbs the simulation."""
    plain = chaos_reinstall(n_nodes=8, plan="chaos", seed=11)
    monitored = chaos_reinstall(n_nodes=8, plan="chaos", seed=11,
                                monitoring=True)
    assert monitored.report.render() == plain.report.render()
    assert monitored.injector.signature() == plain.injector.signature()
