"""Tests for the gmond agents and the gmetad aggregator on a live cluster."""

import pytest

from repro import build_cluster
from repro.cluster import MachineState
from repro.monitoring import (
    MetricAgent,
    MonitoringOptions,
    enable_cluster_monitoring,
)


@pytest.fixture
def stack3():
    sim = build_cluster(n_compute=3)
    sim.integrate_all()
    stack = enable_cluster_monitoring(sim.frontend, sim.nodes)
    sim.env.run(until=sim.env.now + 60)
    return sim, stack


def test_every_machine_reports(stack3):
    sim, stack = stack3
    snap = stack.aggregator.snapshot()
    assert set(snap) == {
        "frontend-0", "compute-0-0", "compute-0-1", "compute-0-2"
    }
    for host, pkt in snap.items():
        assert pkt.label("state") == "up"
        assert pkt.metric("packages") > 100
    assert stack.aggregator.down_hosts() == []


def test_packets_feed_the_store(stack3):
    sim, stack = stack3
    series = stack.store.get("compute-0-0/load")
    assert series is not None
    assert series.n_samples >= 3
    # per-host per-metric naming, sorted on export
    names = stack.store.series_names()
    assert all("/" in name for name in names)
    assert names == sorted(names)


def test_frontend_agent_carries_service_and_http_metrics(stack3):
    sim, stack = stack3
    pkt = stack.aggregator.last_packet("frontend-0")
    assert pkt.metric("svc.dhcp") == 1.0
    assert pkt.metric("svc.install") == 1.0
    assert pkt.metric("svc.nfs") == 1.0
    assert pkt.has_metric("http.in_flight")
    assert pkt.has_metric("jobs.queued")
    # compute nodes don't have the frontend sampler
    assert not stack.aggregator.last_packet("compute-0-0").has_metric("svc.dhcp")


def test_agents_go_dark_outside_visible_states(stack3):
    sim, stack = stack3
    agent = stack.agents[1]  # compute-0-0
    assert agent.visible
    agent.machine.power_off()
    assert not agent.visible
    sent_before = agent.packets_sent
    sim.env.run(until=sim.env.now + 60)
    assert agent.packets_sent == sent_before
    assert stack.aggregator.is_stale("compute-0-0")
    assert stack.aggregator.down_hosts() == ["compute-0-0"]


def test_installing_node_stays_visible_with_phase(stack3):
    sim, stack = stack3
    node = sim.nodes[0]
    node.request_reinstall()
    # long enough to be mid-packages, short of install completion
    sim.env.run(until=sim.env.now + 400)
    assert node.state is MachineState.INSTALLING
    pkt = stack.aggregator.last_packet("compute-0-0")
    assert pkt.label("state") == "installing"
    assert pkt.label("phase") != ""
    assert not stack.aggregator.is_stale("compute-0-0")


def test_agent_jitter_is_seeded_per_mac(stack3):
    sim, stack = stack3
    phases = set()
    for agent in stack.agents:
        rng_copy = type(agent.rng)(("gmond", 0, agent.machine.mac).__repr__())
        phases.add(rng_copy.uniform(0.0, agent.interval))
    # distinct MACs -> distinct phases (unsynchronized daemons)
    assert len(phases) == len(stack.agents)


def test_agent_rejects_bad_interval(stack3):
    sim, stack = stack3
    with pytest.raises(ValueError):
        MetricAgent(sim.nodes[0], stack.group, interval=0.0)


def test_dead_gmetad_drops_packets(stack3):
    sim, stack = stack3
    agg = stack.aggregator
    received = agg.packets_received
    agg.stop()
    sim.env.run(until=sim.env.now + 60)
    assert agg.packets_received == received
    agg.start()
    sim.env.run(until=sim.env.now + 60)
    assert agg.packets_received > received


def test_legacy_cluster_monitor_is_agent_fed(stack3):
    sim, stack = stack3
    monitor = stack.cluster_monitor
    assert monitor is not None
    assert monitor.source is stack.aggregator
    snap = monitor.snapshot()
    assert set(snap) == set(stack.aggregator.snapshot())
    assert snap["compute-0-0"].state == "up"
    assert monitor.heartbeats_received == stack.aggregator.packets_received
    assert monitor.down_hosts() == []


def test_legacy_monitor_flags_never_heartbeated_host():
    """Regression: an expected host that dies before its first packet."""
    sim = build_cluster(n_compute=2)
    sim.integrate_all()
    sim.nodes[1].power_off()  # down before monitoring even starts
    stack = enable_cluster_monitoring(sim.frontend, sim.nodes)
    sim.env.run(until=sim.env.now + 60)
    assert stack.aggregator.age("compute-0-1") == float("inf")
    assert "compute-0-1" in stack.aggregator.down_hosts()
    # the agent-fed legacy monitor agrees — no daemons were spawned
    monitor = stack.cluster_monitor
    assert monitor.age("compute-0-1") == float("inf")
    assert "compute-0-1" in monitor.down_hosts()
    assert "compute-0-0" in monitor.up_hosts()


def test_options_disable_legacy_monitor():
    sim = build_cluster(n_compute=1)
    sim.integrate_all()
    stack = enable_cluster_monitoring(
        sim.frontend, sim.nodes, MonitoringOptions(legacy_monitor=False)
    )
    assert stack.cluster_monitor is None
    sim.env.run(until=sim.env.now + 30)
    assert stack.aggregator.packets_received > 0


def test_cluster_top_and_xml_render(stack3):
    sim, stack = stack3
    top = stack.render_top()
    assert "cluster-top" in top
    assert "compute-0-2" in top
    xml = stack.render_xml()
    assert xml.startswith('<?xml version="1.0"')
    assert '<GANGLIA_XML VERSION="2.5.7"' in xml
    assert '<HOST NAME="compute-0-0"' in xml
    assert "</GANGLIA_XML>" in xml
