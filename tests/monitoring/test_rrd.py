"""Tests for the round-robin time-series store."""

import json

import pytest

from repro.monitoring import (
    DEFAULT_RESOLUTIONS,
    Resolution,
    RoundRobinSeries,
    RoundRobinStore,
)

TWO_LEVEL = (Resolution(10.0, 4), Resolution(30.0, 4))


def test_resolution_validation():
    with pytest.raises(ValueError):
        Resolution(0.0, 10)
    with pytest.raises(ValueError):
        Resolution(10.0, 0)
    assert Resolution(15.0, 240).span == 3600.0


def test_series_requires_dividing_steps():
    with pytest.raises(ValueError):
        RoundRobinSeries("x", (Resolution(10.0, 4), Resolution(25.0, 4)))
    with pytest.raises(ValueError):
        RoundRobinSeries("x", ())
    # order given does not matter; rings sort finest-first
    s = RoundRobinSeries("x", (Resolution(30.0, 4), Resolution(10.0, 4)))
    assert [r.step for r in s.resolutions] == [10.0, 30.0]


def test_samples_bucket_into_finest_ring():
    s = RoundRobinSeries("load", TWO_LEVEL)
    s.record(1.0, 4.0)
    s.record(9.0, 2.0)
    s.record(12.0, 6.0)  # seals bucket 0, opens bucket 10
    rows = s.rows(10.0)
    assert rows == [(0.0, 2.0, 6.0, 2.0, 4.0), (10.0, 1.0, 6.0, 6.0, 6.0)]
    assert s.latest() == (12.0, 6.0)
    assert s.n_samples == 3


def test_means_and_min_max():
    s = RoundRobinSeries("load", TWO_LEVEL)
    for t, v in [(0.0, 1.0), (5.0, 3.0), (11.0, 10.0)]:
        s.record(t, v)
    assert s.means(10.0) == [(0.0, 2.0), (10.0, 10.0)]
    first = s.rows(10.0)[0]
    assert first[3] == 1.0 and first[4] == 3.0  # min, max


def test_cascade_aggregates_exactly():
    s = RoundRobinSeries("x", TWO_LEVEL)
    # two 10 s buckets sealed inside the first 30 s bucket, then move on
    for t in (0.0, 5.0, 10.0, 15.0, 31.0, 61.0):
        s.record(t, float(t))
    s.close()
    coarse = s.rows(30.0)
    # bucket 0 covers t in [0, 30): samples 0, 5, 10, 15
    assert coarse[0] == (0.0, 4.0, 30.0, 0.0, 15.0)
    # bucket 30 covers the lone t=31 sample
    assert coarse[1] == (30.0, 1.0, 31.0, 31.0, 31.0)
    # coarse aggregates equal what the raw samples would produce directly
    fine_total = sum(r[2] for r in s.rows(10.0))
    assert fine_total == sum(r[2] for r in coarse)


def test_ring_wraps_oldest_first():
    s = RoundRobinSeries("x", (Resolution(1.0, 3),))
    for t in range(6):
        s.record(float(t), 1.0)
    s.close()
    assert [r[0] for r in s.rows(1.0)] == [3.0, 4.0, 5.0]


def test_time_must_not_go_backwards():
    s = RoundRobinSeries("x", TWO_LEVEL)
    s.record(10.0, 1.0)
    with pytest.raises(ValueError):
        s.record(9.0, 1.0)
    # equal time is fine (two samples on the same tick)
    s.record(10.0, 2.0)


def test_closed_series_rejects_samples():
    s = RoundRobinSeries("x", TWO_LEVEL)
    s.record(1.0, 1.0)
    s.close()
    s.close()  # idempotent
    assert s.closed
    with pytest.raises(RuntimeError):
        s.record(2.0, 1.0)


def test_close_flushes_open_buckets_all_the_way_down():
    s = RoundRobinSeries("x", TWO_LEVEL)
    s.record(3.0, 7.0)
    assert s.rows(30.0) == []  # nothing sealed yet
    s.close()
    assert s.rows(10.0) == [(0.0, 1.0, 7.0, 7.0, 7.0)]
    assert s.rows(30.0) == [(0.0, 1.0, 7.0, 7.0, 7.0)]


def test_unknown_ring_step_raises():
    s = RoundRobinSeries("x", TWO_LEVEL)
    with pytest.raises(KeyError):
        s.rows(99.0)


def test_store_open_series_is_idempotent():
    store = RoundRobinStore(TWO_LEVEL)
    a = store.open_series("fe/load")
    assert store.open_series("fe/load") is a
    assert store.get("fe/load") is a
    assert store.get("missing") is None
    assert store.n_series == 1


def test_store_record_and_sorted_names():
    store = RoundRobinStore(TWO_LEVEL)
    store.record("b/load", 1.0, 2.0)
    store.record("a/load", 1.0, 3.0)
    assert store.series_names() == ["a/load", "b/load"]


def test_export_is_canonical_and_stable():
    def build():
        store = RoundRobinStore(TWO_LEVEL)
        store.record("z/m", 1.0, 5.0)
        store.record("a/m", 2.0, 7.0)
        store.record("a/m", 12.0, 1.0)
        store.close_all()
        return store

    a, b = build().export_json(), build().export_json()
    assert a == b
    assert a.endswith("\n")
    doc = json.loads(a)
    assert doc["format"] == "repro-rrd"
    assert list(doc["series"]) == ["a/m", "z/m"]
    assert doc["resolutions"][0] == {"step": 10.0, "rows": 4}
    # canonical form: compact separators, sorted keys
    assert ": " not in a and ", " not in a


def test_store_write_returns_bytes(tmp_path):
    store = RoundRobinStore(TWO_LEVEL)
    store.record("a/m", 1.0, 1.0)
    store.close_all()
    path = tmp_path / "rrd.json"
    n = store.write(path)
    assert n == len(path.read_bytes())


def test_default_resolutions_cover_a_campaign():
    spans = [r.span for r in DEFAULT_RESOLUTIONS]
    assert spans == sorted(spans)
    assert spans[0] >= 3600.0  # the finest ring holds a full Table I run
