"""The open-loop load generator: schedule fidelity, outcome tally, SLO report."""

import pytest

from repro.load import LoadGenerator, Poisson
from repro.netsim import (
    FAST_ETHERNET,
    AdmissionConfig,
    Environment,
    HttpServer,
    Network,
)


def make_rig(n_clients=4, doc_size=10.0):
    env = Environment()
    network = Network(env)
    network.attach("www", FAST_ETHERNET)
    for i in range(n_clients):
        network.attach(f"c{i}", FAST_ETHERNET)
    server = HttpServer(network, "www", efficiency=1.0)
    server.publish("/pkg", doc_size)
    return env, server


def test_issues_every_scheduled_arrival():
    env, server = make_rig()
    proc = Poisson(rate=2.0, duration=30.0, seed=1)
    gen = LoadGenerator(env, server, ["c0", "c1"], "/pkg", proc).start()
    env.run(until=gen.done)
    n = len(proc.times())
    assert gen.issued == n
    assert gen.completed == n
    assert gen.ok == n
    assert gen.shed == 0 and gen.errors == 0
    assert len(gen.latencies) == n


def test_open_loop_schedule_ignores_server_speed():
    """Issuance times come from the arrival process, not the responses."""
    proc = Poisson(rate=2.0, duration=20.0, seed=3)
    counts = {}
    for doc_size in (1.0, FAST_ETHERNET * 30.0):  # trivial vs 30s/transfer
        env, server = make_rig(doc_size=doc_size)
        gen = LoadGenerator(env, server, ["c0"], "/pkg", proc).start()
        env.run(until=proc.duration)  # end of the schedule window
        counts[doc_size] = gen.issued
    # both servers saw the identical number of issued requests by t=20
    assert len(set(counts.values())) == 1
    assert counts[1.0] == len(proc.times())


def test_overload_is_tallied_as_shed_not_raised():
    env, server = make_rig(n_clients=8, doc_size=FAST_ETHERNET * 5.0)
    server.configure_admission(
        AdmissionConfig(max_concurrent=1, queue_limit=0, retry_after=5.0)
    )
    # 8 arrivals in one burst against a single slot with no queue
    proc = Poisson(rate=100.0, duration=0.1, seed=2, max_events=8)
    clients = [f"c{i}" for i in range(8)]
    gen = LoadGenerator(env, server, clients, "/pkg", proc).start()
    env.run(until=gen.done)
    assert gen.issued == 8
    assert gen.ok >= 1
    assert gen.shed == gen.issued - gen.ok - gen.errors
    assert gen.shed > 0
    assert gen.shed_rate == pytest.approx(gen.shed / gen.completed)


def test_missing_document_counts_as_error():
    env, server = make_rig()
    proc = Poisson(rate=10.0, duration=0.5, seed=4, max_events=3)
    gen = LoadGenerator(env, server, ["c0"], "/missing", proc).start()
    env.run(until=gen.done)
    assert gen.errors == gen.issued
    assert gen.ok == 0 and gen.shed == 0


def test_same_seed_same_report():
    reports = []
    for _ in range(2):
        env, server = make_rig(n_clients=4, doc_size=FAST_ETHERNET * 2.0)
        server.configure_admission(
            AdmissionConfig(max_concurrent=2, queue_limit=2)
        )
        proc = Poisson(rate=4.0, duration=10.0, seed=9)
        gen = LoadGenerator(
            env, server, ["c0", "c1", "c2", "c3"], "/pkg", proc
        ).start()
        env.run(until=gen.done)
        reports.append(gen.report())
    assert reports[0] == reports[1]


def test_report_shape():
    env, server = make_rig()
    proc = Poisson(rate=2.0, duration=5.0, seed=0)
    gen = LoadGenerator(env, server, ["c0"], "/pkg", proc, name="herd").start()
    env.run(until=gen.done)
    report = gen.report()
    assert report["name"] == "herd"
    assert "Poisson" in report["arrivals"]
    assert set(report["latency_s"]) == {"p50", "p95", "p99", "max"}
    assert report["latency_s"]["max"] >= report["latency_s"]["p50"] > 0.0


def test_lifecycle_guards():
    env, server = make_rig()
    gen = LoadGenerator(env, server, ["c0"], "/pkg", Poisson(rate=1.0))
    with pytest.raises(RuntimeError, match="not started"):
        gen.done
    gen.start()
    with pytest.raises(RuntimeError, match="already started"):
        gen.start()
    with pytest.raises(ValueError, match="client"):
        LoadGenerator(env, server, [], "/pkg", Poisson(rate=1.0))
