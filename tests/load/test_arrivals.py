"""Seeded open-loop arrival processes: determinism, shape, bounds."""

import pytest

from repro.load import ArrivalProcess, Diurnal, FlashCrowd, Poisson


def test_same_seed_same_schedule():
    a = Poisson(rate=5.0, duration=120.0, seed=7)
    b = Poisson(rate=5.0, duration=120.0, seed=7)
    assert a.times() == b.times()
    # and calling twice on the same instance never mutates the schedule
    assert a.times() == a.times()


def test_different_seed_different_schedule():
    a = Poisson(rate=5.0, duration=120.0, seed=7)
    b = Poisson(rate=5.0, duration=120.0, seed=8)
    assert a.times() != b.times()


def test_process_class_is_part_of_the_rng_key():
    """A Poisson and a FlashCrowd with identical knobs must not collide."""
    p = Poisson(rate=5.0, duration=60.0, seed=3)
    f = FlashCrowd(rate=5.0, duration=60.0, seed=3,
                   base_frac=1.0, burst_duration=60.0)
    # base_frac=1.0 makes the flash crowd's rate function constant, so
    # only the RNG key (the class name) distinguishes the two schedules.
    assert p.times() != f.times()


def test_times_sorted_and_in_range():
    for proc in (
        Poisson(rate=10.0, duration=30.0, seed=1),
        Diurnal(rate=10.0, duration=30.0, seed=1, period=60.0),
        FlashCrowd(rate=10.0, duration=30.0, seed=1, burst_at=5.0),
    ):
        times = proc.times()
        assert times, proc.describe()
        assert times == sorted(times)
        assert all(0.0 <= t < proc.duration for t in times)


def test_poisson_count_tracks_rate():
    times = Poisson(rate=10.0, duration=1000.0, seed=42).times()
    # 10k expected arrivals; a seeded draw lands well within +-10%.
    assert 9_000 < len(times) < 11_000


def test_diurnal_trough_quieter_than_peak():
    proc = Diurnal(rate=10.0, duration=1000.0, seed=0,
                   period=1000.0, trough_frac=0.1)
    times = proc.times()
    # phase starts at the trough; half a period later is the peak
    night = sum(1 for t in times if t < 250.0)
    day = sum(1 for t in times if 250.0 <= t < 750.0)
    assert day > 2 * night


def test_flash_crowd_burst_dominates():
    proc = FlashCrowd(rate=20.0, duration=300.0, seed=5,
                      base_frac=0.05, burst_at=100.0, burst_duration=50.0)
    times = proc.times()
    burst = sum(1 for t in times if 100.0 <= t < 150.0)
    # 50s at full rate vs 250s at 5%: the burst holds most arrivals
    assert burst > len(times) / 2


def test_rate_at_shapes():
    d = Diurnal(rate=10.0, period=100.0, trough_frac=0.2)
    assert d.rate_at(0.0) == pytest.approx(2.0)     # trough
    assert d.rate_at(50.0) == pytest.approx(10.0)   # peak
    f = FlashCrowd(rate=10.0, base_frac=0.1, burst_at=10.0, burst_duration=5.0)
    assert f.rate_at(0.0) == pytest.approx(1.0)
    assert f.rate_at(12.0) == pytest.approx(10.0)
    assert f.rate_at(15.0) == pytest.approx(1.0)


def test_max_events_truncates_instead_of_exploding():
    proc = Poisson(rate=1000.0, duration=3600.0, seed=0, max_events=500)
    assert len(proc.times()) == 500


def test_validation():
    with pytest.raises(ValueError, match="rate"):
        Poisson(rate=0.0)
    with pytest.raises(ValueError, match="duration"):
        Poisson(duration=-1.0)
    with pytest.raises(ValueError, match="max_events"):
        Poisson(max_events=0)
    with pytest.raises(ValueError, match="period"):
        Diurnal(period=0.0)
    with pytest.raises(ValueError, match="trough_frac"):
        Diurnal(trough_frac=1.5)
    with pytest.raises(ValueError, match="base_frac"):
        FlashCrowd(base_frac=-0.1)
    with pytest.raises(ValueError, match="burst"):
        FlashCrowd(burst_duration=0.0)


def test_describe_names_the_process():
    assert "Diurnal" in Diurnal(rate=2.0).describe()
    assert ArrivalProcess(rate=3.0, duration=9.0, seed=4).describe() == (
        "ArrivalProcess(rate=3/s, duration=9s, seed=4)"
    )
