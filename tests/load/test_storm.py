"""The power-restore install storm driver and its canonical SLO report."""

import json

import pytest

from repro.cluster import MachineState, PowerState
from repro.faults import PLANS, PowerRestore, SitePowerFailure
from repro.load import StormOptions, run_storm, slo_json


def small_storm(**kw):
    defaults = dict(n_nodes=6, seed=11, deadline=2.0 * 3600.0)
    defaults.update(kw)
    return StormOptions(**defaults)


def test_options_validation():
    with pytest.raises(ValueError, match="node"):
        StormOptions(n_nodes=0)
    with pytest.raises(ValueError, match="fail_at"):
        StormOptions(fail_at=400.0, restore_at=300.0)
    with pytest.raises(ValueError, match="deadline"):
        StormOptions(deadline=0.0)


def test_power_restore_plan_is_registered():
    plan = PLANS["power-restore"]
    kinds = [type(f) for f in plan.faults]
    assert kinds == [SitePowerFailure, PowerRestore]
    assert plan.faults[0].at < plan.faults[1].at


def test_storm_recovers_to_stable_cluster():
    result = run_storm(small_storm())
    assert result.stable
    assert result.time_to_stable is not None and result.time_to_stable > 0
    assert all(m.state is MachineState.UP for m in result.sim.nodes)
    assert all(m.power is PowerState.ON for m in result.sim.nodes)
    rep = result.report
    assert rep["nodes_up"] == rep["n_nodes"] == 6
    # the herd actually hit the install server after the restore
    assert rep["http"]["requests"] > 0
    assert rep["http"]["p99_s"] >= rep["http"]["p50_s"] > 0


def test_storm_injector_logs_both_site_events():
    result = run_storm(small_storm())
    kinds = [rec.kind for rec in result.injector.log]
    assert "site-power-failure" in kinds
    assert "power-restore" in kinds
    failure = next(
        rec for rec in result.injector.log if rec.kind == "site-power-failure"
    )
    assert "6 nodes lost power" in failure.detail


def test_frontend_survives_the_outage():
    """The frontend is on UPS: a site power event never hard-cuts it."""
    result = run_storm(small_storm())
    assert result.sim.frontend.machine.power is PowerState.ON
    assert result.sim.frontend.machine.state is MachineState.UP


def test_slo_report_is_byte_identical_across_runs():
    opts = small_storm()
    a = run_storm(opts).slo_json()
    b = run_storm(opts).slo_json()
    assert a == b
    assert a.endswith("\n")
    # canonical form: sorted keys, no whitespace
    payload = json.loads(a)
    assert a == json.dumps(payload, sort_keys=True,
                           separators=(",", ":")) + "\n"


def test_slo_report_shape():
    rep = run_storm(small_storm()).report
    assert rep["format"] == "repro-storm-slo"
    assert rep["version"] == 1
    assert set(rep) >= {
        "n_nodes", "seed", "autoscale", "stable", "time_to_stable_s",
        "nodes_up", "http", "shed", "autoscaler", "end_time_s",
    }
    assert set(rep["http"]) == {"requests", "p50_s", "p95_s", "p99_s", "max_s"}
    assert set(rep["shed"]) == {"total", "rate", "last_reject_after_restore_s"}
    assert set(rep["autoscaler"]) == {
        "actions", "peak_replicas", "final_replicas", "events",
    }


def test_autoscale_off_runs_without_a_scaler():
    result = run_storm(small_storm(autoscale=False))
    assert result.autoscaler is None
    assert result.scale_events == []
    assert result.report["autoscaler"]["actions"] == 0
    assert result.report["autoscale"] is False


def test_render_mentions_the_verdict():
    result = run_storm(small_storm())
    text = result.render()
    assert "install storm: 6 nodes" in text
    assert ("stable cluster after" in text) or ("NOT stable" in text)
