"""dhcpd under the install storm: same-tick herds, stagger, verdicts.

Satellite coverage for the power-restore scenario: hundreds of nodes
broadcasting DHCPDISCOVER in the same simulated instant, the seeded
per-MAC stagger that spreads the herd, and the bounded-retry verdict a
dead dhcpd produces at storm scale.
"""

import dataclasses

from repro import build_cluster
from repro.cluster import MachineState
from repro.installer import DEFAULT_CALIBRATION
from repro.netsim import Environment
from repro.services import DhcpBinding, DhcpServer, Syslog


def make_dhcp(n_bindings=0):
    env = Environment()
    log = Syslog(env)
    server = DhcpServer(env, log, "frontend-0")
    server.start()
    server.load_bindings(
        [
            DhcpBinding(f"aa:bb:cc:00:{i // 256:02x}:{i % 256:02x}",
                        f"10.1.{i // 256}.{i % 256}", f"compute-0-{i}")
            for i in range(n_bindings)
        ]
    )
    return env, log, server


def test_three_hundred_same_tick_discovers_all_get_leases():
    env, log, server = make_dhcp(n_bindings=300)
    leases = [
        server.discover(f"aa:bb:cc:00:{i // 256:02x}:{i % 256:02x}")
        for i in range(300)
    ]
    assert all(lease is not None for lease in leases)
    # the whole herd was answered in one simulated instant
    assert {lease.granted_at for lease in leases} == {env.now}
    assert len({lease.ip for lease in leases}) == 300
    assert server.discover_count == 300
    assert server.unknown_macs_seen == []
    # every exchange is visible to insert-ethers via syslog
    assert len(log.grep("DHCPDISCOVER")) == 300
    assert len(log.grep("DHCPACK")) == 300


def test_same_tick_storm_with_unknown_macs_keeps_arrival_order():
    env, log, server = make_dhcp(n_bindings=200)
    unknown = [f"de:ad:be:ef:{i // 256:02x}:{i % 256:02x}" for i in range(50)]
    granted = 0
    expected_unknown = []
    for i in range(250):
        if i % 5 == 4:  # every fifth discover is an unadopted node
            mac = unknown[i // 5]
            expected_unknown.append(mac)
            assert server.discover(mac) is None
        else:
            lease = server.discover(
                f"aa:bb:cc:00:{granted // 256:02x}:{granted % 256:02x}"
            )
            assert lease is not None
            granted += 1
    assert server.discover_count == 250
    # unknown MACs are recorded in exact arrival order (insert-ethers
    # adopts nodes in the order their first DISCOVER hit syslog)
    assert server.unknown_macs_seen == expected_unknown
    assert len(log.grep("no free leases")) == 50


def test_rebinding_mid_storm_flips_verdicts_within_the_same_tick():
    env, _, server = make_dhcp(n_bindings=0)
    assert server.discover("aa:aa:aa:00:00:01") is None
    server.load_bindings([DhcpBinding("aa:aa:aa:00:00:01", "10.9.0.1", "c0")])
    lease = server.discover("aa:aa:aa:00:00:01")
    assert lease is not None and lease.granted_at == env.now == 0.0


def test_dhcp_stagger_spreads_the_herd_deterministically():
    """With stagger, first DISCOVERs spread over (0, stagger]; seeded per MAC."""

    def first_discover_times(seed):
        cal = dataclasses.replace(
            DEFAULT_CALIBRATION, dhcp_stagger_seconds=30.0
        )
        sim = build_cluster(n_compute=8, calibration=cal, seed=seed)
        sim.integrate_all()
        t0 = sim.env.now
        for node in sim.nodes:
            node.request_reinstall()
        sim.env.run(until=t0 + 400.0)
        times = {}
        for msg in sim.frontend.syslog.messages:
            if msg.time >= t0 and "DHCPDISCOVER from" in msg.text:
                mac = msg.text.split("DHCPDISCOVER from ")[1].split()[0]
                times.setdefault(mac, msg.time - t0)
        return times

    times = first_discover_times(seed=3)
    assert len(times) == 8
    # stagger actually spread the herd instead of one thundering tick
    assert len(set(times.values())) == 8
    # and the spread is a pure function of the seed and MACs
    assert first_discover_times(seed=3) == times


def test_storm_of_nodes_against_dead_dhcpd_all_reach_bounded_verdicts():
    """Max-attempts at storm scale: every node hangs with a diagnosis."""
    cal = dataclasses.replace(
        DEFAULT_CALIBRATION,
        dhcp_max_attempts=3,
        dhcp_retry_seconds=5.0,
        dhcp_stagger_seconds=10.0,
    )
    sim = build_cluster(n_compute=12, calibration=cal, seed=7)
    sim.integrate_all()
    sim.frontend.dhcp.fail()
    for node in sim.nodes:
        node.request_reinstall()
    for node in sim.nodes:
        sim.env.run(until=node.wait_for_state(MachineState.HUNG))
    assert all(m.state is MachineState.HUNG for m in sim.nodes)
    for node in sim.nodes:
        assert any(
            "DHCP: no answer after 3 attempts" in line
            for line in node.console
        ), node.hostid
