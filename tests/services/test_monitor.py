"""Tests for the Ganglia-style cluster monitor."""

import pytest

from repro import build_cluster
from repro.cluster import MachineState
from repro.services import (
    ClusterMonitor,
    HeartbeatMetrics,
    MonitorDaemon,
    enable_monitoring,
)


@pytest.fixture
def monitored():
    sim = build_cluster(n_compute=3)
    sim.integrate_all()
    monitor = enable_monitoring(
        sim.env, [sim.frontend.machine] + sim.nodes, heartbeat_seconds=10
    )
    sim.env.run(until=sim.env.now + 30)
    return sim, monitor


def test_heartbeats_flow_from_up_nodes(monitored):
    sim, monitor = monitored
    snap = monitor.snapshot()
    assert set(snap) == {"frontend-0", "compute-0-0", "compute-0-1", "compute-0-2"}
    assert monitor.heartbeats_received >= 8
    for m in snap.values():
        assert m.state == "up"
        assert m.packages > 100


def test_metrics_carry_load(monitored):
    sim, monitor = monitored
    sim.nodes[0].user_processes.extend(["gamess", "gamess"])
    sim.env.run(until=sim.env.now + 15)
    assert monitor.snapshot()["compute-0-0"].load == 2


def test_down_node_detected_by_stale_heartbeat(monitored):
    sim, monitor = monitored
    assert monitor.down_hosts() == []
    sim.nodes[1].power_off()
    sim.env.run(until=sim.env.now + 60)
    assert monitor.down_hosts() == ["compute-0-1"]
    assert "compute-0-1" not in monitor.up_hosts()
    # recovery: power back on (hard cycle forced a reinstall) and heartbeat resumes
    sim.nodes[1].power_on()
    sim.env.run(until=sim.nodes[1].wait_for_state(MachineState.UP))
    sim.env.run(until=sim.env.now + 20)
    assert monitor.down_hosts() == []


def test_reinstalling_node_goes_quiet_then_returns(monitored):
    sim, monitor = monitored
    node = sim.nodes[2]
    node.request_reinstall()
    sim.env.run(until=sim.env.now + 120)  # mid-install
    assert "compute-0-2" in monitor.down_hosts()
    sim.env.run(until=node.wait_for_state(MachineState.UP))
    sim.env.run(until=sim.env.now + 20)
    assert monitor.snapshot()["compute-0-2"].install_count == 2


def test_report_is_tabular(monitored):
    _, monitor = monitored
    report = monitor.report()
    assert report.splitlines()[0].startswith("host")
    assert "compute-0-0" in report


def test_stopped_monitor_drops_heartbeats(monitored):
    sim, monitor = monitored
    monitor.stop()
    before = monitor.heartbeats_received
    sim.env.run(until=sim.env.now + 50)
    assert monitor.heartbeats_received == before


def test_age_unseen_host_is_inf():
    from repro.netsim import Environment

    monitor = ClusterMonitor(Environment())
    assert monitor.age("ghost") == float("inf")


def test_expected_host_that_never_heartbeats_reports_down():
    """A host that dies before its first heartbeat must not be invisible."""
    from repro.netsim import Environment

    env = Environment()
    monitor = ClusterMonitor(env)
    monitor.expect("compute-0-9")
    env.run(until=100.0)
    assert monitor.down_hosts() == ["compute-0-9"]
    assert "compute-0-9" not in monitor.up_hosts()
    report = monitor.report()
    assert "compute-0-9" in report and "no-contact" in report


def test_enable_monitoring_expects_every_machine():
    """A node down from the start appears in down_hosts despite zero beats."""
    sim = build_cluster(n_compute=2)
    sim.integrate_all()
    sim.nodes[0].power_off()
    monitor = enable_monitoring(sim.env, sim.nodes, heartbeat_seconds=10)
    sim.env.run(until=sim.env.now + 40)
    assert monitor.heartbeats_received > 0  # the live node is beating
    assert sim.nodes[0].hostid in monitor.down_hosts()
    assert monitor.snapshot().get(sim.nodes[0].hostid) is None


def test_metrics_name_deprecated_but_still_importable():
    """`Metrics` collided with repro.telemetry.metrics.Metrics (the
    counter store); the old name warns and resolves to HeartbeatMetrics."""
    from repro import services
    from repro.services import monitor

    with pytest.warns(DeprecationWarning, match="HeartbeatMetrics"):
        assert monitor.Metrics is HeartbeatMetrics
    with pytest.warns(DeprecationWarning):
        assert services.Metrics is HeartbeatMetrics
    assert "Metrics" not in services.__all__
    assert "HeartbeatMetrics" in services.__all__


def test_telemetry_metrics_is_a_different_class():
    from repro.telemetry.metrics import Metrics as CounterStore

    assert CounterStore is not HeartbeatMetrics
