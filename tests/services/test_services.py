"""Tests for syslog, DHCP, NIS, NFS, and the install HTTP server."""

import pytest

from repro.netsim import Environment, FAST_ETHERNET, HttpError, Network
from repro.rpm import Package, Repository
from repro.services import (
    DhcpBinding,
    DhcpServer,
    InstallServer,
    NfsServer,
    NisClient,
    NisDomain,
    Service,
    ServiceError,
    ServiceState,
    StaleFileHandle,
    Syslog,
    UserAccount,
)


# -- base Service ------------------------------------------------------------


def test_service_lifecycle():
    s = Service("x")
    assert not s.running
    s.start()
    assert s.running
    s.restart()
    assert s.restarts == 1
    s.stop()
    assert s.state is ServiceState.STOPPED


def test_service_fail_and_repair():
    s = Service("x")
    s.start()
    s.fail()
    assert s.state is ServiceState.FAILED
    with pytest.raises(ServiceError):
        s.require_running()
    s.repair()
    assert s.running


def test_service_configure_bumps_generation():
    s = Service("x")
    s.configure("a=1")
    s.configure("a=2")
    assert s.config_generation == 2
    assert s.config_text == "a=2"


# -- syslog ---------------------------------------------------------------------


def test_syslog_records_and_fans_out():
    env = Environment()
    log = Syslog(env)
    seen = []
    log.subscribe(lambda m: seen.append(m.text), facility="dhcpd")
    log.log("dhcpd", "frontend-0", "DHCPDISCOVER from aa:bb")
    log.log("kernel", "frontend-0", "eth0 up")
    assert seen == ["DHCPDISCOVER from aa:bb"]
    assert len(log.messages) == 2


def test_syslog_unsubscribe():
    env = Environment()
    log = Syslog(env)
    seen = []
    unsub = log.subscribe(lambda m: seen.append(m.text))
    log.log("x", "h", "one")
    unsub()
    log.log("x", "h", "two")
    assert seen == ["one"]


def test_syslog_grep():
    env = Environment()
    log = Syslog(env)
    log.log("dhcpd", "h", "DHCPDISCOVER from aa")
    log.log("dhcpd", "h", "DHCPACK on 10.1.1.1")
    assert len(log.grep("DHCPDISCOVER")) == 1
    assert len(log.grep("DHCP", facility="dhcpd")) == 2


def test_syslog_stopped_drops_messages():
    env = Environment()
    log = Syslog(env)
    log.stop()
    log.log("x", "h", "lost")
    assert log.messages == []


# -- DHCP ------------------------------------------------------------------------


@pytest.fixture
def dhcp():
    env = Environment()
    log = Syslog(env)
    server = DhcpServer(env, log, "frontend-0")
    server.start()
    return env, log, server


def test_dhcp_known_mac_gets_lease(dhcp):
    _, _, server = dhcp
    server.load_bindings(
        [DhcpBinding("aa:bb:cc:00:00:01", "10.255.255.254", "compute-0-0")]
    )
    lease = server.discover("aa:bb:cc:00:00:01")
    assert lease.ip == "10.255.255.254"
    assert lease.hostname == "compute-0-0"
    assert lease.next_server == "frontend-0"


def test_dhcp_unknown_mac_logged_for_insert_ethers(dhcp):
    _, log, server = dhcp
    assert server.discover("de:ad:be:ef:00:01") is None
    assert server.unknown_macs_seen == ["de:ad:be:ef:00:01"]
    assert log.grep("DHCPDISCOVER from de:ad:be:ef:00:01")


def test_dhcp_stopped_raises(dhcp):
    _, _, server = dhcp
    server.stop()
    with pytest.raises(ServiceError):
        server.discover("aa:bb:cc:00:00:01")


def test_dhcp_rebinding_replaces_table(dhcp):
    _, _, server = dhcp
    server.load_bindings([DhcpBinding("m1", "10.0.0.1", "a")])
    server.load_bindings([DhcpBinding("m2", "10.0.0.2", "b")], config_text="v2")
    assert server.binding_for("m1") is None
    assert server.binding_for("m2").hostname == "b"
    assert server.config_generation == 1


# -- NIS ---------------------------------------------------------------------------


def test_nis_sync_is_immediate():
    domain = NisDomain("rocks")
    domain.start()
    client = NisClient("compute-0-0", domain)
    client.start()
    domain.add_user(UserAccount("bruno", 500, "/home/bruno"))
    assert client.getpwnam("bruno").uid == 500
    domain.remove_user("bruno")
    with pytest.raises(KeyError):
        client.getpwnam("bruno")


def test_nis_duplicate_user_and_uid_rejected():
    domain = NisDomain("rocks")
    domain.add_user(UserAccount("a", 500, "/home/a"))
    with pytest.raises(ValueError, match="already exists"):
        domain.add_user(UserAccount("a", 501, "/home/a"))
    with pytest.raises(ValueError, match="uid"):
        domain.add_user(UserAccount("b", 500, "/home/b"))


def test_nis_passwd_map_sorted():
    domain = NisDomain("rocks")
    domain.start()
    domain.add_user(UserAccount("zoe", 502, "/home/zoe"))
    domain.add_user(UserAccount("amy", 501, "/home/amy"))
    lines = domain.passwd_map().splitlines()
    assert lines[0].startswith("amy:")
    assert lines[1].startswith("zoe:")


def test_nis_down_domain_fails_lookup():
    domain = NisDomain("rocks")
    domain.add_user(UserAccount("a", 500, "/home/a"))
    client = NisClient("c0", domain)
    client.start()
    with pytest.raises(ServiceError):
        client.getpwnam("a")


# -- NFS ------------------------------------------------------------------------------


def test_nfs_mount_read_write():
    nfs = NfsServer("frontend-0")
    nfs.start()
    nfs.export("/home")
    m = nfs.mount("compute-0-0", "/home", "/home")
    m.write("results.dat", b"42")
    assert m.read("results.dat") == b"42"
    assert m.listdir() == ["results.dat"]


def test_nfs_shared_across_clients():
    nfs = NfsServer("frontend-0")
    nfs.start()
    nfs.export("/home")
    a = nfs.mount("compute-0-0", "/home", "/home")
    b = nfs.mount("compute-0-1", "/home", "/home")
    a.write("x", b"1")
    assert b.read("x") == b"1"


def test_nfs_common_mode_failure_hits_all_clients():
    nfs = NfsServer("frontend-0")
    nfs.start()
    nfs.export("/home")
    mounts = [nfs.mount(f"compute-0-{i}", "/home", "/home") for i in range(4)]
    mounts[0].write("x", b"1")
    nfs.fail()
    assert sorted(nfs.affected_by_failure()) == [f"compute-0-{i}" for i in range(4)]
    for m in mounts:
        with pytest.raises(StaleFileHandle):
            m.read("x")
    nfs.repair()
    assert mounts[3].read("x") == b"1"
    assert nfs.affected_by_failure() == []


def test_nfs_unknown_export_and_double_export():
    nfs = NfsServer("f")
    nfs.start()
    nfs.export("/home")
    with pytest.raises(ValueError):
        nfs.export("/home")
    with pytest.raises(ServiceError):
        nfs.mount("c", "/scratch", "/scratch")


def test_nfs_missing_file():
    nfs = NfsServer("f")
    nfs.start()
    nfs.export("/home")
    m = nfs.mount("c", "/home", "/home")
    with pytest.raises(FileNotFoundError):
        m.read("ghost")


def test_nfs_umount_blocks_io():
    nfs = NfsServer("f")
    nfs.start()
    nfs.export("/home")
    m = nfs.mount("c", "/home", "/home")
    m.umount()
    with pytest.raises(ServiceError):
        m.read("x")
    assert nfs.mounted_clients() == []


def test_nfs_etab_format():
    nfs = NfsServer("f")
    nfs.export("/home")
    nfs.export("/export/apps")
    assert nfs.etab().splitlines() == [
        "/export/apps *(rw,no_root_squash)",
        "/home *(rw,no_root_squash)",
    ]


# -- install server --------------------------------------------------------------------


def make_install_server():
    env = Environment()
    net = Network(env)
    net.attach("frontend", FAST_ETHERNET)
    net.attach("node", FAST_ETHERNET)
    server = InstallServer(env, net, "frontend")
    return env, net, server


def test_publish_and_fetch_package():
    env, _, server = make_install_server()
    pkg = Package("glibc", "2.2.4", "13", size=1_000_000)
    n = server.publish_packages("rocks-dist", [pkg])
    assert n == 1
    assert server.distributions() == ["rocks-dist"]
    resp = env.run(until=server.fetch_package("node", "rocks-dist", pkg))
    assert resp.status == 200
    assert resp.size == 1_000_000
    assert server.bytes_served == 1_000_000


def test_publish_repository():
    env, _, server = make_install_server()
    repo = Repository("r")
    repo.add(Package("a", "1", size=10))
    repo.add(Package("b", "1", size=20))
    assert server.publish_packages("d", repo) == 2
    assert set(server.package_index("d")) == {"a-1-1.i386.rpm", "b-1-1.i386.rpm"}


def test_unpublish_distribution():
    env, _, server = make_install_server()
    pkg = Package("a", "1", size=10)
    server.publish_packages("d", [pkg])
    server.unpublish_distribution("d")
    assert server.distributions() == []

    def go():
        with pytest.raises(HttpError, match="404"):
            yield server.fetch_package("node", "d", pkg)
        return True

    assert env.run(until=env.process(go()))


def test_kickstart_cgi_roundtrip():
    env, _, server = make_install_server()
    server.register_kickstart_cgi(lambda client, path: (f"ks for {client}", 2048))
    resp = env.run(until=server.fetch_kickstart("node"))
    assert resp.body == "ks for node"


def test_failed_server_refuses():
    env, _, server = make_install_server()
    pkg = Package("a", "1", size=10)
    server.publish_packages("d", [pkg])
    server.fail()

    def go():
        with pytest.raises(HttpError, match="503"):
            yield server.fetch_package("node", "d", pkg)
        return True

    assert env.run(until=env.process(go()))
    server.repair()
    resp = env.run(until=server.fetch_package("node", "d", pkg))
    assert resp.status == 200
