"""MsgTree: identical-output merging and deterministic rendering."""

from repro.exec import MsgTree


def test_identical_messages_merge_to_one_line():
    tree = MsgTree()
    for i in range(4096):
        if i != 39:
            tree.add(f"node{i}", "2.4.14-rocks")
    rendered = tree.render()
    assert rendered == "node[0-38,40-4095] (4095): 2.4.14-rocks"


def test_distinct_messages_stay_separate():
    tree = MsgTree()
    tree.add("node0", "ok")
    tree.add("node1", "ok")
    tree.add("node2", "FAIL")
    assert tree.render() == "node[0-1] (2): ok\nnode2 (1): FAIL"


def test_multiline_messages_group_by_full_message():
    tree = MsgTree()
    for node in ("node0", "node1"):
        tree.add(node, "line one")
        tree.add(node, "line two")
    tree.add("node2", "line one")
    blocks = dict((msg, nodes.fold()) for msg, nodes in tree.walk())
    assert blocks == {"line one\nline two": "node[0-1]", "line one": "node2"}


def test_continuation_lines_are_indented_under_header():
    tree = MsgTree()
    tree.add("node0", "first")
    tree.add("node0", "second")
    lines = tree.render().split("\n")
    assert lines[0] == "node0 (1): first"
    assert lines[1] == " " * len("node0 (1): ") + "second"


def test_render_order_is_by_first_node_not_insertion():
    tree = MsgTree()
    tree.add("node5", "late group")
    tree.add("node0", "early group")
    assert tree.render().splitlines()[0].startswith("node0")


def test_insertion_order_independence():
    a, b = MsgTree(), MsgTree()
    rows = [(f"node{i}", "msg-a" if i % 3 else "msg-b") for i in range(100)]
    for node, msg in rows:
        a.add(node, msg)
    for node, msg in reversed(rows):
        b.add(node, msg)
    assert a.render() == b.render()
