"""Nodeset targeting through the frontend tool surfaces (§6.4).

cluster-fork / cluster-fork-exec over nodeset expressions and database
group sources, and campaign targeting via ``chaos_reinstall(targets=)``.
"""

import pytest

from repro import build_cluster
from repro.cluster import MachineState
from repro.core.tools import cluster_fork, cluster_fork_exec, frontend_groups
from repro.exec import ExecOptions, ExecState, NodeSet
from repro.faults import campaign_size, chaos_reinstall, select_machines


@pytest.fixture(scope="module")
def sim():
    s = build_cluster(n_compute=4)
    s.integrate_all()
    return s


def echo(machine, proc):
    proc.stdout.append(machine.hostid)
    return 0


class TestFrontendGroups:
    def test_at_compute_resolves_membership(self, sim):
        ns = NodeSet("@compute", resolver=frontend_groups(sim.frontend))
        assert ns.fold() == "compute-0-[0-3]"

    def test_at_all_and_at_cabinet(self, sim):
        resolver = frontend_groups(sim.frontend)
        assert NodeSet("@all", resolver=resolver).fold() == "compute-0-[0-3]"
        assert NodeSet("@cabinet0", resolver=resolver).fold() == \
            "compute-0-[0-3]"

    def test_unknown_group(self, sim):
        from repro.exec import NodeSetParseError

        with pytest.raises(NodeSetParseError, match="unknown group"):
            NodeSet("@warehouse", resolver=frontend_groups(sim.frontend))


class TestClusterForkNodesets:
    def test_fork_accepts_nodeset_expression(self, sim):
        session = cluster_fork(sim.frontend, echo, nodes="compute-0-[1-2]")
        assert sorted(session.exit_codes) == ["compute-0-1", "compute-0-2"]

    def test_fork_accepts_group(self, sim):
        session = cluster_fork(sim.frontend, echo, nodes="@compute")
        assert len(session.processes) == 4

    def test_fork_exec_classifies_down_node(self, sim):
        sim.nodes[3].power_off()
        try:
            report = cluster_fork_exec(
                sim.frontend, echo, nodes="@compute",
                options=ExecOptions(seed=1),
            )
            assert report.count(ExecState.OK) == 3
            dead = report.results["compute-0-3"]
            assert dead.state is ExecState.NODE_DEAD
        finally:
            sim.nodes[3].power_on()
            sim.env.run(until=sim.nodes[3].wait_for_state(MachineState.UP))

    def test_fork_exec_report_is_gathered(self, sim):
        def uname(machine, proc):
            proc.stdout.append("2.4.9-5")
            return 0

        report = cluster_fork_exec(sim.frontend, uname,
                                   nodes="compute-0-[0-2]")
        assert report.msgtree().render() == \
            "compute-0-[0-2] (3): 2.4.9-5"


class TestCampaignTargeting:
    def test_campaign_size_from_aliases(self):
        assert campaign_size("node[0-31]") == 32
        assert campaign_size("compute-1-[0-3]") == 36  # rack 1 rank 3
        with pytest.raises(ValueError):
            campaign_size("gateway")

    def test_select_machines_by_name_and_alias(self, sim):
        assert [m.hostid for m in select_machines(sim, "compute-0-[1-2]")] \
            == ["compute-0-1", "compute-0-2"]
        assert [m.hostid for m in select_machines(sim, "node[0-1]")] \
            == ["compute-0-0", "compute-0-1"]
        assert len(select_machines(sim, "@compute")) == 4
        with pytest.raises(ValueError, match="does not match"):
            select_machines(sim, "node99")

    def test_chaos_reinstall_targets_subset(self):
        result = chaos_reinstall(n_nodes=4, plan="none", targets="node[0-1]")
        assert result.n_nodes == 2
        assert result.completion_rate == 1.0
        hosts = {n.host for n in result.report.nodes}
        assert hosts == {"compute-0-0", "compute-0-1"}

    def test_chaos_reinstall_grows_cluster_to_fit(self):
        result = chaos_reinstall(n_nodes=2, plan="none", targets="node[0-4]")
        assert result.n_nodes == 5
