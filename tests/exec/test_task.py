"""ExecTask engine: classification, fanout, retries, dead nodes, determinism."""

import os
import subprocess
import sys

import pytest

from repro.cluster import Machine, MachineState, PowerState
from repro.cluster.hardware import CATALOG, MacAllocator
from repro.exec import (
    ExecLab,
    ExecOptions,
    ExecState,
    ExecTask,
    LabOptions,
)
from repro.netsim import Environment
from repro.scheduler.rexec import RemoteEnvironment, Rexec

ROOT = RemoteEnvironment(user="root", uid=0, gid=0, cwd="/root")


def small_cluster(env, n=4):
    """n machines named node0..node{n-1}, forced UP (no boot path)."""
    macs = MacAllocator()
    machines = {}
    for i in range(n):
        m = Machine(env, CATALOG["pIII-733-myri"], macs.allocate(),
                    name=f"node{i}")
        m.power = PowerState.ON
        m.state = MachineState.UP
        machines[m.name] = m
    return machines


def run_task(env, machines, command, targets=None, **opts):
    rexec = Rexec(env, machines.__getitem__)
    task = ExecTask(env, rexec, ExecOptions(**opts))
    driver = task.run(targets or sorted(machines), command)
    env.run(until=driver)
    return driver.value


class TestClassification:
    def test_all_ok(self):
        env = Environment()
        machines = small_cluster(env)

        def command(machine, proc):
            proc.stdout.append("hello")
            return 0

        report = run_task(env, machines, command, fanout=2)
        assert report.ok
        assert report.count(ExecState.OK) == 4
        assert all(r.attempts == 1 for r in report.results.values())

    def test_nonzero_exit_exhausts_retries(self):
        env = Environment()
        machines = small_cluster(env, n=2)
        report = run_task(env, machines, lambda m, p: 1, max_retries=2)
        assert report.count(ExecState.RETRIES_EXHAUSTED) == 2
        assert all(r.attempts == 3 for r in report.results.values())

    def test_retry_recovers_flaky_node(self):
        env = Environment()
        machines = small_cluster(env, n=1)
        calls = []

        def flaky(machine, proc):
            calls.append(env.now)
            return 1 if len(calls) == 1 else 0

        report = run_task(env, machines, flaky, max_retries=2)
        result = report.results["node0"]
        assert result.state is ExecState.OK and result.attempts == 2
        # the retry waited out a backoff delay
        assert calls[1] > calls[0]

    def test_timeout_classified_after_final_attempt(self):
        env = Environment()
        machines = small_cluster(env, n=1)

        def forever(machine, proc):
            yield machine.env.timeout(10_000.0)
            return 0

        report = run_task(env, machines, forever,
                          command_timeout=10.0, max_retries=1)
        result = report.results["node0"]
        assert result.state is ExecState.TIMEOUT
        assert result.attempts == 2

    def test_down_node_is_prompt_node_dead(self):
        env = Environment()
        machines = small_cluster(env, n=3)
        machines["node1"].power_off()
        report = run_task(env, machines, lambda m, p: 0)
        assert report.results["node1"].state is ExecState.NODE_DEAD
        assert "off" in report.results["node1"].error
        assert report.count(ExecState.OK) == 2

    def test_unknown_host_is_node_dead(self):
        env = Environment()
        machines = small_cluster(env, n=1)
        report = run_task(env, machines, lambda m, p: 0,
                          targets=["node0", "node9"])
        assert report.results["node9"].state is ExecState.NODE_DEAD
        assert report.results["node9"].error == "unknown host"


class TestDeadWatchRegression:
    """A host powering off mid-command must resolve promptly, not hang."""

    def _long_command(self, machine, proc):
        yield machine.env.timeout(500.0)
        proc.stdout.append("survived")
        return 0

    def test_pdu_kill_mid_command_yields_node_dead(self):
        env = Environment()
        machines = small_cluster(env, n=2)

        def pdu():
            yield env.timeout(5.0)
            machines["node1"].power_off(hard=True)

        env.process(pdu(), name="pdu")
        report = run_task(env, machines, self._long_command,
                          command_timeout=None)
        dead = report.results["node1"]
        assert dead.state is ExecState.NODE_DEAD
        assert "died mid-command" in dead.error
        # the death resolved at the kill, long before the command's 500 s
        assert dead.finished_at == pytest.approx(5.0)
        assert report.results["node0"].state is ExecState.OK

    def test_hang_mid_command_yields_node_dead(self):
        env = Environment()
        machines = small_cluster(env, n=1)

        def freeze():
            yield env.timeout(3.0)
            machines["node0"].hang("nmi watchdog")

        env.process(freeze(), name="freeze")
        report = run_task(env, machines, self._long_command,
                          command_timeout=None)
        assert report.results["node0"].state is ExecState.NODE_DEAD
        assert report.finished_at == pytest.approx(3.0)

    def test_dead_watch_does_not_leak_state_waiters(self):
        env = Environment()
        machines = small_cluster(env, n=1)
        run_task(env, machines, lambda m, p: 0, max_retries=0)
        assert machines["node0"]._state_waiters == []


class TestFanoutWindow:
    def test_window_never_exceeds_fanout(self):
        env = Environment()
        machines = small_cluster(env, n=12)
        in_flight = {"now": 0, "peak": 0}

        def command(machine, proc):
            in_flight["now"] += 1
            in_flight["peak"] = max(in_flight["peak"], in_flight["now"])
            yield machine.env.timeout(10.0)
            in_flight["now"] -= 1
            return 0

        report = run_task(env, machines, command, fanout=3)
        assert report.ok
        assert in_flight["peak"] == 3

    def test_completion_slides_window_without_barrier(self):
        env = Environment()
        machines = small_cluster(env, n=4)
        starts = {}

        def command(machine, proc):
            starts[machine.hostid] = machine.env.now
            # node0 is slow; the rest are quick
            delay = 100.0 if machine.hostid == "node0" else 1.0
            yield machine.env.timeout(delay)
            return 0

        run_task(env, machines, command, fanout=2)
        # node2/node3 must start as quick slots free up, not wait for node0
        assert starts["node2"] == pytest.approx(1.0)
        assert starts["node3"] == pytest.approx(2.0)


class TestStragglers:
    def test_slow_node_flagged(self):
        lab = ExecLab(LabOptions(nodes=64, seed=7, straggler_fraction=0.05))
        report = lab.run(exec_options=ExecOptions(
            seed=7, straggler_interval=5.0, straggler_factor=2.0,
            straggler_after=0.3,
        ))
        assert len(report.stragglers) > 0
        for name in report.stragglers:
            assert name in lab.slow
        # stragglers still completed OK — slow is not dead
        assert all(report.results[n].state is ExecState.OK
                   for n in report.stragglers)


class TestScale:
    def test_4096_nodes_with_dead_and_stragglers_completes(self):
        lab = ExecLab(LabOptions(
            nodes=4096, seed=42, dead_fraction=0.05,
            straggler_fraction=0.02,
        ))
        report = lab.run(exec_options=ExecOptions(fanout=64, seed=42))
        assert len(report.results) == 4096  # every node classified
        assert report.count(ExecState.OK) + report.count(ExecState.NODE_DEAD) \
            == 4096
        # 204 nodes are selected as dead, but one doomed node finishes
        # its command before the PDU cut lands — it counts as OK (the
        # cut missed the command), deterministically for this seed
        assert report.count(ExecState.NODE_DEAD) == 203
        # the gathered report folds 3892 identical answers into one line
        tree_lines = report.msgtree().render().splitlines()
        assert len(tree_lines) == 1


SUBPROCESS_SCRIPT = """\
from repro.exec import ExecLab, ExecOptions, LabOptions
lab = ExecLab(LabOptions(nodes=512, seed=42, dead_fraction=0.05,
                         straggler_fraction=0.02))
report = lab.run(exec_options=ExecOptions(
    fanout=64, seed=42, straggler_interval=10.0, straggler_factor=2.5))
import sys
sys.stdout.write(report.render())
"""


class TestDeterminism:
    def test_same_seed_same_report_bytes(self):
        out = []
        for _ in range(2):
            lab = ExecLab(LabOptions(nodes=256, seed=9, dead_fraction=0.04,
                                     straggler_fraction=0.03))
            report = lab.run(exec_options=ExecOptions(fanout=32, seed=9))
            out.append(report.render())
        assert out[0] == out[1]

    def test_different_seed_different_outcome(self):
        renders = set()
        for seed in (1, 2):
            lab = ExecLab(LabOptions(nodes=128, seed=seed, dead_fraction=0.1))
            renders.add(lab.run(
                exec_options=ExecOptions(fanout=16, seed=seed)).render())
        assert len(renders) == 2

    @pytest.mark.parametrize("hashseed", ["0", "1", "424242"])
    def test_report_bytes_stable_across_hash_seeds(self, hashseed):
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env = dict(os.environ,
                   PYTHONHASHSEED=hashseed,
                   PYTHONPATH=os.path.abspath(src))
        out = subprocess.run(
            [sys.executable, "-c", SUBPROCESS_SCRIPT],
            capture_output=True, text=True, env=env, check=True,
        ).stdout
        expected_env = dict(env, PYTHONHASHSEED="7777")
        expected = subprocess.run(
            [sys.executable, "-c", SUBPROCESS_SCRIPT],
            capture_output=True, text=True, env=expected_env, check=True,
        ).stdout
        assert out == expected
        assert "exec: 512 targets" in out
