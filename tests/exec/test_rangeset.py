"""RangeSet: parsing, folding round-trips, padding, set algebra."""

import pytest

from repro.exec import RangeSet, RangeSetParseError


class TestParsing:
    def test_single_value(self):
        rs = RangeSet("5")
        assert list(rs) == [5]
        assert rs.fold() == "5"

    def test_simple_range(self):
        assert list(RangeSet("0-4")) == [0, 1, 2, 3, 4]

    def test_comma_list_merges(self):
        assert RangeSet("0-4,2-8").fold() == "0-8"

    def test_step(self):
        assert list(RangeSet("0-10/2")) == [0, 2, 4, 6, 8, 10]

    def test_reversed_bounds_rejected(self):
        with pytest.raises(RangeSetParseError):
            RangeSet("9-3")

    @pytest.mark.parametrize("bad", ["a-b", "1-", "-3", "1-2-3", "0-4/0", ","])
    def test_malformed_rejected(self, bad):
        with pytest.raises(RangeSetParseError):
            RangeSet(bad)

    def test_empty_text_is_empty_set(self):
        rs = RangeSet("")
        assert len(rs) == 0 and not rs and rs.fold() == ""


class TestFoldRoundTrip:
    @pytest.mark.parametrize(
        "text",
        ["0-1023", "0-38,40,42-99", "5", "0,2,4,6,8", "1-3,7-9,100"],
    )
    def test_parse_fold_parse_identity(self, text):
        once = RangeSet(text)
        again = RangeSet(once.fold())
        assert once == again
        assert again.fold() == once.fold()

    def test_fold_is_canonical_for_scrambled_input(self):
        assert RangeSet("42,0-10,5-20,41").fold() == "0-20,41-42"

    def test_overlapping_merge_roundtrip(self):
        rs = RangeSet("0-10")
        rs.update(RangeSet("5-15"))
        rs.update(RangeSet("20"))
        assert rs.fold() == "0-15,20"
        assert RangeSet(rs.fold()) == rs


class TestZeroPadding:
    def test_padding_detected(self):
        rs = RangeSet("001-003")
        assert rs.padding == 3
        assert list(rs.strings()) == ["001", "002", "003"]

    def test_padding_round_trips(self):
        rs = RangeSet("007-010")
        assert rs.fold() == "007-010"
        assert RangeSet(rs.fold()) == rs

    def test_unpadded_has_no_padding(self):
        assert RangeSet("7-10").padding == 0

    def test_padded_and_unpadded_are_distinct(self):
        assert RangeSet("007") != RangeSet("7")


class TestSetAlgebra:
    def test_union(self):
        assert (RangeSet("0-4") | RangeSet("3-8")).fold() == "0-8"

    def test_intersection(self):
        assert (RangeSet("0-10") & RangeSet("5-20")).fold() == "5-10"

    def test_difference(self):
        assert (RangeSet("0-10") - RangeSet("3-5")).fold() == "0-2,6-10"

    def test_xor(self):
        assert (RangeSet("0-5") ^ RangeSet("4-8")).fold() == "0-3,6-8"

    def test_contains_and_len(self):
        rs = RangeSet("0-9,20")
        assert 5 in rs and 20 in rs and 15 not in rs
        assert len(rs) == 11

    def test_discard(self):
        rs = RangeSet("0-5")
        rs.discard(3)
        rs.discard(99)  # absent: no-op
        assert rs.fold() == "0-2,4-5"
