"""NodeSet: folding, expansion, groups, set algebra, parse errors."""

import pytest

from repro.exec import NodeSet, NodeSetParseError, fold_nodes


class TestParsingAndFolding:
    def test_bracket_expansion(self):
        ns = NodeSet("node[0-3]")
        assert ns.expand() == ["node0", "node1", "node2", "node3"]

    def test_single_node_folds_unbracketed(self):
        assert NodeSet("node[5]").fold() == "node5"
        assert NodeSet("node5").fold() == "node5"

    def test_fold_round_trip(self):
        for text in ["node[0-1023]", "compute-0-[0-31],compute-1-[0-15]",
                     "node[0-38,40,42-99]", "gateway,node[0-3]"]:
            ns = NodeSet(text)
            assert NodeSet(ns.fold()) == ns

    def test_plain_names_with_numbers_fold_together(self):
        assert fold_nodes(["node3", "node1", "node2"]) == "node[1-3]"

    def test_scalar_names_kept_verbatim(self):
        ns = NodeSet("gateway,frontend-0")
        assert "gateway" in ns.expand()

    def test_zero_padding_preserved(self):
        ns = NodeSet("node[001-003]")
        assert ns.expand() == ["node001", "node002", "node003"]
        assert ns.fold() == "node[001-003]"

    def test_padded_and_unpadded_patterns_stay_separate(self):
        ns = NodeSet("node[001-003],node[1-3]")
        assert len(ns) == 6

    def test_prefix_and_suffix(self):
        ns = NodeSet("compute-0-[0-2]")
        assert ns.expand() == ["compute-0-0", "compute-0-1", "compute-0-2"]

    def test_overlapping_ranges_merge(self):
        assert NodeSet("node[0-10],node[5-20]").fold() == "node[0-20]"

    @pytest.mark.parametrize("bad", ["node[0-3", "node0-3]", "node[[0]]",
                                     "node[0][1]", "node[]", ""])
    def test_malformed_rejected(self, bad):
        if bad == "":
            assert not NodeSet(bad)  # empty text -> empty set
        else:
            with pytest.raises(NodeSetParseError):
                NodeSet(bad)

    def test_iteration_is_sorted_and_deterministic(self):
        ns = NodeSet("zeta[1-2],alpha[5-6],gateway")
        assert ns.expand() == ["alpha5", "alpha6", "zeta1", "zeta2", "gateway"]


class TestSetAlgebra:
    def test_union(self):
        assert (NodeSet("node[0-4]") | NodeSet("node[3-8]")).fold() == "node[0-8]"

    def test_intersection(self):
        out = NodeSet("node[0-10]") & NodeSet("node[5-20]")
        assert out.fold() == "node[5-10]"

    def test_difference(self):
        out = NodeSet("node[0-10]") - NodeSet("node[3-5]")
        assert out.fold() == "node[0-2,6-10]"

    def test_xor(self):
        out = NodeSet("node[0-5]") ^ NodeSet("node[4-8]")
        assert out.fold() == "node[0-3,6-8]"

    def test_algebra_spans_scalars(self):
        out = NodeSet("node[0-1],gateway") | NodeSet("gateway,nas")
        assert out.fold() == "node[0-1],gateway,nas"

    def test_membership(self):
        ns = NodeSet("node[0-99],gateway")
        assert "node42" in ns and "gateway" in ns
        assert "node100" not in ns and "other" not in ns


class TestGroups:
    RACKS = {
        "compute": "compute-0-[0-31],compute-1-[0-31]",
        "cabinet0": ["compute-0-" + str(i) for i in range(32)],
    }

    def resolver(self, group):
        return self.RACKS[group]

    def test_group_expands_via_resolver(self):
        ns = NodeSet("@compute", resolver=self.resolver)
        assert len(ns) == 64

    def test_group_as_iterable(self):
        ns = NodeSet("@cabinet0", resolver=self.resolver)
        assert ns.fold() == "compute-0-[0-31]"

    def test_group_composes_with_literals(self):
        ns = NodeSet("@cabinet0,node7", resolver=self.resolver)
        assert len(ns) == 33

    def test_unknown_group_raises(self):
        with pytest.raises(NodeSetParseError, match="unknown group @nope"):
            NodeSet("@nope", resolver=self.resolver)

    def test_group_without_resolver_raises(self):
        with pytest.raises(NodeSetParseError, match="no group source"):
            NodeSet("@compute")
