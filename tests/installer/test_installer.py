"""Tests for hardware detection, partitioning, and the install process."""

import pytest

from repro.cluster import (
    CATALOG,
    ClusterHardware,
    MachineState,
    Partition,
)
from repro.installer import (
    DEFAULT_CALIBRATION,
    InstallProfile,
    KickstartInstaller,
    PartitionError,
    PartitionPlan,
    PartitionRequest,
    PostScript,
    apply_plan,
    probe,
)
from repro.netsim import FAST_ETHERNET, Environment
from repro.rpm import Package
from repro.services import DhcpBinding, DhcpServer, InstallServer, Syslog


# -- hwdetect -------------------------------------------------------------------


def test_probe_scsi_machine():
    hw = probe(CATALOG["pIII-733-dual"])
    assert hw.disk_module == "aic7xxx"
    assert hw.disk_device == "sda"
    assert not hw.needs_myrinet_rebuild
    assert hw.relative_cpu_speed == pytest.approx(1.0)


def test_probe_myrinet_ide_machine():
    hw = probe(CATALOG["pIII-1000-myri"])
    assert hw.disk_module == "ide-disk"
    assert hw.needs_myrinet_rebuild
    assert hw.modules == ("ide-disk", "eepro100")  # gm NOT loadable yet


def test_probe_ia64_raid():
    hw = probe(CATALOG["ia64-800-raid"])
    assert hw.cpu_arch == "ia64"
    assert hw.disk_module == "megaraid"


# -- partitioning -----------------------------------------------------------------


def machine_for_partition_tests():
    env = Environment()
    cluster = ClusterHardware(env)
    return cluster.add_machine("pIII-733-myri")


def test_default_plan_creates_root_swap_state():
    m = machine_for_partition_tests()
    formatted = apply_plan(m, PartitionPlan.default())
    assert set(formatted) == {"/", "swap", "/state/partition1"}
    assert m.root_partition().name == "/"


def test_reinstall_preserves_nonroot_data():
    m = machine_for_partition_tests()
    apply_plan(m, PartitionPlan.default())
    m.partitions["/state/partition1"].data["results"] = [1, 2, 3]
    m.partitions["/"].data["etc/passwd"] = "root"
    formatted = apply_plan(m, PartitionPlan.default())  # reinstall
    assert m.partitions["/state/partition1"].data == {"results": [1, 2, 3]}
    assert m.partitions["/"].data == {}  # root reformatted
    assert "/state/partition1" not in formatted


def test_plan_too_big_for_disk():
    m = machine_for_partition_tests()  # 20 GB disk
    plan = PartitionPlan((PartitionRequest("/", 40 * 1024),))
    with pytest.raises(PartitionError):
        apply_plan(m, plan)


def test_plan_without_root_rejected():
    m = machine_for_partition_tests()
    plan = PartitionPlan((PartitionRequest("/scratch", 1024),))
    with pytest.raises(ValueError, match="no root"):
        apply_plan(m, plan)


def test_grow_partition_takes_remainder():
    m = machine_for_partition_tests()  # 20 GB
    apply_plan(m, PartitionPlan.default())
    grown = m.partitions["/state/partition1"].size_mb
    assert grown == 20 * 1024 - 4096 - 1024


# -- the full install process -------------------------------------------------------


def small_packages():
    """A small, fast profile that still carries the GM build toolchain."""
    pkgs = [Package("glibc", "2.2.4", size=4_000_000)]
    pkgs += [
        Package(f"pkg{i}", "1.0", size=2_000_000, requires=("glibc",))
        for i in range(5)
    ]
    pkgs += [
        Package("gcc", "2.96", size=2_000_000),
        Package("make", "3.79.1", size=1_000_000),
        Package("kernel-source", "2.4.9", size=2_000_000),
        Package("kernel", "2.4.9", "5", size=2_000_000),
    ]
    return pkgs


class Rig:
    """Minimal frontend: DHCP + install server + static kickstart CGI."""

    def __init__(self, profile_factory=None, n_nodes=1, model="pIII-733-myri"):
        self.env = Environment()
        self.cluster = ClusterHardware(self.env, seed=3)
        self.cluster.network.attach("frontend", FAST_ETHERNET)
        self.syslog = Syslog(self.env)
        self.dhcp = DhcpServer(self.env, self.syslog, "frontend")
        self.dhcp.start()
        self.server = InstallServer(self.env, self.cluster.network, "frontend")
        self.packages = small_packages()
        self.server.publish_packages("rocks", self.packages)

        def default_profile():
            return InstallProfile(
                dist_name="rocks",
                packages=list(self.packages),
                kickstart_text="# generated",
            )

        self.profile_factory = profile_factory or default_profile
        self.server.register_kickstart_cgi(
            lambda client, path: (self.profile_factory(), 4096)
        )
        self.installer = KickstartInstaller(self.dhcp, self.server)
        self.nodes = []
        for i in range(n_nodes):
            node = self.cluster.add_machine(model)
            self.installer.attach(node)
            self.dhcp.load_bindings(
                [
                    DhcpBinding(n.mac, f"10.255.255.{254 - j}", f"compute-0-{j}")
                    for j, n in enumerate(self.nodes + [node])
                ]
            )
            self.nodes.append(node)

    def install_all(self):
        for node in self.nodes:
            node.power_on()
        for node in self.nodes:
            self.env.run(until=node.wait_for_state(MachineState.UP))
        return [n.last_install_report for n in self.nodes]


def test_install_completes_and_populates_node():
    rig = Rig()
    (report,) = rig.install_all()
    node = rig.nodes[0]
    assert node.is_up
    assert node.install_count == 1
    assert len(node.rpmdb) == len(rig.packages)
    assert node.kernel_version == "2.4.9-5"
    assert node.ip == "10.255.255.254"
    assert report.n_packages == len(rig.packages)
    assert report.bytes_transferred == sum(p.size for p in rig.packages)


def test_install_report_phases_accounted():
    rig = Rig()
    (report,) = rig.install_all()
    for phase in ["dhcp", "kickstart", "partition", "packages", "post", "myrinet"]:
        assert report.phase_seconds.get(phase, 0) > 0, phase
    assert report.myrinet_rebuilt
    assert sum(report.phase_seconds.values()) <= report.total_seconds + 1e-6


def test_install_without_myrinet_skips_rebuild():
    rig = Rig(model="athlon-1200")
    (report,) = rig.install_all()
    assert not report.myrinet_rebuilt
    assert "myrinet" not in report.phase_seconds


def test_myrinet_penalty_is_20_to_30_percent():
    """§6.3: the source rebuild adds a 20-30% reinstall-time penalty."""
    with_myri = Rig(model="pIII-733-myri").install_all()[0]
    without = Rig(model="pIII-733-dual").install_all()[0]
    # Same 733 MHz CPU; compare only the installer's own phases (the
    # small 10-package profile shrinks the base, so compare directly
    # against the myrinet phase share at full calibration elsewhere).
    penalty = with_myri.phase_seconds["myrinet"]
    assert penalty > 0
    assert with_myri.total_seconds > without.total_seconds


def test_faster_cpu_installs_faster():
    slow = Rig(model="pIII-733-myri").install_all()[0]
    fast = Rig(model="pIII-1000-myri").install_all()[0]
    assert fast.phase_seconds["packages"] < slow.phase_seconds["packages"]
    assert fast.phase_seconds["myrinet"] < slow.phase_seconds["myrinet"]


def test_node_waits_for_dhcp_binding():
    """A node not in the database retries DISCOVER until bound."""
    rig = Rig()
    node = rig.nodes[0]
    rig.dhcp.load_bindings([])  # forget the node
    node.power_on()
    # let it retry for a while: stays INSTALLING, syslog fills with DISCOVERs
    rig.env.run(until=500)
    assert node.state is MachineState.INSTALLING
    assert len(rig.syslog.grep(f"DHCPDISCOVER from {node.mac}")) >= 2
    # now the admin runs insert-ethers (simulated by restoring the binding)
    rig.dhcp.load_bindings(
        [DhcpBinding(node.mac, "10.255.255.254", "compute-0-0")]
    )
    rig.env.run(until=node.wait_for_state(MachineState.UP))
    assert node.is_up


def test_install_progress_on_console():
    rig = Rig()
    rig.install_all()
    console = "\n".join(rig.nodes[0].console)
    assert "Package Installation" in console
    assert "installation complete" in console


def test_on_progress_callback():
    lines = []
    rig = Rig()
    rig.installer.on_progress = lambda m, line: lines.append((m.hostid, line))
    rig.install_all()
    assert any("Package Installation" in l for _, l in lines)


def test_power_cycle_mid_install_restarts_cleanly():
    rig = Rig()
    node = rig.nodes[0]
    node.power_on()
    rig.env.run(until=node.wait_for_state(MachineState.INSTALLING))
    rig.env.run(until=rig.env.now + 150)  # partway through packages
    node.power_off(hard=True)
    assert len(node.rpmdb) == 0  # half-written root wiped
    node.power_on()
    rig.env.run(until=node.wait_for_state(MachineState.UP))
    assert node.install_count == 1
    assert len(node.rpmdb) == len(rig.packages)
    # the aborted transfer freed its bandwidth
    assert rig.cluster.network.flows.active_flows == 0


def test_two_concurrent_installs_share_and_finish():
    rig = Rig(n_nodes=2)
    reports = rig.install_all()
    assert all(r.n_packages == len(rig.packages) for r in reports)
    assert rig.server.requests_served >= 2 * (len(rig.packages) + 1)


def test_bad_cgi_body_hangs_node_with_diagnostic():
    rig = Rig(profile_factory=lambda: "not a profile")
    node = rig.nodes[0]
    node.power_on()
    rig.env.run(until=node.wait_for_state(MachineState.HUNG))
    assert any("installation failed" in line for line in node.console)
