"""Tests for the Figure 7 install screen and its eKV exposure."""

import pytest

from repro.installer import InstallProgress, render_install_screen


def progress_like_figure7():
    """Figure 7's numbers: dev-3.0.6-5, 340k, 162 total / 38 complete."""
    return InstallProgress(
        current_name="dev-3.0.6-5",
        current_size=340_000,
        current_summary="The most commonly-used entries in the /dev directory.",
        total_packages=162,
        done_packages=38,
        total_bytes=386e6,
        done_bytes=88e6,
        started_at=0.0,
        now=23.0,
    )


def test_progress_accounting():
    p = progress_like_figure7()
    assert p.remaining_packages == 124
    assert p.remaining_bytes == pytest.approx(298e6)
    assert p.elapsed == 23.0
    # ETA at observed rate: 298 MB at 88 MB / 23 s
    assert p.eta == pytest.approx(298e6 / (88e6 / 23.0))


def test_eta_zero_before_any_bytes():
    p = InstallProgress(total_packages=10, total_bytes=1e6, started_at=0, now=5)
    assert p.eta == 0.0


def test_render_matches_figure7_layout():
    screen = render_install_screen(progress_like_figure7())
    assert "Package Installation" in screen
    assert "Name   : dev-3.0.6-5" in screen
    assert "Size   : 340k" in screen
    assert "most commonly-used" in screen
    # the three-row Packages/Bytes/Time table
    assert "Total" in screen and "Completed" in screen and "Remaining" in screen
    assert "162" in screen and "38" in screen and "124" in screen
    assert "386M" in screen and "88M" in screen and "298M" in screen
    assert "<F12> next screen" in screen
    # fixed-width frame
    lines = screen.splitlines()
    assert len({len(l) for l in lines[:-1]}) == 1


def test_screen_over_ekv_live():
    from repro import build_cluster
    from repro.core.tools import EkvConsole, EkvUnreachable, shoot_node
    from repro.cluster import MachineState

    sim = build_cluster(n_compute=1)
    sim.integrate_all()
    node = sim.nodes[0]
    proc = shoot_node(sim.frontend, node)
    sim.env.run(until=node.wait_for_state(MachineState.INSTALLING))
    ekv = EkvConsole(sim.hardware, node)
    sim.env.run(until=sim.env.now + 300)  # mid package phase
    screen = ekv.screen()
    assert "Package Installation" in screen
    assert "Total" in screen
    sim.env.run(until=proc)
