"""Hardened installer hot paths: timeouts, backoff, checksums, DHCP verdict."""

import dataclasses

import pytest

from repro import build_cluster
from repro.cluster import MachineState
from repro.installer import (
    DEFAULT_CALIBRATION,
    InstallCalibration,
    InstallError,
    fetch_with_retry,
)
from repro.netsim import Environment, HttpError, HttpResponse

CAL = InstallCalibration(
    download_timeout_seconds=5.0,
    download_max_attempts=3,
    download_backoff_seconds=2.0,
)


def _drive(env, gen):
    """Run a fetch_with_retry generator to completion; return its value."""
    box = {}

    def wrap():
        box["value"] = yield from gen
    proc = env.process(wrap())
    env.run(until=proc)
    return box["value"]


def _resp(checksum=""):
    return HttpResponse(status=200, path="/pkg", size=1.0, checksum=checksum)


def test_backoff_schedule_is_exponential():
    assert [CAL.download_backoff(a) for a in (1, 2, 3, 4)] == [2.0, 4.0, 8.0, 16.0]


def test_timeout_then_bounded_giveup_timing():
    """Stalled fetches: timeout at 5s, backoffs 2s and 4s, fail at t=21."""
    env = Environment()

    def stalled():
        yield env.timeout(1000.0)

    gen = fetch_with_retry(env, lambda: env.process(stalled()), CAL, "pkg")
    with pytest.raises(InstallError, match="giving up after 3 attempts"):
        _drive(env, gen)
    # (5s timeout + 2s backoff) + (5 + 4) + 5 = 21 simulated seconds
    assert env.now == pytest.approx(21.0)


def test_transient_errors_are_retried_until_success():
    env = Environment()
    calls = []

    def fetch():
        calls.append(env.now)
        if len(calls) < 3:
            raise HttpError(503, "service unavailable")
            yield  # pragma: no cover - makes this a generator
        yield env.timeout(1.0)
        return _resp()

    stats = {}
    gen = fetch_with_retry(
        env, lambda: env.process(fetch()), CAL, "pkg", stats=stats
    )
    resp = _drive(env, gen)
    assert resp.status == 200
    assert stats["retries"] == 2
    # failures at t=0 and t=2 (after the 2s backoff), success attempt at 6
    assert calls == pytest.approx([0.0, 2.0, 6.0])


def test_corrupt_payload_is_refetched():
    env = Environment()
    served = iter(["corrupt:aaaa", "deadbeef"])

    def fetch():
        yield env.timeout(1.0)
        return _resp(checksum=next(served))

    stats = {}
    gen = fetch_with_retry(
        env,
        lambda: env.process(fetch()),
        CAL,
        "pkg",
        expect_checksum="deadbeef",
        stats=stats,
    )
    resp = _drive(env, gen)
    assert resp.checksum == "deadbeef"
    assert stats["corrupt"] == 1
    assert stats["retries"] == 1


def test_unverifiable_response_passes_without_checksum():
    """Empty server-side checksum means no verification (balanced sources)."""
    env = Environment()

    def fetch():
        yield env.timeout(1.0)
        return _resp(checksum="")

    gen = fetch_with_retry(
        env, lambda: env.process(fetch()), CAL, "pkg", expect_checksum="deadbeef"
    )
    assert _drive(env, gen).status == 200


def test_persistent_corruption_exhausts_attempts():
    env = Environment()

    def fetch():
        yield env.timeout(1.0)
        return _resp(checksum="corrupt:bad")

    gen = fetch_with_retry(
        env, lambda: env.process(fetch()), CAL, "pkg", expect_checksum="good"
    )
    with pytest.raises(InstallError, match="checksum mismatch"):
        _drive(env, gen)


def test_non_retriable_error_propagates_immediately():
    env = Environment()

    def fetch():
        raise ValueError("bug in the CGI")
        yield  # pragma: no cover - makes this a generator

    gen = fetch_with_retry(env, lambda: env.process(fetch()), CAL, "pkg")
    with pytest.raises(ValueError, match="bug in the CGI"):
        _drive(env, gen)
    assert env.now == 0.0  # no retries were attempted


def test_dhcp_max_attempts_yields_failure_verdict():
    """A dead dhcpd hangs the node with a DHCP diagnosis, not forever."""
    cal = dataclasses.replace(
        DEFAULT_CALIBRATION, dhcp_max_attempts=3, dhcp_retry_seconds=5.0
    )
    sim = build_cluster(n_compute=1, calibration=cal)
    sim.integrate_all()
    node = sim.nodes[0]
    sim.frontend.dhcp.fail()
    node.request_reinstall()
    sim.env.run(until=node.wait_for_state(MachineState.HUNG))
    assert any("DHCP: no answer after 3 attempts" in line for line in node.console)


def test_clean_install_reports_zero_retries():
    sim = build_cluster(n_compute=1)
    sim.integrate_all()
    report = sim.frontend.installer.reports[-1]
    assert report.download_retries == 0
    assert report.corrupt_refetches == 0


def test_server_outage_shows_up_in_install_report_counters():
    """A mid-install crash+repair is visible as retries in the report."""
    sim = build_cluster(n_compute=1)
    sim.integrate_all()
    node = sim.nodes[0]
    node.request_reinstall()
    sim.env.run(until=node.wait_for_state(MachineState.INSTALLING))
    sim.env.run(until=sim.env.now + 200)  # mid package pull
    sim.frontend.install_server.fail()
    sim.env.run(until=sim.env.now + 20)
    sim.frontend.install_server.repair()
    sim.env.run(until=node.wait_for_state(MachineState.UP))
    report = sim.frontend.installer.reports[-1]
    assert report.download_retries > 0
    assert len(node.rpmdb) == 162
