"""ServiceSupervisor: probing, backoff restarts, budget, escalation."""

import pytest

from repro.netsim import Environment
from repro.resilience import (
    ServiceOutcome,
    ServiceSupervisor,
    SupervisorPolicy,
)
from repro.telemetry import Tracer


class FakeService:
    """Duck-typed Faultable: running/faulted/repair()/start()."""

    def __init__(self):
        self.running = True
        self.faulted = False
        self.starts = 0
        self.repairs = 0

    def fail(self):
        self.running = False
        self.faulted = True

    def die(self):
        """A non-fault death (the daemon process just exited)."""
        self.running = False

    def repair(self):
        self.faulted = False
        self.running = True
        self.repairs += 1

    def start(self):
        self.running = True
        self.starts += 1


class StubbornService(FakeService):
    """repair() never actually brings it back — exhausts the budget."""

    def repair(self):
        self.repairs += 1


NO_JITTER = dict(probe_interval=10.0, restart_backoff=5.0, jitter=0.0)


def make_supervisor(policy=None, **services):
    env = Environment()
    sup = ServiceSupervisor(env, policy or SupervisorPolicy(**NO_JITTER))
    for name, svc in services.items():
        sup.register(name, svc)
    sup.start()
    return env, sup


def test_policy_validation():
    with pytest.raises(ValueError, match="probe_interval"):
        SupervisorPolicy(probe_interval=0)
    with pytest.raises(ValueError, match="restart_backoff"):
        SupervisorPolicy(restart_backoff=-1)
    with pytest.raises(ValueError, match="backoff_factor"):
        SupervisorPolicy(backoff_factor=0.5)
    with pytest.raises(ValueError, match="jitter"):
        SupervisorPolicy(jitter=-0.1)
    with pytest.raises(ValueError, match="restart_budget"):
        SupervisorPolicy(restart_budget=0)


def test_duplicate_registration_rejected():
    env = Environment()
    sup = ServiceSupervisor(env)
    sup.register("dhcpd", FakeService())
    with pytest.raises(ValueError, match="already supervised"):
        sup.register("dhcpd", FakeService())


def test_healthy_service_is_only_probed():
    svc = FakeService()
    env, sup = make_supervisor(dhcpd=svc)
    env.run(until=55.0)
    report = sup.report()
    assert report.probes == 5
    assert report.restarts == []
    assert report.outcomes["dhcpd"] is ServiceOutcome.HEALTHY


def test_faulted_service_is_repaired_with_backoff():
    svc = FakeService()
    env, sup = make_supervisor(httpd=svc)
    svc.fail()
    env.run(until=60.0)
    assert svc.running and not svc.faulted
    assert svc.repairs == 1 and svc.starts == 0
    report = sup.report()
    [rec] = report.restarts
    assert rec.service == "httpd"
    assert rec.attempt == 1
    assert rec.backoff == pytest.approx(5.0)
    # first failed probe at t=10, restart lands one backoff later
    assert rec.t == pytest.approx(15.0)
    assert report.outcomes["httpd"] is ServiceOutcome.RECOVERED


def test_dead_but_unfaulted_service_is_started_not_repaired():
    svc = FakeService()
    env, sup = make_supervisor(nfs=svc)
    svc.die()
    env.run(until=40.0)
    assert svc.running
    assert svc.starts == 1 and svc.repairs == 0


def test_backoff_grows_exponentially_and_caps():
    svc = StubbornService()
    policy = SupervisorPolicy(
        probe_interval=10.0,
        restart_backoff=5.0,
        backoff_factor=2.0,
        max_backoff=15.0,
        jitter=0.0,
        restart_budget=4,
    )
    env, sup = make_supervisor(policy, httpd=svc)
    svc.fail()
    env.run(until=500.0)
    backoffs = [rec.backoff for rec in sup.report().restarts]
    # 5, 10, then clamped to max_backoff
    assert backoffs == pytest.approx([5.0, 10.0, 15.0, 15.0])


def test_budget_exhaustion_escalates_to_degraded():
    svc = StubbornService()
    policy = SupervisorPolicy(
        probe_interval=10.0, restart_backoff=1.0, jitter=0.0, restart_budget=3
    )
    env = Environment()
    tracer = Tracer().attach(env)
    sup = ServiceSupervisor(env, policy)
    sup.register("httpd", svc)
    sup.start()
    svc.fail()
    env.run(until=400.0)
    report = sup.report()
    assert len(report.restarts) == 3  # budget, then hands off
    assert report.outcomes["httpd"] is ServiceOutcome.DEGRADED
    assert report.degraded == ["httpd"]
    assert svc.repairs == 3
    [event] = tracer.events("supervisor-degraded")
    assert event["name"] == "httpd"
    assert tracer.metrics.counter("supervisor.restarts") == 3


def test_healthy_probe_resets_the_failure_count():
    svc = FakeService()
    env, sup = make_supervisor(httpd=svc)
    svc.fail()
    env.run(until=60.0)  # repaired once
    svc.fail()
    env.run(until=120.0)  # repaired again
    backoffs = [rec.backoff for rec in sup.report().restarts]
    # second incident starts from the base backoff, not 2x
    assert backoffs == pytest.approx([5.0, 5.0])
    assert all(rec.attempt == 1 for rec in sup.report().restarts)


def test_service_healing_during_backoff_skips_the_restart():
    svc = FakeService()
    env, sup = make_supervisor(httpd=svc)
    svc.fail()

    def heal():
        yield env.timeout(12.0)  # probe at t=10 queued a restart for t=15
        svc.repair()

    env.process(heal())
    env.run(until=60.0)
    assert sup.report().restarts == []
    assert svc.repairs == 1  # only the self-heal


def test_jitter_is_deterministic_per_seed():
    def run(seed):
        svc = FakeService()
        policy = SupervisorPolicy(
            probe_interval=10.0, restart_backoff=5.0, jitter=0.5, seed=seed
        )
        env, sup = make_supervisor(policy, httpd=svc)
        svc.fail()
        env.run(until=60.0)
        return [rec.backoff for rec in sup.report().restarts]

    assert run(1) == run(1)
    assert run(1) != run(2)
    assert all(5.0 <= b <= 7.5 for b in run(1))


def test_on_restart_hook_runs_before_revival():
    svc = FakeService()
    seen = []
    env = Environment()
    sup = ServiceSupervisor(env, SupervisorPolicy(**NO_JITTER))
    sup.register("httpd", svc, on_restart=lambda s: seen.append(s.running))
    sup.start()
    svc.fail()
    env.run(until=60.0)
    assert seen == [False]  # hook saw the service still down
    assert svc.running


def test_stop_halts_probing():
    svc = FakeService()
    env, sup = make_supervisor(httpd=svc)
    env.run(until=25.0)
    sup.stop()
    assert not sup.running
    svc.fail()
    env.run(until=100.0)
    assert not svc.running  # nobody restarted it
    assert sup.report().probes == 2
