"""HTTP admission control: cap, bounded queue, shedding, telemetry."""

import pytest

from repro.netsim import (
    FAST_ETHERNET,
    AdmissionConfig,
    Environment,
    HttpError,
    HttpServer,
    Network,
    TransferAborted,
)
from repro.telemetry import Tracer


def make_http(n_clients=4, tracer=None):
    env = Environment()
    if tracer is not None:
        tracer.attach(env)
    network = Network(env)
    network.attach("www", FAST_ETHERNET)
    for i in range(n_clients):
        network.attach(f"c{i}", FAST_ETHERNET)
    server = HttpServer(network, "www", efficiency=1.0)
    return env, server


def fetch(env, server, client, path, results):
    """GET wrapper recording the response or the HttpError."""
    try:
        resp = yield server.get(client, path)
        results.append(resp)
    except HttpError as err:
        results.append(err)


def test_admission_config_validation():
    with pytest.raises(ValueError, match="max_concurrent"):
        AdmissionConfig(max_concurrent=0)
    with pytest.raises(ValueError, match="queue_limit"):
        AdmissionConfig(max_concurrent=1, queue_limit=-1)
    with pytest.raises(ValueError, match="queue_timeout"):
        AdmissionConfig(max_concurrent=1, queue_timeout=0)
    with pytest.raises(ValueError, match="retry_after"):
        AdmissionConfig(max_concurrent=1, retry_after=-1)


def test_admission_is_off_by_default():
    env, server = make_http()
    assert server.admission is None
    server.publish("/x", 100)
    resp = env.run(until=server.get("c0", "/x"))
    assert resp.status == 200
    # the fast path never touches the slot accounting
    assert server.in_flight == 0 and server.queue_depth == 0
    assert server.rejected == 0


def test_cap_bounds_in_flight_and_queues_the_rest():
    env, server = make_http()
    server.configure_admission(AdmissionConfig(max_concurrent=2, queue_limit=8))
    server.publish("/pkg", FAST_ETHERNET * 4)
    results = []
    for i in range(4):
        env.process(fetch(env, server, f"c{i}", "/pkg", results))
    env.run(until=0.5)
    assert server.in_flight == 2
    assert server.queue_depth == 2
    env.run()
    assert [r.status for r in results] == [200, 200, 200, 200]
    assert server.rejected == 0
    assert server.requests_served == 4


def test_full_queue_sheds_503_with_retry_after():
    env, server = make_http()
    server.configure_admission(
        AdmissionConfig(max_concurrent=1, queue_limit=1, retry_after=9.0)
    )
    server.publish("/pkg", FAST_ETHERNET * 10)
    results = []
    for i in range(3):
        env.process(fetch(env, server, f"c{i}", "/pkg", results))
    env.run(until=0.5)
    # third request found one in flight and one queued
    [shed] = [r for r in results if isinstance(r, HttpError)]
    assert shed.status == 503
    assert "queue-full" in shed.reason
    assert shed.retry_after == 9.0
    assert shed.server == "www"
    assert server.rejected == 1
    env.run()
    assert sum(1 for r in results if getattr(r, "status", 0) == 200) == 2


def test_queue_wait_times_out():
    env, server = make_http()
    server.configure_admission(
        AdmissionConfig(max_concurrent=1, queue_limit=4, queue_timeout=5.0)
    )
    server.publish("/pkg", FAST_ETHERNET * 60)  # one transfer takes 60s
    results = []
    env.process(fetch(env, server, "c0", "/pkg", results))
    env.process(fetch(env, server, "c1", "/pkg", results))
    env.run(until=10.0)
    [shed] = [r for r in results if isinstance(r, HttpError)]
    assert shed.status == 503
    assert "queue-timeout" in shed.reason
    assert server.rejected == 1
    assert server.queue_depth == 0  # the timed-out slot was removed
    env.run()
    assert server.requests_served == 1


def test_slot_released_on_error_paths_too():
    env, server = make_http()
    server.configure_admission(AdmissionConfig(max_concurrent=2))
    results = []
    env.process(fetch(env, server, "c0", "/missing", results))
    env.run()
    assert results[0].status == 404
    assert server.in_flight == 0  # the 404 released its admitted slot


def test_daemon_death_flushes_the_queue():
    env, server = make_http()
    server.configure_admission(AdmissionConfig(max_concurrent=1, queue_limit=4))
    server.publish("/pkg", FAST_ETHERNET * 60)
    results = []

    def fetch_any(client):
        try:
            resp = yield server.get(client, "/pkg")
            results.append(resp)
        except (HttpError, TransferAborted) as err:
            results.append(err)

    for i in range(3):
        env.process(fetch_any(f"c{i}"))

    def kill():
        yield env.timeout(2.0)
        server.running = False
        server.abort_transfers()

    env.process(kill())
    env.run()
    assert len(results) == 3
    # the in-flight transfer is reset; both queued slots are flushed 503s
    [aborted] = [r for r in results if isinstance(r, TransferAborted)]
    flushed = [r for r in results if isinstance(r, HttpError)]
    assert len(flushed) == 2
    assert all(e.status == 503 and "connection reset" in e.reason
               for e in flushed)
    assert server.queue_depth == 0


def test_reconfigure_with_queued_requests_rejected():
    env, server = make_http()
    server.configure_admission(AdmissionConfig(max_concurrent=1, queue_limit=4))
    server.publish("/pkg", FAST_ETHERNET * 60)
    results = []
    env.process(fetch(env, server, "c0", "/pkg", results))
    env.process(fetch(env, server, "c1", "/pkg", results))

    def reconfigure():
        yield env.timeout(1.0)
        with pytest.raises(RuntimeError, match="queued"):
            server.configure_admission(None)

    done = env.process(reconfigure())
    env.run(until=done)


def test_queue_depth_gauge_and_reject_counter():
    tracer = Tracer()
    env, server = make_http(n_clients=8, tracer=tracer)
    server.configure_admission(
        AdmissionConfig(max_concurrent=1, queue_limit=3, queue_timeout=120.0)
    )
    server.publish("/pkg", FAST_ETHERNET * 5)
    results = []
    for i in range(8):
        env.process(fetch(env, server, f"c{i}", "/pkg", results))
    env.run()
    metrics = tracer.metrics
    assert metrics.peak("http.queue_depth/www") <= 3
    assert metrics.counter("http.rejected/www") == server.rejected > 0
    rejects = tracer.events("http-reject")
    assert len(rejects) == server.rejected
    assert all(e["attrs"]["cause"] == "queue-full" for e in rejects)
    # everyone not shed was eventually served
    assert server.requests_served == 8 - server.rejected


def test_admission_stats_snapshot():
    """The first-class gauge view monitoring agents sample."""
    env, server = make_http(n_clients=8)
    server.configure_admission(
        AdmissionConfig(max_concurrent=2, queue_limit=2, queue_timeout=120.0)
    )
    server.publish("/pkg", FAST_ETHERNET * 5)
    stats = server.admission_stats()
    assert stats == {
        "in_flight": 0,
        "queue_depth": 0,
        "rejected": 0,
        "queue_timeouts": 0,
        "requests_served": 0,
        "bytes_served": 0.0,
    }
    results = []
    for i in range(8):
        env.process(fetch(env, server, f"c{i}", "/pkg", results))
    env.run(until=1.0)
    mid = server.admission_stats()
    assert mid["in_flight"] == 2
    assert mid["queue_depth"] == 2
    assert mid["rejected"] == 4
    env.run()
    done = server.admission_stats()
    assert done["in_flight"] == 0 and done["queue_depth"] == 0
    assert done["requests_served"] == 4
    assert done["bytes_served"] == pytest.approx(FAST_ETHERNET * 5 * 4)
    # the snapshot mirrors the first-class properties exactly
    assert done["rejected"] == server.rejected
    assert done["queue_timeouts"] == server.queue_timeouts


def test_in_flight_gauge_tracks_grants_and_releases():
    tracer = Tracer()
    env, server = make_http(n_clients=4, tracer=tracer)
    server.configure_admission(
        AdmissionConfig(max_concurrent=2, queue_limit=4, queue_timeout=600.0)
    )
    server.publish("/pkg", FAST_ETHERNET * 5)
    results = []
    for i in range(4):
        env.process(fetch(env, server, f"c{i}", "/pkg", results))
    env.run()
    assert server.requests_served == 4
    samples = [v for _, v in tracer.metrics.samples("http.in_flight/www")]
    assert max(samples) == 2  # the cap was reached...
    assert samples[-1] == 0   # ...and fully released at the end


# -- seeded Retry-After jitter ------------------------------------------------


def shed_hints(jitter, seed=0, n=12, retry_after=10.0):
    """Occupy the single slot, shed n requests, return their hints."""
    env, server = make_http(n_clients=n + 1)
    server.configure_admission(
        AdmissionConfig(
            max_concurrent=1,
            queue_limit=0,
            retry_after=retry_after,
            retry_jitter=jitter,
            jitter_seed=seed,
        )
    )
    server.publish("/slow", FAST_ETHERNET * 600)
    server.get("c0", "/slow")  # pins the only slot
    results = []
    for i in range(n):
        env.process(fetch(env, server, f"c{i + 1}", "/pkg", results))
    env.run(until=1.0)
    assert len(results) == n
    assert all(isinstance(r, HttpError) and r.status == 503 for r in results)
    return [r.retry_after for r in results]


def test_retry_jitter_validation():
    with pytest.raises(ValueError, match="retry_jitter"):
        AdmissionConfig(max_concurrent=1, retry_jitter=-0.1)


def test_no_jitter_means_a_fixed_hint():
    assert set(shed_hints(jitter=0.0)) == {10.0}


def test_jitter_spreads_hints_within_the_advertised_band():
    hints = shed_hints(jitter=0.5, retry_after=10.0)
    assert all(10.0 <= h <= 15.0 for h in hints)
    assert len(set(hints)) > 1  # the herd is actually spread


def test_jitter_is_deterministic_in_the_seed():
    assert shed_hints(jitter=0.5, seed=7) == shed_hints(jitter=0.5, seed=7)
    assert shed_hints(jitter=0.5, seed=7) != shed_hints(jitter=0.5, seed=8)


def test_queue_timeout_sheds_carry_jittered_hints_too():
    env, server = make_http(n_clients=3)
    server.configure_admission(
        AdmissionConfig(
            max_concurrent=1,
            queue_limit=2,
            queue_timeout=5.0,
            retry_after=10.0,
            retry_jitter=0.5,
            jitter_seed=3,
        )
    )
    server.publish("/slow", FAST_ETHERNET * 600)
    server.get("c0", "/slow")
    results = []
    for i in range(2):
        env.process(fetch(env, server, f"c{i + 1}", "/pkg", results))
    env.run(until=20.0)
    assert len(results) == 2
    assert server.queue_timeouts == 2
    assert all(10.0 <= r.retry_after <= 15.0 for r in results)
