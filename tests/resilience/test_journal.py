"""Write-ahead database journal: typed records, replay, byte-identity."""

import json

import pytest

from repro.core.database import (
    ClusterDatabase,
    DatabaseError,
    DatabaseJournal,
    JournalError,
)


def make_journaled_db(path=None):
    db = ClusterDatabase()
    db.add_node("frontend-0", membership="Frontend", ip="10.1.1.1")
    journal = DatabaseJournal(path)
    db.attach_journal(journal)
    return db, journal


def test_attach_checkpoints_current_state():
    db, journal = make_journaled_db()
    assert len(journal) == 1
    [record] = journal.records()
    assert record["op"] == "checkpoint"
    assert record["args"]["dump"] == db.snapshot()


def test_mutations_append_typed_records():
    db, journal = make_journaled_db()
    db.add_node("compute-0-0", mac="aa:bb", rack=0, rank=0)
    db.set_global("Kickstart", "PublicHostname", "frontend-0")
    db.set_os_dist("compute-0-0", "rocks-dist-ia64")
    db.remove_node("compute-0-0")
    db.execute("UPDATE app_globals SET value='x' WHERE service='Kickstart'")
    ops = [r["op"] for r in journal.records()]
    assert ops == [
        "checkpoint", "add-node", "set-global", "set-os-dist",
        "remove-node", "sql",
    ]
    seqs = [r["seq"] for r in journal.records()]
    assert seqs == sorted(seqs)


def test_add_node_is_journaled_with_the_resolved_ip():
    db, journal = make_journaled_db()
    db.add_node("compute-0-0", mac="aa:bb")  # IP auto-assigned
    record = journal.records()[-1]
    assert record["op"] == "add-node"
    assert record["args"]["ip"] is not None
    assert record["args"]["ip"] == db.node_by_name("compute-0-0").ip


def test_replay_restores_byte_identical_state():
    db, journal = make_journaled_db()
    for i in range(4):
        db.add_node(f"compute-0-{i}", mac=f"00:50:8b:00:00:{i:02x}",
                    rack=0, rank=i)
    db.set_global("campaign", "compute-0-1", "installing")
    db.remove_node("compute-0-3")
    before = db.snapshot()
    db.lose_state()
    assert db.snapshot() != before
    applied = journal.replay_into(db)
    assert applied == len(journal)
    assert db.snapshot() == before


def test_replay_does_not_rejournal_itself():
    db, journal = make_journaled_db()
    db.add_node("compute-0-0", mac="aa:bb")
    n = len(journal)
    db.lose_state()
    journal.replay_into(db)
    assert len(journal) == n
    assert not journal.replaying
    assert journal.replays == 1
    # journaling resumes after the replay
    db.set_global("a", "b", "c")
    assert len(journal) == n + 1


def test_failed_add_node_replays_to_the_same_end_state():
    db, journal = make_journaled_db()
    db.add_node("compute-0-0", mac="aa:bb")
    with pytest.raises(DatabaseError):
        db.add_node("compute-0-0", mac="cc:dd")  # duplicate name
    # the doomed call was journaled before it failed
    assert [r["op"] for r in journal.records()].count("add-node") == 2
    before = db.snapshot()
    db.lose_state()
    journal.replay_into(db)  # tolerates the record that fails again
    assert db.snapshot() == before


def test_checkpoint_truncates_the_log():
    db, journal = make_journaled_db()
    for i in range(5):
        db.add_node(f"compute-0-{i}", mac=f"aa:{i:02x}")
    assert len(journal) == 6
    journal.checkpoint(db)
    assert len(journal) == 1
    before = db.snapshot()
    db.lose_state()
    journal.replay_into(db)
    assert db.snapshot() == before


def test_jsonl_file_mirrors_the_records(tmp_path):
    path = tmp_path / "cluster.journal"
    db, journal = make_journaled_db(str(path))
    db.add_node("compute-0-0", mac="aa:bb")
    lines = path.read_text().splitlines()
    assert len(lines) == len(journal) == 2
    assert [json.loads(line)["op"] for line in lines] == ["checkpoint", "add-node"]
    assert path.read_text().rstrip("\n") == journal.to_jsonl()
    journal.checkpoint(db)
    assert len(path.read_text().splitlines()) == 1


def test_unknown_op_raises_journal_error():
    db, journal = make_journaled_db()
    journal.append("teleport", where="elsewhere")
    with pytest.raises(JournalError, match="teleport"):
        journal.replay_into(db)
    # the failed replay still restores the journaling hook
    assert db.journal is journal
    assert not journal.replaying
