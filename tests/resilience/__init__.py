"""Tests for the frontend resilience layer (repro.resilience)."""
