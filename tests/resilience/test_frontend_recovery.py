"""End-to-end frontend-crash recovery: the PR's acceptance scenario.

A 32-node Table I reinstall wave is interrupted by a ``FrontendCrash``
that kills dhcpd/httpd/nfs and wipes the live cluster database.  The
hardened stack (supervisor + journal + breaker) must restart the
services, replay the journal to a byte-identical database, and still
land every node installed — deterministically.
"""

import pytest

from repro.faults import chaos_reinstall
from repro.netsim import AdmissionConfig
from repro.resilience import ResilienceOptions, SupervisorPolicy
from repro.telemetry import Tracer, to_jsonl


@pytest.fixture(scope="module")
def crash_run():
    return chaos_reinstall(n_nodes=32, plan="frontend-crash", resilience=True)


def test_every_node_completes_despite_the_crash(crash_run):
    assert crash_run.completion_rate == 1.0
    assert len(crash_run.report.nodes) == 32
    kinds = [r.kind for r in crash_run.injector.log]
    assert "frontend-crash" in kinds


def test_supervisor_restarted_the_dead_services(crash_run):
    resilience = crash_run.resilience
    report = resilience.supervisor_report()
    assert report.restarts, "the crash must have triggered restarts"
    restarted = {rec.service for rec in report.restarts}
    assert restarted <= {"dhcpd", "httpd", "nfs"}
    assert not report.degraded
    assert resilience.verify_recovery()


def test_recovered_database_is_byte_identical(crash_run):
    frontend = crash_run.resilience.frontend
    # the injector snapshots the DB immediately before wiping it
    assert crash_run.injector.snapshots, "crash fault must snapshot first"
    assert frontend.recovered_snapshot is not None
    assert frontend.recovered_snapshot == crash_run.injector.snapshots[0]
    assert not frontend.db_lost
    assert crash_run.resilience.journal.replays == 1
    # and the live DB still holds every node registration
    assert len(frontend.db.compute_nodes()) == 32


def test_unhardened_frontend_stays_down():
    """Without resilience the same plan strands the whole wave."""
    result = chaos_reinstall(n_nodes=2, plan="frontend-crash")
    assert result.resilience is None
    assert result.completion_rate == 0.0


def test_same_seed_runs_export_identical_telemetry():
    def run():
        tracer = Tracer()
        chaos_reinstall(
            n_nodes=8, plan="frontend-storm", seed=7,
            resilience=True, tracer=tracer,
        )
        return tracer

    a, b = run(), run()
    assert to_jsonl(a) == to_jsonl(b)
    assert a.metrics.counters == b.metrics.counters


def test_admission_evidence_under_a_wave_above_the_cap():
    """Cap below the wave: 503s are shed with Retry-After, the installer
    honors the hint, the queue stays bounded, and the wave still lands."""
    tracer = Tracer()
    options = ResilienceOptions(
        supervisor=SupervisorPolicy(),
        journal=True,
        admission=AdmissionConfig(
            max_concurrent=2, queue_limit=2, queue_timeout=10.0,
            retry_after=8.0,
        ),
        breaker=False,  # isolate admission behavior from breaker fast-fails
    )
    result = chaos_reinstall(
        n_nodes=8, plan="none", resilience=options, tracer=tracer
    )
    assert result.completion_rate == 1.0
    metrics = tracer.metrics
    http = result.resilience.frontend.install_server.http
    assert http.rejected > 0
    assert metrics.counter(f"http.rejected/{http.host}") == http.rejected
    assert metrics.counter("install.retry_after_honored") > 0
    assert metrics.peak(f"http.queue_depth/{http.host}") <= 2
    assert http.in_flight == 0 and http.queue_depth == 0
    rejects = tracer.events("http-reject")
    assert len(rejects) == http.rejected


def test_zero_overhead_defaults_match_the_stock_run():
    """An unhardened run is byte-for-byte the PR 2 baseline."""

    def table1(harden):
        tracer = Tracer()
        chaos_reinstall(
            n_nodes=4, plan="none",
            resilience=ResilienceOptions(admission=None) if harden else None,
            tracer=tracer,
        )
        return tracer

    stock, hardened = table1(False), table1(True)
    # install spans (the Table I numbers) are identical: the resilience
    # layer adds observation, not perturbation, when nothing fails
    stock_installs = [
        (s.name, s.t0, s.t1) for s in stock.spans("install")
    ]
    hard_installs = [
        (s.name, s.t0, s.t1) for s in hardened.spans("install")
    ]
    assert stock_installs == hard_installs
