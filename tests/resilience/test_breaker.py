"""Circuit breaker: the three-state machine and the GuardedSource wrapper."""

import pytest

from repro.netsim import (
    FAST_ETHERNET,
    Environment,
    HttpError,
    HttpResponse,
    HttpServer,
    LoadBalancer,
    Network,
)
from repro.resilience import BreakerState, CircuitBreaker, GuardedSource


def make_breaker(threshold=3, reset=30.0):
    env = Environment()
    return env, CircuitBreaker(
        env, "www", failure_threshold=threshold, reset_timeout=reset
    )


def advance(env, seconds):
    env.run(until=env.now + seconds)


def test_breaker_validation():
    env = Environment()
    with pytest.raises(ValueError, match="failure_threshold"):
        CircuitBreaker(env, "www", failure_threshold=0)
    with pytest.raises(ValueError, match="reset_timeout"):
        CircuitBreaker(env, "www", reset_timeout=0)


def test_closed_until_threshold_consecutive_failures():
    _, br = make_breaker(threshold=3)
    br.record_failure()
    br.record_failure()
    assert br.state is BreakerState.CLOSED
    assert br.allow()
    br.record_failure()
    assert br.state is BreakerState.OPEN


def test_success_resets_the_failure_count():
    _, br = make_breaker(threshold=2)
    br.record_failure()
    br.record_success()
    br.record_failure()
    assert br.state is BreakerState.CLOSED


def test_open_fast_fails_until_reset_timeout():
    env, br = make_breaker(threshold=1, reset=30.0)
    br.record_failure()
    assert not br.allow()
    assert not br.allow()
    assert br.fast_fails == 2
    assert br.retry_after() == pytest.approx(30.0)
    advance(env, 31.0)
    assert br.allow()  # half-open trial
    assert br.state is BreakerState.HALF_OPEN


def test_half_open_admits_a_single_trial():
    env, br = make_breaker(threshold=1, reset=10.0)
    br.record_failure()
    advance(env, 11.0)
    assert br.allow()
    assert not br.allow()  # trial already pending
    br.record_success()
    assert br.state is BreakerState.CLOSED
    assert br.allow() and br.allow()


def test_failed_trial_reopens():
    env, br = make_breaker(threshold=1, reset=10.0)
    br.record_failure()
    advance(env, 11.0)
    assert br.allow()
    br.record_failure()
    assert br.state is BreakerState.OPEN
    assert br.retry_after() == pytest.approx(10.0)


def test_retry_after_hint_stretches_the_open_interval():
    _, br = make_breaker(threshold=1, reset=10.0)
    br.record_failure(retry_after=45.0)
    assert br.state is BreakerState.OPEN
    assert br.retry_after() == pytest.approx(45.0)


# -- GuardedSource ----------------------------------------------------------


class FlakySource:
    """InstallSource stand-in that 503s the first ``fail_times`` calls."""

    def __init__(self, env, fail_times):
        self.env = env
        self.host = "www"
        self.calls = 0
        self.fail_times = fail_times

    def fetch_kickstart(self, client):
        return self.env.process(self._fetch(), name="flaky fetch")

    def _fetch(self):
        self.calls += 1
        call = self.calls
        yield self.env.timeout(1.0)
        if call <= self.fail_times:
            raise HttpError(503, "overloaded", retry_after=40.0, server="www")
        return HttpResponse(200, "/ks", 100, server="www")


def drive(env, guarded, n, gap=1.0):
    """Issue n sequential kickstart fetches; collect response/error statuses."""
    results = []

    def loop():
        for _ in range(n):
            try:
                resp = yield guarded.fetch_kickstart("node")
                results.append(resp.status)
            except HttpError as err:
                results.append(err)
            yield env.timeout(gap)

    env.run(until=env.process(loop()))
    return results


def test_guarded_source_opens_after_threshold_and_fast_fails():
    env = Environment()
    source = FlakySource(env, fail_times=100)
    guarded = GuardedSource(env, source, failure_threshold=2, reset_timeout=60.0)
    results = drive(env, guarded, 4)
    assert all(isinstance(r, HttpError) for r in results)
    # only the first two hit the network; the rest failed locally
    assert source.calls == 2
    br = guarded.breaker("www")
    assert br.state is BreakerState.OPEN
    assert br.fast_fails == 2
    assert "circuit open" in results[2].reason
    assert results[2].retry_after == pytest.approx(br.retry_after(), abs=3.0)


def test_guarded_source_recovers_through_half_open_trial():
    env = Environment()
    source = FlakySource(env, fail_times=2)
    guarded = GuardedSource(env, source, failure_threshold=2, reset_timeout=5.0)
    # 2 real failures open it; the 503's own Retry-After (40s) stretches
    # the hold past the static 5s reset.
    results = drive(env, guarded, 3, gap=45.0)
    assert results[-1] == 200
    assert guarded.breaker("www").state is BreakerState.CLOSED


def test_guarded_source_counts_4xx_as_proof_of_life():
    env = Environment()

    class NotFoundSource(FlakySource):
        def _fetch(self):
            self.calls += 1
            yield self.env.timeout(1.0)
            raise HttpError(404, "missing", server="www")

    guarded = GuardedSource(env, NotFoundSource(env, 0), failure_threshold=1)
    results = drive(env, guarded, 3)
    assert all(r.status == 404 for r in results)
    assert guarded.breaker("www").state is BreakerState.CLOSED


def test_guarded_load_balancer_routes_around_open_backend():
    env = Environment()
    network = Network(env)
    servers = []
    for i in range(2):
        network.attach(f"www{i}", FAST_ETHERNET)
        s = HttpServer(network, f"www{i}")
        s.publish("/pkg", 1000)
        servers.append(s)
    network.attach("client", FAST_ETHERNET)
    lb = LoadBalancer(servers)
    guarded = GuardedSource(env, lb, failure_threshold=1)
    assert lb.should_avoid is not None  # hook installed on balancers
    guarded.breaker("www0").record_failure()  # force www0 open
    for _ in range(3):
        resp = env.run(until=lb.get("client", "/pkg"))
        assert resp.server == "www1"
    assert servers[0].requests_served == 0
