"""The gauge-driven autoscaler: control law, hysteresis, cooldown, bounds."""

import pytest

from repro.netsim import AdmissionConfig, Environment
from repro.resilience import Autoscaler, AutoscalerPolicy


class FakeHttp:
    def __init__(self, admission):
        self.admission = admission


class FakePrimary:
    def __init__(self, admission):
        self.http = FakeHttp(admission)


class FakeReplicaSet:
    """Mimics InstallReplicaSet's scaling surface; records every call."""

    def __init__(self, admission=None):
        self.primary = FakePrimary(admission)
        self.n_replicas = 0
        self.calls = []
        self.reaps = 0

    def add_replica(self):
        self.n_replicas += 1
        self.calls.append(("up", self.n_replicas))

    def drain_replica(self):
        self.n_replicas -= 1
        self.calls.append(("down", self.n_replicas))

    def reap_drained(self):
        self.reaps += 1


CALM = {"http.queue_depth": 0.0, "http.in_flight": 0.0,
        "net.tx_util": 0.0, "http.rejected": 0.0}


def make_scaler(metrics, policy=None, admission=None):
    env = Environment()
    rs = FakeReplicaSet(admission=admission)
    policy = policy or AutoscalerPolicy(
        interval=10.0, cooldown=0.0, cooldown_jitter=0.0
    )
    scaler = Autoscaler(env, rs, lambda: dict(metrics), policy)
    return env, rs, scaler, metrics


def test_policy_validation():
    with pytest.raises(ValueError, match="interval"):
        AutoscalerPolicy(interval=0.0)
    with pytest.raises(ValueError, match="inflight_high_frac"):
        AutoscalerPolicy(inflight_high_frac=1.5)
    with pytest.raises(ValueError, match="util_high"):
        AutoscalerPolicy(util_high=0.0)
    with pytest.raises(ValueError, match="low_frac"):
        AutoscalerPolicy(low_frac=1.0)
    with pytest.raises(ValueError, match="hold_ticks"):
        AutoscalerPolicy(hold_ticks=0)
    with pytest.raises(ValueError, match="cooldown"):
        AutoscalerPolicy(cooldown=-1.0)
    with pytest.raises(ValueError, match="min_replicas"):
        AutoscalerPolicy(min_replicas=5, max_replicas=2)


def test_queue_pressure_scales_up():
    env, rs, scaler, metrics = make_scaler(dict(CALM, **{"http.queue_depth": 9.0}))
    env.run(until=10.0)
    assert rs.n_replicas == 1
    assert scaler.events[-1].action == "scale-up"
    assert "queue_depth" in scaler.events[-1].reason


def test_shed_delta_scales_up_but_flat_rejected_does_not():
    metrics = dict(CALM, **{"http.rejected": 50.0})
    env, rs, scaler, metrics = make_scaler(metrics)
    env.run(until=10.0)
    # first tick: rejected jumped 0 -> 50, that is active shedding
    assert rs.n_replicas == 1
    env.run(until=30.0)
    # rejected stays at 50: no new sheds, no further scale-up
    assert rs.n_replicas == 1


def test_util_pressure_scales_up():
    env, rs, scaler, _ = make_scaler(dict(CALM, **{"net.tx_util": 0.95}))
    env.run(until=10.0)
    assert rs.n_replicas == 1
    assert "tx_util" in scaler.events[-1].reason


def test_inflight_threshold_comes_from_admission_config():
    admission = AdmissionConfig(max_concurrent=10)
    metrics = dict(CALM, **{"http.in_flight": 9.0})
    env, rs, scaler, _ = make_scaler(metrics, admission=admission)
    env.run(until=10.0)  # 9 >= 0.9 * 10
    assert rs.n_replicas == 1
    # without an admission config the in-flight signal is ignored
    env2, rs2, _, _ = make_scaler(dict(metrics))
    env2.run(until=10.0)
    assert rs2.n_replicas == 0


def test_scale_up_respects_max_replicas():
    policy = AutoscalerPolicy(interval=10.0, cooldown=0.0,
                              cooldown_jitter=0.0, max_replicas=2)
    env, rs, scaler, _ = make_scaler(
        dict(CALM, **{"http.queue_depth": 99.0}), policy=policy
    )
    env.run(until=100.0)
    assert rs.n_replicas == 2


def test_cooldown_blocks_back_to_back_actions():
    policy = AutoscalerPolicy(interval=10.0, cooldown=35.0, cooldown_jitter=0.0)
    env, rs, scaler, _ = make_scaler(
        dict(CALM, **{"http.queue_depth": 99.0}), policy=policy
    )
    env.run(until=40.0)
    # scale-up at t=10; ticks at 20, 30, 40 fall inside the 35s cooldown
    assert [e.t for e in scaler.events] == [10.0]
    env.run(until=50.0)
    assert [e.t for e in scaler.events] == [10.0, 50.0]


def test_cooldown_jitter_is_seeded_and_stretches_the_hold():
    def trajectory(seed):
        policy = AutoscalerPolicy(interval=10.0, cooldown=20.0,
                                  cooldown_jitter=0.5, seed=seed)
        env, _, scaler, _ = make_scaler(
            dict(CALM, **{"http.queue_depth": 99.0}), policy=policy
        )
        env.run(until=200.0)
        return [e.t for e in scaler.events]

    a, b = trajectory(1), trajectory(1)
    assert a == b  # same seed, same decisions
    # jittered cooldowns are never shorter than the base cooldown
    assert all(t1 - t0 >= 20.0 for t0, t1 in zip(a, a[1:]))


def test_drain_requires_consecutive_calm_ticks():
    policy = AutoscalerPolicy(interval=10.0, cooldown=0.0,
                              cooldown_jitter=0.0, hold_ticks=3)
    metrics = dict(CALM, **{"http.queue_depth": 9.0})
    env, rs, scaler, metrics = make_scaler(metrics, policy=policy)
    env.run(until=10.0)
    assert rs.n_replicas == 1
    metrics["http.queue_depth"] = 0.0  # pressure gone
    env.run(until=30.0)  # only 2 calm ticks so far
    assert rs.n_replicas == 1
    env.run(until=40.0)  # third consecutive calm tick: drain
    assert rs.n_replicas == 0
    assert scaler.events[-1].action == "scale-down"


def test_pressure_resets_the_calm_streak():
    policy = AutoscalerPolicy(interval=10.0, cooldown=0.0,
                              cooldown_jitter=0.0, hold_ticks=2,
                              max_replicas=1)
    metrics = dict(CALM, **{"http.queue_depth": 9.0})
    env, rs, scaler, metrics = make_scaler(metrics, policy=policy)
    env.run(until=10.0)
    assert rs.n_replicas == 1
    metrics["http.queue_depth"] = 0.0
    env.run(until=20.0)  # calm tick 1
    metrics["http.queue_depth"] = 9.0
    env.run(until=30.0)  # pressure: streak resets (already at max, no up)
    metrics["http.queue_depth"] = 0.0
    env.run(until=40.0)  # calm tick 1 again
    assert rs.n_replicas == 1
    env.run(until=50.0)  # calm tick 2: now it drains
    assert rs.n_replicas == 0


def test_drain_respects_min_replicas():
    policy = AutoscalerPolicy(interval=10.0, cooldown=0.0,
                              cooldown_jitter=0.0, hold_ticks=1,
                              min_replicas=0)
    env, rs, scaler, _ = make_scaler(dict(CALM), policy=policy)
    env.run(until=100.0)
    assert rs.n_replicas == 0  # never drains below the floor
    assert scaler.events == []


def test_loop_reaps_drained_replicas_and_stop_retires_it():
    env, rs, scaler, _ = make_scaler(dict(CALM))
    env.run(until=30.0)
    assert rs.reaps == 3
    scaler.stop()
    env.run(until=60.0)
    assert rs.reaps == 3  # loop is gone
    scaler.stop()  # idempotent


def test_missing_gauges_are_a_no_op_tick():
    env, rs, scaler, _ = make_scaler({})
    env.run(until=50.0)
    assert rs.n_replicas == 0
    assert scaler.events == []


def test_render_events():
    env, rs, scaler, _ = make_scaler(dict(CALM))
    assert "no scaling activity" in scaler.render_events()
    env2, rs2, scaler2, _ = make_scaler(dict(CALM, **{"net.tx_util": 1.0}))
    env2.run(until=10.0)
    assert "scale-up" in scaler2.render_events()
