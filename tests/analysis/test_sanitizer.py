"""The schedule-perturbation sanitizer: planted race, clean scenarios, traps."""

import random
import time

import pytest

from repro.analysis.sanitizer import (
    SanitizeOptions,
    SanitizedEnvironment,
    diagnose_divergence,
    run_scenario,
    sanitized,
)
from repro.netsim.engine import Environment, Event, SimulationError


# -- the planted race: the positive control ------------------------------------


def test_race_fixture_diverges_across_seeds():
    a = run_scenario("race-fixture", 1)
    b = run_scenario("race-fixture", 2)
    assert a.digest != b.digest
    report = diagnose_divergence(a, b)
    assert report is not None
    assert report.seeds == (1, 2)
    assert report.divergence_time == 10.0
    # the colliding pair names two same-tick timeouts with their stacks
    assert report.pair is not None
    ra, rb = report.pair
    assert ra.key != rb.key
    assert "Timeout" in ra.label and "racer" in ra.label
    assert ra.stack and "worker" in ra.stack[0]
    rendered = report.render()
    assert "RACE" in rendered and "colliding event pair" in rendered
    diag = report.to_diagnostic()
    assert diag.code == "RK310"
    assert diag.severity.value == "error"


def test_race_fixture_same_seed_is_byte_identical():
    a = run_scenario("race-fixture", 7)
    b = run_scenario("race-fixture", 7)
    assert a.output == b.output
    assert a.digest == b.digest
    assert diagnose_divergence(a, b) is None
    assert [r.key for r in a.dispatch_log] == [r.key for r in b.dispatch_log]


def test_table1_is_race_free_across_seeds():
    """The real acceptance bar at test scale: the paper scenario must be
    byte-identical no matter how same-tick ties are broken."""
    a = run_scenario("table1", 1, nodes=2, record_stacks=False)
    b = run_scenario("table1", 2, nodes=2, record_stacks=False)
    assert diagnose_divergence(a, b) is None
    assert a.digest == b.digest
    assert not a.diagnostics and not b.diagnostics


# -- the sanitized environment itself ------------------------------------------


def test_default_environment_is_untouched():
    env = Environment()
    assert type(env) is Environment


def test_explicit_sanitize_swaps_class():
    env = Environment(sanitize=SanitizeOptions(seed=3))
    assert type(env) is SanitizedEnvironment
    assert env.options.seed == 3


def test_ambient_sanitize_reaches_nested_constructors():
    def build():
        return Environment()  # a scenario constructing its own env

    with sanitized(SanitizeOptions(seed=5)) as session:
        env = build()
    assert type(env) is SanitizedEnvironment
    assert session.envs == [env]
    assert type(build()) is Environment  # restored on exit


def test_sanitized_environment_has_no_instance_dict():
    env = Environment(sanitize=SanitizeOptions())
    assert not hasattr(env, "__dict__")


def test_sanitized_run_semantics_match_base():
    """Timers, process values, and run(until=...) behave identically."""
    for opts in (None, SanitizeOptions(seed=9)):
        env = Environment(sanitize=opts)
        log = []

        def proc():
            yield env.timeout(1.0)
            log.append(env.now)
            value = yield env.timeout(2.0, value="done")
            log.append(value)
            return 42

        p = env.process(proc(), name="p")
        assert env.run(until=p) == 42
        assert log == [1.0, "done"]
        assert env.now == 3.0


def test_sanitized_run_until_cancelled_event_raises():
    env = Environment(sanitize=SanitizeOptions())
    stop = Event(env)  # pending: never triggers once cancelled
    env.timeout(1.0)
    env.cancel(stop)
    with pytest.raises(SimulationError):
        env.run(until=stop)


def test_sanitized_timeout_batch_ties_are_heap_safe():
    """Batch entries share due times with singles; perturbed keys must
    stay mutually comparable (the base class pushes raw int keys)."""
    env = Environment(sanitize=SanitizeOptions(seed=11))
    batch = env.timeout_batch([2.0, 2.0, 2.0], value="b")
    single = env.timeout(2.0, value="s")
    seen = []

    def collect(tout):
        def waiter():
            value = yield tout
            seen.append(value)
        env.process(waiter(), name=f"w{len(seen)}")

    for t in batch + [single]:
        collect(t)
    env.run()
    assert sorted(seen) == ["b", "b", "b", "s"]
    assert env.now == 2.0


def test_dispatch_log_records_labels_and_sites():
    env = Environment(sanitize=SanitizeOptions(seed=1))

    def proc():
        yield env.timeout(4.0)

    env.process(proc(), name="solo")
    env.run()
    labels = [r.label for r in env.dispatch_log]
    assert any("Timeout" in lb and "solo" in lb for lb in labels)
    assert all(r.site for r in env.dispatch_log)


# -- runtime traps --------------------------------------------------------------


def test_rk311_rk312_traps_fire_and_restore():
    orig_random, orig_time = random.random, time.time
    with sanitized(SanitizeOptions(seed=7)) as session:
        env = Environment()

        def proc():
            yield env.timeout(1.0)
            random.random()
            time.time()
            random.random()  # same site as nothing else; still one RK311

        env.process(proc(), name="p")
        env.run()
    diags = session.diagnostics()
    assert sorted(d.code for d in diags) == ["RK311", "RK311", "RK312"]
    assert diags == sorted(diags, key=lambda d: d.sort_key)
    assert random.random is orig_random
    assert time.time is orig_time


def test_trap_dedup_per_call_site():
    with sanitized(SanitizeOptions(seed=7)) as session:
        for _ in range(5):
            random.random()  # one site, many calls
    assert [d.code for d in session.diagnostics()] == ["RK311"]


def test_seeded_instance_rng_is_not_trapped():
    with sanitized(SanitizeOptions(seed=7)) as session:
        rng = random.Random(123)
        rng.random()
        rng.randint(1, 5)
    assert session.diagnostics() == []


def test_rk313_same_tick_cross_writer_conflict():
    class Shared:
        pass

    with sanitized(SanitizeOptions(seed=7), watch=(Shared,)) as session:
        env = Environment()
        obj = Shared()

        def writer(i):
            yield env.timeout(5.0)
            obj.winner = i

        for i in range(2):
            env.process(writer(i), name=f"w{i}")
        env.run()
    diags = session.diagnostics()
    assert [d.code for d in diags] == ["RK313"]
    assert sorted(diags[0].data["writers"]) == ["w0", "w1"]
    assert diags[0].data["tick"] == 5.0
    # the trap is removed on exit
    assert "__setattr__" not in Shared.__dict__


def test_rk313_quiet_for_distinct_ticks_and_single_writer():
    class Shared:
        pass

    with sanitized(SanitizeOptions(seed=7), watch=(Shared,)) as session:
        env = Environment()
        obj = Shared()

        def writer(i, delay):
            yield env.timeout(delay)
            obj.winner = i
            obj.winner = i  # same writer twice in one tick: fine

        for i, delay in enumerate([1.0, 2.0]):
            env.process(writer(i, delay), name=f"w{i}")
        env.run()
    assert session.diagnostics() == []
