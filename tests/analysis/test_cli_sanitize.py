"""The `repro sanitize` CLI: race reporting, clean scenarios, exit codes."""

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_sanitize_race_fixture_fails_with_report(capsys):
    code, out, _ = run_cli(capsys, "sanitize", "race-fixture")
    assert code == 1
    assert "RACE: scenario 'race-fixture' diverges" in out
    assert "colliding event pair" in out
    assert "RK310" in out
    assert "Timeout" in out  # the pair is named, with labels


def test_sanitize_table1_small_is_clean(capsys):
    code, out, _ = run_cli(
        capsys, "sanitize", "table1", "--nodes", "2", "--no-stacks")
    assert code == 0
    assert "byte-identical across perturbation seeds" in out
    assert "0 error(s)" in out
    # both seed digests are printed and equal
    digests = [line.rsplit()[-1] for line in out.splitlines()
               if "dispatches, digest" in line]
    assert len(digests) == 2 and digests[0] == digests[1]


def test_sanitize_custom_seeds(capsys):
    code, out, _ = run_cli(
        capsys, "sanitize", "race-fixture", "--seeds", "5", "9")
    assert code == 1
    assert "seeds 5 and 9" in out


def test_sanitize_unknown_scenario_errors(capsys):
    try:
        main(["sanitize", "not-a-scenario"])
    except ValueError as exc:
        assert "unknown scenario" in str(exc)
    else:  # pragma: no cover
        raise AssertionError("expected ValueError")
