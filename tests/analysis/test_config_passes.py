"""Config analyzers: each defect class planted and caught by exact code."""

import pytest

from repro.analysis import ConfigContext, analyze_config
from repro.core.kickstart import NodeFile, default_graph, default_node_files
from repro.rpm import Package, Repository, community_packages, npaci_packages, stock_redhat


def full_repo(arches=("i386",)):
    repo = Repository("rocks-dist")
    for arch in arches:
        repo.add_all(stock_redhat(arch=arch))
        repo.add_all(community_packages(arch))
    repo.add_all(npaci_packages())
    return repo


def make_ctx(extra_edges=(), extra_files=(), drop_files=(), arches=("i386",),
             repo=None, sources=None, dist_resolver=None):
    graph = default_graph()
    for edge in extra_edges:
        graph.add_edge(*edge)
    files = default_node_files()
    for nf in extra_files:
        files[nf.name] = nf
    for name in drop_files:
        del files[name]
    if repo is None:
        repo = full_repo(arches)
    return ConfigContext(
        graph=graph,
        node_files=files,
        dist_name="rocks-dist",
        dist_resolver=dist_resolver or (lambda d: repo),
        arches=arches,
        sources=sources,
    )


def codes(diags):
    return [d.code for d in diags]


# -- clean baseline ------------------------------------------------------------


def test_default_set_is_clean():
    assert analyze_config(make_ctx()) == []


def test_default_set_clean_multi_arch():
    assert analyze_config(make_ctx(arches=("i386", "ia64"))) == []


# -- RK101: dangling edges ----------------------------------------------------


def test_rk101_dangling_edge():
    diags = analyze_config(make_ctx(extra_edges=[("compute", "ghost")]))
    rk101 = [d for d in diags if d.code == "RK101"]
    assert len(rk101) == 1
    assert rk101[0].severity.value == "error"
    assert "undefined node file 'ghost'" in rk101[0].message
    assert "compute -> ghost" in rk101[0].hint
    assert rk101[0].data["module"] == "ghost"


# -- RK102: orphan modules ----------------------------------------------------


def test_rk102_orphan_module():
    orphan = NodeFile.from_xml(
        "orphan", "<kickstart><package>wget</package></kickstart>"
    )
    diags = analyze_config(make_ctx(extra_files=[orphan]))
    # wget is also declared by base, so the orphan triggers RK102 only
    # (it is in no traversal, hence no RK105 duplicate).
    assert codes(diags) == ["RK102"]
    assert "'orphan' is not reachable" in diags[0].message


# -- RK103: cycles -------------------------------------------------------------


def test_rk103_cycle_reports_offending_path():
    diags = analyze_config(make_ctx(extra_edges=[("c-development", "compute")]))
    rk103 = [d for d in diags if d.code == "RK103"]
    assert len(rk103) == 1
    msg = rk103[0].message
    assert "c-development" in msg and "compute" in msg and "mpi" in msg
    assert rk103[0].data["cycle"]


def test_rk103_self_loop():
    diags = analyze_config(make_ctx(extra_edges=[("mpi", "mpi")]))
    assert "RK103" in codes(diags)


# -- RK104: dead arch edges ---------------------------------------------------


def test_rk104_dead_arch_edge():
    graph = default_graph()
    graph.add_edge("compute", "myrinet2", archs=("mips",))
    files = default_node_files()
    files["myrinet2"] = NodeFile.from_xml("myrinet2", "<kickstart/>")
    ctx = ConfigContext(graph=graph, node_files=files,
                        dist_resolver=lambda d: full_repo(), arches=("i386",))
    diags = analyze_config(ctx)
    rk104 = [d for d in diags if d.code == "RK104"]
    assert len(rk104) == 1
    assert "mips" in rk104[0].message
    # the mips-only module is also unreachable on i386
    assert "RK102" in codes(diags)


def test_rk104_quiet_when_arch_supported():
    graph = default_graph()
    graph.add_edge("compute", "base", archs=("ia64",))  # duplicate edge, new arch
    ctx = ConfigContext(graph=graph, node_files=default_node_files(),
                        dist_resolver=lambda d: full_repo(("i386", "ia64")),
                        arches=("i386", "ia64"))
    assert [d for d in analyze_config(ctx) if d.code == "RK104"] == []


# -- RK105: duplicate package declarations ------------------------------------


def test_rk105_duplicate_across_traversal():
    dup = NodeFile.from_xml(
        "site-extras", "<kickstart><package>wget</package></kickstart>"
    )
    diags = analyze_config(
        make_ctx(extra_edges=[("compute", "site-extras")], extra_files=[dup])
    )
    rk105 = [d for d in diags if d.code == "RK105"]
    assert rk105, codes(diags)
    assert any(
        d.data["package"] == "wget" and "base" in d.data["modules"]
        and "site-extras" in d.data["modules"]
        for d in rk105
    )


def test_rk105_duplicate_within_one_module():
    dup = NodeFile.from_xml(
        "dup", "<kickstart><package>zsh</package><package>zsh</package></kickstart>"
    )
    repo = full_repo()
    repo.add(Package("zsh", "4.0"))
    diags = analyze_config(
        make_ctx(extra_edges=[("compute", "dup")], extra_files=[dup], repo=repo)
    )
    rk105 = [d for d in diags if d.code == "RK105"]
    assert any(d.data["package"] == "zsh" for d in rk105)


# -- RK106: unresolvable packages ---------------------------------------------


def test_rk106_missing_package_carries_chain():
    bad = NodeFile.from_xml(
        "site-bad", "<kickstart><package>flux-capacitor</package></kickstart>"
    )
    diags = analyze_config(
        make_ctx(extra_edges=[("compute", "site-bad")], extra_files=[bad])
    )
    rk106 = [d for d in diags if d.code == "RK106"]
    assert rk106
    d = rk106[0]
    assert d.severity.value == "error"
    assert "flux-capacitor" in d.message
    assert "chain" in d.hint and "site-bad" in d.hint
    assert d.data["module"] == "site-bad"
    assert d.arch == "i386"


def test_rk106_transitive_dependency_chain():
    repo = full_repo()
    repo.add(Package("needy", "1.0", requires=("no-such-lib",)))
    nf = NodeFile.from_xml(
        "site-needy", "<kickstart><package>needy</package></kickstart>"
    )
    diags = analyze_config(
        make_ctx(extra_edges=[("compute", "site-needy")], extra_files=[nf],
                 repo=repo)
    )
    rk106 = [d for d in diags if d.code == "RK106"]
    assert any(
        "requires no-such-lib" in d.message and "needy" in d.message
        for d in rk106
    )


# -- RK107: unknown database attributes ---------------------------------------


def test_rk107_unknown_attribute():
    nf = NodeFile.from_xml(
        "site-post",
        "<kickstart><post>echo &amp;node.bogus; &gt; /etc/x</post></kickstart>",
    )
    diags = analyze_config(
        make_ctx(extra_edges=[("compute", "site-post")], extra_files=[nf])
    )
    rk107 = [d for d in diags if d.code == "RK107"]
    assert len(rk107) == 1
    assert rk107[0].data["attribute"] == "node.bogus"
    assert "no report generator provides" in rk107[0].message


def test_rk107_known_attributes_pass():
    nf = NodeFile.from_xml(
        "site-post",
        "<kickstart><post>echo &amp;node.ip; &amp;Kickstart_PrivateHostname;"
        "</post></kickstart>",
    )
    diags = analyze_config(
        make_ctx(extra_edges=[("compute", "site-post")], extra_files=[nf])
    )
    assert [d for d in diags if d.code == "RK107"] == []


# -- RK108 / RK109: distribution composition ----------------------------------


def test_rk108_local_override_shadowed_by_newer_upstream():
    stock = Repository("stock")
    stock.add(Package("ssh-keys", "2.0"))
    local = Repository("local")
    local.add(Package("ssh-keys", "1.0"))
    repo = Repository("rocks-dist")
    repo.add_all(full_repo())
    repo.add_all(stock)
    repo.add_all(local)
    diags = analyze_config(
        make_ctx(repo=repo,
                 sources=[("stock", stock), ("site-local", local)])
    )
    rk108 = [d for d in diags if d.code == "RK108"]
    assert len(rk108) == 1
    d = rk108[0]
    assert d.data["package"] == "ssh-keys"
    assert d.data["source"] == "site-local"
    assert "shadowed by newer" in d.message
    assert "ssh-keys-2.0" in d.message


def test_rk108_quiet_when_later_source_ties_or_wins():
    stock = Repository("stock")
    stock.add(Package("tool", "1.0"))
    local = Repository("local")
    local.add(Package("tool", "1.0"))   # tie: later source wins, by design
    local.add(Package("newer", "2.0"))
    diags = analyze_config(
        make_ctx(sources=[("stock", stock), ("local", local)])
    )
    assert [d for d in diags if d.code == "RK108"] == []


def test_rk109_empty_distribution():
    diags = analyze_config(
        make_ctx(sources=[("stock", Repository("stock"))])
    )
    rk109 = [d for d in diags if d.code == "RK109"]
    assert len(rk109) == 1
    assert rk109[0].severity.value == "error"
    assert "is empty" in rk109[0].message


# -- RK110: unknown distribution ----------------------------------------------


def test_rk110_unknown_distribution():
    def resolver(d):
        raise KeyError(f"no dist {d}")

    diags = analyze_config(make_ctx(dist_resolver=resolver))
    rk110 = [d for d in diags if d.code == "RK110"]
    assert len(rk110) == 1
    assert "no dist rocks-dist" in rk110[0].message


# -- cross-cutting -------------------------------------------------------------


def test_diagnostics_sorted_and_deterministic():
    ctx_args = dict(extra_edges=[("compute", "ghost"), ("c-development", "compute")])
    first = analyze_config(make_ctx(**ctx_args))
    second = analyze_config(make_ctx(**ctx_args))
    assert [d.to_dict() for d in first] == [d.to_dict() for d in second]
    assert [d.sort_key for d in first] == sorted(d.sort_key for d in first)


def test_select_and_ignore_filter_passes():
    ctx = make_ctx(extra_edges=[("compute", "ghost")])
    only = analyze_config(ctx, select=["RK101"])
    assert codes(only) == ["RK101"]
    none = analyze_config(make_ctx(extra_edges=[("compute", "ghost")]),
                          ignore=["RK10"])
    assert codes(none) == []
