"""The RK3xx dataflow passes: planted hazards, clean forms, self-hosting."""

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

from repro.analysis import DeepContext, analyze_deep, default_deep_context

REPO_ROOT = Path(__file__).resolve().parents[2]


def make_ctx(tmp_path, files):
    """Build a fake package tree: {relative path: source}.

    Paths under ``netsim/`` etc. land in simulation (and hot) packages;
    paths under ``analysis/`` are neither.
    """
    pkg = tmp_path / "src" / "pkg"
    for rel, source in files.items():
        path = pkg / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    return DeepContext(package_root=pkg, repo_root=tmp_path)


def codes(diags):
    return [d.code for d in diags]


# -- the symbol table and call graph -------------------------------------------


def test_symbol_table_qualnames(tmp_path):
    ctx = make_ctx(tmp_path, {"netsim/a.py": """
        class Widget:
            def spin(self):
                return self.helper()
            def helper(self):
                return 1
        def top():
            return Widget()
    """})
    assert "repro.netsim.a.Widget.spin" in ctx.functions
    assert "repro.netsim.a.top" in ctx.functions
    spin = ctx.functions["repro.netsim.a.Widget.spin"]
    assert spin.calls == ["repro.netsim.a.Widget.helper"]


def test_call_graph_resolves_from_imports(tmp_path):
    ctx = make_ctx(tmp_path, {
        "util.py": """
            def make_thing():
                return 1
        """,
        "netsim/b.py": """
            from ..util import make_thing
            def use():
                return make_thing()
        """,
    })
    use = ctx.functions["repro.netsim.b.use"]
    assert use.calls == ["repro.util.make_thing"]


def test_sim_chain_walks_callers(tmp_path):
    ctx = make_ctx(tmp_path, {
        "util.py": """
            def leaf():
                return 1
        """,
        "netsim/c.py": """
            from ..util import leaf
            def entry():
                return leaf()
        """,
    })
    chain = ctx.sim_chain("repro.util.leaf")
    assert chain == ["repro.netsim.c.entry", "repro.util.leaf"]
    assert ctx.sim_chain("repro.netsim.c.entry") == ["repro.netsim.c.entry"]


# -- RK301: unseeded-RNG taint -------------------------------------------------


def test_rk301_direct_in_sim_code(tmp_path):
    ctx = make_ctx(tmp_path, {"netsim/a.py": """
        import random
        def jitter():
            rng = random.Random()
            return rng.random()
    """})
    diags = analyze_deep(ctx)
    assert codes(diags) == ["RK301"]
    assert diags[0].data["chain"] == ["repro.netsim.a.jitter"]


def test_rk301_taint_through_helper(tmp_path):
    ctx = make_ctx(tmp_path, {
        "util.py": """
            from random import Random
            def make_rng():
                return Random()
        """,
        "netsim/b.py": """
            from ..util import make_rng
            def delays():
                return make_rng().random()
        """,
    })
    diags = analyze_deep(ctx)
    assert codes(diags) == ["RK301"]
    assert diags[0].location.file == "src/pkg/util.py"
    assert diags[0].data["chain"] == [
        "repro.netsim.b.delays", "repro.util.make_rng",
    ]
    assert "flows into simulation code" in diags[0].message


def test_rk301_seeded_is_clean(tmp_path):
    ctx = make_ctx(tmp_path, {"netsim/a.py": """
        import random
        def jitter(seed):
            a = random.Random(seed)
            b = random.Random(x=seed)
            c = random.Random(seed=7)
            return a, b, c
    """})
    assert analyze_deep(ctx) == []


def test_rk301_unreached_helper_is_clean(tmp_path):
    """An unseeded RNG nothing in simulation code calls is not a hazard."""
    ctx = make_ctx(tmp_path, {"analysis/tool.py": """
        import random
        def offline():
            return random.Random()
    """})
    assert analyze_deep(ctx) == []


# -- RK302: yield-straddling staleness -----------------------------------------


def test_rk302_snapshot_read_after_yield(tmp_path):
    ctx = make_ctx(tmp_path, {"netsim/d.py": """
        class Pool:
            def refill(self, env):
                active = list(self.flows)
                yield env.timeout(1.0)
                for flow in active:
                    flow.credit += 1
    """})
    diags = analyze_deep(ctx)
    assert codes(diags) == ["RK302"]
    assert "active" in diags[0].message
    assert diags[0].data["snapshot"] == "list(self.flows)"


def test_rk302_copy_method_form(tmp_path):
    ctx = make_ctx(tmp_path, {"netsim/d.py": """
        def drain(env, queue):
            pending = queue.items.copy()
            yield env.timeout(1.0)
            return len(pending)
    """})
    assert codes(analyze_deep(ctx)) == ["RK302"]


def test_rk302_use_before_yield_is_clean(tmp_path):
    ctx = make_ctx(tmp_path, {"netsim/d.py": """
        def report(self, env):
            active = list(self.flows)
            count = len(active)
            yield env.timeout(1.0)
            return count
    """})
    assert analyze_deep(ctx) == []


def test_rk302_local_snapshot_is_clean(tmp_path):
    """Copying purely local data shares nothing; suspension is safe."""
    ctx = make_ctx(tmp_path, {"netsim/d.py": """
        def batch(env, names):
            mine = list(names)
            yield env.timeout(1.0)
            return mine
    """})
    assert analyze_deep(ctx) == []


# -- RK303: unbounded wait loops -----------------------------------------------


def test_rk303_pure_sleep_poll(tmp_path):
    ctx = make_ctx(tmp_path, {"netsim/e.py": """
        def wait_ready(env, node):
            while not node.ready:
                yield env.timeout(1.0)
    """})
    diags = analyze_deep(ctx)
    assert codes(diags) == ["RK303"]
    assert "not node.ready" in diags[0].message


def test_rk303_deadline_bound_is_clean(tmp_path):
    ctx = make_ctx(tmp_path, {"netsim/e.py": """
        def wait_ready(env, node, deadline):
            while not node.ready and env.now < deadline:
                yield env.timeout(1.0)
    """})
    assert analyze_deep(ctx) == []


def test_rk303_service_loop_is_clean(tmp_path):
    """A loop that does work per tick is a service loop, not a poll."""
    ctx = make_ctx(tmp_path, {"netsim/e.py": """
        def serve(self, env):
            while self._running:
                self.tick()
                yield env.slotted_timeout(1.0)
    """})
    assert analyze_deep(ctx) == []


def test_rk303_while_true_is_clean(tmp_path):
    ctx = make_ctx(tmp_path, {"netsim/e.py": """
        def heartbeat(env):
            while True:
                yield env.timeout(5.0)
    """})
    assert analyze_deep(ctx) == []


# -- RK304: order-sensitive float accumulation ---------------------------------


def test_rk304_sum_over_set_name(tmp_path):
    ctx = make_ctx(tmp_path, {"netsim/f.py": """
        def total_rate():
            rates = {1.0, 2.0, 4.0}
            return sum(rates)
    """})
    diags = analyze_deep(ctx)
    assert codes(diags) == ["RK304"]


def test_rk304_genexp_over_set_call(tmp_path):
    ctx = make_ctx(tmp_path, {"netsim/f.py": """
        def total(flows):
            return sum(f.rate for f in set(flows))
    """})
    assert codes(analyze_deep(ctx)) == ["RK304"]


def test_rk304_augassign_under_set_iteration(tmp_path):
    ctx = make_ctx(tmp_path, {"netsim/f.py": """
        def total(flows):
            acc = 0.0
            for f in set(flows):
                acc += f.rate
            return acc
    """})
    assert codes(analyze_deep(ctx)) == ["RK304"]


def test_rk304_cold_package_is_exempt(tmp_path):
    ctx = make_ctx(tmp_path, {"analysis/f.py": """
        def total(flows):
            return sum(f.rate for f in set(flows))
    """})
    assert analyze_deep(ctx) == []


def test_rk304_sorted_iteration_is_clean(tmp_path):
    ctx = make_ctx(tmp_path, {"netsim/f.py": """
        def total(flows):
            return sum(f.rate for f in sorted(flows))
    """})
    assert analyze_deep(ctx) == []


# -- self-hosting and determinism ----------------------------------------------


def test_src_repro_is_rk3xx_clean():
    """The tentpole acceptance bar: every RK3xx hazard in our own source
    was fixed in-tree, so the deep passes run clean."""
    assert analyze_deep(default_deep_context()) == []


def test_deep_diagnostics_sorted(tmp_path):
    ctx = make_ctx(tmp_path, {"netsim/g.py": """
        import random
        def b():
            rng = random.Random()
            while not rng:
                yield None
        def a():
            rates = {1.0}
            return sum(rates)
    """})
    diags = analyze_deep(ctx)
    assert diags == sorted(diags, key=lambda d: d.sort_key)


def _lint_deep_json(hash_seed):
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "lint", "--deep",
         "--format", "json", "--no-baseline"],
        capture_output=True, env=env, cwd=REPO_ROOT,
    )
    return proc.stdout


def test_rk3xx_json_byte_identical_across_hash_seeds():
    """The analyzer output must itself be deterministic: two interpreter
    processes with different hash seeds render identical JSON bytes."""
    first = _lint_deep_json("0")
    second = _lint_deep_json("424242")
    assert first == second
    doc = json.loads(first)
    # --no-baseline resurfaces the profiler's sanctioned wall-clock use;
    # nothing else in src/repro may rise to error severity.
    errors = [d for d in doc["diagnostics"] if d["severity"] == "error"]
    assert all(
        d["code"] == "RK201" and d["file"].endswith("netsim/profiler.py")
        for d in errors
    )
