"""The AST determinism linter: planted hazards, clean forms, self-hosting."""

import textwrap

from repro.analysis import Baseline, SelfLintContext, analyze_self, default_self_context


def make_ctx(tmp_path, files):
    """Build a fake package tree: {relative path: source}."""
    pkg = tmp_path / "src" / "pkg"
    for rel, source in files.items():
        path = pkg / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    return SelfLintContext(package_root=pkg, repo_root=tmp_path)


def codes(diags):
    return [d.code for d in diags]


# -- RK201: wall clock ---------------------------------------------------------


def test_rk201_time_time(tmp_path):
    ctx = make_ctx(tmp_path, {"a.py": """
        import time
        def stamp():
            return time.time()
    """})
    diags = analyze_self(ctx)
    assert codes(diags) == ["RK201"]
    assert "time.time()" in diags[0].message
    assert diags[0].location.file == "src/pkg/a.py"
    assert diags[0].location.line == 4


def test_rk201_datetime_now_variants(tmp_path):
    ctx = make_ctx(tmp_path, {"a.py": """
        import datetime
        from datetime import datetime as dt
        x = datetime.datetime.now()
        y = dt.utcnow()
    """})
    assert codes(analyze_self(ctx)) == ["RK201", "RK201"]


def test_rk201_from_import_and_alias(tmp_path):
    ctx = make_ctx(tmp_path, {"a.py": """
        from time import monotonic
        import time as clock
        a = monotonic()
        b = clock.perf_counter()
    """})
    assert codes(analyze_self(ctx)) == ["RK201", "RK201"]


def test_rk201_env_now_is_clean(tmp_path):
    ctx = make_ctx(tmp_path, {"a.py": """
        def stamp(env):
            return env.now
    """})
    assert analyze_self(ctx) == []


# -- RK202: unseeded global RNG ------------------------------------------------


def test_rk202_module_level_random(tmp_path):
    ctx = make_ctx(tmp_path, {"a.py": """
        import random
        jitter = random.random()
        pick = random.choice([1, 2])
    """})
    diags = analyze_self(ctx)
    assert codes(diags) == ["RK202", "RK202"]
    assert "unseeded" in diags[0].message


def test_rk202_from_import(tmp_path):
    ctx = make_ctx(tmp_path, {"a.py": """
        from random import randint
        n = randint(0, 10)
    """})
    assert codes(analyze_self(ctx)) == ["RK202"]


def test_rk202_seeded_instance_is_clean(tmp_path):
    ctx = make_ctx(tmp_path, {"a.py": """
        import random
        rng = random.Random(42)
        n = rng.randint(0, 10)
    """})
    assert analyze_self(ctx) == []


# -- RK203: set iteration in hot paths ----------------------------------------


def test_rk203_for_over_set_in_hot_path(tmp_path):
    ctx = make_ctx(tmp_path, {"netsim/flows.py": """
        def run(items):
            for x in set(items):
                print(x)
    """})
    diags = analyze_self(ctx)
    assert codes(diags) == ["RK203"]
    assert "hot path" in diags[0].message


def test_rk203_tracked_name_and_comprehension(tmp_path):
    ctx = make_ctx(tmp_path, {"installer/phases.py": """
        def run(items):
            pending = set(items)
            total = sum(x.size for x in pending)
            extra = {x for x in frozenset(items)}
            return total, extra
    """})
    assert codes(analyze_self(ctx)) == ["RK203", "RK203"]


def test_rk203_ignores_cold_paths_and_ordered_forms(tmp_path):
    ctx = make_ctx(tmp_path, {
        # same hazard outside a hot path: not flagged
        "core/tools.py": """
            def run(items):
                for x in set(items):
                    print(x)
        """,
        # ordered iteration forms in a hot path: clean
        "netsim/engine.py": """
            def run(items):
                for x in sorted(set(items)):
                    print(x)
                for y in dict.fromkeys(items):
                    print(y)
                members = set(items)
                if items[0] in members:   # membership only, never iterated
                    return True
        """,
    })
    assert analyze_self(ctx) == []


# -- RK204: leaked spans -------------------------------------------------------


def test_rk204_discarded_span(tmp_path):
    ctx = make_ctx(tmp_path, {"a.py": """
        def run(tracer, parent):
            tracer.span("install", "node-1", parent=parent)
    """})
    diags = analyze_self(ctx)
    assert codes(diags) == ["RK204"]
    assert "never be closed" in diags[0].message


def test_rk204_bound_and_with_forms_are_clean(tmp_path):
    ctx = make_ctx(tmp_path, {"a.py": """
        def run(tracer, parent):
            span = tracer.span("install", "node-1", parent=parent)
            span.end()
            with tracer.span("phase", "dhcp", parent=span):
                pass
    """})
    assert analyze_self(ctx) == []


# -- RK205: leaked metric series -----------------------------------------------


def test_rk205_discarded_series(tmp_path):
    ctx = make_ctx(tmp_path, {"a.py": """
        def setup(store):
            store.open_series("fe/load")
    """})
    diags = analyze_self(ctx)
    assert codes(diags) == ["RK205"]
    assert "opened and discarded" in diags[0].message
    assert "store.record()" in (diags[0].hint or "")


def test_rk205_bound_and_recorded_forms_are_clean(tmp_path):
    ctx = make_ctx(tmp_path, {"a.py": """
        def setup(store, env):
            series = store.open_series("fe/load")
            series.record(env.now, 1.0)
            return store.open_series("fe/cpu")
    """})
    assert analyze_self(ctx) == []


# -- cross-cutting -------------------------------------------------------------


def test_diagnostics_deterministic_across_runs(tmp_path):
    files = {"netsim/a.py": """
        import time
        def f(xs):
            t = time.time()
            for x in set(xs):
                pass
            return t
    """}
    first = analyze_self(make_ctx(tmp_path, files))
    second = analyze_self(make_ctx(tmp_path, files))
    assert [d.to_dict() for d in first] == [d.to_dict() for d in second]
    assert codes(first) == ["RK201", "RK203"]


def test_select_filters_self_passes(tmp_path):
    ctx = make_ctx(tmp_path, {"netsim/a.py": """
        import time
        def f(xs):
            t = time.time()
            for x in set(xs):
                pass
    """})
    assert codes(analyze_self(ctx, select=["RK203"])) == ["RK203"]


def test_syntax_error_files_are_skipped(tmp_path):
    ctx = make_ctx(tmp_path, {"bad.py": "def broken(:\n"})
    assert analyze_self(ctx) == []


# -- RK206: unbounded queues on storm paths -----------------------------------


def test_rk206_unbounded_deque_in_load_package(tmp_path):
    ctx = make_ctx(tmp_path, {"load/generator.py": """
        from collections import deque
        def run():
            pending = deque()
            return pending
    """})
    diags = analyze_self(ctx)
    assert codes(diags) == ["RK206"]
    assert "without a bound" in diags[0].message
    assert "maxlen" in diags[0].hint


def test_rk206_unbounded_queue_classes_in_netsim(tmp_path):
    ctx = make_ctx(tmp_path, {"netsim/buffers.py": """
        import collections
        import queue
        def run():
            a = collections.deque()
            b = queue.Queue()
            c = queue.SimpleQueue()   # has no bound at all
            d = queue.LifoQueue(maxsize=0)  # 0 means unbounded
            return a, b, c, d
    """})
    assert codes(analyze_self(ctx)) == ["RK206"] * 4


def test_rk206_bounded_forms_are_clean(tmp_path):
    ctx = make_ctx(tmp_path, {"load/buffers.py": """
        import collections
        from collections import deque
        from queue import Queue
        def run(items):
            a = deque(maxlen=64)
            b = collections.deque(items, 64)  # positional maxlen
            c = Queue(maxsize=16)
            d = Queue(16)
            return a, b, c, d
    """})
    assert analyze_self(ctx) == []


def test_rk206_ignores_cold_packages(tmp_path):
    ctx = make_ctx(tmp_path, {"analysis/worklist.py": """
        from collections import deque
        def run():
            return deque()
    """})
    assert analyze_self(ctx) == []


def test_rk206_suppressible_by_baseline(tmp_path):
    ctx = make_ctx(tmp_path, {"netsim/accept.py": """
        from collections import deque
        def run():
            return deque()
    """})
    diags = analyze_self(ctx)
    assert codes(diags) == ["RK206"]
    baseline_file = tmp_path / "baseline.txt"
    baseline_file.write_text(
        "RK206 src/pkg/netsim/accept.py  # bounded by the admission cap\n"
    )
    kept, suppressed = Baseline.from_file(baseline_file).apply(diags)
    assert kept == [] and len(suppressed) == 1


# -- RK208: unparented spans ---------------------------------------------------


def test_rk208_unparented_span_flagged(tmp_path):
    ctx = make_ctx(tmp_path, {"sim.py": """
        def run(env):
            span = env.tracer.span("install", "node-1")
            span.end()
    """})
    diags = analyze_self(ctx)
    assert codes(diags) == ["RK208"]
    assert "accidental" in diags[0].message


def test_rk208_explicit_parent_none_is_clean(tmp_path):
    """parent=None is a visible decision (maybe-parent threading), not a
    hazard — the lint wants the decision made, not a particular value."""
    ctx = make_ctx(tmp_path, {"sim.py": """
        def run(env, parent):
            span = env.tracer.span("install", "node-1", parent=None)
            span.end()
            env.tracer.record_span("dead-wait", "node-2", 0.0, parent=parent)
    """})
    assert analyze_self(ctx) == []


def test_rk208_record_span_flagged_and_telemetry_pkg_exempt(tmp_path):
    ctx = make_ctx(tmp_path, {
        "core/boot.py": """
            def note(env, t0):
                env.tracer.record_span("dead-wait", "node-3", t0)
        """,
        "telemetry/tracer.py": """
            def demo(tracer):
                span = tracer.span("install", "node-1")
                span.end()
        """,
    })
    diags = analyze_self(ctx)
    assert codes(diags) == ["RK208"]
    assert diags[0].location.file.endswith("core/boot.py")


def test_rk208_ignores_non_tracer_receivers(tmp_path):
    ctx = make_ctx(tmp_path, {"geom.py": """
        def run(rect):
            return rect.span("x", "y")
    """})
    assert analyze_self(ctx) == []


def test_rk201_aliased_wall_clock_flagged(tmp_path):
    """Binding time.perf_counter to a local reads the wall clock at every
    later call without ever matching the Call pattern — the alias itself
    is the hazard."""
    ctx = make_ctx(tmp_path, {"a.py": """
        import time
        def hot():
            perf = time.perf_counter
            return perf()
    """})
    diags = analyze_self(ctx)
    assert codes(diags) == ["RK201"]
    assert "aliased" in diags[0].message


# -- self-hosting: the acceptance gate ----------------------------------------


def test_self_lint_clean_against_committed_baseline():
    """src/repro passes its own determinism linter with the committed
    baseline (one RK206 entry documents the invariant bounding the
    admission accept queue; every other surfaced hazard was fixed)."""
    ctx = default_self_context()
    diags = analyze_self(ctx)
    baseline = Baseline.from_file(ctx.repo_root / "lint-baseline.txt")
    kept, _suppressed = baseline.apply(diags)
    assert kept == [], [d.render() for d in kept]


def test_self_lint_scans_the_real_tree():
    ctx = default_self_context()
    files = {pf.rel for pf in ctx.files}
    assert "src/repro/netsim/flows.py" in files
    assert "src/repro/installer/anaconda.py" in files
    assert "src/repro/analysis/selfcheck.py" in files  # lints itself
