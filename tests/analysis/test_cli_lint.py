"""The extended `repro lint` CLI: formats, gating, selection, --self."""

import json

import pytest

from repro.analysis import JSON_SCHEMA_VERSION
from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


def test_lint_default_clean(capsys):
    code, out = run_cli(capsys, "lint")
    assert code == 0
    assert "0 error(s)" in out


def test_lint_multi_arch_flag(capsys):
    code, out = run_cli(capsys, "lint", "--arch", "i386,ia64")
    assert code == 0


def test_lint_self_clean_against_baseline(capsys):
    code, out = run_cli(capsys, "lint", "--self")
    assert code == 0
    assert "0 error(s), 0 warning(s)" in out


def test_lint_self_strict_also_clean(capsys):
    code, _ = run_cli(capsys, "lint", "--self", "--strict")
    assert code == 0


def test_lint_self_no_baseline_surfaces_documented_rk206(capsys):
    """Without the baseline the accept-queue RK206 entries resurface —
    the suppression is an inventory of bounding invariants, not a fix."""
    code, out = run_cli(capsys, "lint", "--self", "--strict", "--no-baseline")
    assert code == 1
    assert out.count("RK206") == 2
    assert "netsim/http.py" in out


def test_lint_json_schema(capsys):
    code, out = run_cli(capsys, "lint", "--format", "json")
    assert code == 0
    doc = json.loads(out)
    assert doc["schema"] == JSON_SCHEMA_VERSION
    assert set(doc) == {"schema", "diagnostics", "summary", "suppressed"}
    assert doc["summary"] == {"error": 0, "warning": 0, "info": 0}


def test_lint_json_byte_identical_across_runs(capsys):
    """Determinism applies to the analyzer too (satellite requirement)."""
    _, first = run_cli(capsys, "lint", "--format", "json")
    _, second = run_cli(capsys, "lint", "--format", "json")
    assert first.encode() == second.encode()


def test_lint_self_json_byte_identical_across_runs(capsys):
    _, first = run_cli(capsys, "lint", "--self", "--format", "json")
    _, second = run_cli(capsys, "lint", "--self", "--format", "json")
    assert first.encode() == second.encode()


def test_lint_select_and_ignore_flags(capsys):
    code, _ = run_cli(capsys, "lint", "--select", "RK101,RK106")
    assert code == 0
    code, _ = run_cli(capsys, "lint", "--ignore", "RK1")
    assert code == 0


def test_lint_baseline_flag(tmp_path, capsys):
    baseline = tmp_path / "b.txt"
    baseline.write_text("RK101 nodes/ghost.xml  # testing\n")
    code, out = run_cli(capsys, "lint", "--baseline", str(baseline))
    assert code == 0
