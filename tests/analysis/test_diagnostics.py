"""The diagnostics core: model, registry, renderers, baseline."""

import json

import pytest

from repro.analysis import (
    CODES,
    Baseline,
    BaselineEntry,
    Diagnostic,
    JSON_SCHEMA_VERSION,
    Severity,
    SourceLocation,
    code_info,
    filter_codes,
    render_json,
    render_text,
    summarize,
)


def make(code="RK101", sev=Severity.ERROR, message="boom",
         file="graph/default.xml", line=0, **kw):
    return Diagnostic(code=code, severity=sev, message=message,
                      location=SourceLocation(file, line), **kw)


# -- model -------------------------------------------------------------------


def test_every_code_has_registry_entry():
    for code, info in CODES.items():
        assert info.code == code
        assert info.title
        assert isinstance(info.severity, Severity)


def test_code_families():
    config = [c for c in CODES if c.startswith("RK1")]
    determinism = [c for c in CODES if c.startswith("RK2")]
    assert len(config) >= 8
    assert len(determinism) == 8


def test_code_info_unknown_raises():
    with pytest.raises(ValueError):
        code_info("RK999")


def test_sort_key_orders_by_location_then_code():
    a = make(file="a.xml", code="RK105")
    b = make(file="b.xml", code="RK101")
    c = make(file="a.xml", code="RK101")
    assert sorted([a, b, c], key=lambda d: d.sort_key) == [c, a, b]


def test_render_includes_arch_tag():
    d = make(arch="ia64")
    assert "[ia64]" in d.render()
    assert "RK101 error" in d.render()


def test_location_str_forms():
    assert str(SourceLocation("f.py")) == "f.py"
    assert str(SourceLocation("f.py", 10)) == "f.py:10"
    assert str(SourceLocation("f.py", 10, 3)) == "f.py:10:3"


# -- filtering ----------------------------------------------------------------


def test_filter_codes_select_prefix():
    diags = [make(code="RK101"), make(code="RK203", sev=Severity.WARNING)]
    assert [d.code for d in filter_codes(diags, select=["RK1"])] == ["RK101"]
    assert [d.code for d in filter_codes(diags, ignore=["RK2"])] == ["RK101"]
    assert [d.code for d in filter_codes(diags, select=["RK101", "RK203"])
            ] == ["RK101", "RK203"]


# -- renderers ----------------------------------------------------------------


def test_render_text_lists_hints_and_summary():
    d = make(hint="remove the edge")
    text = render_text([d])
    assert "graph/default.xml: RK101 error: boom" in text
    assert "hint: remove the edge" in text
    assert "1 error(s), 0 warning(s), 0 info" in text


def test_render_text_reports_suppressed_count():
    assert "2 suppressed by baseline" in render_text([], suppressed=2)


def test_render_json_schema_fields():
    doc = json.loads(render_json([make(arch="ia64", data={"z": 1, "a": 2})]))
    assert doc["schema"] == JSON_SCHEMA_VERSION
    assert doc["summary"] == {"error": 1, "warning": 0, "info": 0}
    (entry,) = doc["diagnostics"]
    assert set(entry) == {
        "code", "severity", "message", "file", "line", "column",
        "hint", "arch", "data",
    }
    assert entry["arch"] == "ia64"


def test_render_json_byte_identical_across_runs():
    diags = [make(), make(code="RK203", sev=Severity.WARNING, file="x.py")]
    assert render_json(diags) == render_json(list(diags))


def test_summarize_counts():
    counts = summarize([make(), make(sev=Severity.WARNING), make()])
    assert counts == {"error": 2, "warning": 1, "info": 0}


# -- baseline -----------------------------------------------------------------


BASELINE_TEXT = """
# a comment
RK203 src/repro/netsim/flows.py  # order-independent fill
RK105 nodes/mpi.xml
"""


def test_baseline_parses_entries_and_justifications():
    b = Baseline.from_text(BASELINE_TEXT)
    assert len(b) == 2
    assert b.entries[0] == BaselineEntry(
        "RK203", "src/repro/netsim/flows.py", "order-independent fill"
    )
    assert b.unjustified() == [b.entries[1]]


def test_baseline_rejects_malformed_lines():
    with pytest.raises(ValueError):
        Baseline.from_text("RK203")


def test_baseline_apply_splits_and_tracks_usage():
    b = Baseline.from_text(BASELINE_TEXT)
    hit = make(code="RK203", sev=Severity.WARNING,
               file="src/repro/netsim/flows.py", line=12)
    miss = make(code="RK203", sev=Severity.WARNING, file="src/repro/other.py")
    kept, suppressed = b.apply([hit, miss])
    assert kept == [miss]
    assert suppressed == [hit]
    assert b.used == [b.entries[0]]


def test_baseline_suffix_matching():
    entry = BaselineEntry("RK101", "netsim/flows.py")
    assert entry.matches(make(code="RK101", file="src/repro/netsim/flows.py"))
    assert not entry.matches(make(code="RK101", file="src/repro/netsim/notflows.py"))


def test_baseline_missing_file_is_empty(tmp_path):
    assert len(Baseline.from_file(tmp_path / "nope.txt")) == 0


def test_baseline_round_trip(tmp_path):
    b = Baseline.from_text(BASELINE_TEXT)
    path = tmp_path / "baseline.txt"
    path.write_text(b.render())
    again = Baseline.from_file(path)
    assert again.entries == b.entries


def test_committed_baseline_is_loadable_and_justified():
    from repro.analysis.selfcheck import default_self_context

    repo_root = default_self_context().repo_root
    b = Baseline.from_file(repo_root / "lint-baseline.txt")
    assert b.unjustified() == []
