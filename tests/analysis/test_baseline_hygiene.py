"""Stale-suppression detection: scoping, --prune-baseline, strict gating."""

from pathlib import Path

from repro.analysis import Baseline, BaselineEntry, Diagnostic, Severity, SourceLocation
from repro.cli import main


def _diag(code, path):
    return Diagnostic(
        code=code, severity=Severity.WARNING, message="m",
        location=SourceLocation(path, 1),
    )


def test_stale_scoped_to_possible_codes():
    baseline = Baseline([
        BaselineEntry("RK206", "src/repro/netsim/http.py", "live"),
        BaselineEntry("RK203", "src/repro/gone.py", "fixed long ago"),
        BaselineEntry("RK101", "nodes/ghost.xml", "other family"),
    ])
    kept, suppressed = baseline.apply(
        [_diag("RK206", "src/repro/netsim/http.py")]
    )
    assert not kept and len(suppressed) == 1
    # RK2xx ran: the dead RK203 entry is stale.  RK101 belongs to a pass
    # family that did not run, so it is unproven — not stale.
    stale = baseline.stale({"RK203", "RK206", "RK207"})
    assert [e.code for e in stale] == ["RK203"]


def test_pruned_drops_only_the_given_entries():
    live = BaselineEntry("RK206", "a.py", "live")
    dead = BaselineEntry("RK203", "b.py", "dead")
    baseline = Baseline([live, dead])
    pruned = baseline.pruned([dead])
    assert pruned.entries == [live]
    assert "RK203" not in pruned.render()


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_lint_warns_on_stale_self_entry(tmp_path, capsys):
    baseline = tmp_path / "b.txt"
    baseline.write_text(
        "RK206 src/repro/netsim/http.py  # live accept queue\n"
        "RK201 src/repro/netsim/profiler.py  # sanctioned wall-clock use\n"
        "RK206 src/repro/netsim/gone.py  # refers to deleted code\n"
    )
    code, out, err = run_cli(
        capsys, "lint", "--self", "--baseline", str(baseline))
    assert code == 0  # warnings resurface but stale alone does not fail
    assert "stale baseline entry" in err
    assert "gone.py" in err


def test_lint_strict_fails_on_stale_entry(tmp_path, capsys):
    baseline = tmp_path / "b.txt"
    baseline.write_text(
        "RK206 src/repro/netsim/http.py  # live accept queue\n"
        "RK207 src/repro/quickbuild.py  # live campaign surface\n"
        "RK203 src/repro/netsim/gone.py  # refers to deleted code\n"
    )
    code, out, err = run_cli(
        capsys, "lint", "--self", "--strict", "--baseline", str(baseline))
    assert code == 1
    assert "stale baseline entry" in err


def test_lint_prune_baseline_rewrites_file(tmp_path, capsys):
    # Start from the committed baseline (it suppresses every live
    # diagnostic in src/repro) so --strict only has the planted stale
    # entry to complain about.
    committed = (
        Path(__file__).resolve().parents[2] / "lint-baseline.txt"
    ).read_text(encoding="utf-8")
    baseline = tmp_path / "b.txt"
    baseline.write_text(
        committed + "RK203 src/repro/netsim/gone.py  # refers to deleted code\n"
    )
    code, out, err = run_cli(
        capsys, "lint", "--self", "--strict",
        "--baseline", str(baseline), "--prune-baseline")
    assert code == 0  # pruned entries no longer count as stale
    assert "pruned stale baseline entry" in err
    text = baseline.read_text()
    assert "RK206 src/repro/netsim/http.py" in text
    assert "RK207 src/repro/quickbuild.py" in text
    assert "gone.py" not in text


def test_config_lint_does_not_condemn_self_entries(capsys):
    """The committed baseline holds RK2xx entries; a config-only run must
    not call them stale (their passes never ran)."""
    code, out, err = run_cli(capsys, "lint")
    assert code == 0
    assert "stale" not in err
