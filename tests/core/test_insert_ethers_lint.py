"""Unit tests for insert-ethers details and the kickstart linter."""

import pytest

from repro import build_cluster
from repro.core.kickstart import (
    KickstartGenerator,
    NodeFile,
    default_graph,
    default_node_files,
)
from repro.core.tools import InsertEthers
from repro.rpm import Repository, community_packages, npaci_packages, stock_redhat


# -- insert-ethers ------------------------------------------------------------


def test_insert_assigns_arch_and_cpus_from_hardware():
    sim = build_cluster(n_compute=0)
    m = sim.hardware.add_machine("ia64-800-raid")
    sim.frontend.adopt(m)
    with InsertEthers(sim.frontend) as ie:
        row = ie.insert(m.mac)
    assert row.arch == "ia64"
    assert row.cpus == 2
    assert sim.hardware.by_name("compute-0-0") is m


def test_insert_unknown_hardware_still_recorded():
    """A MAC with no simulated machine (e.g. a managed switch) gets
    database defaults."""
    sim = build_cluster(n_compute=0)
    with InsertEthers(sim.frontend, membership="Ethernet Switches") as ie:
        row = ie.insert("00:01:e7:1a:be:00")
    assert row.name == "network-0-0"
    assert row.arch == "i386"


def test_insert_callback_fires():
    sim = build_cluster(n_compute=0)
    m = sim.hardware.add_machine("pIII-733-myri")
    sim.frontend.adopt(m)
    events = []
    ie = InsertEthers(
        sim.frontend, on_insert=lambda row, machine: events.append((row.name, machine))
    ).start()
    ie.insert(m.mac)
    ie.stop()
    assert events == [("compute-0-0", m)]


def test_two_cabinets_name_independently():
    sim = build_cluster(n_compute=0)
    cab1 = sim.hardware.add_cabinet()
    ms0 = [sim.hardware.add_machine("pIII-733-myri") for _ in range(2)]
    ms1 = [sim.hardware.add_machine("pIII-733-myri", cabinet=cab1) for _ in range(2)]
    ie0 = InsertEthers(sim.frontend, cabinet=0).start()
    for m in ms0:
        ie0.insert(m.mac)
    ie0.stop()
    ie1 = InsertEthers(sim.frontend, cabinet=1).start()
    for m in ms1:
        ie1.insert(m.mac)
    ie1.stop()
    names = [n.name for n in sim.db.compute_nodes()]
    assert names == ["compute-0-0", "compute-0-1", "compute-1-0", "compute-1-1"]


def test_stopped_insert_ethers_ignores_discoveries():
    sim = build_cluster(n_compute=1)
    node = sim.nodes[0]
    # nobody is running insert-ethers: the node retries DHCP forever
    node.power_on()
    sim.env.run(until=sim.env.now + 200)
    assert not sim.db.has_mac(node.mac)
    # the admin starts the tool; the next DISCOVER integrates the node
    sim.insert_ethers = InsertEthers(sim.frontend).start()
    sim.env.run(until=node.wait_for_state(node.state.UP))
    assert sim.db.has_mac(node.mac)


# -- lint ------------------------------------------------------------------------


def make_gen(extra_edges=(), extra_files=(), drop_files=()):
    repo = Repository("rocks-dist")
    for src in (stock_redhat(), community_packages(), npaci_packages()):
        repo.add_all(src)
    graph = default_graph()
    for frm, to in extra_edges:
        graph.add_edge(frm, to)
    files = default_node_files()
    for nf in extra_files:
        files[nf.name] = nf
    for name in drop_files:
        del files[name]
    return KickstartGenerator(graph, files, lambda d: repo)


def test_lint_clean_default_set():
    assert make_gen().lint("rocks-dist") == []


def test_lint_missing_node_file():
    gen = make_gen(extra_edges=[("compute", "ghost")])
    problems = gen.lint("rocks-dist")
    assert any("undefined node file 'ghost'" in p for p in problems)


def test_lint_orphan_node_file():
    orphan = NodeFile.from_xml(
        "orphan", "<kickstart><package>wget</package></kickstart>"
    )
    gen = make_gen(extra_files=[orphan])
    problems = gen.lint("rocks-dist")
    assert any("'orphan' is not reachable" in p for p in problems)


def test_lint_unresolvable_package():
    bad = NodeFile.from_xml(
        "site-bad", "<kickstart><package>flux-capacitor</package></kickstart>"
    )
    gen = make_gen(extra_edges=[("compute", "site-bad")], extra_files=[bad])
    problems = gen.lint("rocks-dist")
    assert any("flux-capacitor" in p for p in problems)


def test_lint_multi_arch():
    repo = Repository("rocks-dist")
    for arch in ("i386", "ia64"):
        repo.add_all(stock_redhat(arch=arch))
        repo.add_all(community_packages(arch))
    repo.add_all(npaci_packages())
    gen = KickstartGenerator(default_graph(), default_node_files(), lambda d: repo)
    assert gen.lint("rocks-dist", arches=("i386", "ia64")) == []


def test_lint_unknown_distribution():
    gen = make_gen()
    gen.dist_resolver = lambda d: (_ for _ in ()).throw(KeyError(f"no dist {d}"))
    problems = gen.lint("nonesuch")
    assert problems and "nonesuch" in problems[-1]


# -- arch-conditional lint (the typed engine behind the shim) -----------------


def make_multiarch_gen(extra_edges=(), extra_files=(), i386_only=()):
    """A generator whose repo carries i386+ia64, plus i386-only extras."""
    from repro.rpm import Package

    repo = Repository("rocks-dist")
    for arch in ("i386", "ia64"):
        repo.add_all(stock_redhat(arch=arch))
        repo.add_all(community_packages(arch))
    repo.add_all(npaci_packages())
    for name in i386_only:
        repo.add(Package(name, "1.0", arch="i386"))
    graph = default_graph()
    for frm, to in extra_edges:
        graph.add_edge(frm, to)
    files = default_node_files()
    for nf in extra_files:
        files[nf.name] = nf
    return KickstartGenerator(graph, files, lambda d: repo)


def test_lint_clean_for_i386_but_broken_for_ia64_is_arch_tagged():
    """A package that only exists as i386 lints clean for i386 and
    produces arch-tagged RK106 diagnostics for ia64."""
    nf = NodeFile.from_xml(
        "site-x86tool", "<kickstart><package>x86tool</package></kickstart>"
    )
    gen = make_multiarch_gen(
        extra_edges=[("compute", "site-x86tool")],
        extra_files=[nf],
        i386_only=["x86tool"],
    )
    assert gen.lint("rocks-dist", arches=("i386",)) == []

    problems = gen.lint("rocks-dist", arches=("ia64",))
    assert any("x86tool" in p and "ia64" in p for p in problems)

    diags = gen.lint_diagnostics("rocks-dist", arches=("ia64",))
    rk106 = [d for d in diags if d.code == "RK106"]
    assert rk106
    assert all(d.arch == "ia64" for d in rk106)
    assert any(d.data.get("package") == "x86tool" for d in rk106)


def test_lint_multi_arch_reports_only_broken_arch():
    nf = NodeFile.from_xml(
        "site-x86tool", "<kickstart><package>x86tool</package></kickstart>"
    )
    gen = make_multiarch_gen(
        extra_edges=[("compute", "site-x86tool")],
        extra_files=[nf],
        i386_only=["x86tool"],
    )
    diags = gen.lint_diagnostics("rocks-dist", arches=("i386", "ia64"))
    arch_tags = {d.arch for d in diags if d.code == "RK106"}
    assert arch_tags == {"ia64"}


def test_cli_lint_arch_ia64_default_set_clean(capsys):
    """`repro lint --arch ia64` — the CLI path of the satellite check."""
    from repro.cli import main

    assert main(["lint", "--arch", "ia64"]) == 0
    out = capsys.readouterr().out
    assert "0 error(s)" in out
