"""Property-based tests across the Rocks core (hypothesis)."""

import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.database import ClusterDatabase
from repro.core.distribution import RocksDist
from repro.core.kickstart import Graph, NodeFile
from repro.rpm import Package, Repository

name_st = st.text(alphabet=string.ascii_lowercase + "-", min_size=1, max_size=10).filter(
    lambda s: s.strip("-")
)


# -- graph properties -----------------------------------------------------------


@settings(max_examples=150, deadline=None)
@given(
    edges=st.lists(
        st.tuples(name_st, name_st).filter(lambda e: e[0] != e[1]),
        min_size=1,
        max_size=25,
    )
)
def test_traversal_properties(edges):
    g = Graph()
    for frm, to in edges:
        g.add_edge(frm, to)
    root = edges[0][0]
    order = g.traverse(root)
    # pre-order: root first, no duplicates
    assert order[0] == root
    assert len(order) == len(set(order))
    # soundness: everything visited is reachable via some edge chain
    reachable = {root}
    changed = True
    while changed:
        changed = False
        for frm, to in edges:
            if frm in reachable and to not in reachable:
                reachable.add(to)
                changed = True
    assert set(order) == reachable
    # determinism
    assert g.traverse(root) == order


@settings(max_examples=100, deadline=None)
@given(
    edges=st.lists(
        st.tuples(name_st, name_st, st.booleans()).filter(lambda e: e[0] != e[1]),
        min_size=1,
        max_size=15,
    )
)
def test_graph_xml_roundtrip_property(edges):
    g = Graph()
    for frm, to, ia64_only in edges:
        g.add_edge(frm, to, archs=["ia64"] if ia64_only else None)
    again = Graph.from_xml(g.to_xml())
    assert again.edges == g.edges


# -- node file round trip ----------------------------------------------------------


@settings(max_examples=100, deadline=None)
@given(
    packages=st.lists(name_st, min_size=0, max_size=8),
    description=st.text(
        alphabet=string.ascii_letters + " ", min_size=0, max_size=40
    ),
    post_seconds=st.floats(min_value=0, max_value=60),
)
def test_nodefile_roundtrip_property(packages, description, post_seconds):
    node = NodeFile(name="x", description=description.strip())
    from repro.core.kickstart import PackageRef, PostFragment

    node.packages = [PackageRef(p) for p in packages]
    node.post = [PostFragment("echo post", seconds=post_seconds)]
    again = NodeFile.from_xml("x", node.to_xml())
    assert again.description == node.description
    assert again.package_names("i386") == [p.name for p in node.packages]
    assert again.post[0].seconds == pytest.approx(post_seconds)


# -- rocks-dist resolution ------------------------------------------------------------


@settings(max_examples=100, deadline=None)
@given(
    data=st.lists(
        st.tuples(
            st.sampled_from(["alpha", "beta", "gamma", "delta"]),  # name
            st.integers(min_value=0, max_value=5),  # version
            st.integers(min_value=1, max_value=9),  # release
            st.integers(min_value=0, max_value=2),  # which source
        ),
        min_size=1,
        max_size=30,
    )
)
def test_gather_resolution_properties(data):
    sources = [Repository(f"s{i}") for i in range(3)]
    for name, version, release, src in data:
        sources[src].add(Package(name, f"1.{version}", str(release)))
    rd = RocksDist()
    for s in sources:
        rd.add_source(s)
    resolved, dropped = rd.gather()
    # exactly one build per (name, arch)
    for name in resolved.names():
        assert len(resolved.versions(name)) == 1
    # that build is the newest across all sources
    for name in resolved.names():
        best = resolved.latest(name)
        for s in sources:
            if name in s:
                assert not s.latest(name).newer_than(best)
    # conservation: kept + dropped == total added (dedup'd per repo)
    total = sum(len(s) for s in sources)
    assert len(resolved) + dropped == total
    # idempotence: re-running on the result changes nothing
    rd2 = RocksDist()
    rd2.add_source(resolved)
    resolved2, dropped2 = rd2.gather()
    assert dropped2 == 0
    assert {p.nevra for p in resolved2} == {p.nevra for p in resolved}


# -- database IP allocation -------------------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(
    n_nodes=st.integers(min_value=1, max_value=40),
    removals=st.lists(st.integers(min_value=0, max_value=39), max_size=10),
)
def test_ip_allocation_never_collides(n_nodes, removals):
    db = ClusterDatabase()
    for i in range(n_nodes):
        db.add_node(f"compute-0-{i}", mac=f"m{i}")
    for r in removals:
        if r < n_nodes:
            db.remove_node(f"compute-0-{r}")
    # removed addresses become reusable; allocation stays collision-free
    before = {n.ip for n in db.nodes()}
    row = db.add_node("extra-0-0", mac="mx")
    assert row.ip not in before
    ips = [n.ip for n in db.nodes()]
    assert len(ips) == len(set(ips))


@settings(max_examples=50, deadline=None)
@given(seq=st.permutations(list(range(6))))
def test_rank_assignment_order_independent_of_membership_mix(seq):
    db = ClusterDatabase()
    for i in seq:
        membership = "Compute" if i % 2 == 0 else "Web Servers"
        rank = db.next_rank(0, membership)
        base = "compute" if membership == "Compute" else "web"
        db.add_node(f"{base}-0-{rank}-{i}", membership=membership, mac=f"m{i}",
                    rack=0, rank=rank)
    # ranks are dense per membership
    for membership in ("Compute", "Web Servers"):
        ranks = sorted(n.rank for n in db.nodes(membership))
        assert ranks == list(range(len(ranks)))
