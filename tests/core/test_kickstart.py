"""Tests for the XML kickstart framework (§6.1, Figures 2-4)."""

import pytest

from repro.core.database import ClusterDatabase
from repro.core.kickstart import (
    DEFAULT_NODE_XML,
    GenerationError,
    Graph,
    GraphError,
    KickstartCgi,
    KickstartGenerator,
    NodeFile,
    NodeFileError,
    UnknownClient,
    default_graph,
    default_node_files,
)
from repro.installer import InstallProfile
from repro.rpm import Repository, community_packages, npaci_packages, stock_redhat


def merged_repo(arch="i386"):
    repo = Repository("rocks-dist")
    for src in (stock_redhat(arch=arch), community_packages(arch), npaci_packages()):
        repo.add_all(src)
    return repo


@pytest.fixture(scope="module")
def repo():
    return merged_repo()


@pytest.fixture
def generator(repo):
    return KickstartGenerator(
        default_graph(), default_node_files(), lambda dist: repo
    )


# -- node files ----------------------------------------------------------------


def test_parse_figure2_dhcp_module():
    node = NodeFile.from_xml("dhcp-server", DEFAULT_NODE_XML["dhcp-server"])
    assert node.description == "Setup the DHCP server for the cluster"
    assert node.package_names("i386") == ["dhcp"]
    assert "DHCPD_INTERFACES" in node.post[0].script


def test_nodefile_arch_restriction():
    node = NodeFile.from_xml("mpi", DEFAULT_NODE_XML["mpi"])
    assert "intel-mkl" in node.package_names("i386")
    assert "intel-mkl" in node.package_names("athlon")
    assert "intel-mkl" not in node.package_names("ia64")


def test_nodefile_roundtrip():
    node = NodeFile.from_xml("mpi", DEFAULT_NODE_XML["mpi"])
    again = NodeFile.from_xml("mpi", node.to_xml())
    assert again.package_names("i386") == node.package_names("i386")
    assert len(again.post) == len(node.post)
    assert again.description == node.description


def test_nodefile_bad_xml():
    with pytest.raises(NodeFileError, match="bad XML"):
        NodeFile.from_xml("x", "<kickstart><unclosed>")
    with pytest.raises(NodeFileError, match="root element"):
        NodeFile.from_xml("x", "<graph/>")
    with pytest.raises(NodeFileError, match="empty <package>"):
        NodeFile.from_xml("x", "<kickstart><package/></kickstart>")
    with pytest.raises(NodeFileError, match="unknown element"):
        NodeFile.from_xml("x", "<kickstart><pkg>x</pkg></kickstart>")


def test_nodefile_uppercase_tags_accepted():
    """The paper's Figure 2 uses <KICKSTART>/<PACKAGE>/<POST>."""
    xml = (
        '<?xml version="1.0" standalone="no"?>'
        "<KICKSTART><DESCRIPTION>d</DESCRIPTION>"
        "<PACKAGE>dhcp</PACKAGE><POST>echo hi</POST></KICKSTART>"
    )
    node = NodeFile.from_xml("dhcp-server", xml)
    assert node.package_names("i386") == ["dhcp"]


# -- graph -----------------------------------------------------------------------


def test_figure4_compute_traversal():
    """Paper: 'if the machine was configured to be a compute appliance,
    the traversal of the graph would be the compute, mpi, and
    c-development node files.'"""
    g = Graph()
    g.add_edge("compute", "mpi")
    g.add_edge("mpi", "c-development")
    g.add_edge("frontend", "mpi")
    g.add_edge("frontend", "dhcp-server")
    assert g.traverse("compute") == ["compute", "mpi", "c-development"]
    assert g.traverse("frontend") == [
        "frontend",
        "mpi",
        "c-development",
        "dhcp-server",
    ]


def test_graph_roots_are_appliances():
    g = default_graph()
    assert set(g.roots()) >= {"compute", "frontend", "nfs", "web"}


def test_graph_arch_conditional_edges():
    g = Graph()
    g.add_edge("compute", "base")
    g.add_edge("compute", "ia64-boot", archs=["ia64"])
    assert g.traverse("compute", "i386") == ["compute", "base"]
    assert g.traverse("compute", "ia64") == ["compute", "base", "ia64-boot"]


def test_graph_tolerates_cycles():
    g = Graph()
    g.add_edge("a", "b")
    g.add_edge("b", "a")
    assert g.traverse("a") == ["a", "b"]


def test_graph_xml_roundtrip():
    g = default_graph()
    again = Graph.from_xml(g.to_xml())
    assert again.edges == g.edges


def test_graph_bad_xml():
    with pytest.raises(GraphError, match="root element"):
        Graph.from_xml("<kickstart/>")
    with pytest.raises(GraphError, match="'from' and 'to'"):
        Graph.from_xml("<graph><edge from='a'/></graph>")
    with pytest.raises(GraphError, match="unknown graph element"):
        Graph.from_xml("<graph><vertex/></graph>")


def test_graph_traverse_unknown_root():
    with pytest.raises(GraphError, match="not in graph"):
        default_graph().traverse("mainframe")


def test_graph_to_dot_visualisation():
    dot = default_graph().to_dot()
    assert dot.startswith("digraph default {")
    assert '"compute" -> "mpi";' in dot
    assert '"compute" [shape=box];' in dot


def test_graph_remove_edge():
    g = Graph()
    g.add_edge("a", "b")
    g.remove_edge("a", "b")
    assert g.edges == ()
    with pytest.raises(GraphError):
        g.remove_edge("a", "b")


# -- generator ----------------------------------------------------------------------


def test_compute_kickstart_renders(generator):
    ks = generator.kickstart("compute", "i386", "rocks-dist")
    text = ks.render()
    assert "url --url http://frontend-0/install/rocks-dist" in text
    assert "%packages" in text
    assert "mpich" in text
    assert "%post" in text
    assert "part / --size 4096" in text
    assert "part /state/partition1 --size 1 --grow" in text


def test_frontend_kickstart_differs(generator):
    compute = generator.kickstart("compute", "i386", "rocks-dist")
    frontend = generator.kickstart("frontend", "i386", "rocks-dist")
    assert "dhcp" in frontend.packages
    assert "dhcp" not in compute.packages
    assert "pbs-mom" in compute.packages
    assert "maui" in frontend.packages
    assert "part /export --size 1 --grow" in frontend.render()


def test_compute_profile_resolves_with_closure(generator):
    profile = generator.profile("compute", "i386", "rocks-dist")
    assert isinstance(profile, InstallProfile)
    names = {p.name for p in profile.packages}
    # requested packages present...
    assert {"mpich", "pbs-mom", "ypbind", "basesystem"} <= names
    # ...plus their dependency closure
    assert "glibc" in names
    assert "pbs" in names  # pbs-mom requires pbs
    assert profile.n_packages > 100
    assert profile.post_scripts


def test_profile_packages_are_install_ordered(generator):
    profile = generator.profile("compute", "i386", "rocks-dist")
    pos = {p.name: i for i, p in enumerate(profile.packages)}
    assert pos["glibc"] < pos["bash"]
    assert pos["pbs"] < pos["pbs-mom"]


def test_missing_node_file_reported():
    g = Graph()
    g.add_edge("compute", "ghost-module")
    gen = KickstartGenerator(g, default_node_files(), lambda d: merged_repo())
    with pytest.raises(GenerationError, match="ghost-module"):
        gen.kickstart("compute", "i386", "rocks-dist")


def test_unresolvable_package_reported(repo):
    files = default_node_files()
    files["mpi"] = NodeFile.from_xml(
        "mpi",
        "<kickstart><package>libquantum-flux</package></kickstart>",
    )
    gen = KickstartGenerator(default_graph(), files, lambda d: repo)
    with pytest.raises(GenerationError, match="do not resolve"):
        gen.profile("compute", "i386", "rocks-dist")


def test_site_customisation_via_new_nodefile(repo):
    """§6.1 footnote: users add node files to tailor the cluster."""
    gen = KickstartGenerator(default_graph(), default_node_files(), lambda d: repo)
    gen.add_node_file(
        NodeFile.from_xml(
            "site-emacs", "<kickstart><package>emacs</package></kickstart>"
        )
    )
    gen.graph.add_edge("compute", "site-emacs")
    profile = gen.profile("compute", "i386", "rocks-dist")
    assert any(p.name == "emacs" for p in profile.packages)


def test_ia64_profile_uses_ia64_packages():
    repo = Repository("rocks-dist")
    for src in (
        stock_redhat(arch="i386"),
        stock_redhat(arch="ia64"),
        community_packages("i386"),
        community_packages("ia64"),
        npaci_packages(),
    ):
        repo.add_all(src)
    gen = KickstartGenerator(default_graph(), default_node_files(), lambda d: repo)
    profile = gen.profile("compute", "ia64", "rocks-dist")
    archs = {p.arch for p in profile.packages}
    assert archs <= {"ia64", "noarch"}
    assert not any(p.name == "intel-mkl" for p in profile.packages)


# -- CGI --------------------------------------------------------------------------------


def test_cgi_full_request_path(generator):
    db = ClusterDatabase()
    db.add_node("compute-0-0", mac="00:50:8b:00:00:01")
    cgi = KickstartCgi(db, generator)
    profile, size = cgi("00:50:8b:00:00:01", "/install/kickstart.cgi")
    assert profile.appliance == "compute"
    assert size == len(profile.kickstart_text.encode())
    assert cgi.requests == 1


def test_cgi_lookup_by_ip(generator):
    db = ClusterDatabase()
    row = db.add_node("compute-0-0", mac="00:50:8b:00:00:01")
    cgi = KickstartCgi(db, generator)
    profile = cgi.generate(row.ip)
    assert profile.appliance == "compute"


def test_cgi_unknown_client_rejected(generator):
    cgi = KickstartCgi(ClusterDatabase(), generator)
    with pytest.raises(UnknownClient):
        cgi.generate("de:ad:be:ef:00:00")


def test_cgi_respects_per_node_distribution(generator):
    """§6.2.3: different nodes can point at different distributions."""
    db = ClusterDatabase()
    db.add_node("compute-0-0", mac="m0")
    db.add_node("compute-0-1", mac="m1")
    db.set_os_dist("compute-0-1", "developer-dist")
    cgi = KickstartCgi(db, generator)
    assert cgi.generate("m0").dist_name == "rocks-dist"
    assert cgi.generate("m1").dist_name == "developer-dist"
