"""Failure-injection integration tests: services dying under live installs."""

import pytest

from repro import build_cluster
from repro.cluster import MachineState
from repro.core.tools import shoot_node
from repro.netsim import TransferAborted


def test_dhcp_outage_delays_but_does_not_fail_install():
    """dhcpd restarts are invisible to booting nodes: they just retry."""
    sim = build_cluster(n_compute=1)
    sim.integrate_all()
    node = sim.nodes[0]
    sim.frontend.dhcp.stop()
    node.request_reinstall()
    sim.env.run(until=sim.env.now + 300)
    assert node.state is MachineState.INSTALLING  # stuck in the DHCP loop
    sim.frontend.dhcp.start()
    sim.env.run(until=node.wait_for_state(MachineState.UP))
    assert node.install_count == 2


def test_install_server_crash_hangs_node_with_diagnostic():
    """An unrepaired HTTP server exhausts anaconda's bounded retries,
    leaving the node HUNG — and shoot-node's PDU path recovers it."""
    sim = build_cluster(n_compute=1)
    sim.integrate_all()
    node = sim.nodes[0]
    node.request_reinstall()
    sim.env.run(until=node.wait_for_state(MachineState.INSTALLING))
    sim.env.run(until=sim.env.now + 200)  # mid package pull
    sim.frontend.install_server.fail()
    sim.env.run(until=node.wait_for_state(MachineState.HUNG))
    assert any("installation failed" in line for line in node.console)

    # repair and recover via the §4 escalation (node is dark on Ethernet)
    sim.frontend.install_server.repair()
    report = sim.env.run(until=shoot_node(sim.frontend, node))
    assert report.method == "pdu"
    assert node.is_up
    assert len(node.rpmdb) == 162


def test_frontend_power_loss_aborts_transfers_cleanly():
    """Killing the frontend cancels every in-flight HTTP flow."""
    sim = build_cluster(n_compute=2)
    sim.integrate_all()
    for node in sim.nodes:
        node.request_reinstall()
    sim.env.run(until=sim.nodes[0].wait_for_state(MachineState.INSTALLING))
    sim.env.run(until=sim.env.now + 200)
    assert sim.hardware.network.flows.active_flows >= 0
    sim.frontend.machine.power_off()
    # all flows touching the frontend link were torn down
    assert all(
        sim.frontend.machine.mac not in (l.name.split(".")[0] for l in f.path)
        for f in sim.hardware.network.flows._flows
    )


def test_node_power_cycle_storm_converges():
    """Repeated hard power cycles mid-install always reconverge to UP."""
    sim = build_cluster(n_compute=1)
    sim.integrate_all()
    node = sim.nodes[0]
    for _ in range(3):
        node.request_reinstall()
        sim.env.run(until=node.wait_for_state(MachineState.INSTALLING))
        sim.env.run(until=sim.env.now + 100)  # partway through
        node.power_off(hard=True)
        assert len(node.rpmdb) == 0
        node.power_on()
        sim.env.run(until=node.wait_for_state(MachineState.UP))
    assert len(node.rpmdb) == 162
    assert node.rpmdb.verify()


def test_nis_and_nfs_survive_node_reinstalls():
    """Account state lives on the frontend; node reinstalls don't lose it."""
    sim = build_cluster(n_compute=2)
    sim.integrate_all()
    f = sim.frontend
    f.add_user("bruno", 500)
    mount = f.nfs.mount(sim.nodes[0].hostid, "/export/home", "/home")
    mount.write("thesis.tex", b"\\documentclass{article}")
    sim.reinstall_all()
    assert f.nis.lookup("bruno").uid == 500
    assert mount.read("thesis.tex").startswith(b"\\documentclass")


def test_determinism_across_identical_runs():
    """Two identical simulations produce byte-identical outcomes."""

    def run():
        sim = build_cluster(n_compute=3, seed=11)
        sim.integrate_all()
        reports = sim.reinstall_all()
        return [
            (r.host, round(r.seconds, 6), r.method) for r in reports
        ], [n.rpmdb.installed_names() for n in sim.nodes]

    a, b = run(), run()
    assert a == b
