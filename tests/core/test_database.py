"""Tests for the cluster database and its report generators (§6.4)."""

import pytest

from repro.core.database import (
    ClusterDatabase,
    DatabaseError,
    dhcp_bindings,
    report_dhcpd,
    report_hosts,
    report_pbs_nodes,
)


@pytest.fixture
def db():
    d = ClusterDatabase()
    d.add_node(
        "frontend-0",
        membership="Frontend",
        mac="00:30:c1:d8:ac:80",
        ip="10.1.1.1",
        cpus=2,
        comment="Gateway machine",
    )
    return d


def test_default_catalogs_seeded(db):
    names = [m[1] for m in db.memberships()]
    assert "Frontend" in names
    assert "Compute" in names
    assert "Power Units" in names


def test_add_node_and_lookup(db):
    row = db.add_node("compute-0-0", mac="00:50:8b:e0:3a:a7", rack=0, rank=0)
    assert row.ip == "10.255.255.254"  # descending from the top (Table II)
    assert db.node_by_mac("00:50:8b:e0:3a:a7").name == "compute-0-0"
    assert db.node_by_ip("10.255.255.254").name == "compute-0-0"
    assert db.has_mac("00:50:8b:e0:3a:a7")


def test_ips_descend(db):
    a = db.add_node("compute-0-0", mac="m0")
    b = db.add_node("compute-0-1", mac="m1")
    assert a.ip == "10.255.255.254"
    assert b.ip == "10.255.255.253"


def test_duplicate_name_and_mac_rejected(db):
    db.add_node("compute-0-0", mac="m0")
    with pytest.raises(DatabaseError):
        db.add_node("compute-0-0", mac="m9")
    with pytest.raises(DatabaseError):
        db.add_node("compute-0-1", mac="m0")


def test_unknown_membership(db):
    with pytest.raises(DatabaseError, match="membership"):
        db.add_node("x", membership="Quantum")


def test_next_rank_per_rack(db):
    db.add_node("compute-0-0", mac="a", rack=0, rank=0)
    db.add_node("compute-0-1", mac="b", rack=0, rank=1)
    db.add_node("compute-1-0", mac="c", rack=1, rank=0)
    assert db.next_rank(0) == 2
    assert db.next_rank(1) == 1
    assert db.next_rank(7) == 0


def test_compute_nodes_join(db):
    """Table III: joining memberships.compute='yes' selects compute only."""
    db.add_node("compute-0-0", mac="a")
    db.add_node("nfs-0-0", membership="NFS Servers", mac="b")
    db.add_node("network-0-0", membership="Ethernet Switches")
    names = [n.name for n in db.compute_nodes()]
    assert names == ["compute-0-0"]


def test_raw_query_with_join(db):
    """The cluster-kill --query path: arbitrary SQL with joins."""
    db.add_node("compute-0-0", mac="a", rack=0)
    db.add_node("compute-1-0", mac="b", rack=1)
    db.add_node("compute-1-1", mac="c", rack=1)
    rows = db.query("select name from nodes where rack=1")
    assert [r[0] for r in rows] == ["compute-1-0", "compute-1-1"]
    rows = db.query(
        "select nodes.name from nodes,memberships where "
        "nodes.membership = memberships.id and memberships.name = 'Compute'"
    )
    assert len(rows) == 3


def test_app_globals_roundtrip(db):
    db.set_global("Kickstart", "PublicHostname", "meteor.sdsc.edu")
    assert db.get_global("Kickstart", "PublicHostname") == "meteor.sdsc.edu"
    db.set_global("Kickstart", "PublicHostname", "rocks.sdsc.edu")
    assert db.get_global("Kickstart", "PublicHostname") == "rocks.sdsc.edu"
    assert db.get_global("Kickstart", "Nonesuch", "dflt") == "dflt"


def test_set_os_dist(db):
    db.add_node("compute-0-0", mac="a")
    db.set_os_dist("compute-0-0", "developer-dist")
    assert db.node_by_name("compute-0-0").os_dist == "developer-dist"
    with pytest.raises(DatabaseError):
        db.set_os_dist("ghost", "x")


def test_appliance_for_membership(db):
    mid = db.membership_id("Compute")
    assert db.appliance_for_membership(mid) == ("compute", "compute")
    mid = db.membership_id("Web Servers")
    assert db.appliance_for_membership(mid) == ("web", "web")


def test_remove_node(db):
    db.add_node("compute-0-0", mac="a")
    db.remove_node("compute-0-0")
    with pytest.raises(DatabaseError):
        db.node_by_name("compute-0-0")


# -- reports -------------------------------------------------------------------


def test_report_hosts(db):
    db.add_node("compute-0-0", mac="a")
    text = report_hosts(db)
    assert "10.1.1.1\tfrontend-0.local frontend-0" in text
    assert "10.255.255.254\tcompute-0-0.local compute-0-0" in text
    assert text.startswith("# /etc/hosts")


def test_report_dhcpd(db):
    db.add_node("compute-0-0", mac="00:50:8b:e0:3a:a7")
    text = report_dhcpd(db)
    assert "host compute-0-0 {" in text
    assert "hardware ethernet 00:50:8b:e0:3a:a7;" in text
    assert "fixed-address 10.255.255.254;" in text
    assert "next-server frontend-0;" in text


def test_report_pbs_nodes_only_compute(db):
    db.add_node("compute-0-0", mac="a", cpus=2)
    db.add_node("nfs-0-0", membership="NFS Servers", mac="b")
    assert report_pbs_nodes(db) == "compute-0-0 np=2\n"


def test_dhcp_bindings_structured(db):
    db.add_node("compute-0-0", mac="a")
    db.add_node("network-0-0", membership="Ethernet Switches")  # no MAC
    bindings = dhcp_bindings(db)
    assert {b.hostname for b in bindings} == {"frontend-0", "compute-0-0"}


def test_table2_shape(db):
    """Reproduce Table II's row mix: frontend, switch, nfs, computes, web."""
    db.add_node("network-0-0", membership="Ethernet Switches", rack=0,
                comment="Switch for Cabinet 0")
    db.add_node("nfs-0-0", membership="NFS Servers", mac="00:50:8b:a5:4d:b1")
    for i in range(4):
        db.add_node(f"compute-0-{i}", mac=f"00:50:8b:e0:00:0{i}", rack=0, rank=i)
    db.add_node("web-1-0", membership="Web Servers", mac="00:50:8b:c5:c7:d3",
                rack=1, comment="Web Server in Cabinet 1")
    rows = db.query(
        "select nodes.id, nodes.name, memberships.name from nodes, memberships "
        "where nodes.membership = memberships.id order by nodes.id"
    )
    kinds = {name: kind for _, name, kind in rows}
    assert kinds["frontend-0"] == "Frontend"
    assert kinds["network-0-0"] == "Ethernet Switches"
    assert kinds["nfs-0-0"] == "NFS Servers"
    assert kinds["compute-0-2"] == "Compute"
    assert kinds["web-1-0"] == "Web Servers"
