"""Integration tests: frontend bring-up, insert-ethers, shoot-node,
eKV, crash cart, cluster-fork/kill, and the queued cluster reinstall."""

import pytest

from repro import build_cluster
from repro.cluster import MachineState, PowerState
from repro.core.tools import (
    CrashCart,
    EkvConsole,
    EkvUnreachable,
    InsertEthers,
    NoVideoSignal,
    cluster_fork,
    cluster_kill,
    queue_cluster_reinstall,
    shoot_node,
)
from repro.scheduler import JobState


@pytest.fixture(scope="module")
def sim():
    """One shared 4-node cluster (module-scoped: bring-up is expensive)."""
    s = build_cluster(n_compute=4)
    s.integrate_all()
    return s


# -- frontend bring-up -------------------------------------------------------------


def test_frontend_installed_and_up(sim):
    f = sim.frontend
    assert f.machine.is_up
    assert len(f.machine.rpmdb) > 100
    assert "dhcp" in f.machine.rpmdb
    assert "maui" in f.machine.rpmdb
    assert f.dhcp.running
    assert f.install_server.running


def test_frontend_in_database(sim):
    row = sim.db.node_by_name("frontend-0")
    assert row.ip == "10.1.1.1"
    assert row.comment == "Gateway machine"


def test_distribution_published(sim):
    f = sim.frontend
    assert "rocks-dist" in f.install_server.distributions()
    dist = f.distributions["rocks-dist"]
    assert dist.tree_bytes() < 40e6


# -- insert-ethers ------------------------------------------------------------------


def test_nodes_integrated_with_table2_naming(sim):
    names = [n.hostid for n in sim.nodes]
    assert names == [f"compute-0-{i}" for i in range(4)]
    rows = sim.db.compute_nodes()
    assert [r.rank for r in rows] == [0, 1, 2, 3]
    assert rows[0].ip == "10.255.255.254"
    assert rows[1].ip == "10.255.255.253"


def test_configs_regenerated_on_insert(sim):
    f = sim.frontend
    assert f.config_regenerations >= 5  # initial + one per node
    assert f.dhcp.n_bindings == 5  # frontend + 4 computes
    assert "compute-0-3" in f.hosts_file
    assert set(f.pbs.nodes()) == {f"compute-0-{i}" for i in range(4)}


def test_insert_ethers_ignores_known_macs(sim):
    ie = sim.insert_ethers
    before = len(ie.integrated)
    sim.frontend.dhcp.discover(sim.nodes[0].mac)  # a reinstalling node
    assert len(ie.integrated) == before


def test_insert_ethers_validates_membership(sim):
    with pytest.raises(ValueError, match="unknown membership"):
        InsertEthers(sim.frontend, membership="Mainframes")


def test_nodes_installed_162_packages(sim):
    for node in sim.nodes:
        assert len(node.rpmdb) == 162
        assert node.rpmdb.query("mpich") is not None
        assert node.kernel_version is not None
        assert node.loaded_modules == ["gm"]  # Myrinet driver rebuilt


# -- shoot-node / eKV ------------------------------------------------------------------


def test_shoot_node_over_ethernet(sim):
    node = sim.nodes[0]
    before = node.install_count
    report = sim.env.run(until=shoot_node(sim.frontend, node))
    assert report.ok
    assert report.method == "ethernet"
    assert node.install_count == before + 1
    # §5: "currently 5-10 minutes"
    assert 5 <= report.minutes <= 11


def test_shoot_node_falls_back_to_pdu(sim):
    node = sim.nodes[1]
    node.power_off()  # unresponsive over Ethernet
    report = sim.env.run(until=shoot_node(sim.frontend, node))
    assert report.ok
    assert report.method == "pdu"
    assert node.is_up


def test_ekv_streams_install_console(sim):
    node = sim.nodes[2]
    proc = shoot_node(sim.frontend, node)
    sim.env.run(until=node.wait_for_state(MachineState.INSTALLING))
    ekv = EkvConsole(sim.hardware, node)
    assert ekv.reachable
    sim.env.run(until=sim.env.now + 400)
    lines = "\n".join(ekv.read())
    assert "Package Installation" in lines
    ekv.send_key("F12")
    assert ekv.keys_sent == ["F12"]
    report = sim.env.run(until=proc)
    assert report.ok


def test_ekv_dark_during_post(sim):
    node = sim.nodes[2]
    node.power_off()
    node.power_on()
    assert node.state is MachineState.POST
    ekv = EkvConsole(sim.hardware, node)
    with pytest.raises(EkvUnreachable, match="crash cart"):
        ekv.read()
    sim.env.run(until=node.wait_for_state(MachineState.UP))
    assert ekv.reachable


def test_crash_cart_works_when_ekv_cannot(sim):
    node = sim.nodes[3]
    node.power_off()
    node.power_on()  # in POST: eKV dark
    cart = CrashCart(sim.env)
    console = sim.env.run(until=cart.attach(node))
    assert console is node.console
    sim.env.run(until=node.wait_for_state(MachineState.UP))


def test_crash_cart_no_video_when_off(sim):
    node = sim.nodes[3]
    node.power_off()
    cart = CrashCart(sim.env)

    def go():
        with pytest.raises(NoVideoSignal):
            yield cart.attach(node)
        return True

    assert sim.env.run(until=sim.env.process(go()))
    node.power_on()
    sim.env.run(until=node.wait_for_state(MachineState.UP))


# -- cluster-fork / cluster-kill ----------------------------------------------------------


def test_cluster_fork_default_targets_compute_prefix(sim):
    session = cluster_fork(
        sim.frontend, lambda m, p: (p.stdout.append(m.spec.model), 0)[1]
    )
    assert {p.host for p in session.processes} == {
        f"compute-0-{i}" for i in range(4)
    }
    assert session.ok


def test_cluster_kill_with_sql_join(sim):
    """The paper's §6.4 multi-table join example, end to end."""
    for node in sim.nodes:
        node.user_processes.append("bad-job")
    sim.frontend.machine.user_processes.append("bad-job")  # not compute!
    session = cluster_kill(
        sim.frontend,
        "bad-job",
        query=(
            "select nodes.name from nodes,memberships where "
            "nodes.membership = memberships.id and "
            "memberships.name = 'Compute'"
        ),
    )
    assert session.ok
    assert all("killed 1" in line for line in session.stdout)
    assert all("bad-job" not in n.user_processes for n in sim.nodes)
    # the join kept the frontend out of the blast radius
    assert "bad-job" in sim.frontend.machine.user_processes
    sim.frontend.machine.user_processes.clear()


def test_cluster_kill_by_rack_query(sim):
    sim.nodes[0].user_processes.append("runaway")
    session = cluster_kill(
        sim.frontend, "runaway", query="select name from nodes where rack=0 "
        "and name like 'compute%'"
    )
    assert session.ok
    assert "runaway" not in sim.nodes[0].user_processes


def test_cluster_fork_rejects_both_selectors(sim):
    with pytest.raises(ValueError):
        cluster_fork(sim.frontend, lambda m, p: 0, nodes=["a"], query="select 1")


# -- queued cluster reinstall (§5) -----------------------------------------------------------


def test_reinstall_campaign_waits_for_running_jobs():
    sim = build_cluster(n_compute=3)
    sim.integrate_all()
    f = sim.frontend
    f.maui.start()
    app = f.pbs.qsub("bruno", "gamess", nodes=2, walltime=900)
    f.maui.schedule_once()
    assert app.state is JobState.RUNNING

    campaign = queue_cluster_reinstall(f)
    assert len(campaign.jobs) == 3
    sim.env.run(until=campaign.wait_event(sim.env))
    assert campaign.complete
    assert all(r.ok for r in campaign.reports)
    # the running application was never disturbed:
    assert app.state is JobState.COMPLETE
    assert app.finished_at - app.started_at == pytest.approx(900)
    # reinstalls of its nodes started only after it finished
    for job in campaign.jobs:
        if set(job.required_nodes) & set(app.assigned_nodes):
            assert job.started_at >= app.finished_at
    # and every node is back with install_count == 2 (integration + upgrade)
    assert all(n.install_count == 2 for n in sim.nodes)
