"""Fault-injection subsystem: plans, injector determinism, campaigns."""

import pytest

from repro import build_cluster
from repro.cluster import MachineState
from repro.core.tools import (
    EscalationPolicy,
    NodeOutcome,
    ReinstallCampaign,
)
from repro.faults import (
    PLANS,
    DhcpBlackout,
    FaultInjector,
    FaultPlan,
    LinkDegrade,
    LinkFlap,
    NodeCrash,
    NodeHang,
    PackageCorruption,
    ServerCrash,
    chaos_reinstall,
    named_plan,
)
from repro.services import Faultable


# -- plans ------------------------------------------------------------------

def test_named_plan_lookup_and_reseed():
    plan = named_plan("default", seed=42)
    assert plan.seed == 42
    assert plan.name == "default"
    with pytest.raises(KeyError, match="no fault plan named"):
        named_plan("nope")


def test_default_plan_matches_acceptance_scenario():
    """Server crash at t=120s + 5% package corruption + 2 node hangs."""
    plan = PLANS["default"]
    kinds = {type(f): f for f in plan.faults}
    assert kinds[ServerCrash].at == 120.0
    assert kinds[PackageCorruption].rate == 0.05
    assert kinds[NodeHang].count == 2


def test_faultable_mixin_unifies_service_fault_surface():
    sim = build_cluster(n_compute=1)
    for svc in (sim.frontend.install_server, sim.frontend.dhcp, sim.frontend.nfs):
        assert isinstance(svc, Faultable)
        assert not svc.faulted
        svc.fail()
        assert svc.faulted
        svc.repair()
        assert not svc.faulted


# -- injector determinism ---------------------------------------------------

def test_same_seed_identical_injection_log_and_report():
    a = chaos_reinstall(n_nodes=4, plan="default", seed=3)
    b = chaos_reinstall(n_nodes=4, plan="default", seed=3)
    assert a.injector.signature() == b.injector.signature()
    assert a.report.render() == b.report.render()
    assert a.minutes == b.minutes


def test_different_seed_changes_victim_selection():
    plans_hit = set()
    for seed in (1, 2, 3, 4):
        res = chaos_reinstall(
            n_nodes=6,
            plan=FaultPlan("hangs", (NodeHang(at=300.0, count=2),)),
            seed=seed,
        )
        victims = tuple(
            r.target for r in res.injector.log if r.kind == "node-hang"
        )
        assert len(victims) == 2
        plans_hit.add(victims)
    assert len(plans_hit) > 1  # the seed genuinely drives selection


def test_injector_arms_only_once():
    sim = build_cluster(n_compute=1)
    inj = FaultInjector(PLANS["none"])
    inj.arm(sim.frontend, sim.nodes)
    with pytest.raises(RuntimeError, match="already armed"):
        inj.arm(sim.frontend, sim.nodes)


# -- individual fault deliveries -------------------------------------------

def _campaign(sim, plan, seed=0, policy=None):
    injector = FaultInjector(plan.with_seed(seed)).arm(sim.frontend, sim.nodes)
    campaign = ReinstallCampaign(sim.frontend, policy or EscalationPolicy())
    report = sim.env.run(until=campaign.run(sim.nodes))
    return report, injector


def test_server_crash_is_ridden_out_by_download_retries():
    """A short install-server outage costs retries, not nodes."""
    sim = build_cluster(n_compute=2)
    sim.integrate_all()
    plan = FaultPlan("crash", (ServerCrash(at=120.0, duration=45.0),))
    report, injector = _campaign(sim, plan)
    assert report.completion_rate == 1.0
    kinds = [r.kind for r in injector.log]
    assert kinds == ["service-fail", "service-repair"]


def test_dhcp_blackout_delays_but_campaign_completes():
    sim = build_cluster(n_compute=2)
    sim.integrate_all()
    plan = FaultPlan("dhcp", (DhcpBlackout(at=10.0, duration=120.0),))
    report, _ = _campaign(sim, plan)
    assert report.completion_rate == 1.0


def test_node_hang_escalates_to_pdu():
    sim = build_cluster(n_compute=2)
    sim.integrate_all()
    plan = FaultPlan("hang", (NodeHang(at=300.0, node=0),))
    report, injector = _campaign(sim, plan)
    assert report.completion_rate == 1.0
    victim = next(r.target for r in injector.log if r.kind == "node-hang")
    by_host = {n.host: n for n in report.nodes}
    assert by_host[victim].outcome is NodeOutcome.ESCALATED
    assert "pdu" in by_host[victim].methods


def test_node_crash_recovered_by_power_cycle():
    sim = build_cluster(n_compute=2)
    sim.integrate_all()
    plan = FaultPlan("crash", (NodeCrash(at=300.0, node=1),))
    report, _ = _campaign(sim, plan)
    assert report.completion_rate == 1.0
    assert all(m.state is MachineState.UP for m in sim.nodes)


def test_link_flap_and_degrade_are_restored():
    sim = build_cluster(n_compute=2)
    sim.integrate_all()
    net = sim.hardware.network
    frontend_mac = sim.frontend.machine.mac
    original = net.host(frontend_mac).speed
    plan = FaultPlan(
        "net",
        (
            LinkFlap(at=60.0, flaps=2, down_seconds=5.0, up_seconds=10.0),
            LinkDegrade(at=200.0, factor=0.5, duration=60.0),
        ),
    )
    report, injector = _campaign(sim, plan)
    assert report.completion_rate == 1.0
    assert net.host(frontend_mac).speed == original
    assert net.host(frontend_mac).up
    kinds = [r.kind for r in injector.log]
    assert kinds.count("link-down") == 2 and kinds.count("link-up") == 2
    assert "link-degrade" in kinds and "link-restore" in kinds


def test_package_corruption_detected_and_refetched():
    sim = build_cluster(n_compute=1)
    sim.integrate_all()
    plan = FaultPlan("corrupt", (PackageCorruption(at=0.0, rate=0.05),))
    report, injector = _campaign(sim, plan, seed=5)
    corruptions = [r for r in injector.log if r.kind == "corrupt-package"]
    assert corruptions, "5% of ~160 packages should corrupt at least once"
    assert report.completion_rate == 1.0
    node = sim.nodes[0]
    assert len(node.rpmdb) == 162
    assert node.rpmdb.verify()


# -- the acceptance campaign -----------------------------------------------

def test_default_plan_campaign_accounts_for_every_node():
    """The ISSUE acceptance bar, shrunk to 8 nodes for test time."""
    result = chaos_reinstall(n_nodes=8, plan="default", seed=0)
    report = result.report
    assert len(report.nodes) == 8
    assert report.completion_rate >= 0.90
    assert sum(report.summary().values()) == 8
    # the render is a complete administrator-readable account
    text = report.render()
    for n in report.nodes:
        assert n.host in text


def test_abandoned_nodes_are_powered_off_and_reported():
    """A node with no PDU path and a dead Ethernet ends up ABANDONED."""
    sim = build_cluster(n_compute=2)
    sim.integrate_all()
    victim = sim.nodes[0]
    # unwire the victim's PDU outlet so escalation has nowhere to go
    pdu, outlet = sim.hardware.pdu_for(victim)
    pdu.unplug(outlet)
    victim.hang()
    policy = EscalationPolicy(max_attempts=2, attempt_deadline=1500.0,
                              retry_pause=1.0)
    campaign = ReinstallCampaign(sim.frontend, policy)
    report = sim.env.run(until=campaign.run(sim.nodes))
    by_host = {n.host: n for n in report.nodes}
    assert by_host[victim.hostid].outcome is NodeOutcome.ABANDONED
    assert by_host[victim.hostid].error is not None
    assert by_host[sim.nodes[1].hostid].installed
    assert report.completion_rate == 0.5
