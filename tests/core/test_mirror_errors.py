"""Error-path tests for HTTP mirroring and distribution publication."""

import pytest

from repro.core.distribution import RocksDist, mirror_over_http
from repro.netsim import Environment, FAST_ETHERNET, Network
from repro.rpm import Package, Repository
from repro.services import InstallServer


def rig():
    env = Environment()
    net = Network(env)
    net.attach("parent", FAST_ETHERNET)
    net.attach("child", FAST_ETHERNET)
    server = InstallServer(env, net, "parent")
    repo = Repository("src")
    repo.add(Package("a", "1.0", size=1_000_000))
    repo.add(Package("b", "1.0", size=1_000_000))
    server.publish_packages("rocks-dist", repo)
    return env, net, server


def test_mirror_records_errors_and_continues():
    env, net, server = rig()
    # sabotage one package: unpublish it from the HTTP tree but leave it
    # in the index (a torn mirror upstream)
    server.http.unpublish("/install/rocks-dist/RedHat/RPMS/a-1.0-1.i386.rpm")
    local = Repository("mirror")
    report = env.run(
        until=env.process(
            mirror_over_http(env, server, "rocks-dist", "child", local)
        )
    )
    assert report.n_fetched == 1
    assert len(report.errors) == 1
    assert "a-1.0-1.i386.rpm" in report.errors[0]
    assert "b" in local and "a" not in local


def test_mirror_updates_only_newer():
    env, net, server = rig()
    local = Repository("mirror")
    env.run(until=env.process(
        mirror_over_http(env, server, "rocks-dist", "child", local)
    ))
    # upstream ships an update to 'a'
    server.publish_packages("rocks-dist", [Package("a", "1.1", size=1_000_000)])
    report = env.run(until=env.process(
        mirror_over_http(env, server, "rocks-dist", "child", local)
    ))
    assert report.n_fetched == 1  # only the new build moved
    assert report.n_skipped == 2
    assert len(local.versions("a")) == 2  # both builds mirrored


def test_mirror_then_dist_pipeline():
    """mirror -> rocks-dist: the child resolves to the newest of both."""
    env, net, server = rig()
    server.publish_packages("rocks-dist", [Package("a", "2.0", size=500_000)])
    local = Repository("mirror")
    env.run(until=env.process(
        mirror_over_http(env, server, "rocks-dist", "child", local)
    ))
    rd = RocksDist(name="child-dist")
    rd.add_source(local)
    dist = rd.dist()
    assert dist.latest("a").version == "2.0"
    assert len(dist.repository.versions("a")) == 1


def test_mirror_empty_distribution():
    env = Environment()
    net = Network(env)
    net.attach("parent", FAST_ETHERNET)
    net.attach("child", FAST_ETHERNET)
    server = InstallServer(env, net, "parent")
    local = Repository("mirror")
    report = env.run(until=env.process(
        mirror_over_http(env, server, "nonesuch", "child", local)
    ))
    assert report.n_fetched == 0
    assert report.errors == []
