"""Tests for the high-level build_cluster/RocksCluster API."""

import pytest

from repro import build_cluster
from repro.cluster import MachineState
from repro.installer import InstallCalibration
from repro.netsim import SimulationError


def test_build_cluster_defaults():
    sim = build_cluster(n_compute=2)
    assert sim.frontend.machine.is_up
    assert len(sim.nodes) == 2
    # nodes racked but anonymous until integrated
    assert all(n.name is None for n in sim.nodes)
    assert sim.db.nodes() and len(sim.db.compute_nodes()) == 0


def test_integrate_all_names_in_boot_order():
    sim = build_cluster(n_compute=3)
    names = sim.integrate_all()
    assert names == ["compute-0-0", "compute-0-1", "compute-0-2"]
    assert all(n.is_up for n in sim.nodes)


def test_integrate_all_idempotent():
    sim = build_cluster(n_compute=2)
    sim.integrate_all()
    again = sim.integrate_all()
    assert again == []  # nothing new to integrate
    assert len(sim.db.compute_nodes()) == 2


def test_add_nodes_after_integration():
    """Scaling out: §5 'each compute node added... only increments the
    total management effort by a small amount'."""
    sim = build_cluster(n_compute=2)
    sim.integrate_all()
    sim.add_compute_nodes(2)
    names = sim.integrate_all()
    assert names == ["compute-0-2", "compute-0-3"]
    assert len(sim.db.compute_nodes()) == 4


def test_reinstall_subset():
    sim = build_cluster(n_compute=3)
    sim.integrate_all()
    reports = sim.reinstall_all([sim.nodes[1]])
    assert len(reports) == 1
    assert sim.nodes[1].install_count == 2
    assert sim.nodes[0].install_count == 1


def test_custom_calibration_changes_install_time():
    fast = InstallCalibration(cpu_seconds_per_mb=0.2)
    sim = build_cluster(n_compute=1, calibration=fast)
    sim.integrate_all()
    (report,) = sim.reinstall_all()
    assert report.minutes < 8  # well under the default ~10


def test_machine_lookup():
    sim = build_cluster(n_compute=1)
    sim.integrate_all()
    assert sim.machine("compute-0-0") is sim.nodes[0]
    with pytest.raises(KeyError):
        sim.machine("compute-9-9")


def test_integration_requires_dhcp_running():
    sim = build_cluster(n_compute=1)
    sim.frontend.dhcp.stop()
    sim.frontend.syslog.stop()
    with pytest.raises(SimulationError, match="never integrated"):
        sim.integrate_all(per_node_deadline=600.0)
