"""chaos_reinstall driver: plan resolution, result surface, hardening."""

from repro.faults import (
    PLANS,
    FaultPlan,
    FrontendCrash,
    LinkFlap,
    NodeHang,
    ServiceFlap,
    chaos_reinstall,
)
from repro.resilience import (
    FrontendResilience,
    ResilienceOptions,
    ServiceOutcome,
    SupervisorPolicy,
)


def test_plan_name_is_resolved_and_reseeded():
    result = chaos_reinstall(n_nodes=1, plan="none", seed=11)
    assert result.plan.name == "none"
    assert result.plan.seed == 11
    assert result.n_nodes == 1


def test_plan_instance_is_reseeded_too():
    plan = FaultPlan("mine", (NodeHang(at=300.0, node=0),), seed=0)
    result = chaos_reinstall(n_nodes=2, plan=plan, seed=9)
    assert result.plan.seed == 9
    assert result.plan.name == "mine"


def test_result_surface_matches_the_report():
    result = chaos_reinstall(n_nodes=2, plan="none")
    assert result.minutes == result.report.minutes
    assert result.completion_rate == result.report.completion_rate == 1.0
    assert result.resilience is None
    text = result.render()
    assert "injection log" in text
    assert "compute-0-0" in text


def test_resilience_true_applies_the_default_options():
    result = chaos_reinstall(n_nodes=1, plan="none", resilience=True)
    assert isinstance(result.resilience, FrontendResilience)
    assert result.resilience.journal is not None
    assert result.resilience.supervisor is not None
    assert "journal:" in result.render()


def test_frontend_storm_combined_escalation():
    """Crash + link flaps + a node hang in one run: the supervisor, the
    journal replay, and the campaign's PDU ladder all fire together."""
    assert "frontend-storm" in PLANS
    plan = PLANS["frontend-storm"]
    kinds = {type(f) for f in plan.faults}
    assert kinds == {FrontendCrash, LinkFlap, NodeHang}
    result = chaos_reinstall(n_nodes=6, plan="frontend-storm", seed=1,
                             resilience=True)
    assert result.completion_rate == 1.0
    log_kinds = {r.kind for r in result.injector.log}
    assert {"frontend-crash", "link-down", "link-up", "node-hang"} <= log_kinds
    assert result.resilience.verify_recovery()
    frontend = result.resilience.frontend
    assert frontend.recovered_snapshot == result.injector.snapshots[0]


def test_service_flap_burns_restart_budget_to_degraded():
    """A service that keeps dying exhausts the supervisor's budget and is
    handed off as a typed DEGRADED outcome instead of looping forever."""
    # The flap (every 5s) out-paces the supervisor: each restart lands
    # 3s after its probe and is killed 2s later, before the next probe
    # ever sees the service healthy — so failures never reset and the
    # budget of 3 drains to a degraded hand-off.
    plan = FaultPlan(
        "flappy", (ServiceFlap(at=60.0, service="nfs", times=10,
                               period=5.0),),
    )
    options = ResilienceOptions(
        supervisor=SupervisorPolicy(probe_interval=10.0, restart_backoff=3.0,
                                    backoff_factor=1.0, jitter=0.0,
                                    restart_budget=3),
        breaker=False,
    )
    result = chaos_reinstall(n_nodes=1, plan=plan, resilience=options)
    report = result.resilience.supervisor_report()
    assert report.outcomes["nfs"] is ServiceOutcome.DEGRADED
    assert report.degraded == ["nfs"]
    assert not result.resilience.verify_recovery()
    flaps = [r for r in result.injector.log if r.kind == "service-flap"]
    assert len(flaps) == 10


def test_campaign_state_transitions_are_journaled():
    result = chaos_reinstall(n_nodes=2, plan="none", resilience=True)
    journal = result.resilience.journal
    globals_set = [
        r["args"] for r in journal.records() if r["op"] == "set-global"
    ]
    campaign_steps = [a for a in globals_set if a["service"] == "campaign"]
    values = {a["value"] for a in campaign_steps}
    assert "installing" in values and "installed" in values
    db = result.resilience.frontend.db
    for node in db.compute_nodes():
        assert db.get_global("campaign", node.name) == "installed"
