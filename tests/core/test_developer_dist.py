"""§6.2.3 end to end: per-node-subset distributions on a shared cluster.

"During development of Rocks, we had the need to isolate developers from
one another and allow different distributions to be installed on compute
nodes of a shared cluster...  By creating multiple distributions and
editing the XML configuration infrastructure, the user can create unique
configurations for subsets of cluster nodes."
"""

import pytest

from repro import build_cluster
from repro.core.distribution import RocksDist
from repro.core.kickstart import NodeFile, default_graph, default_node_files
from repro.rpm import Package, Repository


@pytest.fixture
def shared_cluster():
    sim = build_cluster(n_compute=3)
    sim.integrate_all()
    return sim


def make_developer_dist(frontend):
    """A developer clones the production dist and adds bleeding-edge bits."""
    parent = frontend.distributions[frontend.config.dist_name]
    rd = RocksDist(name="dev-dist", parent=parent)
    rd.add_source(
        Repository(
            "dev",
            [
                Package("mpich", "1.2.3", "0.beta", size=10_000_000,
                        requires=("gcc",), provides=("mpi",),
                        vendor="developer"),
                Package("experimental-profiler", "0.1", size=2_000_000),
            ],
        )
    )
    node_files = default_node_files()
    node_files["dev-tools"] = NodeFile.from_xml(
        "dev-tools",
        "<kickstart><package>experimental-profiler</package></kickstart>",
    )
    graph = default_graph()
    graph.add_edge("compute", "dev-tools")
    return rd.dist(graph=graph, node_files=node_files)


def test_developer_subset_gets_its_own_software(shared_cluster):
    sim = shared_cluster
    f = sim.frontend
    dev_dist = make_developer_dist(f)
    f.add_distribution(dev_dist)
    # point ONE node at the developer distribution; its kickstarts are
    # driven by the dev dist's own XML build directory (§6.2.3)
    f.db.set_os_dist("compute-0-1", "dev-dist")

    sim.reinstall_all()

    dev_node = sim.machine("compute-0-1")
    prod_nodes = [sim.machine("compute-0-0"), sim.machine("compute-0-2")]
    # the developer node runs the beta MPICH and the profiler
    assert dev_node.rpmdb.query("mpich").version == "1.2.3"
    assert "experimental-profiler" in dev_node.rpmdb
    # production nodes are untouched by the experiment
    for node in prod_nodes:
        assert node.rpmdb.query("mpich").version == "1.2.2"
        assert "experimental-profiler" not in node.rpmdb


def test_developer_dist_is_lightweight(shared_cluster):
    """The clone is symlinks: tree cost stays ~25 MB, built in seconds."""
    f = shared_cluster.frontend
    dev_dist = make_developer_dist(f)
    assert dev_dist.build_seconds < 60
    assert dev_dist.tree_bytes() < 40e6
    # parent and child share package payloads (no duplication)
    parent = f.distributions[f.config.dist_name]
    assert dev_dist.latest("glibc") is parent.repository.latest("glibc")


def test_experiment_is_reversible(shared_cluster):
    """'restore to a known good state in 5-10 minutes' (§5)."""
    sim = shared_cluster
    f = sim.frontend
    dev_dist = make_developer_dist(f)
    f.add_distribution(dev_dist)
    f.db.set_os_dist("compute-0-1", "dev-dist")
    sim.reinstall_all([sim.machine("compute-0-1")])
    assert "experimental-profiler" in sim.machine("compute-0-1").rpmdb

    # experiment over: flip back and reinstall — the node converges to
    # the production configuration exactly
    f.db.set_os_dist("compute-0-1", f.config.dist_name)
    reports = sim.reinstall_all([sim.machine("compute-0-1")])
    assert 5 <= reports[0].minutes <= 11
    reference = sim.machine("compute-0-0").rpmdb
    assert not reference.diff(sim.machine("compute-0-1").rpmdb)
