"""Tests for the scenario CLI."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


def test_build_command(capsys):
    code, out = run_cli(capsys, "build", "--nodes", "2")
    assert code == 0
    assert "integrated 2 compute nodes" in out
    assert "compute-0-1" in out


def test_reinstall_command(capsys):
    code, out = run_cli(capsys, "reinstall", "--nodes", "2")
    assert code == 0
    assert "2 concurrent reinstalls" in out
    assert "ethernet" in out


def test_table1_command_small(capsys):
    code, out = run_cli(capsys, "table1", "--max-nodes", "2")
    assert code == 0
    lines = [l for l in out.splitlines() if l.strip()]
    assert lines[0].split() == ["nodes", "paper", "measured"]
    assert len(lines) == 3  # header + n=1 + n=2


def test_dist_command(capsys):
    code, out = run_cli(capsys, "dist", "--day", "100")
    assert code == 0
    assert "older dropped" in out
    assert "build time" in out


def test_kickstart_command(capsys):
    code, out = run_cli(capsys, "kickstart", "--appliance", "compute")
    assert code == 0
    assert "%packages" in out
    assert "mpich" in out
    assert "url --url" in out


def test_kickstart_ia64(capsys):
    code, out = run_cli(capsys, "kickstart", "--arch", "ia64")
    assert code == 0
    assert "intel-mkl" not in out


def test_graph_command(capsys):
    code, out = run_cli(capsys, "graph")
    assert code == 0
    assert out.startswith("compute:") or "compute:" in out
    assert "mpi" in out


def test_graph_dot(capsys):
    code, out = run_cli(capsys, "graph", "--dot")
    assert '"compute" -> "mpi";' in out


def test_reports_command(capsys):
    code, out = run_cli(capsys, "reports", "--nodes", "1", "--report", "hosts")
    assert code == 0
    assert "/etc/hosts" in out
    assert "compute-0-0" in out


def test_lint_command(capsys):
    code, out = run_cli(capsys, "lint")
    assert code == 0
    assert "consistent" in out


def test_lint_command_ia64(capsys):
    code, out = run_cli(capsys, "lint", "--arch", "ia64")
    assert code == 0


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["warp-drive"])


def test_trace_command_summary(capsys):
    code, out = run_cli(capsys, "trace", "--nodes", "2")
    assert code == 0
    assert "trace summary:" in out
    assert "install phases" in out
    assert "peak link utilization" in out


def test_trace_command_export_and_validate(capsys, tmp_path):
    path = tmp_path / "run.jsonl"
    code, out = run_cli(capsys, "trace", "--nodes", "2", "--out", str(path))
    assert code == 0
    assert "wrote" in out and path.exists()
    code, out = run_cli(capsys, "trace", "--validate", str(path))
    assert code == 0
    assert "valid" in out


def test_trace_validate_rejects_garbage(capsys, tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"type": "mystery"}\n', encoding="utf-8")
    code, out = run_cli(capsys, "trace", "--validate", str(path))
    assert code == 1
    assert "invalid" in out


def test_trace_command_chrome_format(capsys, tmp_path):
    path = tmp_path / "run.json"
    code, out = run_cli(capsys, "trace", "--nodes", "2",
                        "--format", "chrome", "--out", str(path))
    assert code == 0
    assert "wrote Chrome trace" in out
    import json

    doc = json.loads(path.read_text(encoding="utf-8"))
    assert doc["traceEvents"]


def test_explain_command_reinstall(capsys):
    code, out = run_cli(capsys, "explain", "--nodes", "2")
    assert code == 0
    assert 'critical path: reinstall "x2"' in out
    assert "attributed to named resources:" in out
    assert "blocked-time percentiles" in out


def test_explain_command_writes_report(capsys, tmp_path):
    path = tmp_path / "report.txt"
    code, out = run_cli(capsys, "explain", "--nodes", "2",
                        "--out", str(path), "--top", "3")
    assert code == 0
    assert "wrote report to" in out
    assert "critical path:" in path.read_text(encoding="utf-8")


def test_explain_command_with_profiler(capsys):
    code, out = run_cli(capsys, "explain", "--nodes", "1", "--profile")
    assert code == 0
    assert "critical path:" in out
    assert "engine profile:" in out
    assert "events dispatched" in out


def test_explain_command_byte_identical_across_runs(capsys):
    _, first = run_cli(capsys, "explain", "--nodes", "2")
    _, second = run_cli(capsys, "explain", "--nodes", "2")
    assert first == second
