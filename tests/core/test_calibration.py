"""Pin the §6.3 calibration: the compute closure is 162 pkgs / ~225 MB.

Figure 7 of the paper shows anaconda reporting "Total 162 packages /
386M" installed size with ~225 MB transferred; §6.3 says "each node
transfers approximately 225 MB of data from the server".  The synthetic
Red Hat tree is tuned so the default compute appliance resolves to the
same workload — this test keeps that calibration from drifting.
"""

import pytest

from repro.core.kickstart import KickstartGenerator, default_graph, default_node_files
from repro.rpm import Repository, community_packages, npaci_packages, stock_redhat


def test_compute_closure_matches_paper():
    repo = Repository("rocks-dist")
    for src in (stock_redhat(), community_packages(), npaci_packages()):
        repo.add_all(src)
    gen = KickstartGenerator(default_graph(), default_node_files(), lambda d: repo)
    profile = gen.profile("compute", "i386", "rocks-dist")
    assert profile.n_packages == 162
    assert profile.total_bytes == pytest.approx(225e6, rel=0.05)
