"""Distinct small behaviours not covered elsewhere."""

import pytest

from repro.cluster import ClusterHardware, PowerState
from repro.netsim import (
    Environment,
    FAST_ETHERNET,
    HttpError,
    HttpServer,
    LoadBalancer,
    Network,
)
from repro.core.database import ClusterDatabase, report_hosts
from repro.core.distribution import RocksDist
from repro.rpm import Package, Repository, stock_redhat
from repro.scheduler import JobState, PbsError, PbsServer


def test_report_hosts_custom_domain():
    db = ClusterDatabase()
    db.add_node("frontend-0", membership="Frontend", mac="m", ip="10.1.1.1")
    text = report_hosts(db, domain="sdsc.edu")
    assert "frontend-0.sdsc.edu frontend-0" in text


def test_machine_power_idempotence():
    env = Environment()
    hw = ClusterHardware(env)
    m = hw.add_machine("pIII-733-myri")
    m.power_off()  # off while off: no-op
    assert m.power is PowerState.OFF
    m.power_on()
    m.power_on()  # on while on: no-op, single lifecycle
    assert m.power is PowerState.ON
    env.run(until=50)


def test_load_balancer_all_dead_reports_error():
    env = Environment()
    net = Network(env)
    net.attach("w0", FAST_ETHERNET)
    net.attach("c", FAST_ETHERNET)
    server = HttpServer(net, "w0")
    server.publish("/x", 10)
    server.running = False
    lb = LoadBalancer([server])

    def go():
        with pytest.raises(HttpError, match="503"):
            yield lb.get("c", "/x")
        return True

    assert env.run(until=env.process(go()))


def test_pbs_extra_queues_and_qstat_filters():
    env = Environment()
    pbs = PbsServer(env)
    pbs.register_node("n0")
    pbs.add_queue("debug")
    with pytest.raises(PbsError):
        pbs.add_queue("debug")
    a = pbs.qsub("u", "a", 1, 10, queue="debug")
    b = pbs.qsub("u", "b", 1, 10)
    pbs.start_job(b, ["n0"])
    assert pbs.qstat(JobState.QUEUED) == [a]
    assert pbs.qstat(JobState.RUNNING) == [b]
    assert len(pbs.qstat()) == 2
    with pytest.raises(PbsError):
        pbs.job(99)


def test_pbs_required_nodes_validation():
    env = Environment()
    pbs = PbsServer(env)
    with pytest.raises(PbsError, match="required_nodes"):
        pbs.qsub("u", "j", nodes=2, walltime=10, required_nodes=["only-one"])


def test_rocksdist_reports_accumulate():
    rd = RocksDist()
    rd.add_source(Repository("s", [Package("a", "1")]))
    rd.dist()
    rd.dist()
    assert len(rd.reports) == 2


def test_distribution_latest_and_names():
    rd = RocksDist.standard(stock_redhat())
    dist = rd.dist()
    assert dist.latest("glibc").name == "glibc"
    assert "glibc" in dist.package_names()
    assert dist.lineage() == "rocks-dist"


def test_frontend_unknown_dist_lookup():
    from repro import build_cluster

    sim = build_cluster(n_compute=0)
    with pytest.raises(KeyError, match="no distribution named"):
        sim.frontend._resolve_dist("nonesuch")


def test_database_execute_and_arbitrary_update():
    db = ClusterDatabase()
    db.add_node("compute-0-0", mac="m")
    db.execute("UPDATE nodes SET comment='repaired' WHERE name='compute-0-0'")
    assert db.node_by_name("compute-0-0").comment == "repaired"
