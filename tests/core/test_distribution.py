"""Tests for rocks-dist: gathering, version resolution, trees, hierarchy."""

import pytest

from repro.core.distribution import (
    BuildReport,
    Distribution,
    MirrorReport,
    RocksDist,
    mirror_over_http,
)
from repro.core.kickstart import default_graph, default_node_files
from repro.netsim import Environment, FAST_ETHERNET, Network
from repro.rpm import (
    Package,
    Repository,
    UpdateStream,
    community_packages,
    npaci_packages,
    stock_redhat,
)
from repro.services import InstallServer


@pytest.fixture(scope="module")
def stock():
    return stock_redhat()


def standard_dist(stock, updates=None):
    rd = RocksDist.standard(
        stock,
        updates=updates,
        contrib=community_packages(),
        local=npaci_packages(),
    )
    return rd


def test_gather_merges_all_sources(stock):
    rd = standard_dist(stock)
    resolved, dropped = rd.gather()
    assert "glibc" in resolved  # stock
    assert "mpich" in resolved  # contrib
    assert "rocks-dist" in resolved  # local
    assert dropped == 0  # no overlaps between these sources


def test_gather_picks_newest_version(stock):
    updates = Repository("updates")
    updates.add(stock.latest("openssh").with_update("2.9p2", "12"))
    rd = standard_dist(stock, updates=updates)
    resolved, dropped = rd.gather()
    assert resolved.latest("openssh").release == "12"
    assert dropped == 1
    # only ONE openssh remains: "only includes the most recent software"
    assert len(resolved.versions("openssh")) == 1


def test_gather_later_source_shadows_equal_version(stock):
    local = Repository("local")
    rebuilt = Package("wget", stock.latest("wget").version,
                      stock.latest("wget").release, vendor="campus")
    local.add(rebuilt)
    rd = RocksDist.standard(stock, local=local)
    resolved, _ = rd.gather()
    assert resolved.latest("wget").vendor == "campus"


def test_gather_keeps_arches_separate():
    rd = RocksDist(name="multi", arch="i386")
    rd.add_source(stock_redhat(arch="i386"))
    rd.add_source(stock_redhat(arch="ia64"))
    resolved, _ = rd.gather()
    assert {p.arch for p in resolved.versions("glibc")} == {"i386", "ia64"}


def test_dist_requires_sources():
    with pytest.raises(ValueError, match="no software sources"):
        RocksDist().dist()


def test_dist_builds_under_a_minute(stock):
    """§6.2.3: 'can be built in under a minute'."""
    dist = standard_dist(stock).dist()
    assert dist.build_seconds < 60


def test_dist_tree_is_lightweight(stock):
    """§6.2.3: 'each distribution is lightweight (on the order of 25MB)'."""
    dist = standard_dist(stock).dist()
    mb = dist.tree_bytes() / 1e6
    assert 8 < mb < 40
    # ...while the payload behind the symlinks is far larger
    assert dist.payload_bytes() > 10 * dist.tree_bytes()


def test_dist_on_simulated_clock(stock):
    env = Environment()
    rd = standard_dist(stock)
    dist = rd.dist(env=env)
    assert env.now == pytest.approx(dist.build_seconds)


def test_dist_paths_layout(stock):
    dist = standard_dist(stock).dist()
    paths = dist.paths()
    assert "RedHat/base/hdlist" in paths
    assert "build/graphs/default.xml" in paths
    assert any(p.startswith("RedHat/RPMS/glibc-") for p in paths)
    assert any(p == "build/nodes/compute.xml" for p in paths)


def test_build_report(stock):
    rd = standard_dist(stock)
    dist = rd.dist()
    (report,) = rd.reports
    assert report.n_packages == len(dist.repository)
    assert report.n_sources == 3
    assert report.tree_bytes == dist.tree_bytes()


def test_update_stream_integration(stock):
    """§6.2.1: 'If Red Hat ships it, so do we' — automatically."""
    stream = UpdateStream(stock, updates_per_year=124)
    rd = standard_dist(stock, updates=stream.updates_repository())
    resolved, dropped = rd.gather()
    assert dropped > 0
    # every updated package resolved to its newest build
    for update in stream:
        assert not update.package.newer_than(
            resolved.latest(update.package.name)
        )


# -- hierarchy (Figure 6) ---------------------------------------------------------


def test_child_distribution_inherits_and_extends(stock):
    npaci = standard_dist(stock).dist()
    campus_pkgs = Repository("campus")
    campus_pkgs.add(Package("campus-licensed-compiler", "6.0", size=50_000_000,
                            vendor="campus"))
    campus = RocksDist(name="ucsd-dist", parent=npaci)
    campus.add_source(campus_pkgs)
    dist = campus.dist()
    assert dist.parent == "rocks-dist"
    assert dist.lineage() == "rocks-dist -> ucsd-dist"
    assert "campus-licensed-compiler" in dist.repository
    assert "glibc" in dist.repository  # inherited from NPACI


def test_three_level_hierarchy(stock):
    """NPACI -> campus -> department, each adding software (§6.2.2)."""
    npaci = standard_dist(stock).dist()
    campus = RocksDist(name="campus", parent=npaci)
    campus.add_source(Repository("c", [Package("campus-tool", "1.0")]))
    campus_dist = campus.dist()
    dept = RocksDist(name="chemistry", parent=campus_dist)
    dept.add_source(Repository("d", [Package("gaussian", "98")]))
    dept_dist = dept.dist()
    for name in ["glibc", "campus-tool", "gaussian"]:
        assert name in dept_dist.repository, name
    assert dept_dist.parent == "campus"


def test_child_overrides_parent_package(stock):
    npaci = standard_dist(stock).dist()
    newer_ssh = npaci.latest("openssh").with_update("3.1p1", "1")
    campus = RocksDist(name="campus", parent=npaci)
    campus.add_source(Repository("c", [newer_ssh]))
    dist = campus.dist()
    assert dist.latest("openssh").version == "3.1p1"


# -- mirroring over HTTP ---------------------------------------------------------------


def test_mirror_over_http_incremental(stock):
    env = Environment()
    net = Network(env)
    net.attach("npaci-frontend", FAST_ETHERNET)
    net.attach("campus-frontend", FAST_ETHERNET)
    server = InstallServer(env, net, "npaci-frontend")
    small = Repository("small")
    small.add(Package("a", "1.0", size=1_000_000))
    small.add(Package("b", "1.0", size=2_000_000))
    server.publish_packages("rocks-dist", small)

    local = Repository("mirror")
    report = env.run(
        until=env.process(
            mirror_over_http(env, server, "rocks-dist", "campus-frontend", local)
        )
    )
    assert report.n_fetched == 2
    assert report.bytes_transferred == 3_000_000
    assert "a" in local and "b" in local
    assert report.seconds > 0

    # Second run: nothing to do (wget timestamping behaviour).
    report2 = env.run(
        until=env.process(
            mirror_over_http(env, server, "rocks-dist", "campus-frontend", local)
        )
    )
    assert report2.n_fetched == 0
    assert report2.n_skipped == 2
