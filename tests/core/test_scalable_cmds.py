"""Tests for the scalable Unix commands (§6.4 ref [21])."""

import pytest

from repro import build_cluster
from repro.core.tools import (
    cluster_lsmod,
    cluster_ps,
    cluster_rpm_q,
    cluster_uptime,
)


@pytest.fixture(scope="module")
def sim():
    s = build_cluster(n_compute=3)
    s.integrate_all()
    return s


def test_cluster_ps_lists_processes(sim):
    sim.nodes[0].user_processes[:] = ["gamess", "gamess"]
    sim.nodes[1].user_processes[:] = ["amber"]
    sim.nodes[2].user_processes[:] = []
    ps = cluster_ps(sim.frontend)
    assert ps["compute-0-0"] == ["gamess", "gamess"]
    assert ps["compute-0-1"] == ["amber"]
    assert ps["compute-0-2"] == []


def test_cluster_ps_with_query(sim):
    ps = cluster_ps(sim.frontend, query="select name from nodes where rank=1")
    assert set(ps) == {"compute-0-1"}


def test_cluster_uptime_reports_state(sim):
    up = cluster_uptime(sim.frontend)
    assert all("up" in line for line in up.values())
    assert all("kernel 2.4.9-5" in line for line in up.values())


def test_cluster_rpm_q_answers_section32_question(sim):
    """'What version of software X do I have on node Y?'"""
    versions = cluster_rpm_q(sim.frontend, "mpich")
    assert set(versions) == {f"compute-0-{i}" for i in range(3)}
    assert all(v == "mpich-1.2.2-1.i386" for v in versions.values())
    # consistency by construction: every node answers identically
    assert len(set(versions.values())) == 1


def test_cluster_rpm_q_missing_package(sim):
    versions = cluster_rpm_q(sim.frontend, "emacs")  # not on compute nodes
    assert all(v is None for v in versions.values())


def test_cluster_lsmod_shows_gm(sim):
    mods = cluster_lsmod(sim.frontend)
    assert all(m == ["gm"] for m in mods.values())


def test_explicit_node_targets(sim):
    up = cluster_uptime(sim.frontend, nodes=["compute-0-2"])
    assert list(up) == ["compute-0-2"]
