"""End-to-end telemetry: traced cluster runs and determinism."""

import pytest

from repro import build_cluster
from repro.telemetry import (
    Tracer,
    summarize,
    to_jsonl,
    validate_trace_text,
)


def traced_reinstall(n_compute=2):
    tracer = Tracer()
    sim = build_cluster(n_compute=n_compute, tracer=tracer)
    sim.integrate_all()
    sim.reinstall_all()
    return tracer, sim


def test_traced_run_has_install_phase_spans():
    tracer, sim = traced_reinstall(n_compute=2)
    installs = [s for s in tracer.spans("install") if s.t1 is not None]
    # integrate_all installs each node once, reinstall_all a second time
    assert len(installs) >= 4
    assert all(s.attrs.get("outcome") == "ok" for s in installs)
    phases = {s.name for s in tracer.spans("install-phase")}
    assert {"kickstart", "partition", "packages", "post"} <= phases


def test_traced_run_has_http_spans_and_counters():
    tracer, sim = traced_reinstall(n_compute=2)
    https = tracer.spans("http")
    assert https
    ok = [s for s in https if s.attrs.get("outcome") == "ok"]
    assert ok and all(s.attrs["status"] == 200 for s in ok)
    counters = tracer.metrics.counters
    requests = sum(v for k, v in counters.items()
                   if k.startswith("http.requests/"))
    assert requests == len(ok)
    served = sum(v for k, v in counters.items() if k.startswith("http.bytes/"))
    assert served == pytest.approx(
        sum(s.attrs["bytes"] for s in ok))


def test_traced_run_link_utilization_bounded():
    tracer, _ = traced_reinstall(n_compute=2)
    util_gauges = [n for n in tracer.metrics.gauge_names()
                   if n.startswith("link.util/")]
    assert util_gauges
    for name in util_gauges:
        samples = tracer.metrics.samples(name)
        assert all(0.0 <= v <= 1.0 for _, v in samples)
    busiest = max(tracer.metrics.peak(n) for n in util_gauges)
    assert 0.0 < busiest <= 1.0


def test_concurrent_install_gauge_returns_to_zero():
    tracer, _ = traced_reinstall(n_compute=2)
    samples = tracer.metrics.samples("installs.concurrent")
    assert samples
    assert max(v for _, v in samples) >= 2  # reinstall_all overlaps nodes
    assert samples[-1][1] == 0  # every install span was closed out


def test_two_seeded_runs_are_byte_identical():
    first, _ = traced_reinstall(n_compute=2)
    second, _ = traced_reinstall(n_compute=2)
    text1, text2 = to_jsonl(first), to_jsonl(second)
    assert validate_trace_text(text1) == []
    assert text1 == text2


def test_untraced_run_records_nothing():
    sim = build_cluster(n_compute=1)
    sim.integrate_all()
    assert sim.env.tracer.n_records == 0
    assert not sim.env.tracer.enabled


def test_summary_of_traced_run():
    tracer, _ = traced_reinstall(n_compute=2)
    summary = summarize(tracer)
    assert summary["open_spans"] == 0
    assert summary["phases"]["packages"]["count"] >= 4
    assert summary["phases"]["packages"]["p50"] > 0
    assert 0.0 < max(summary["peak_link_utilization"].values()) <= 1.0


# -- trace-context propagation (PR 10) ----------------------------------------


def spans_by_id(tracer):
    return {s.span_id: s for s in tracer.spans()}


def test_every_span_carries_deterministic_trace_context():
    tracer, _ = traced_reinstall(n_compute=2)
    for s in tracer.spans():
        assert s.span_id == s.seq  # ids are seq-derived, never random
        assert s.trace_id is not None
        if s.parent_id is None:
            assert s.trace_id == s.span_id  # a root starts its own trace


def test_reinstall_causality_chain_is_fully_linked():
    """reinstall → shoot → install → install-phase → http → flow: the
    chain `repro explain` walks must be unbroken."""
    tracer, _ = traced_reinstall(n_compute=2)
    by_id = spans_by_id(tracer)
    root = tracer.spans("reinstall")[0]
    chain = {
        "shoot": {"reinstall"},
        "boot": {"shoot"},
        "install": {"boot", "shoot", "campaign-node"},
        "install-phase": {"install"},
        "http": {"install-phase", "install", "journal-replay"},
        "flow": {"http"},
    }
    for kind, parent_kinds in chain.items():
        # integrate_all's first-boot installs predate the reinstall root
        # and are legitimately unparented; the chain under the root is
        # what `repro explain` walks.
        spans = [s for s in tracer.spans(kind) if s.t0 >= root.t0]
        assert spans, f"no {kind} spans recorded under the reinstall root"
        for s in spans:
            assert s.parent_id is not None, f"{kind} span unparented"
            assert by_id[s.parent_id].kind in parent_kinds


def test_descendants_inherit_the_root_trace_id():
    tracer, _ = traced_reinstall(n_compute=2)
    roots = [s for s in tracer.spans("reinstall")]
    assert len(roots) == 1
    root = roots[0]
    for kind in ("shoot", "install", "install-phase"):
        for s in tracer.spans(kind):
            if s.t0 >= root.t0:  # integrate_all's installs predate the root
                assert s.trace_id == root.trace_id


def test_summary_counts_open_spans_by_kind():
    from repro.netsim import Environment

    tracer = Tracer()
    env = Environment()
    tracer.attach(env)
    done = tracer.span("install", "node-1", parent=None)
    done.end()
    tracer.span("install", "node-2", parent=None)   # left open
    tracer.span("flow", "transfer", parent=None)    # left open
    summary = summarize(tracer)
    assert summary["open_spans"] == 2
    assert summary["open_by_kind"] == {"flow": 1, "install": 1}
    # open spans are excluded from aggregation, not mixed into stats
    assert summary["spans"]["install"]["count"] == 1
    assert "flow" not in summary["spans"]
