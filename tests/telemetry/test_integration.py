"""End-to-end telemetry: traced cluster runs and determinism."""

import pytest

from repro import build_cluster
from repro.telemetry import (
    Tracer,
    summarize,
    to_jsonl,
    validate_trace_text,
)


def traced_reinstall(n_compute=2):
    tracer = Tracer()
    sim = build_cluster(n_compute=n_compute, tracer=tracer)
    sim.integrate_all()
    sim.reinstall_all()
    return tracer, sim


def test_traced_run_has_install_phase_spans():
    tracer, sim = traced_reinstall(n_compute=2)
    installs = [s for s in tracer.spans("install") if s.t1 is not None]
    # integrate_all installs each node once, reinstall_all a second time
    assert len(installs) >= 4
    assert all(s.attrs.get("outcome") == "ok" for s in installs)
    phases = {s.name for s in tracer.spans("install-phase")}
    assert {"kickstart", "partition", "packages", "post"} <= phases


def test_traced_run_has_http_spans_and_counters():
    tracer, sim = traced_reinstall(n_compute=2)
    https = tracer.spans("http")
    assert https
    ok = [s for s in https if s.attrs.get("outcome") == "ok"]
    assert ok and all(s.attrs["status"] == 200 for s in ok)
    counters = tracer.metrics.counters
    requests = sum(v for k, v in counters.items()
                   if k.startswith("http.requests/"))
    assert requests == len(ok)
    served = sum(v for k, v in counters.items() if k.startswith("http.bytes/"))
    assert served == pytest.approx(
        sum(s.attrs["bytes"] for s in ok))


def test_traced_run_link_utilization_bounded():
    tracer, _ = traced_reinstall(n_compute=2)
    util_gauges = [n for n in tracer.metrics.gauge_names()
                   if n.startswith("link.util/")]
    assert util_gauges
    for name in util_gauges:
        samples = tracer.metrics.samples(name)
        assert all(0.0 <= v <= 1.0 for _, v in samples)
    busiest = max(tracer.metrics.peak(n) for n in util_gauges)
    assert 0.0 < busiest <= 1.0


def test_concurrent_install_gauge_returns_to_zero():
    tracer, _ = traced_reinstall(n_compute=2)
    samples = tracer.metrics.samples("installs.concurrent")
    assert samples
    assert max(v for _, v in samples) >= 2  # reinstall_all overlaps nodes
    assert samples[-1][1] == 0  # every install span was closed out


def test_two_seeded_runs_are_byte_identical():
    first, _ = traced_reinstall(n_compute=2)
    second, _ = traced_reinstall(n_compute=2)
    text1, text2 = to_jsonl(first), to_jsonl(second)
    assert validate_trace_text(text1) == []
    assert text1 == text2


def test_untraced_run_records_nothing():
    sim = build_cluster(n_compute=1)
    sim.integrate_all()
    assert sim.env.tracer.n_records == 0
    assert not sim.env.tracer.enabled


def test_summary_of_traced_run():
    tracer, _ = traced_reinstall(n_compute=2)
    summary = summarize(tracer)
    assert summary["open_spans"] == 0
    assert summary["phases"]["packages"]["count"] >= 4
    assert summary["phases"]["packages"]["p50"] > 0
    assert 0.0 < max(summary["peak_link_utilization"].values()) <= 1.0
