"""Critical-path analysis: DAG reconstruction, walk math, attribution."""

import pytest

from repro import build_cluster
from repro.telemetry import Tracer
from repro.telemetry.critpath import (
    attribute,
    blocked_stats,
    build_dag,
    classify,
    critical_path,
    dag_from_tracer,
    explain_tracer,
    pick_root,
    render_report,
)


def span(span_id, parent_id, kind, name, t0, t1, trace_id=None, **attrs):
    """A decoded span record, shaped like the JSONL export."""
    return {
        "type": "span",
        "span_id": span_id,
        "seq": span_id,
        "parent_id": parent_id,
        "trace_id": trace_id if trace_id is not None else (
            span_id if parent_id is None else 1
        ),
        "kind": kind,
        "name": name,
        "t0": float(t0),
        "t1": None if t1 is None else float(t1),
        "attrs": attrs,
    }


# -- build_dag ----------------------------------------------------------------


def test_build_dag_links_children_in_time_order():
    dag = build_dag([
        span(1, None, "reinstall", "x2", 0, 100),
        span(3, 1, "install", "b", 20, 90),
        span(2, 1, "install", "a", 10, 50),
    ])
    root = dag.node(1)
    assert [c.span_id for c in root.children] == [2, 3]
    assert dag.roots == [root]
    assert dag.orphans == [] and dag.open_spans == []


def test_build_dag_promotes_orphans_to_roots():
    """A child whose parent never made the export still gets analysed."""
    dag = build_dag([
        span(5, 99, "install", "a", 10, 50),  # parent 99 missing
        span(6, None, "reinstall", "x1", 0, 60),
    ])
    orphan = dag.node(5)
    assert orphan.orphan is True
    assert orphan in dag.roots
    assert dag.orphans == [orphan]
    assert len(dag.roots) == 2


def test_build_dag_clamps_open_spans_to_trace_end():
    dag = build_dag([
        span(1, None, "reinstall", "x1", 0, None),   # left open
        span(2, 1, "install", "a", 10, 80),
        {"type": "event", "seq": 3, "t": 95.0, "kind": "fault",
         "name": "outage", "attrs": {}},
    ])
    root = dag.node(1)
    assert root.is_open
    assert dag.open_spans == [root]
    assert dag.end_time == 95.0  # events push the clamp point too
    assert root.end_or(dag.end_time) == 95.0


def test_build_dag_multi_root_forest():
    dag = build_dag([
        span(1, None, "exec", "x4", 0, 30),
        span(2, None, "storm", "x128", 0, 500),
        span(3, 2, "shoot", "n1", 5, 400),
    ])
    assert [r.span_id for r in dag.roots] == [1, 2]
    assert dag.node(2).children == [dag.node(3)]


def test_build_dag_skips_non_span_records():
    dag = build_dag([
        {"type": "meta", "end_time": 10.0},
        {"type": "counter", "name": "x", "value": 1},
        span(1, None, "install", "a", 0, 5),
    ])
    assert set(dag.nodes) == {1}
    assert dag.end_time == 10.0


# -- critical_path ------------------------------------------------------------


def test_critical_path_segments_tile_the_root_exactly():
    dag = build_dag([
        span(1, None, "reinstall", "x2", 0, 100),
        span(2, 1, "install", "a", 10, 60),
        span(3, 1, "install", "b", 30, 90),
    ])
    segments = critical_path(dag, dag.node(1))
    assert segments[0].t0 == 0.0 and segments[-1].t1 == 100.0
    for prev, nxt in zip(segments, segments[1:]):
        assert prev.t1 == nxt.t0  # no gaps, no overlaps
    assert sum(s.duration for s in segments) == pytest.approx(100.0)


def test_critical_path_latest_finishing_child_is_the_blocker():
    """At any instant the blocker is the child active then that finished
    last; time no child covers belongs to the parent itself."""
    dag = build_dag([
        span(1, None, "reinstall", "x2", 0, 100),
        span(2, 1, "install", "fast", 0, 40),
        span(3, 1, "install", "slow", 20, 95),
    ])
    segments = critical_path(dag, dag.node(1))
    by_window = {(s.t0, s.t1): s.node.span_id for s in segments}
    assert by_window[(20.0, 95.0)] == 3   # slow child gates 20..95
    assert by_window[(0.0, 20.0)] == 2    # fast child gates the prefix
    assert by_window[(95.0, 100.0)] == 1  # tail is root self-time


def test_critical_path_descends_into_grandchildren():
    dag = build_dag([
        span(1, None, "install", "a", 0, 50),
        span(2, 1, "install-phase", "packages", 0, 50),
        span(3, 2, "http", "/rpm", 10, 45, server="fe"),
    ])
    segments = critical_path(dag, dag.node(1))
    resources = [(s.t0, s.t1, s.resource) for s in segments]
    assert (10.0, 45.0, "http-service/fe") in resources
    assert (0.0, 10.0, "phase/packages") in resources
    assert (45.0, 50.0, "phase/packages") in resources


def test_critical_path_skips_children_outside_the_window():
    """A child that ends before the parent starts (clock skew, clamped
    opens) must not hijack the walk."""
    dag = build_dag([
        span(1, None, "reinstall", "x1", 50, 100),
        span(2, 1, "install", "early", 0, 40),  # entirely before the root
    ])
    segments = critical_path(dag, dag.node(1))
    assert len(segments) == 1
    assert segments[0].node.span_id == 1
    assert (segments[0].t0, segments[0].t1) == (50.0, 100.0)


# -- classify / attribute -----------------------------------------------------


def test_classify_resource_names():
    cases = [
        (span(1, 1, "http-queue", "/rpm", 0, 1, server="fe"),
         "frontend-queue/fe"),
        (span(2, 1, "flow", "f", 0, 1, bottleneck="eth0"), "link/eth0"),
        (span(3, 1, "retry-wait", "w", 0, 1), "retry-backoff"),
        (span(4, 1, "exec-retry", "w", 0, 1), "retry-backoff"),
        (span(5, 1, "dead-wait", "n", 0, 1), "dead-wait"),
        (span(6, 1, "install-phase", "packages", 0, 1), "phase/packages"),
        (span(7, 1, "campaign-node", "n", 0, 1), "node-boot"),
        (span(8, 1, "shoot", "n", 0, 1), "node-boot"),
        (span(9, None, "reinstall", "x", 0, 1), "self/reinstall"),
    ]
    for record, expected in cases:
        assert classify(build_dag([record]).node(record["span_id"])) == expected


def test_attribute_totals_largest_first():
    dag = build_dag([
        span(1, None, "reinstall", "x1", 0, 100),
        span(2, 1, "shoot", "a", 0, 30),
        span(3, 1, "shoot", "b", 30, 90),
    ])
    totals = attribute(critical_path(dag, dag.node(1)))
    assert totals == [
        ("node-boot", pytest.approx(90.0)),
        ("self/reinstall", pytest.approx(10.0)),
    ]


# -- blocked_stats ------------------------------------------------------------


def test_blocked_stats_percentiles_per_category():
    records = [span(1, None, "reinstall", "x", 0, 100)]
    records += [
        span(10 + i, 1, "http-queue", "/rpm", 0, d, server="fe")
        for i, d in enumerate([1, 2, 3, 4])
    ]
    records.append(span(20, 1, "dead-wait", "n", 0, 50))
    stats = blocked_stats(build_dag(records))
    assert list(stats) == ["queue", "dead-wait"]  # fixed category order
    assert stats["queue"]["count"] == 4
    assert stats["queue"]["p50"] == 2
    assert stats["queue"]["total"] == 10
    assert stats["dead-wait"]["p95"] == 50


# -- pick_root / render_report ------------------------------------------------


def test_pick_root_prefers_campaign_kinds_then_duration():
    dag = build_dag([
        span(1, None, "service", "longest", 0, 1000),
        span(2, None, "reinstall", "x1", 0, 100),
        span(3, None, "reinstall", "x2", 0, 200),
    ])
    assert pick_root(dag).span_id == 3  # preferred kind, then longest


def test_pick_root_empty_dag():
    assert pick_root(build_dag([])) is None


def test_render_report_bytes_locked():
    """The report is a byte-exact artifact: CI compares it to goldens."""
    dag = build_dag([
        span(1, None, "reinstall", "x1", 0, 100),
        span(2, 1, "shoot", "a", 0, 90),
        span(3, 2, "http-queue", "/rpm", 10, 30, server="fe"),
    ])
    report = render_report(dag, dag.node(1))
    assert report == (
        'critical path: reinstall "x1" — 100.0 s wall-to-wall\n'
        "     seconds   share  resource\n"
        "        70.0   70.0%  node-boot\n"
        "        20.0   20.0%  frontend-queue/fe\n"
        "        10.0   10.0%  self/reinstall\n"
        "attributed to named resources: 90.0% (10.0 s root self-time)\n"
        "blocked-time percentiles (all spans, seconds):\n"
        "  category     count       p50       p95       total\n"
        "  queue            1     20.00     20.00        20.0"
    )


def test_render_report_notes_open_and_orphan_spans():
    dag = build_dag([
        span(1, None, "reinstall", "x1", 0, None),
        span(2, 99, "install", "a", 10, 80),
    ])
    report = render_report(dag, dag.node(1))
    assert "(left open, clamped to trace end)" in report
    assert "open spans clamped to t=80.0s: 1" in report
    assert "orphan spans promoted to roots: 1" in report


def test_render_report_top_folds_the_tail():
    dag = build_dag([
        span(1, None, "reinstall", "x1", 0, 100),
        span(2, 1, "shoot", "a", 0, 40),
        span(3, 1, "http-queue", "q", 40, 70, server="fe"),
        span(4, 1, "dead-wait", "n", 70, 90),
    ])
    report = render_report(dag, dag.node(1), top=1)
    table = report.split("attributed")[0]
    assert "node-boot" in table       # the one shown row
    assert "(3 more)" in table        # folded tail with its total
    assert "frontend-queue/fe" not in table


# -- end to end ---------------------------------------------------------------


def test_explain_real_reinstall_attributes_nearly_everything():
    """The acceptance bar: ≥95% of a traced reinstall lands on named
    resources (phases, node-boot, links, queues), not root self-time."""
    tracer = Tracer()
    sim = build_cluster(n_compute=4, tracer=tracer)
    sim.integrate_all()
    sim.reinstall_all()
    dag = dag_from_tracer(tracer)
    root = pick_root(dag)
    assert root.kind == "reinstall"
    segments = critical_path(dag, root)
    total = root.t1 - root.t0
    named = sum(
        s.duration for s in segments if not s.resource.startswith("self/")
    )
    assert named / total >= 0.95
    report = render_report(dag, root)
    assert "attributed to named resources:" in report


def test_explain_tracer_empty():
    assert explain_tracer(Tracer()) == "no spans recorded — nothing to explain"


def test_committed_explain_golden_matches_fresh_run():
    """The golden CI byte-compares (`explain-smoke`) must track the code:
    a fresh seeded 8-node reinstall renders the committed report exactly."""
    import pathlib

    tracer = Tracer()
    sim = build_cluster(n_compute=8, tracer=tracer)
    sim.integrate_all()
    sim.reinstall_all()
    golden = (
        pathlib.Path(__file__).parent / "golden" / "explain_reinstall_8.txt"
    ).read_text(encoding="utf-8")
    assert explain_tracer(tracer) + "\n" == golden
