"""Tracer, metrics, export, schema, and summary unit tests."""

import json

import pytest

from repro.netsim import Environment
from repro.telemetry import (
    Metrics,
    NULL_TRACER,
    Tracer,
    percentile,
    summarize,
    to_jsonl,
    validate_trace_lines,
    validate_trace_text,
    write_jsonl,
)


# -- zero-overhead default ----------------------------------------------------

def test_environment_defaults_to_null_tracer():
    env = Environment()
    assert env.tracer is NULL_TRACER
    assert not env.tracer.enabled


def test_null_tracer_records_nothing():
    t = NULL_TRACER
    t.event("kind", "name", detail=1)
    span = t.span("kind", "name")
    span.end(outcome="ok")
    t.record_span("kind", "name", 0.0)
    t.metrics.inc("c")
    t.metrics.gauge("g", 1.0)
    t.metrics.adjust("a", 1)
    assert t.n_records == 0
    assert list(t.iter_records()) == []
    assert t.metrics.samples("g") == []
    assert t.metrics.gauge_names() == []


# -- spans and events ---------------------------------------------------------

def test_span_captures_simulated_time_and_attrs():
    env = Environment()
    tracer = Tracer()
    tracer.attach(env)

    def proc():
        span = tracer.span("install", "compute-0-0", rack=0)
        yield env.timeout(5)
        span.end(outcome="ok")

    env.process(proc())
    env.run()
    (span,) = tracer.spans("install")
    assert span.t0 == 0.0
    assert span.t1 == 5.0
    assert span.duration == 5.0
    assert span.attrs == {"rack": 0, "outcome": "ok"}


def test_events_carry_monotonic_seq():
    env = Environment()
    tracer = Tracer()
    tracer.attach(env)
    tracer.event("a", "one")
    tracer.event("a", "two")
    tracer.event("b", "three")
    seqs = [r["seq"] for r in tracer.iter_records()]
    assert seqs == sorted(seqs)
    assert len(set(seqs)) == 3
    assert [e["name"] for e in tracer.events("a")] == ["one", "two"]


def test_record_span_is_retrospective():
    env = Environment()
    tracer = Tracer()
    tracer.attach(env)

    def proc():
        t0 = env.now
        yield env.timeout(3)
        tracer.record_span("install-phase", "packages", t0, host="c0")

    env.process(proc())
    env.run()
    (span,) = tracer.spans("install-phase")
    assert (span.t0, span.t1) == (0.0, 3.0)


def test_span_as_context_manager_ends_itself():
    env = Environment()
    tracer = Tracer()
    tracer.attach(env)

    def proc():
        with tracer.span("install", "compute-0-0", rack=0):
            yield env.timeout(7)

    env.process(proc())
    env.run()
    (span,) = tracer.spans("install")
    assert (span.t0, span.t1) == (0.0, 7.0)
    assert span.attrs["outcome"] == "ok"


def test_span_context_manager_records_error_outcome():
    env = Environment()
    tracer = Tracer()
    tracer.attach(env)
    with pytest.raises(RuntimeError):
        with tracer.span("install", "compute-0-0"):
            raise RuntimeError("boom")
    (span,) = tracer.spans("install")
    assert span.attrs["outcome"] == "error"


def test_null_tracer_span_context_manager_is_noop():
    with NULL_TRACER.span("install", "x") as span:
        pass
    assert NULL_TRACER.n_records == 0
    assert span is not None


# -- metrics ------------------------------------------------------------------

def test_counter_and_adjust():
    m = Metrics()
    m.inc("hits")
    m.inc("hits", 4)
    m.adjust("level", 2)
    m.adjust("level", -1)
    assert m.counters["hits"] == 5
    assert m.value("level") == 1


def test_gauge_time_weighted_mean_and_peak():
    env = Environment()
    tracer = Tracer()
    tracer.attach(env)
    m = tracer.metrics

    def proc():
        m.gauge("util", 0.5)
        yield env.timeout(10)
        m.gauge("util", 1.0)
        yield env.timeout(10)
        m.gauge("util", 0.0)
        yield env.timeout(20)

    env.process(proc())
    env.run()
    assert m.peak("util") == 1.0
    # 0.5 for 10s, 1.0 for 10s, 0.0 for 20s -> 15/40
    assert m.time_weighted_mean("util") == pytest.approx(0.375)


def test_gauge_dedupes_and_overwrites_same_instant():
    m = Metrics()  # unattached: now is pinned at 0.0
    m.gauge("g", 1.0)
    m.gauge("g", 1.0)  # no-op repeat is skipped
    assert m.samples("g") == [(0.0, 1.0)]
    m.gauge("g", 2.0)  # same-instant change overwrites in place
    assert m.samples("g") == [(0.0, 2.0)]


# -- export + schema ----------------------------------------------------------

def _small_trace():
    env = Environment()
    tracer = Tracer()
    tracer.attach(env)

    def proc():
        span = tracer.span("install", "c0")
        tracer.metrics.gauge("link.util/eth0", 0.6)
        yield env.timeout(2)
        tracer.metrics.inc("http.requests/frontend")
        tracer.metrics.gauge("link.util/eth0", 0.0)
        span.end(outcome="ok")

    env.process(proc())
    env.run()
    return tracer


def test_jsonl_export_validates_against_schema():
    tracer = _small_trace()
    text = to_jsonl(tracer)
    assert validate_trace_text(text) == []
    first = json.loads(text.splitlines()[0])
    assert first["type"] == "meta"
    assert first["clock"] == "simulated-seconds"


def test_corrupted_record_fails_validation():
    tracer = _small_trace()
    lines = to_jsonl(tracer).splitlines()
    bad = json.loads(lines[1])
    del bad["seq"]
    lines[1] = json.dumps(bad)
    assert validate_trace_lines(lines) != []
    # and a record of unknown type is rejected too
    lines[1] = json.dumps({"type": "mystery"})
    assert validate_trace_lines(lines) != []


def test_write_jsonl_roundtrip(tmp_path):
    tracer = _small_trace()
    path = tmp_path / "trace.jsonl"
    n = write_jsonl(tracer, str(path))
    lines = path.read_text(encoding="utf-8").splitlines()
    assert len(lines) == n
    assert validate_trace_lines(lines) == []


# -- summary ------------------------------------------------------------------

def test_percentile_nearest_rank():
    values = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]
    assert percentile(values, 0.50) == 5.0
    assert percentile(values, 0.95) == 10.0
    assert percentile(values, 1.0) == 10.0
    assert percentile([42.0], 0.50) == 42.0
    assert percentile([], 0.50) == 0.0
    with pytest.raises(ValueError):
        percentile(values, 50)


def test_percentile_edge_cases_locked():
    """The exact contract for degenerate series, locked byte-for-byte.

    These are load-bearing for summary tables: a single install span
    must report itself as both its p50 and p95, an empty series renders
    0.0, and an out-of-range quantile always raises — the empty-list
    early return must never mask e.g. ``q=95`` passed for ``q=0.95``.
    """
    # zero samples: 0.0 at every valid quantile, including the ends
    for q in (0.0, 0.5, 0.95, 1.0):
        assert percentile([], q) == 0.0
    # one sample: that sample at every valid quantile
    for q in (0.0, 0.5, 0.95, 1.0):
        assert percentile([7.25], q) == 7.25
    # out-of-range q raises even when the series is empty
    for bad in (-0.01, 1.01, 95, -1):
        with pytest.raises(ValueError):
            percentile([], bad)
        with pytest.raises(ValueError):
            percentile([1.0], bad)


def test_summarize_reports_phases_and_peaks():
    tracer = _small_trace()
    summary = summarize(tracer)
    assert summary["spans"]["install"]["count"] == 1
    assert summary["peak_link_utilization"] == {"eth0": 0.6}
    assert summary["counters"]["http.requests/frontend"] == 1
    assert summary["open_spans"] == 0
