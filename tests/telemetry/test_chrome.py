"""Chrome-trace export: shape, flow arrows, and byte determinism."""

import json
import os
import subprocess
import sys

import pytest

from repro import build_cluster
from repro.telemetry import Tracer, to_chrome_json
from repro.telemetry.chrome import chrome_trace_events


def traced_run(n_compute=2):
    tracer = Tracer()
    sim = build_cluster(n_compute=n_compute, tracer=tracer)
    sim.integrate_all()
    sim.reinstall_all()
    return tracer


def test_chrome_events_have_tracks_and_complete_spans():
    tracer = traced_run()
    events = chrome_trace_events(tracer.iter_records())
    metas = [e for e in events if e["ph"] == "M"]
    assert any(e["name"] == "process_name" for e in metas)
    thread_names = {e["args"]["name"] for e in metas
                    if e["name"] == "thread_name"}
    assert "compute-0-0" in thread_names
    complete = [e for e in events if e["ph"] == "X"]
    assert complete and all(e["dur"] >= 0 for e in complete)
    # span ids ride along so Perfetto queries can join on them
    assert all("span_id" in e["args"] for e in complete)


def test_chrome_open_span_exports_as_begin_event():
    tracer = Tracer()
    from repro.netsim import Environment

    env = Environment()
    tracer.attach(env)
    tracer.span("install", "node-1", parent=None)  # never ended
    events = chrome_trace_events(tracer.iter_records())
    assert [e["ph"] for e in events if e["ph"] in "BX"] == ["B"]


def test_chrome_cross_track_causality_gets_flow_arrows():
    """A child on a different track than its parent renders an s/f pair."""
    tracer = traced_run()
    events = chrome_trace_events(tracer.iter_records())
    starts = [e for e in events if e["ph"] == "s"]
    finishes = [e for e in events if e["ph"] == "f"]
    assert starts and len(starts) == len(finishes)
    assert {e["id"] for e in starts} == {e["id"] for e in finishes}


def test_chrome_json_same_seed_byte_identical():
    assert to_chrome_json(traced_run()) == to_chrome_json(traced_run())


def test_chrome_json_is_valid_trace_event_document():
    doc = json.loads(to_chrome_json(traced_run()))
    assert set(doc) == {"displayTimeUnit", "otherData", "traceEvents"}
    assert all("ph" in e for e in doc["traceEvents"])


# -- byte identity across interpreter hash seeds ------------------------------

SUBPROCESS_SCRIPT = """
from repro import build_cluster
from repro.telemetry import Tracer, to_chrome_json
from repro.telemetry.critpath import explain_tracer
tracer = Tracer()
sim = build_cluster(n_compute=3, tracer=tracer)
sim.integrate_all()
sim.reinstall_all()
import sys
sys.stdout.write(to_chrome_json(tracer))
sys.stdout.write(explain_tracer(tracer))
"""


@pytest.mark.parametrize("hashseed", ["0", "424242"])
def test_chrome_and_critpath_bytes_stable_across_hash_seeds(hashseed):
    """Chrome export and the attribution report are CI artifacts compared
    byte-for-byte, so they must not depend on dict/set hash order."""
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env = dict(os.environ,
               PYTHONHASHSEED=hashseed,
               PYTHONPATH=os.path.abspath(src))
    out = subprocess.run(
        [sys.executable, "-c", SUBPROCESS_SCRIPT],
        capture_output=True, text=True, env=env, check=True,
    ).stdout
    expected_env = dict(env, PYTHONHASHSEED="7777")
    expected = subprocess.run(
        [sys.executable, "-c", SUBPROCESS_SCRIPT],
        capture_output=True, text=True, env=expected_env, check=True,
    ).stdout
    assert out == expected
    assert '"traceEvents"' in out
    assert "critical path: reinstall" in out
