"""Property tests: the rpm database stays consistent under random ops."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rpm import (
    ConflictError,
    DependencyError,
    Package,
    RpmDatabase,
    RpmError,
)

NAMES = ["alpha", "beta", "gamma", "delta", "epsilon"]

op_st = st.tuples(
    st.sampled_from(["install", "erase", "upgrade"]),
    st.sampled_from(NAMES),
    st.integers(min_value=1, max_value=9),  # version component
    st.booleans(),  # add a dependency on the previous name?
)


@settings(max_examples=200, deadline=None)
@given(ops=st.lists(op_st, min_size=1, max_size=25))
def test_rpmdb_invariants_under_random_operations(ops):
    """After any accepted operation sequence:

    * at most one build of a name is installed,
    * the dependency graph of the installed set is self-consistent
      (every operation either keeps verify() true or raises),
    * erase never leaves dangling requirers.
    """
    db = RpmDatabase()
    for kind, name, version, dep in ops:
        prev = NAMES[NAMES.index(name) - 1]
        requires = (prev,) if dep and prev != name else ()
        pkg = Package(name, f"1.{version}", requires=requires)
        try:
            if kind == "install":
                db.install(pkg)
            elif kind == "upgrade":
                db.upgrade(pkg)
            else:
                db.erase(name)
        except (ConflictError, DependencyError, RpmError):
            pass  # refused operations must leave the DB untouched
        # invariants hold after every step
        assert db.verify(), db.unsatisfied()
        names = db.installed_names()
        assert len(names) == len(set(names))


@settings(max_examples=100, deadline=None)
@given(
    versions=st.lists(
        st.integers(min_value=0, max_value=30), min_size=2, max_size=10
    )
)
def test_upgrade_sequence_monotone(versions):
    """A mixed stream of upgrade attempts always leaves the newest
    accepted build installed, and never moves backwards."""
    db = RpmDatabase()
    best = None
    for v in versions:
        pkg = Package("kernel", f"2.4.{v}")
        try:
            db.upgrade(pkg)
            assert best is None or v > best
            best = v
        except ConflictError:
            assert best is not None and v <= best
    assert db.query("kernel").version == f"2.4.{best}"
