"""Tests for the Package model and Repository."""

import pytest

from repro.rpm import (
    EVR,
    DepFlag,
    Dependency,
    Package,
    PackageNotFound,
    Repository,
)


def test_nevra_and_filename():
    p = Package("glibc", "2.2.4", "13", arch="i686")
    assert p.nvr == "glibc-2.2.4-13"
    assert p.nevra == "glibc-2.2.4-13.i686"
    assert p.filename == "glibc-2.2.4-13.i686.rpm"


def test_epoch_shows_in_nevra():
    p = Package("openssl", "0.9.6", "3", epoch=1)
    assert p.nevra == "openssl-1:0.9.6-3.i386"


def test_source_package_filename():
    p = Package("myrinet-gm", "1.4", "1", arch="src", is_source=True)
    assert p.filename == "myrinet-gm-1.4-1.src.rpm"


def test_empty_name_rejected():
    with pytest.raises(ValueError):
        Package("", "1.0")


def test_negative_size_rejected():
    with pytest.raises(ValueError):
        Package("x", "1.0", size=-1)


def test_requires_accepts_strings_and_objects():
    p = Package("gcc", "2.96", requires=("binutils", Dependency("cpp")))
    assert all(isinstance(d, Dependency) for d in p.requires)
    assert {d.name for d in p.requires} == {"binutils", "cpp"}


def test_dependency_parse_versioned():
    d = Dependency.parse("glibc >= 2.2.4")
    assert d.flag is DepFlag.GE
    assert d.evr == EVR("2.2.4")
    assert str(d) == "glibc >= 2.2.4"


def test_dependency_parse_garbage():
    with pytest.raises(ValueError):
        Dependency.parse("a b c d")


def test_dependency_validation():
    with pytest.raises(ValueError):
        Dependency("x", DepFlag.GE, None)
    with pytest.raises(ValueError):
        Dependency("x", DepFlag.ANY, EVR("1"))


@pytest.mark.parametrize(
    "flag, evr, expect",
    [
        (DepFlag.GE, "2.0", True),
        (DepFlag.GE, "2.2.4", True),
        (DepFlag.GE, "3.0", False),
        (DepFlag.LT, "3.0", True),
        (DepFlag.LT, "2.2.4", False),
        (DepFlag.EQ, "2.2.4", True),
        (DepFlag.GT, "2.2.4", False),
        (DepFlag.LE, "2.2.4", True),
    ],
)
def test_satisfies_versioned(flag, evr, expect):
    from repro.rpm import parse_evr

    pkg = Package("glibc", "2.2.4", "13")
    dep = Dependency("glibc", flag, parse_evr(evr))
    assert pkg.satisfies(dep) is expect


def test_satisfies_via_provides():
    pkg = Package("mpich", "1.2.2", provides=("mpi",))
    assert pkg.satisfies(Dependency("mpi"))
    assert not pkg.satisfies(Dependency("lam"))


def test_newer_than():
    old = Package("kernel", "2.4.7", "10")
    new = Package("kernel", "2.4.9", "6")
    assert new.newer_than(old)
    assert not old.newer_than(new)
    with pytest.raises(ValueError):
        old.newer_than(Package("bash", "2.05"))


def test_with_update_bumps_evr():
    p = Package("wu-ftpd", "2.6.1", "18", size=350_000)
    q = p.with_update("2.6.1", "20")
    assert q.newer_than(p)
    assert q.size == p.size


# -- Repository ---------------------------------------------------------------


def repo3():
    r = Repository("test")
    r.add(Package("kernel", "2.4.7", "10"))
    r.add(Package("kernel", "2.4.9", "6"))
    r.add(Package("bash", "2.05", "8"))
    return r


def test_latest_picks_newest():
    assert repo3().latest("kernel").version == "2.4.9"


def test_versions_sorted_oldest_first():
    vs = repo3().versions("kernel")
    assert [p.version for p in vs] == ["2.4.7", "2.4.9"]


def test_missing_name_raises():
    with pytest.raises(PackageNotFound):
        repo3().latest("nonesuch")
    with pytest.raises(PackageNotFound):
        repo3().versions("nonesuch")


def test_get_returns_default():
    assert repo3().get("nonesuch") is None


def test_add_is_idempotent_for_same_build():
    r = repo3()
    n = len(r)
    r.add(Package("bash", "2.05", "8"))
    assert len(r) == n


def test_arch_filtering_includes_noarch():
    r = Repository("t")
    r.add(Package("man-pages", "1.39", arch="noarch"))
    r.add(Package("glibc", "2.2.4", arch="i386"))
    r.add(Package("glibc", "2.2.4", release="2", arch="ia64"))
    assert r.latest("man-pages", arch="ia64").arch == "noarch"
    assert r.latest("glibc", arch="ia64").arch == "ia64"
    with pytest.raises(PackageNotFound):
        r.latest("glibc", arch="alpha")


def test_whatprovides_ranks_newest_first():
    r = Repository("t")
    r.add(Package("mpich", "1.2.1", provides=("mpi",)))
    r.add(Package("mpich", "1.2.2", provides=("mpi",)))
    hits = r.whatprovides("mpi")
    assert [p.version for p in hits] == ["1.2.2", "1.2.1"]
    assert r.best_provider("mpi").version == "1.2.2"


def test_whatprovides_missing():
    with pytest.raises(PackageNotFound):
        repo3().best_provider("nonesuch")


def test_remove_clears_indexes():
    r = Repository("t")
    p = Package("mpich", "1.2.2", provides=("mpi",))
    r.add(p)
    r.remove(p)
    assert "mpich" not in r
    assert r.whatprovides("mpi") == []


def test_iteration_is_deterministic():
    a = list(repo3())
    b = list(repo3())
    assert [p.nevra for p in a] == [p.nevra for p in b]


def test_total_size():
    r = Repository("t")
    r.add(Package("a", "1", size=100))
    r.add(Package("b", "1", size=250))
    assert r.total_size() == 350
