"""Tests for spec building and the synthetic Red Hat universe."""

import pytest

from repro.rpm import (
    MB,
    BuildError,
    Package,
    SpecFile,
    UpdateStream,
    community_packages,
    npaci_packages,
    resolve,
    rpmbuild,
    stock_redhat,
)


def test_specfile_source_package():
    spec = SpecFile("myrinet-gm", "1.4", binary_size=2 * MB)
    src = spec.source_package()
    assert src.is_source
    assert src.filename == "myrinet-gm-1.4-1.src.rpm"


def test_rpmbuild_requires_build_deps():
    spec = SpecFile(
        "myrinet-gm", "1.4", build_requires=("gcc", "kernel-source")
    )
    with pytest.raises(BuildError, match="kernel-source"):
        rpmbuild(spec, available=[Package("gcc", "2.96")])


def test_rpmbuild_produces_binaries_with_suffix():
    spec = SpecFile("myrinet-gm", "1.4", build_requires=("gcc",))
    built = rpmbuild(
        spec,
        arch="i686",
        available=[Package("gcc", "2.96")],
        version_suffix="_2.4.9",
    )
    assert len(built) == 1
    assert built[0].version == "1.4_2.4.9"
    assert built[0].arch == "i686"


def test_rpmbuild_subpackages():
    spec = SpecFile("kernel", "2.4.9", subpackages=("kernel", "kernel-smp"))
    built = rpmbuild(spec)
    assert [p.name for p in built] == ["kernel", "kernel-smp"]


# -- synthetic distribution ----------------------------------------------------


def test_stock_redhat_is_deterministic():
    a = stock_redhat(seed=7)
    b = stock_redhat(seed=7)
    assert [p.nevra for p in a] == [p.nevra for p in b]
    assert [p.size for p in a] == [p.size for p in b]


def test_stock_redhat_seed_changes_filler():
    a = stock_redhat(seed=7)
    b = stock_redhat(seed=8)
    assert [p.size for p in a] != [p.size for p in b]


def test_stock_redhat_has_core_packages():
    repo = stock_redhat()
    for name in ["glibc", "bash", "kernel", "gcc", "dhcp", "mysql-server", "apache"]:
        assert name in repo, name


def test_basesystem_closure_resolves():
    repo = stock_redhat()
    tx = resolve(repo, ["basesystem"])
    assert "glibc" in tx.names
    assert "kernel" in tx.names
    assert len(tx) > 80


def test_community_packages_content():
    repo = community_packages()
    assert "mpich" in repo
    assert "pbs" in repo
    assert "maui" in repo
    gm = repo.latest("myrinet-gm")
    assert gm.is_source


def test_npaci_packages_are_versioned():
    repo = npaci_packages("2.2.1")
    assert repo.latest("rocks-dist").version == "2.2.1"
    assert len(repo) == 7


def test_update_stream_rate_matches_paper():
    base = stock_redhat()
    stream = UpdateStream(base, updates_per_year=124, days=360)
    assert len(stream) == 124
    # one update every ~3 days
    assert stream.mean_days_between_updates() == pytest.approx(2.9, abs=0.2)
    assert 0 < len(stream.security_updates()) < 124


def test_update_stream_is_deterministic():
    base = stock_redhat()
    s1 = UpdateStream(base, seed=62)
    s2 = UpdateStream(base, seed=62)
    assert [(u.day, u.package.nevra) for u in s1] == [
        (u.day, u.package.nevra) for u in s2
    ]


def test_updates_are_newer_than_base():
    base = stock_redhat()
    for u in UpdateStream(base):
        assert u.package.newer_than(base.latest(u.package.name))


def test_released_by_is_monotone():
    stream = UpdateStream(stock_redhat())
    early = stream.released_by(30)
    late = stream.released_by(300)
    assert len(early) <= len(late)
    assert {(u.day, u.package.nevra) for u in early} <= {
        (u.day, u.package.nevra) for u in late
    }


def test_updates_repository_view():
    stream = UpdateStream(stock_redhat())
    repo = stream.updates_repository(day=180)
    assert len(repo) == len(stream.released_by(180))


def test_advisory_naming():
    stream = UpdateStream(stock_redhat())
    for u in stream:
        if u.security:
            assert u.advisory.startswith("RHSA-")
        else:
            assert u.advisory.startswith("RHBA-")
