"""Tests for rpmvercmp and EVR — including properties of the ordering."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rpm import EVR, label_compare, parse_evr, rpmvercmp


# Known-answer vectors, many lifted from rpm's own test suite.
@pytest.mark.parametrize(
    "a, b, expect",
    [
        ("1.0", "1.0", 0),
        ("1.0", "2.0", -1),
        ("2.0", "1.0", 1),
        ("2.0.1", "2.0.1", 0),
        ("2.0", "2.0.1", -1),
        ("2.0.1a", "2.0.1", 1),
        ("5.5p1", "5.5p2", -1),
        ("5.5p10", "5.5p1", 1),
        ("10xyz", "10.1xyz", -1),
        ("xyz10", "xyz10.1", -1),
        ("xyz.4", "xyz.4", 0),
        ("xyz.4", "8", -1),
        ("8", "xyz.4", 1),
        ("5.5p2", "5.6p1", -1),
        ("6.5p2", "5.6p1", 1),
        ("6.0.rc1", "6.0", 1),
        ("10b2", "10a1", 1),
        ("7.4.052", "7.4.52", 0),  # leading zeros stripped
        ("1.0010", "1.9", 1),
        ("1.05", "1.5", 0),
        ("4.999.9", "5.0", -1),
        ("2.4.9", "2.4.10", -1),
        # alpha vs numeric segment: numeric is always newer
        ("1.0a", "1.0.1", -1),
        # tilde pre-release convention
        ("1.0~rc1", "1.0", -1),
        ("1.0~rc1", "1.0~rc2", -1),
        ("1.0~rc1", "1.0~rc1", 0),
        ("1.0.~", "1.0.", -1),
        # separators ignored except as boundaries
        ("1_0", "1.0", 0),
        ("20011110", "20011109", 1),
    ],
)
def test_rpmvercmp_vectors(a, b, expect):
    assert rpmvercmp(a, b) == expect


def test_parse_evr_forms():
    assert parse_evr("1.2.3") == EVR("1.2.3")
    assert parse_evr("1.2.3-4") == EVR("1.2.3", "4")
    assert parse_evr("2:1.2.3-4") == EVR("1.2.3", "4", 2)
    assert parse_evr("1.2-3-4") == EVR("1.2-3", "4")


def test_evr_str_roundtrip():
    for text in ["1.2.3", "1.2.3-4", "2:1.2.3-4"]:
        assert str(parse_evr(text)) == text


def test_epoch_dominates():
    assert label_compare("1:0.1-1", "0:99.9-9") == 1
    assert label_compare("0.1", "1:0.1") == -1


def test_empty_release_matches_any():
    # A dep written "glibc >= 2.2" (no release) matches glibc-2.2-7.
    assert parse_evr("2.2-7").compare(parse_evr("2.2")) == 0
    assert EVR("2.2", "7").compare(EVR("2.2")) == 0


def test_strict_compare_orders_releases():
    assert EVR("2.2", "7") > EVR("2.2", "")
    assert EVR("2.2", "8") > EVR("2.2", "7")


def test_evr_sorting():
    evrs = [EVR("1.0", "2"), EVR("0.9", "9"), EVR("1.0", "10"), EVR("1.0", "2", 1)]
    ordered = sorted(evrs)
    assert ordered == [
        EVR("0.9", "9"),
        EVR("1.0", "2"),
        EVR("1.0", "10"),
        EVR("1.0", "2", 1),
    ]


# --- properties -------------------------------------------------------------

version_text = st.text(
    alphabet="0123456789abcxyz.~_-", min_size=1, max_size=12
)


@settings(max_examples=300, deadline=None)
@given(a=version_text)
def test_rpmvercmp_reflexive(a):
    assert rpmvercmp(a, a) == 0


@settings(max_examples=300, deadline=None)
@given(a=version_text, b=version_text)
def test_rpmvercmp_antisymmetric(a, b):
    assert rpmvercmp(a, b) == -rpmvercmp(b, a)


@settings(max_examples=300, deadline=None)
@given(a=version_text, b=version_text, c=version_text)
def test_rpmvercmp_transitive(a, b, c):
    """If a <= b and b <= c then a <= c."""
    ab, bc, ac = rpmvercmp(a, b), rpmvercmp(b, c), rpmvercmp(a, c)
    if ab <= 0 and bc <= 0:
        assert ac <= 0
    if ab >= 0 and bc >= 0:
        assert ac >= 0


@settings(max_examples=200, deadline=None)
@given(
    e=st.integers(min_value=0, max_value=3),
    v=version_text.filter(lambda s: "-" not in s and ":" not in s and s == s.strip()),
    r=version_text.filter(lambda s: "-" not in s and ":" not in s),
)
def test_evr_parse_render_roundtrip(e, v, r):
    evr = EVR(v, r, e)
    assert parse_evr(str(evr)) == evr
