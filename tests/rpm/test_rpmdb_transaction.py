"""Tests for the installed-package database and the transaction solver."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rpm import (
    ConflictError,
    DependencyError,
    Dependency,
    Package,
    Repository,
    RpmDatabase,
    RpmError,
    install_order,
    resolve,
)


def base_pkgs():
    return [
        Package("glibc", "2.2.4", "13", size=21_000_000),
        Package("bash", "2.05", "8", requires=("glibc",)),
        Package("openssl", "0.9.6b", "8", requires=("glibc",)),
        Package("openssh", "2.9p2", "7", requires=("openssl",)),
    ]


def test_install_and_query():
    db = RpmDatabase()
    for p in base_pkgs():
        db.install(p)
    assert len(db) == 4
    assert db.query("bash").version == "2.05"
    assert "openssh" in db
    assert db.verify()


def test_install_missing_dep_fails():
    db = RpmDatabase()
    with pytest.raises(DependencyError, match="glibc"):
        db.install(Package("bash", "2.05", requires=("glibc",)))


def test_install_nodeps_skips_check():
    db = RpmDatabase()
    db.install(Package("bash", "2.05", requires=("glibc",)), nodeps=True)
    assert not db.verify()
    assert db.unsatisfied() == ["bash-2.05-1.i386 requires glibc"]


def test_double_install_rejected():
    db = RpmDatabase()
    db.install(Package("glibc", "2.2.4"))
    with pytest.raises(ConflictError):
        db.install(Package("glibc", "2.2.4"))
    with pytest.raises(ConflictError, match="upgrade"):
        db.install(Package("glibc", "2.2.5"))


def test_source_package_not_installable():
    db = RpmDatabase()
    with pytest.raises(RpmError, match="source"):
        db.install(Package("gm", "1.4", arch="src", is_source=True))


def test_conflicts_block_install():
    db = RpmDatabase()
    db.install(Package("sendmail", "8.11"))
    with pytest.raises(ConflictError):
        db.install(Package("postfix", "1.1", conflicts=("sendmail",)))


def test_obsoletes_removes_victim():
    db = RpmDatabase()
    db.install(Package("fileutils", "4.1"))
    db.install(Package("coreutils", "5.0", obsoletes=("fileutils",)))
    assert "fileutils" not in db
    assert "coreutils" in db


def test_erase_protects_dependents():
    db = RpmDatabase()
    for p in base_pkgs():
        db.install(p)
    with pytest.raises(DependencyError, match="openssh"):
        db.erase("openssl")
    db.erase("openssh")
    db.erase("openssl")  # now fine


def test_erase_force():
    db = RpmDatabase()
    for p in base_pkgs():
        db.install(p)
    db.erase("glibc", force=True)
    assert not db.verify()


def test_erase_missing():
    with pytest.raises(RpmError):
        RpmDatabase().erase("nothing")


def test_upgrade_replaces_and_reports_old():
    db = RpmDatabase()
    db.install(Package("glibc", "2.2.4", "13"))
    old = db.upgrade(Package("glibc", "2.2.4", "19"))
    assert old.release == "13"
    assert db.query("glibc").release == "19"


def test_upgrade_refuses_downgrade():
    db = RpmDatabase()
    db.install(Package("glibc", "2.2.4", "19"))
    with pytest.raises(ConflictError, match="not newer"):
        db.upgrade(Package("glibc", "2.2.4", "13"))


def test_upgrade_fresh_install_returns_none():
    db = RpmDatabase()
    assert db.upgrade(Package("glibc", "2.2.4")) is None


def test_diff_detects_drift():
    a, b = RpmDatabase(), RpmDatabase()
    a.install(Package("glibc", "2.2.4", "13"))
    b.install(Package("glibc", "2.2.4", "19"))
    b.install(Package("bash", "2.05"), nodeps=True)
    drift = a.diff(b)
    assert set(drift) == {"glibc", "bash"}
    assert drift["bash"][0] is None


def test_clone_and_wipe():
    db = RpmDatabase()
    db.install(Package("glibc", "2.2.4"))
    snap = db.clone_state()
    db.wipe()
    assert len(db) == 0
    assert len(snap) == 1


# -- transaction solver -------------------------------------------------------


def cluster_repo():
    r = Repository("dist")
    r.add_all(base_pkgs())
    r.add(Package("mpich", "1.2.2", requires=("gcc",), provides=("mpi",)))
    r.add(Package("gcc", "2.96", requires=("binutils", "glibc")))
    r.add(Package("binutils", "2.11.90", requires=("glibc",)))
    r.add(Package("hpl", "1.0", requires=("mpi",)))
    return r


def test_resolve_closure():
    tx = resolve(cluster_repo(), ["openssh"])
    assert set(tx.names) == {"openssh", "openssl", "glibc"}


def test_resolve_virtual_provide():
    tx = resolve(cluster_repo(), ["hpl"])
    assert "mpich" in tx.names  # provider of 'mpi'
    assert "gcc" in tx.names


def test_resolve_missing_reports_chain():
    r = Repository("dist")
    r.add(Package("bash", "2.05", requires=("glibc",)))
    with pytest.raises(DependencyError) as exc:
        resolve(r, ["bash"])
    assert "bash-2.05-1.i386 requires glibc" in str(exc.value)


def test_resolve_missing_requested():
    with pytest.raises(DependencyError, match="<requested>"):
        resolve(cluster_repo(), ["nonesuch"])


def test_resolve_picks_newest():
    r = cluster_repo()
    r.add(Package("openssl", "0.9.6b", "12", requires=("glibc",)))
    tx = resolve(r, ["openssh"])
    chosen = {p.name: p for p in tx}
    assert chosen["openssl"].release == "12"


def test_resolve_respects_arch():
    r = Repository("dist")
    r.add(Package("glibc", "2.2.4", arch="i386"))
    r.add(Package("glibc", "2.2.4", arch="ia64"))
    r.add(Package("man-pages", "1.39", arch="noarch"))
    tx = resolve(r, ["glibc", "man-pages"], arch="ia64")
    archs = {p.name: p.arch for p in tx}
    assert archs == {"glibc": "ia64", "man-pages": "noarch"}


def test_install_order_prerequisites_first():
    tx = resolve(cluster_repo(), ["hpl", "openssh"])
    order = tx.names
    assert order.index("glibc") < order.index("openssl")
    assert order.index("openssl") < order.index("openssh")
    assert order.index("binutils") < order.index("gcc")
    assert order.index("mpich") < order.index("hpl")


def test_install_order_breaks_cycles():
    a = Package("a", "1", requires=("b",))
    b = Package("b", "1", requires=("a",))
    order = install_order([a, b])
    assert [p.name for p in order] == ["a", "b"]  # deterministic break


def test_transaction_total_size():
    tx = resolve(cluster_repo(), ["openssh"])
    assert tx.total_size == sum(p.size for p in tx)


def test_transaction_installs_cleanly_in_order():
    """Whole-pipeline property: the solver's order satisfies the rpmdb."""
    tx = resolve(cluster_repo(), ["hpl", "openssh", "mpich"])
    db = RpmDatabase()
    for pkg in tx:
        db.install(pkg)  # raises if order is wrong
    assert db.verify()


@settings(max_examples=100, deadline=None)
@given(data=st.data())
def test_install_order_property(data):
    """For random acyclic dependency forests, order respects every edge."""
    n = data.draw(st.integers(min_value=1, max_value=12))
    pkgs = []
    for i in range(n):
        # each package may require only lower-numbered ones: acyclic
        deps = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=max(i - 1, 0)),
                max_size=3,
                unique=True,
            )
        ) if i else []
        pkgs.append(
            Package(f"p{i:02d}", "1.0", requires=tuple(f"p{j:02d}" for j in deps))
        )
    order = install_order(pkgs)
    pos = {p.name: k for k, p in enumerate(order)}
    assert len(order) == n
    for p in pkgs:
        for d in p.requires:
            assert pos[d.name] < pos[p.name]
