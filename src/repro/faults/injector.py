"""Arms a :class:`~repro.faults.plan.FaultPlan` against a live cluster.

The injector is the bridge between declarative fault entries and the
simulation: :meth:`FaultInjector.arm` resolves each entry's target
(a frontend service, a NIC, a victim node), spawns one environment
process per entry, and appends an :class:`InjectionRecord` to
:attr:`FaultInjector.log` for every action actually taken — including
the repair/restore half of each fault, and every individual package
payload the corruption hook mangles.

Determinism: all randomness flows from ``plan.seed`` through per-fault
sub-RNGs (victim node picks are drawn when the entry fires, corruption
coin-flips when each payload is fetched).  The DES itself is
deterministic, so the same plan + seed + cluster always yields a
byte-identical injection log.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Generator, Optional, Sequence

from ..cluster import Machine, PowerState
from ..core.frontend import RocksFrontend
from .plan import (
    FRONTEND,
    Fault,
    FaultPlan,
    FrontendCrash,
    LinkDegrade,
    LinkFlap,
    NodeCrash,
    NodeHang,
    PackageCorruption,
    PowerRestore,
    ServiceFlap,
    ServiceOutage,
    SitePowerFailure,
)

__all__ = ["InjectionRecord", "FaultInjector"]


@dataclass(frozen=True)
class InjectionRecord:
    """One thing the injector did to the cluster, timestamped."""

    t: float
    kind: str
    target: str
    detail: str = ""

    def __str__(self) -> str:
        extra = f" ({self.detail})" if self.detail else ""
        return f"[{self.t:9.2f}s] {self.kind:<18} {self.target}{extra}"


class FaultInjector:
    """Turns a fault plan into armed environment processes."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.log: list[InjectionRecord] = []
        #: DB snapshots captured immediately before each FrontendCrash —
        #: the byte-identity reference for crash-recovery verification.
        self.snapshots: list[str] = []
        self._armed = False
        self._parent = None  # tracer span all injections parent on
        self._site_down_at: Optional[float] = None  # start of a site outage

    # -- the public surface ------------------------------------------------
    def arm(
        self,
        frontend: RocksFrontend,
        targets: Sequence[Machine] = (),
        parent=None,
    ) -> "FaultInjector":
        """Schedule every fault in the plan against ``frontend``.

        ``targets`` are the campaign's victim pool for node-level faults
        (``NodeHang``/``NodeCrash``) and the ``node:<i>`` host selector.
        ``parent`` (a tracer span, e.g. a storm driver's root) becomes
        the parent of every fault record the injector emits, so traces
        show *what scenario* caused each perturbation.
        Arming is idempotent-hostile by design: arm once per run.
        """
        if self._armed:
            raise RuntimeError("fault plan already armed")
        self._armed = True
        self._parent = parent
        env = frontend.env
        targets = list(targets)
        corruptions: list[tuple[PackageCorruption, random.Random]] = []
        for i, fault in enumerate(self.plan.faults):
            rng = random.Random(self.plan.seed * 1_000_003 + i)
            if isinstance(fault, PackageCorruption):
                corruptions.append((fault, rng))
                continue
            env.process(
                self._deliver(env, frontend, targets, fault, rng),
                name=f"fault:{fault.describe()}",
            )
        if corruptions:
            self._install_corruption_hook(frontend, corruptions)
        return self

    def signature(self) -> tuple[tuple[float, str, str, str], ...]:
        """The log as comparable data: same seed ⇒ identical signature."""
        return tuple((r.t, r.kind, r.target, r.detail) for r in self.log)

    def render_log(self) -> str:
        header = f"injection log: {self.plan.describe()}"
        return "\n".join([header, *map(str, self.log)] if self.log else
                         [header, "  (no injections fired)"])

    # -- delivery ----------------------------------------------------------
    def _record(self, env, kind: str, target: str, detail: str = "",
                parent=None) -> None:
        self.log.append(InjectionRecord(env.now, kind, target, detail))
        if env.tracer.enabled:
            env.tracer.event("fault", kind, parent=parent or self._parent,
                             target=target, detail=detail)

    def _fault_span(self, env, fault: Fault):
        """Open a ``fault`` span covering a windowed fault's lifetime.

        Only faults with a duration (outages, degrades, flaps) get
        spans: a window is an interval the critical-path analyzer can
        attribute time to.  Instantaneous deliveries stay events.
        """
        if not env.tracer.enabled:
            return None
        return env.tracer.span(
            "fault", fault.describe(), parent=self._parent
        )

    def _deliver(
        self,
        env,
        frontend: RocksFrontend,
        targets: list[Machine],
        fault: Fault,
        rng: random.Random,
    ) -> Generator:
        yield env.timeout(fault.at)
        if isinstance(fault, FrontendCrash):
            self._deliver_frontend_crash(env, frontend, fault)
        elif isinstance(fault, ServiceFlap):
            yield from self._deliver_service_flap(env, frontend, fault)
        elif isinstance(fault, ServiceOutage):
            yield from self._deliver_outage(env, frontend, fault)
        elif isinstance(fault, LinkDegrade):
            yield from self._deliver_degrade(env, frontend, targets, fault)
        elif isinstance(fault, LinkFlap):
            yield from self._deliver_flap(env, frontend, targets, fault)
        elif isinstance(fault, (NodeHang, NodeCrash)):
            self._deliver_node_fault(env, targets, fault, rng)
        elif isinstance(fault, SitePowerFailure):
            self._deliver_site_power(env, frontend, restore=False)
        elif isinstance(fault, PowerRestore):
            self._deliver_site_power(env, frontend, restore=True)
        else:  # pragma: no cover - new fault types must be wired here
            raise TypeError(f"no delivery for fault type {type(fault).__name__}")

    def _deliver_outage(self, env, frontend, fault: ServiceOutage) -> Generator:
        services = {
            "install": frontend.install_server,
            "dhcp": frontend.dhcp,
            "nfs": frontend.nfs,
        }
        try:
            service = services[fault.service]
        except KeyError:
            raise ValueError(
                f"unknown service {fault.service!r}; have {sorted(services)}"
            ) from None
        span = self._fault_span(env, fault) if fault.duration else None
        # Synchronous: ambient context parents the service's own
        # fail/repair events on the fault window.
        with env.tracer.context(span):
            service.fail()
        self._record(env, "service-fail", fault.service,
                     f"repair in {fault.duration:g}s" if fault.duration else "no repair",
                     parent=span)
        if fault.duration:
            yield env.timeout(fault.duration)
            with env.tracer.context(span):
                service.repair()
            self._record(env, "service-repair", fault.service, parent=span)
            if span is not None:
                span.end(outcome="repaired")

    def _deliver_frontend_crash(self, env, frontend, fault: FrontendCrash) -> None:
        # Snapshot first: this is the state recovery must reproduce.
        self.snapshots.append(frontend.db.snapshot())
        # Context parents the frontend-crash event and the service-stop
        # cascade on whatever scenario armed this injector.
        with env.tracer.context(self._parent):
            frontend.crash(lose_database=fault.lose_database)
        self._record(
            env,
            "frontend-crash",
            frontend.config.name,
            "database lost" if fault.lose_database else "services only",
        )

    def _deliver_service_flap(self, env, frontend, fault: ServiceFlap) -> Generator:
        services = {
            "install": frontend.install_server,
            "dhcp": frontend.dhcp,
            "nfs": frontend.nfs,
        }
        try:
            service = services[fault.service]
        except KeyError:
            raise ValueError(
                f"unknown service {fault.service!r}; have {sorted(services)}"
            ) from None
        span = self._fault_span(env, fault)
        for cycle in range(1, fault.times + 1):
            if not service.faulted:
                with env.tracer.context(span):
                    service.fail()
            self._record(env, "service-flap", fault.service,
                         f"kill {cycle}/{fault.times}", parent=span)
            if cycle < fault.times:
                yield env.timeout(fault.period)
        if span is not None:
            span.end(kills=fault.times)

    def _resolve_machine(
        self, frontend: RocksFrontend, targets: list[Machine], selector: str
    ) -> Machine:
        if selector == FRONTEND:
            return frontend.machine
        if selector.startswith("node:"):
            return targets[int(selector.split(":", 1)[1])]
        return frontend.cluster.find(selector)

    def _deliver_degrade(self, env, frontend, targets, fault: LinkDegrade) -> Generator:
        machine = self._resolve_machine(frontend, targets, fault.host)
        network = frontend.cluster.network
        original = network.host(machine.mac).speed
        span = self._fault_span(env, fault)
        network.set_host_speed(machine.mac, original * fault.factor)
        self._record(env, "link-degrade", machine.hostid,
                     f"x{fault.factor:g} for {fault.duration:g}s", parent=span)
        yield env.timeout(fault.duration)
        network.set_host_speed(machine.mac, original)
        self._record(env, "link-restore", machine.hostid, parent=span)
        if span is not None:
            span.end(host=machine.hostid, factor=fault.factor)

    def _deliver_flap(self, env, frontend, targets, fault: LinkFlap) -> Generator:
        machine = self._resolve_machine(frontend, targets, fault.host)
        network = frontend.cluster.network
        span = self._fault_span(env, fault)
        for cycle in range(1, fault.flaps + 1):
            network.set_host_up(machine.mac, False)
            self._record(env, "link-down", machine.hostid,
                         f"flap {cycle}/{fault.flaps}", parent=span)
            yield env.timeout(fault.down_seconds)
            # Restore truthfully: sync against the OS state, so a link is
            # not forced up on a host that hung or powered off meanwhile.
            frontend.cluster.sync_link_state(machine)
            self._record(env, "link-up", machine.hostid,
                         f"flap {cycle}/{fault.flaps}", parent=span)
            if cycle < fault.flaps:
                yield env.timeout(fault.up_seconds)
        if span is not None:
            span.end(host=machine.hostid, flaps=fault.flaps)

    def _deliver_node_fault(self, env, targets, fault, rng: random.Random) -> None:
        if fault.node is not None:
            victims = [targets[fault.node]]
        else:
            pool = list(targets)
            k = min(fault.count, len(pool))
            victims = rng.sample(pool, k) if k else []
        for machine in victims:
            if env.tracer.enabled:
                # The recovery reinstall this fault forces should trace
                # back to the scenario that injected it.
                machine.trace_parent = self._parent
            if isinstance(fault, NodeHang):
                machine.hang(cause="injected fault")
                self._record(env, "node-hang", machine.hostid)
            else:
                machine.power_off(hard=True)
                self._record(env, "node-crash", machine.hostid, "power lost")

    def _deliver_site_power(self, env, frontend, restore: bool) -> None:
        """Drop (or re-energize) every PDU outlet in the machine room.

        The frontend machine is skipped: it is assumed to be on UPS
        power, as it hosts the very services (dhcpd/httpd/database)
        that recovery depends on.  Machines are walked in cabinet/outlet
        order, so the herd is deterministic.
        """
        affected = 0
        for cabinet in frontend.cluster.cabinets:
            for outlet, machine in cabinet.pdu.outlets():
                if machine is frontend.machine:
                    continue
                powered = machine.power is PowerState.ON
                if restore and not powered:
                    if env.tracer.enabled:
                        # Every install in the restore herd traces back
                        # to the scenario that re-energized the site.
                        machine.trace_parent = self._parent
                    cabinet.pdu.power_on(outlet)
                    affected += 1
                elif not restore and powered:
                    cabinet.pdu.power_off(outlet)
                    affected += 1
        kind = "power-restore" if restore else "site-power-failure"
        detail = (f"{affected} nodes re-energized" if restore
                  else f"{affected} nodes lost power")
        self._record(env, kind, "site", detail)
        # The dark window between failure and restore is wall-to-wall
        # time nothing can make progress in; give it a retrospective
        # span so `repro explain` names it instead of folding it into
        # the scenario root's self-time.
        if restore:
            if env.tracer.enabled and self._site_down_at is not None:
                env.tracer.record_span(
                    "fault", "site-outage", self._site_down_at,
                    parent=self._parent, nodes=affected,
                )
            self._site_down_at = None
        else:
            self._site_down_at = env.now

    def _install_corruption_hook(
        self,
        frontend: RocksFrontend,
        corruptions: list[tuple[PackageCorruption, random.Random]],
    ) -> None:
        env = frontend.env

        def corrupt(client: str, pkg) -> bool:
            for fault, rng in corruptions:
                end = None if fault.duration is None else fault.at + fault.duration
                if env.now < fault.at or (end is not None and env.now >= end):
                    continue
                if rng.random() < fault.rate:
                    self._record(env, "corrupt-package", client, pkg.nevra)
                    return True
            return False

        frontend.install_server.corruption_hook = corrupt
