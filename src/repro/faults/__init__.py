"""Fault injection for the simulated Rocks cluster.

The paper's §4 thesis is that world-class environments fail — nodes go
dark, services crash, payloads corrupt — and that complete reinstallation
is the recovery primitive that keeps large clusters manageable.  This
package supplies the *failure* half of that argument: seeded,
declarative :class:`~repro.faults.plan.FaultPlan` schedules, an
:class:`~repro.faults.injector.FaultInjector` that arms them as
environment processes with a full injection log, and
:func:`~repro.faults.experiment.chaos_reinstall`, which re-runs the
Table I mass-reinstall experiment under fire.
"""

from .experiment import ChaosResult, campaign_size, chaos_reinstall, select_machines
from .injector import FaultInjector, InjectionRecord
from .plan import (
    PLANS,
    DhcpBlackout,
    Fault,
    FaultPlan,
    FrontendCrash,
    LinkDegrade,
    LinkFlap,
    NfsOutage,
    NodeCrash,
    NodeHang,
    PackageCorruption,
    PowerRestore,
    ServerCrash,
    ServiceFlap,
    ServiceOutage,
    SitePowerFailure,
    named_plan,
)

__all__ = [
    "ChaosResult",
    "campaign_size",
    "chaos_reinstall",
    "select_machines",
    "FaultInjector",
    "InjectionRecord",
    "PLANS",
    "DhcpBlackout",
    "Fault",
    "FaultPlan",
    "FrontendCrash",
    "LinkDegrade",
    "LinkFlap",
    "NfsOutage",
    "NodeCrash",
    "NodeHang",
    "PackageCorruption",
    "PowerRestore",
    "ServerCrash",
    "ServiceFlap",
    "ServiceOutage",
    "SitePowerFailure",
    "named_plan",
]
