"""End-to-end chaos experiment: the Table I campaign under a fault plan.

This is the shared driver behind ``python -m repro chaos`` and
``benchmarks/bench_chaos_reinstall.py``: stand up a cluster, integrate
its nodes cleanly, then arm a fault plan and run a self-healing
:class:`~repro.core.tools.campaign.ReinstallCampaign` over every node.
The result pairs the campaign's graceful-degradation report with the
injector's log, so a run answers both "what did we do to the cluster?"
and "how well did it cope?".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.tools import CampaignReport, EscalationPolicy, ReinstallCampaign
from ..quickbuild import build_cluster
from .injector import FaultInjector
from .plan import FaultPlan, named_plan

__all__ = ["ChaosResult", "chaos_reinstall"]


@dataclass
class ChaosResult:
    """One chaos campaign: what was injected and how the cluster coped."""

    plan: FaultPlan
    n_nodes: int
    report: CampaignReport
    injector: FaultInjector
    #: FrontendResilience handle when the run was hardened, else None.
    resilience: Optional[object] = None
    #: MonitoringStack handle when the run was observed, else None.
    monitoring: Optional[object] = None

    @property
    def minutes(self) -> float:
        return self.report.minutes

    @property
    def completion_rate(self) -> float:
        return self.report.completion_rate

    def render(self) -> str:
        parts = [self.injector.render_log(), "", self.report.render()]
        if self.resilience is not None:
            parts += ["", self.resilience.render()]
        if self.monitoring is not None:
            parts += ["", self.monitoring.render_top()]
        return "\n".join(parts)


def chaos_reinstall(
    n_nodes: int = 32,
    plan: "FaultPlan | str" = "default",
    seed: Optional[int] = None,
    policy: Optional[EscalationPolicy] = None,
    resilience=None,
    monitoring=None,
    on_monitoring=None,
    **build_kwargs,
) -> ChaosResult:
    """Reinstall ``n_nodes`` concurrently while the plan's faults fire.

    Fault ``at`` offsets are relative to campaign start (the cluster is
    integrated cleanly first).  ``plan`` may be a :class:`FaultPlan` or
    a name from :data:`repro.faults.plan.PLANS`; ``seed`` re-seeds it.
    ``resilience`` hardens the frontend before the faults arm: pass
    ``True`` for the default :class:`~repro.resilience.ResilienceOptions`
    or an options instance for custom knobs (required for plans that
    inject a ``FrontendCrash`` — an unhardened frontend stays down).
    ``monitoring`` deploys the gmond/gmetad stack the same way: ``True``
    for default :class:`~repro.monitoring.MonitoringOptions`, or an
    options instance.  ``on_monitoring`` is called with the
    :class:`~repro.monitoring.MonitoringStack` before the campaign runs
    (the hook the CLI uses to start a live ``--watch`` dashboard).
    """
    if isinstance(plan, str):
        plan = named_plan(plan, seed)
    elif seed is not None:
        plan = plan.with_seed(seed)
    sim = build_cluster(n_compute=n_nodes, **build_kwargs)
    sim.integrate_all()
    hardening = None
    if resilience:
        from ..resilience import ResilienceOptions, harden_frontend

        options = (
            resilience
            if isinstance(resilience, ResilienceOptions)
            else ResilienceOptions()
        )
        hardening = harden_frontend(sim.frontend, options)
    stack = None
    if monitoring:
        from ..monitoring import MonitoringOptions, enable_cluster_monitoring

        mon_options = (
            monitoring
            if isinstance(monitoring, MonitoringOptions)
            else MonitoringOptions()
        )
        stack = enable_cluster_monitoring(sim.frontend, sim.nodes, mon_options)
        if on_monitoring is not None:
            on_monitoring(stack)
    injector = FaultInjector(plan).arm(sim.frontend, sim.nodes)
    campaign = ReinstallCampaign(sim.frontend, policy or EscalationPolicy())
    report = sim.env.run(until=campaign.run(sim.nodes))
    return ChaosResult(
        plan=plan,
        n_nodes=n_nodes,
        report=report,
        injector=injector,
        resilience=hardening,
        monitoring=stack,
    )
