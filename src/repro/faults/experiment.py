"""End-to-end chaos experiment: the Table I campaign under a fault plan.

This is the shared driver behind ``python -m repro chaos`` and
``benchmarks/bench_chaos_reinstall.py``: stand up a cluster, integrate
its nodes cleanly, then arm a fault plan and run a self-healing
:class:`~repro.core.tools.campaign.ReinstallCampaign` over every node.
The result pairs the campaign's graceful-degradation report with the
injector's log, so a run answers both "what did we do to the cluster?"
and "how well did it cope?".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.tools import CampaignReport, EscalationPolicy, ReinstallCampaign
from ..quickbuild import build_cluster
from .injector import FaultInjector
from .plan import FaultPlan, named_plan

__all__ = ["ChaosResult", "campaign_size", "chaos_reinstall", "select_machines"]


@dataclass
class ChaosResult:
    """One chaos campaign: what was injected and how the cluster coped."""

    plan: FaultPlan
    n_nodes: int
    report: CampaignReport
    injector: FaultInjector
    #: FrontendResilience handle when the run was hardened, else None.
    resilience: Optional[object] = None
    #: MonitoringStack handle when the run was observed, else None.
    monitoring: Optional[object] = None

    @property
    def minutes(self) -> float:
        return self.report.minutes

    @property
    def completion_rate(self) -> float:
        return self.report.completion_rate

    def render(self) -> str:
        parts = [self.injector.render_log(), "", self.report.render()]
        if self.resilience is not None:
            parts += ["", self.resilience.render()]
        if self.monitoring is not None:
            parts += ["", self.monitoring.render_top()]
        return "\n".join(parts)


def select_machines(sim, targets: str) -> list:
    """Resolve a nodeset expression against a built cluster's machines.

    Accepts the assigned hostnames (``compute-0-[0-15]``), the
    positional aliases ``node<i>`` (the i-th integrated node — the same
    indexing the fault-plan ``node:<i>`` selector uses), and database
    groups (``@compute``, ``@cabinet0``) via
    :func:`~repro.core.tools.cluster_fork.frontend_groups`.
    """
    from ..core.tools import frontend_groups
    from ..exec import NodeSet

    by_name = {m.hostid: m for m in sim.nodes}
    selected = []
    expr = NodeSet(targets, resolver=frontend_groups(sim.frontend))
    for name in expr:
        machine = by_name.get(name)
        if machine is None and name.startswith("node") and name[4:].isdigit():
            index = int(name[4:])
            if index < len(sim.nodes):
                machine = sim.nodes[index]
        if machine is None:
            raise ValueError(
                f"target {name!r} does not match an integrated node "
                f"(cluster has {len(sim.nodes)})"
            )
        if machine not in selected:
            selected.append(machine)
    return selected


def campaign_size(targets: str) -> int:
    """Smallest cluster (node count) covering a pre-build nodeset.

    Only positional ``node<i>`` aliases and ``compute-<rack>-<rank>``
    names can size a cluster that does not exist yet; groups resolve
    against the database, which needs the cluster built first.
    """
    from ..exec import NodeSet

    highest = -1
    for name in NodeSet(targets):
        if name.startswith("node") and name[4:].isdigit():
            index = int(name[4:])
        elif name.startswith("compute-"):
            try:
                rack, rank = (int(p) for p in name[len("compute-"):].split("-"))
            except ValueError:
                raise ValueError(f"cannot size a cluster for {name!r}") from None
            index = rack * 32 + rank
        else:
            raise ValueError(f"cannot size a cluster for {name!r}")
        highest = max(highest, index)
    if highest < 0:
        raise ValueError(f"empty target set {targets!r}")
    return highest + 1


def chaos_reinstall(
    n_nodes: int = 32,
    plan: "FaultPlan | str" = "default",
    seed: Optional[int] = None,
    policy: Optional[EscalationPolicy] = None,
    resilience=None,
    monitoring=None,
    on_monitoring=None,
    targets: Optional[str] = None,
    **build_kwargs,
) -> ChaosResult:
    """Reinstall ``n_nodes`` concurrently while the plan's faults fire.

    Fault ``at`` offsets are relative to campaign start (the cluster is
    integrated cleanly first).  ``plan`` may be a :class:`FaultPlan` or
    a name from :data:`repro.faults.plan.PLANS`; ``seed`` re-seeds it.
    ``resilience`` hardens the frontend before the faults arm: pass
    ``True`` for the default :class:`~repro.resilience.ResilienceOptions`
    or an options instance for custom knobs (required for plans that
    inject a ``FrontendCrash`` — an unhardened frontend stays down).
    ``monitoring`` deploys the gmond/gmetad stack the same way: ``True``
    for default :class:`~repro.monitoring.MonitoringOptions`, or an
    options instance.  ``on_monitoring`` is called with the
    :class:`~repro.monitoring.MonitoringStack` before the campaign runs
    (the hook the CLI uses to start a live ``--watch`` dashboard).
    ``targets`` restricts the campaign to a nodeset expression (see
    :func:`select_machines`); faults and monitoring still cover the
    whole cluster, exactly like shooting a subset of a real machine
    room.  When ``targets`` needs more nodes than ``n_nodes``, the
    cluster grows to fit (:func:`campaign_size`).
    """
    if isinstance(plan, str):
        plan = named_plan(plan, seed)
    elif seed is not None:
        plan = plan.with_seed(seed)
    if targets is not None:
        n_nodes = max(n_nodes, campaign_size(targets))
    sim = build_cluster(n_compute=n_nodes, **build_kwargs)
    sim.integrate_all()
    hardening = None
    if resilience:
        from ..resilience import ResilienceOptions, harden_frontend

        options = (
            resilience
            if isinstance(resilience, ResilienceOptions)
            else ResilienceOptions()
        )
        hardening = harden_frontend(sim.frontend, options)
    stack = None
    if monitoring:
        from ..monitoring import MonitoringOptions, enable_cluster_monitoring

        mon_options = (
            monitoring
            if isinstance(monitoring, MonitoringOptions)
            else MonitoringOptions()
        )
        stack = enable_cluster_monitoring(sim.frontend, sim.nodes, mon_options)
        if on_monitoring is not None:
            on_monitoring(stack)
    injector = FaultInjector(plan).arm(sim.frontend, sim.nodes)
    victims = sim.nodes if targets is None else select_machines(sim, targets)
    campaign = ReinstallCampaign(sim.frontend, policy or EscalationPolicy())
    report = sim.env.run(until=campaign.run(victims))
    return ChaosResult(
        plan=plan,
        n_nodes=len(victims),
        report=report,
        injector=injector,
        resilience=hardening,
        monitoring=stack,
    )
