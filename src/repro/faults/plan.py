"""Declarative, seeded fault plans.

A :class:`FaultPlan` is a schedule of fault entries — each a frozen
dataclass naming *what* breaks, *when* (seconds after the plan is
armed), and *for how long*.  Plans are data, not behavior: the
:class:`~repro.faults.injector.FaultInjector` turns them into armed
environment processes and records everything it does in an injection
log.  Because the DES is deterministic and all randomness (which node
hangs, which payload corrupts) flows from the plan's seed, the same
seed always produces the identical injection log and campaign outcome.

The fault vocabulary follows what large-cluster operations reports
(CERN, BNL) say actually dominates at 1000+ nodes: partial failure
during mass (re)installation — install-server crashes, flapping or
degraded links, nodes hanging or dying mid-install, DHCP blackouts,
and corrupted package payloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = [
    "Fault",
    "ServiceOutage",
    "ServerCrash",
    "DhcpBlackout",
    "NfsOutage",
    "FrontendCrash",
    "ServiceFlap",
    "LinkDegrade",
    "LinkFlap",
    "NodeHang",
    "NodeCrash",
    "SitePowerFailure",
    "PowerRestore",
    "PackageCorruption",
    "FaultPlan",
    "PLANS",
    "named_plan",
]

#: Host selector understood by the injector: the frontend, a campaign
#: target by index ("node:3"), or an explicit MAC/hostname.
FRONTEND = "frontend"


@dataclass(frozen=True)
class Fault:
    """Base entry: something breaks ``at`` seconds after arming."""

    at: float = 0.0

    def describe(self) -> str:
        return f"{type(self).__name__}@{self.at:g}s"


@dataclass(frozen=True)
class ServiceOutage(Fault):
    """A frontend service dies; repaired after ``duration`` (0 = never)."""

    service: str = "install"  # "install" | "dhcp" | "nfs"
    duration: float = 60.0


@dataclass(frozen=True)
class ServerCrash(ServiceOutage):
    """The HTTP install server crashes (and restarts after ``duration``)."""

    service: str = "install"


@dataclass(frozen=True)
class DhcpBlackout(ServiceOutage):
    """dhcpd stops answering DISCOVER; clients see a non-answer, not an error."""

    service: str = "dhcp"


@dataclass(frozen=True)
class NfsOutage(ServiceOutage):
    """The §4 common-mode failure: every mounted client stalls at once."""

    service: str = "nfs"


@dataclass(frozen=True)
class FrontendCrash(Fault):
    """The frontend box dies: dhcpd/httpd/nfs fault together and (by
    default) the live cluster database is wiped.

    There is deliberately no auto-repair half: bringing the services
    back is the :class:`~repro.resilience.ServiceSupervisor`'s job, and
    the database only comes back if a journal was attached — this fault
    is what the crash-recovery acceptance test injects.
    """

    lose_database: bool = True


@dataclass(frozen=True)
class ServiceFlap(Fault):
    """A frontend service dies repeatedly: ``times`` failures, ``period``
    seconds apart — the pathological case a supervisor's backoff and
    restart budget exist for."""

    service: str = "install"  # "install" | "dhcp" | "nfs"
    times: int = 3
    period: float = 60.0


@dataclass(frozen=True)
class LinkDegrade(Fault):
    """A NIC drops to ``factor`` of its capacity for ``duration`` seconds."""

    host: str = FRONTEND
    factor: float = 0.1
    duration: float = 120.0


@dataclass(frozen=True)
class LinkFlap(Fault):
    """A link bounces: ``flaps`` cycles of down/up, aborting flows each time."""

    host: str = FRONTEND
    flaps: int = 3
    down_seconds: float = 5.0
    up_seconds: float = 15.0


@dataclass(frozen=True)
class NodeHang(Fault):
    """``count`` nodes freeze mid-whatever (kernel panic, §4's dark node).

    ``node`` pins a specific campaign-target index; ``None`` lets the
    plan's seeded RNG choose victims.
    """

    count: int = 1
    node: Optional[int] = None


@dataclass(frozen=True)
class NodeCrash(Fault):
    """``count`` nodes lose power outright (and stay down until cycled)."""

    count: int = 1
    node: Optional[int] = None


@dataclass(frozen=True)
class SitePowerFailure(Fault):
    """Every PDU in the machine room drops at once: the whole-site power
    event the CERN and LCG-1 operations reports open with.

    All compute nodes lose power hard (forcing a reinstall on restore);
    the frontend is assumed to ride through on its UPS — it hosts the
    services recovery depends on, and the paper's frontend is exactly
    the box a site protects first.
    """


@dataclass(frozen=True)
class PowerRestore(Fault):
    """Utility power returns and every PDU re-energizes simultaneously.

    Every node that a :class:`SitePowerFailure` (or anything else) left
    dark powers on in the same instant — the thundering herd of DHCP
    discovers and kickstart/package fetches the storm driver exists to
    study.
    """


@dataclass(frozen=True)
class PackageCorruption(Fault):
    """Each fetched RPM payload is corrupted with probability ``rate``.

    Active from ``at`` for ``duration`` seconds (``None`` = until the
    simulation ends).  Corruption is detected by the installer's
    checksum verification and re-fetched.
    """

    rate: float = 0.05
    duration: Optional[float] = None


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded schedule of faults."""

    name: str
    faults: tuple[Fault, ...] = ()
    seed: int = 0

    def describe(self) -> str:
        inner = ", ".join(f.describe() for f in self.faults) or "no faults"
        return f"{self.name} (seed={self.seed}): {inner}"

    def with_seed(self, seed: int) -> "FaultPlan":
        return FaultPlan(self.name, self.faults, seed)


def _default_plan() -> FaultPlan:
    """The acceptance scenario: crash + corruption + hangs, all at once."""
    return FaultPlan(
        "default",
        (
            ServerCrash(at=120.0, duration=45.0),
            PackageCorruption(at=0.0, rate=0.05),
            NodeHang(at=300.0, count=2),
        ),
    )


#: Named plans the CLI and benchmarks accept.
PLANS: dict[str, FaultPlan] = {
    "none": FaultPlan("none", ()),
    "default": _default_plan(),
    "flaky-network": FaultPlan(
        "flaky-network",
        (
            LinkFlap(at=90.0, flaps=4, down_seconds=8.0, up_seconds=30.0),
            LinkDegrade(at=400.0, factor=0.25, duration=180.0),
        ),
    ),
    "dhcp-blackout": FaultPlan(
        "dhcp-blackout",
        (DhcpBlackout(at=30.0, duration=240.0),),
    ),
    "frontend-crash": FaultPlan(
        "frontend-crash",
        (FrontendCrash(at=240.0),),
    ),
    "frontend-storm": FaultPlan(
        "frontend-storm",
        (
            FrontendCrash(at=240.0),
            LinkFlap(at=420.0, flaps=3, down_seconds=5.0, up_seconds=20.0),
            NodeHang(at=300.0, count=1),
        ),
    ),
    "install-storm": FaultPlan(
        "install-storm",
        (
            ServerCrash(at=120.0, duration=45.0),
            ServerCrash(at=600.0, duration=30.0),
            PackageCorruption(at=0.0, rate=0.08),
            LinkFlap(at=200.0, flaps=3),
            NodeHang(at=300.0, count=2),
            NodeCrash(at=450.0, count=1),
        ),
    ),
    # The whole-site power event: lights out at t=60, utility power back
    # five minutes later, every node rebooting into a reinstall at once.
    "power-restore": FaultPlan(
        "power-restore",
        (
            SitePowerFailure(at=60.0),
            PowerRestore(at=360.0),
        ),
    ),
    # A monitoring shakedown: every alert family has a trigger — the
    # crash flips svc.install (service-down), the hangs go dark
    # (node-down), the degraded uplink stretches transfers while the
    # mass install pegs it (link-saturated), and corruption keeps the
    # retry machinery warm.
    "chaos": FaultPlan(
        "chaos",
        (
            ServerCrash(at=120.0, duration=45.0),
            PackageCorruption(at=0.0, rate=0.05),
            NodeHang(at=300.0, count=2),
            LinkDegrade(at=400.0, factor=0.25, duration=180.0),
        ),
    ),
}


def named_plan(name: str, seed: Optional[int] = None) -> FaultPlan:
    """Look up a plan by name, optionally re-seeding it."""
    try:
        plan = PLANS[name]
    except KeyError:
        raise KeyError(
            f"no fault plan named {name!r}; have {sorted(PLANS)}"
        ) from None
    return plan if seed is None else plan.with_seed(seed)
