"""Frontend resilience layer: supervision, admission control, recovery.

The missing half of the PR 1 robustness story: that PR made *node*
installs self-healing; this package makes the *frontend* itself
survivable.  Three cooperating mechanisms:

* :class:`ServiceSupervisor` — probes dhcpd/httpd/nfs and restarts dead
  ones with exponential backoff, a bounded budget, and a typed
  degraded-mode escalation;
* HTTP **admission control** (:class:`~repro.netsim.AdmissionConfig`) on
  the install server, with a client-side :class:`CircuitBreaker` so
  installers back off a saturated or dead backend;
* a **write-ahead journal** (:class:`~repro.core.database.
  DatabaseJournal`) whose replay restores the cluster database
  byte-identically after a frontend crash.

``harden_frontend(frontend)`` wires all three onto a stock
:class:`~repro.core.frontend.RocksFrontend`; everything is opt-in and
zero-overhead when unused.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..core.database import DatabaseJournal
from ..netsim import AdmissionConfig
from .autoscaler import Autoscaler, AutoscalerPolicy, ScaleEvent
from .breaker import BreakerState, CircuitBreaker, GuardedSource
from .supervisor import (
    RestartRecord,
    ServiceOutcome,
    ServiceSupervisor,
    SupervisorPolicy,
    SupervisorReport,
    supervise_frontend,
)

__all__ = [
    "AdmissionConfig",
    "Autoscaler",
    "AutoscalerPolicy",
    "BreakerState",
    "CircuitBreaker",
    "DatabaseJournal",
    "FrontendResilience",
    "GuardedSource",
    "ResilienceOptions",
    "RestartRecord",
    "ScaleEvent",
    "ServiceOutcome",
    "ServiceSupervisor",
    "SupervisorPolicy",
    "SupervisorReport",
    "harden_frontend",
    "supervise_frontend",
]


@dataclass(frozen=True)
class ResilienceOptions:
    """Which hardening mechanisms to enable, and their knobs."""

    supervisor: Optional[SupervisorPolicy] = field(
        default_factory=SupervisorPolicy
    )
    journal: bool = True
    #: Admission-control policy for the install httpd; None leaves the
    #: server unbounded (the stock behavior).
    admission: Optional[AdmissionConfig] = None
    breaker: bool = True
    breaker_threshold: int = 4
    breaker_reset: float = 20.0


class FrontendResilience:
    """Handle on the hardening applied to one frontend."""

    def __init__(
        self,
        frontend: Any,
        options: ResilienceOptions,
        supervisor: Optional[ServiceSupervisor],
        journal: Optional[DatabaseJournal],
        guarded_source: Optional[GuardedSource],
    ):
        self.frontend = frontend
        self.options = options
        self.supervisor = supervisor
        self.journal = journal
        self.guarded_source = guarded_source

    def supervisor_report(self) -> Optional[SupervisorReport]:
        return self.supervisor.report() if self.supervisor is not None else None

    def verify_recovery(self) -> bool:
        """Did every crash recovery complete (DB restored, not degraded)?"""
        if self.frontend.db_lost:
            return False
        report = self.supervisor_report()
        if report is not None and report.degraded:
            return False
        return True

    def render(self) -> str:
        lines = []
        if self.journal is not None:
            lines.append(
                f"journal: {len(self.journal)} records, "
                f"{self.journal.replays} replay(s)"
            )
        if self.supervisor is not None:
            lines.append(self.supervisor.report().render())
        if self.guarded_source is not None:
            for host, br in sorted(self.guarded_source.breakers().items()):
                lines.append(
                    f"breaker {host}: {br.state.value}, "
                    f"{br.fast_fails} fast-fails"
                )
        return "\n".join(lines) if lines else "resilience: nothing enabled"


def harden_frontend(
    frontend, options: Optional[ResilienceOptions] = None
) -> FrontendResilience:
    """Apply the resilience layer to a :class:`RocksFrontend`."""
    options = options or ResilienceOptions()
    journal = frontend.enable_journal() if options.journal else None
    if options.admission is not None:
        frontend.install_server.http.configure_admission(options.admission)
    guarded = None
    if options.breaker:
        guarded = GuardedSource(
            frontend.env,
            frontend.installer.source,
            failure_threshold=options.breaker_threshold,
            reset_timeout=options.breaker_reset,
        )
        frontend.installer.source = guarded
    supervisor = None
    if options.supervisor is not None:
        supervisor = supervise_frontend(frontend, policy=options.supervisor)
    return FrontendResilience(frontend, options, supervisor, journal, guarded)
