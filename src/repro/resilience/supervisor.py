"""Service supervision for the frontend: probe, restart, escalate.

The frontend is the single point of failure the whole Rocks model leans
on (§3, §6.3): if dhcpd or the install httpd stays dead, every pending
node install stalls forever.  :class:`ServiceSupervisor` is the simulated
equivalent of a process supervisor (daemontools / systemd restart
policy): it probes registered services on a fixed interval and restarts
failed ones with exponential backoff plus deterministic jitter.  Each
service has a bounded *restart budget*; exhausting it escalates to a
typed degraded-mode outcome in the :class:`SupervisorReport` — the same
ladder shape as PR 1's reinstall-campaign escalation, applied to
services instead of nodes.

Supervised objects are duck-typed: anything with ``running``,
``faulted``, ``repair()`` and ``start()`` (i.e. :class:`~repro.services.
base.Faultable` services) qualifies, so the supervisor has no dependency
on the frontend layer.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..netsim import Environment, Interrupt, Process

__all__ = [
    "SupervisorPolicy",
    "ServiceSupervisor",
    "SupervisorReport",
    "ServiceOutcome",
    "RestartRecord",
    "supervise_frontend",
]


@dataclass(frozen=True)
class SupervisorPolicy:
    """Probe/restart knobs; the defaults suit the Table I time scale."""

    probe_interval: float = 15.0
    restart_backoff: float = 5.0
    backoff_factor: float = 2.0
    max_backoff: float = 120.0
    #: Fractional jitter on each backoff: delay *= 1 + jitter*U(0,1).
    #: Drawn from a seeded RNG, so runs stay deterministic.
    jitter: float = 0.25
    restart_budget: int = 5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.probe_interval <= 0:
            raise ValueError("probe_interval must be positive")
        if self.restart_backoff <= 0:
            raise ValueError("restart_backoff must be positive")
        if self.backoff_factor < 1:
            raise ValueError("backoff_factor must be at least 1")
        if self.jitter < 0:
            raise ValueError("jitter must be non-negative")
        if self.restart_budget < 1:
            raise ValueError("restart_budget must be at least 1")


class ServiceOutcome(enum.Enum):
    """Typed per-service verdict in the supervisor report."""

    HEALTHY = "healthy"        # never needed a restart
    RECOVERED = "recovered"    # restarted at least once, healthy now
    DEGRADED = "degraded"      # restart budget exhausted; left for a human


@dataclass(frozen=True)
class RestartRecord:
    """One restart the supervisor performed."""

    t: float
    service: str
    attempt: int
    backoff: float


@dataclass
class SupervisorReport:
    """What the supervisor did over its lifetime."""

    probes: int = 0
    restarts: list[RestartRecord] = field(default_factory=list)
    outcomes: dict[str, ServiceOutcome] = field(default_factory=dict)

    @property
    def degraded(self) -> list[str]:
        return sorted(
            name
            for name, outcome in self.outcomes.items()
            if outcome is ServiceOutcome.DEGRADED
        )

    def render(self) -> str:
        lines = [f"supervisor: {self.probes} probes, {len(self.restarts)} restarts"]
        for name in sorted(self.outcomes):
            lines.append(f"  {name:<16} {self.outcomes[name].value}")
        for rec in self.restarts:
            lines.append(
                f"  t={rec.t:8.1f}s restarted {rec.service} "
                f"(attempt {rec.attempt}, backoff {rec.backoff:.1f}s)"
            )
        return "\n".join(lines)


class _Entry:
    """Supervision state for one registered service."""

    __slots__ = ("name", "service", "on_restart", "failures", "degraded", "pending")

    def __init__(self, name: str, service: Any, on_restart):
        self.name = name
        self.service = service
        self.on_restart = on_restart
        self.failures = 0      # consecutive failed probes answered by restarts
        self.degraded = False  # budget exhausted; hands off
        self.pending = False   # a restart process is in flight


class ServiceSupervisor:
    """Probes registered services and restarts the dead ones."""

    def __init__(self, env: Environment, policy: Optional[SupervisorPolicy] = None):
        self.env = env
        self.policy = policy or SupervisorPolicy()
        self._entries: dict[str, _Entry] = {}
        self._rng = random.Random(self.policy.seed)
        self._loop: Optional[Process] = None
        self._report = SupervisorReport()

    @property
    def running(self) -> bool:
        return self._loop is not None and self._loop.is_alive

    def register(
        self,
        name: str,
        service: Any,
        on_restart: Optional[Callable[[Any], None]] = None,
    ) -> None:
        """Watch ``service``; ``on_restart`` runs before each revival.

        The hook is where recovery work that must precede the daemon
        coming back lives — e.g. replaying the database journal so dhcpd
        restarts with correct bindings.
        """
        if name in self._entries:
            raise ValueError(f"service {name!r} already supervised")
        self._entries[name] = _Entry(name, service, on_restart)

    def start(self) -> None:
        if self.running:
            return
        self._loop = self.env.process(self._probe_loop(), name="supervisor")

    def stop(self) -> None:
        if self.running:
            self._loop.interrupt("supervisor stopped")
        self._loop = None

    # -- probe loop --------------------------------------------------------
    def _probe_loop(self):
        tracer = self.env.tracer
        try:
            while True:
                yield self.env.timeout(self.policy.probe_interval)
                self._report.probes += 1
                if tracer.enabled:
                    tracer.metrics.inc("supervisor.probes")
                for entry in self._entries.values():
                    self._probe(entry)
        except Interrupt:
            return

    def _probe(self, entry: _Entry) -> None:
        if entry.service.running:
            entry.failures = 0
            return
        if entry.degraded or entry.pending:
            return
        if entry.failures >= self.policy.restart_budget:
            entry.degraded = True
            tracer = self.env.tracer
            if tracer.enabled:
                tracer.event(
                    "supervisor-degraded",
                    entry.name,
                    restarts=entry.failures,
                )
            return
        entry.pending = True
        self.env.process(
            self._restart(entry), name=f"supervisor-restart {entry.name}"
        )

    def _restart(self, entry: _Entry):
        pol = self.policy
        tracer = self.env.tracer
        backoff = min(
            pol.restart_backoff * pol.backoff_factor**entry.failures,
            pol.max_backoff,
        )
        backoff *= 1.0 + pol.jitter * self._rng.random()
        # The restart is a span (not an event) so the service lifecycle
        # events it causes — repair/start below — parent on it, and a
        # critical-path walk sees the backoff as supervisor-owned time.
        span = (
            tracer.span("supervisor-restart", entry.name, backoff=backoff)
            if tracer.enabled
            else None
        )
        try:
            yield self.env.timeout(backoff)
        except Interrupt:
            entry.pending = False
            if span is not None:
                span.end(outcome="interrupted")
            return
        entry.pending = False
        service = entry.service
        if service.running:
            if span is not None:
                span.end(outcome="healed")
            return  # healed while we backed off (e.g. a timed fault expired)
        entry.failures += 1
        attempt = entry.failures
        # Synchronous region: ambient context is safe (no yields), and it
        # makes the service's own fail/repair/start events children of
        # this restart without the service layer knowing about us.
        with tracer.context(span):
            if entry.on_restart is not None:
                entry.on_restart(service)
            if service.faulted:
                service.repair()
            else:
                service.start()
        record = RestartRecord(self.env.now, entry.name, attempt, backoff)
        self._report.restarts.append(record)
        if span is not None:
            span.end(outcome="restarted", attempt=attempt)
            tracer.metrics.inc("supervisor.restarts")
            tracer.metrics.inc(f"supervisor.restarts/{entry.name}")

    # -- reporting ---------------------------------------------------------
    def report(self) -> SupervisorReport:
        for name, entry in self._entries.items():
            if entry.degraded:
                outcome = ServiceOutcome.DEGRADED
            elif any(r.service == name for r in self._report.restarts):
                outcome = ServiceOutcome.RECOVERED
            else:
                outcome = ServiceOutcome.HEALTHY
            self._report.outcomes[name] = outcome
        return self._report


def supervise_frontend(frontend, policy=None, monitor=None) -> ServiceSupervisor:
    """Wire a supervisor over a frontend's critical services.

    Registers dhcpd, the install httpd and nfsd (plus an optional
    cluster monitor) with a shared pre-restart hook: if the frontend's
    database was lost in a crash and a journal is attached, the first
    service revival replays it — so dhcpd comes back with correct
    bindings instead of an empty host table.
    """

    def recover_first(_service) -> None:
        if frontend.db_lost and frontend.journal is not None:
            frontend.recover_database()

    supervisor = ServiceSupervisor(frontend.env, policy)
    supervisor.register("dhcpd", frontend.dhcp, on_restart=recover_first)
    supervisor.register("httpd", frontend.install_server, on_restart=recover_first)
    supervisor.register("nfs", frontend.nfs, on_restart=recover_first)
    if monitor is not None:
        supervisor.register("cluster-monitor", monitor, on_restart=recover_first)
    supervisor.start()
    return supervisor
