"""Client-side circuit breaker for the installer's HTTP source.

A node retrying against a dead or saturated install server burns its
bounded download attempts on requests that cannot succeed.  The breaker
is the classic three-state machine, kept per backend server:

* **closed** — requests flow; consecutive transport failures count up;
* **open** — after ``failure_threshold`` consecutive failures requests
  fast-fail locally (a synthetic 503 with a Retry-After hint) without
  touching the network, until ``reset_timeout`` elapses;
* **half-open** — one trial request is let through; success closes the
  breaker, failure re-opens it.

A 503's own Retry-After hint stretches the open interval: the server
knows better than our static timeout when it will have capacity.

:class:`GuardedSource` wraps anything satisfying the installer's
``InstallSource`` protocol (an :class:`~repro.services.httpd.
InstallServer` or a :class:`~repro.netsim.LoadBalancer` of replicas) and
maintains one breaker per backend, keyed by server host name.
"""

from __future__ import annotations

import enum
from typing import Any, Optional

from ..netsim import Environment, HttpError, Interrupt, Process, TransferAborted
from ..netsim.topology import HostDown

__all__ = ["BreakerState", "CircuitBreaker", "GuardedSource"]


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class CircuitBreaker:
    """Per-server failure accounting and the three-state machine."""

    def __init__(
        self,
        env: Environment,
        server: str,
        failure_threshold: int = 4,
        reset_timeout: float = 30.0,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if reset_timeout <= 0:
            raise ValueError("reset_timeout must be positive")
        self.env = env
        self.server = server
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.state = BreakerState.CLOSED
        self.failures = 0          # consecutive failures while closed
        self.fast_fails = 0        # requests refused locally while open
        self._open_until = 0.0
        self._trial_pending = False

    def allow(self) -> bool:
        """May a request be dispatched to this server right now?"""
        if self.state is BreakerState.OPEN:
            if self.env.now >= self._open_until:
                self._transition(BreakerState.HALF_OPEN)
                self._trial_pending = False
            else:
                self.fast_fails += 1
                return False
        if self.state is BreakerState.HALF_OPEN:
            if self._trial_pending:
                self.fast_fails += 1
                return False
            self._trial_pending = True
        return True

    def retry_after(self) -> float:
        """Seconds until the next trial will be allowed."""
        return max(self._open_until - self.env.now, 0.0)

    def record_success(self) -> None:
        self.failures = 0
        self._trial_pending = False
        if self.state is not BreakerState.CLOSED:
            self._transition(BreakerState.CLOSED)

    def record_failure(self, retry_after: Optional[float] = None) -> None:
        self._trial_pending = False
        if self.state is BreakerState.HALF_OPEN:
            self._open(retry_after)
            return
        self.failures += 1
        if self.failures >= self.failure_threshold:
            self._open(retry_after)

    def _open(self, retry_after: Optional[float]) -> None:
        hold = max(self.reset_timeout, retry_after or 0.0)
        self._open_until = self.env.now + hold
        self.failures = 0
        if self.state is not BreakerState.OPEN:
            self._transition(BreakerState.OPEN)

    def _transition(self, state: BreakerState) -> None:
        old, self.state = self.state, state
        tracer = self.env.tracer
        if tracer.enabled:
            tracer.event(
                "breaker",
                self.server,
                from_state=old.value,
                to_state=state.value,
            )
            tracer.metrics.inc(f"breaker.transitions/{self.server}")


class GuardedSource:
    """InstallSource wrapper that feeds outcomes into per-server breakers.

    Single-server sources get a pre-dispatch check: with the breaker
    open, requests fast-fail with a synthetic 503 before any simulated
    network traffic.  Load-balanced sources instead get the balancer's
    ``should_avoid`` hook installed, so the failover loop routes around
    open backends, and per-request outcomes are attributed to whichever
    backend actually answered (``response.server`` / ``error.server``).
    """

    def __init__(
        self,
        env: Environment,
        source: Any,
        failure_threshold: int = 4,
        reset_timeout: float = 30.0,
    ):
        self.env = env
        self.source = source
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self._breakers: dict[str, CircuitBreaker] = {}
        self._host = getattr(source, "host", None)
        balancer = getattr(source, "should_avoid", "missing")
        if balancer != "missing" and self._host is None:
            source.should_avoid = (
                lambda server: not self.breaker(server.host).allow()
            )

    def breaker(self, server: str) -> CircuitBreaker:
        br = self._breakers.get(server)
        if br is None:
            br = CircuitBreaker(
                self.env,
                server,
                failure_threshold=self.failure_threshold,
                reset_timeout=self.reset_timeout,
            )
            self._breakers[server] = br
        return br

    def breakers(self) -> dict[str, CircuitBreaker]:
        return dict(self._breakers)

    # -- InstallSource protocol -------------------------------------------
    def fetch_kickstart(self, client: str, parent=None) -> Process:
        # Trace context is forwarded only when present, so duck-typed
        # sources without a ``parent`` kwarg keep working untraced.
        if parent is None:
            make = lambda: self.source.fetch_kickstart(client)
        else:
            make = lambda: self.source.fetch_kickstart(client, parent=parent)
        return self.env.process(
            self._guard(make),
            name=f"guarded kickstart {client}",
        )

    def fetch_package(self, client, dist_name, pkg, max_rate=None,
                      parent=None) -> Process:
        if parent is None:
            make = lambda: self.source.fetch_package(
                client, dist_name, pkg, max_rate=max_rate
            )
        else:
            make = lambda: self.source.fetch_package(
                client, dist_name, pkg, max_rate=max_rate, parent=parent
            )
        return self.env.process(
            self._guard(make),
            name=f"guarded GET {pkg.filename} {client}",
        )

    def _guard(self, make_request):
        if self._host is not None:
            br = self.breaker(self._host)
            if not br.allow():
                raise HttpError(
                    503,
                    f"circuit open for {self._host}",
                    retry_after=br.retry_after(),
                    server=self._host,
                )
        request = make_request()
        try:
            response = yield request
        except Interrupt:
            if request.is_alive:
                request.interrupt("request aborted")
            raise
        except HttpError as err:
            server = err.server or self._host
            if server:
                if err.status >= 500:
                    self.breaker(server).record_failure(err.retry_after)
                else:
                    # A 4xx proves the server is alive and answering.
                    self.breaker(server).record_success()
            raise
        except (TransferAborted, HostDown) as err:
            if self._host:
                self.breaker(self._host).record_failure()
            raise
        server = getattr(response, "server", "") or self._host
        if server:
            self.breaker(server).record_success()
        return response
