"""Gauge-driven autoscaling of install-server replicas.

The storm problem: after a whole-site power restore every node pulls
its distribution at once, and a single frontend httpd either sheds most
of the herd or serializes it into hours.  The paper's §6.3 answer is
replication; this module closes the loop by *deciding* when to
replicate, from the same Ganglia-style gauges an operator would watch:

* ``http.in_flight`` / ``http.queue_depth`` — admission pressure;
* ``http.rejected`` (rate of change) — active shedding;
* ``net.tx_util`` — frontend NIC saturation.

The control law is deliberately boring and deterministic: scale *up*
one replica when any pressure signal crosses its high-water mark, scale
*down* (drain) one replica only after ``hold_ticks`` consecutive calm
ticks, and after every action hold a seeded cooldown so decisions
cannot oscillate with the sampling phase.  All randomness flows from
``AutoscalerPolicy.seed``, so the same run always produces the same
:class:`ScaleEvent` trajectory.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional

from ..netsim import Interrupt

__all__ = ["AutoscalerPolicy", "Autoscaler", "ScaleEvent"]


@dataclass(frozen=True)
class AutoscalerPolicy:
    """The control-law knobs, validated at construction."""

    #: seconds between gauge evaluations
    interval: float = 30.0
    #: queue depth at/above which a tick counts as pressure
    queue_high: float = 8.0
    #: in-flight as a fraction of max_concurrent counting as pressure
    inflight_high_frac: float = 0.9
    #: frontend NIC tx utilization counting as pressure
    util_high: float = 0.9
    #: any shed (rejected delta) this large in one tick is pressure
    shed_high: float = 1.0
    #: calm = every pressure signal below this fraction of its high mark
    low_frac: float = 0.3
    #: consecutive calm ticks required before draining one replica
    hold_ticks: int = 3
    #: seconds of enforced inaction after any scale action
    cooldown: float = 120.0
    #: cooldown is stretched by up to this fraction, seeded
    cooldown_jitter: float = 0.25
    min_replicas: int = 0
    max_replicas: int = 8
    seed: int = 0

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ValueError("interval must be positive")
        if not 0 < self.inflight_high_frac <= 1:
            raise ValueError("inflight_high_frac must be in (0, 1]")
        if not 0 < self.util_high <= 1:
            raise ValueError("util_high must be in (0, 1]")
        if not 0 <= self.low_frac < 1:
            raise ValueError("low_frac must be in [0, 1)")
        if self.hold_ticks < 1:
            raise ValueError("hold_ticks must be at least 1")
        if self.cooldown < 0 or self.cooldown_jitter < 0:
            raise ValueError("cooldown knobs must be non-negative")
        if not 0 <= self.min_replicas <= self.max_replicas:
            raise ValueError("need 0 <= min_replicas <= max_replicas")


@dataclass(frozen=True)
class ScaleEvent:
    """One autoscaler decision, timestamped for the trajectory report."""

    t: float
    action: str      # "scale-up" | "scale-down"
    replicas: int    # replica count after the action
    reason: str

    def __str__(self) -> str:
        return f"[{self.t:9.1f}s] {self.action:<10} -> {self.replicas} ({self.reason})"


class Autoscaler:
    """Watches aggregator gauges; adds/drains install-server replicas.

    ``gauges`` is any callable returning the current frontend metric
    dict (name -> float); :meth:`from_monitoring` builds one from a
    :class:`~repro.monitoring.MetricAggregator`, which is the production
    wiring — the autoscaler sees exactly what the monitoring stack
    published, delays and all, not the simulation's ground truth.
    """

    def __init__(
        self,
        env,
        replica_set,
        gauges: Callable[[], dict],
        policy: Optional[AutoscalerPolicy] = None,
    ):
        self.env = env
        self.replica_set = replica_set
        self.gauges = gauges
        self.policy = policy or AutoscalerPolicy()
        self.events: list[ScaleEvent] = []
        self._rng = random.Random(("autoscaler", self.policy.seed).__repr__())
        self._last_rejected = 0.0
        self._calm_ticks = 0
        self._cooldown_until = 0.0
        self._proc = env.process(self._run(), name="autoscaler")

    # -- wiring ------------------------------------------------------------
    @classmethod
    def from_monitoring(
        cls,
        env,
        replica_set,
        aggregator,
        frontend_host: str,
        policy: Optional[AutoscalerPolicy] = None,
    ) -> "Autoscaler":
        """Drive the scaler from the monitoring aggregator's last packet."""

        def gauges() -> dict:
            packet = aggregator.last_packet(frontend_host)
            if packet is None:
                return {}
            return {name: value for name, value in packet.metrics}

        return cls(env, replica_set, gauges, policy=policy)

    @property
    def n_replicas(self) -> int:
        return self.replica_set.n_replicas

    def stop(self) -> None:
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("autoscaler stopped")
        self._proc = None

    # -- the control loop --------------------------------------------------
    def _run(self):
        pol = self.policy
        try:
            while True:
                yield self.env.timeout(pol.interval)
                self.replica_set.reap_drained()
                self._tick(self.gauges() or {})
        except Interrupt:
            pass  # stop() retires the loop

    def _tick(self, metrics: dict) -> None:
        pol = self.policy
        rejected = metrics.get("http.rejected", self._last_rejected)
        shed_delta = max(rejected - self._last_rejected, 0.0)
        self._last_rejected = rejected
        queue = metrics.get("http.queue_depth", 0.0)
        in_flight = metrics.get("http.in_flight", 0.0)
        util = metrics.get("net.tx_util", 0.0)
        inflight_high = self._inflight_high()

        reasons = []
        if queue >= pol.queue_high:
            reasons.append(f"queue_depth={queue:g}")
        if inflight_high is not None and in_flight >= inflight_high:
            reasons.append(f"in_flight={in_flight:g}")
        if util >= pol.util_high:
            reasons.append(f"tx_util={util:.2f}")
        if shed_delta >= pol.shed_high:
            reasons.append(f"shed={shed_delta:g}")

        calm = (
            queue <= pol.low_frac * pol.queue_high
            and (inflight_high is None or in_flight <= pol.low_frac * inflight_high)
            and util <= pol.low_frac * pol.util_high
            and shed_delta == 0.0
        )
        self._calm_ticks = self._calm_ticks + 1 if calm else 0

        if self.env.now < self._cooldown_until:
            return
        if reasons and self.n_replicas < pol.max_replicas:
            self._action(
                "scale-up", ", ".join(reasons), self.replica_set.add_replica
            )
        elif (
            not reasons
            and self._calm_ticks >= pol.hold_ticks
            and self.n_replicas > pol.min_replicas
        ):
            self._action(
                "scale-down",
                f"calm for {self._calm_ticks} ticks",
                self.replica_set.drain_replica,
            )
            self._calm_ticks = 0

    def _inflight_high(self) -> Optional[float]:
        """Pressure threshold for in-flight, from the admission config."""
        admission = self.replica_set.primary.http.admission
        if admission is None:
            return None
        return self.policy.inflight_high_frac * admission.max_concurrent

    def _action(self, action: str, reason: str, mutate) -> None:
        """Apply one scaling action and record it as an ``autoscale`` span.

        A span (not an event) so the ``service`` lifecycle records the
        replica start/drain emits parent here via ambient context — the
        mutation is synchronous, so holding the context is safe.
        """
        pol = self.policy
        tracer = self.env.tracer
        span = (
            tracer.span("autoscale", action, reason=reason)
            if tracer.enabled
            else None
        )
        with tracer.context(span):
            mutate()
        hold = pol.cooldown * (1.0 + pol.cooldown_jitter * self._rng.random())
        self._cooldown_until = self.env.now + hold
        event = ScaleEvent(self.env.now, action, self.n_replicas, reason)
        self.events.append(event)
        if span is not None:
            span.end(replicas=self.n_replicas)
            tracer.metrics.gauge("autoscaler.replicas", self.n_replicas)

    # -- reporting ---------------------------------------------------------
    def render_events(self) -> str:
        header = f"autoscaler: {len(self.events)} action(s)"
        if not self.events:
            return "\n".join([header, "  (no scaling activity)"])
        return "\n".join([header, *(f"  {e}" for e in self.events)])
