"""repro — a reproduction of *NPACI Rocks: Tools and Techniques for
Easily Deploying Manageable Linux Clusters* (Papadopoulos, Katz, Bruno;
CLUSTER 2001) on a simulated cluster substrate.

The package layers, bottom to top:

* :mod:`repro.netsim` — deterministic discrete-event engine + fluid-flow
  network with max-min fair bandwidth sharing;
* :mod:`repro.rpm` — RPM versioning, packages, repositories, depsolving,
  and a synthetic Red Hat tree calibrated to the paper's workload;
* :mod:`repro.cluster` — machines, racks, PDUs, the Ethernet fabric;
* :mod:`repro.services` — syslog, DHCP, the install HTTP server, NIS, NFS;
* :mod:`repro.installer` — the anaconda/Kickstart install state machine;
* :mod:`repro.scheduler` — PBS, Maui, REXEC;
* :mod:`repro.kernel` — module versioning, ``make rpm``, the GM driver;
* :mod:`repro.core` — the paper's contribution: the XML kickstart
  framework, rocks-dist, the cluster database, insert-ethers,
  shoot-node, eKV, cluster-fork/kill, and frontend bring-up;
* :mod:`repro.faults` — seeded fault-injection plans and the chaos
  reinstall experiment (§4's failure model, made executable);
* :mod:`repro.telemetry` — structured tracing + metrics over the
  simulation (install-phase spans, link-utilization timeseries), off
  and zero-overhead by default;
* :mod:`repro.monitoring` — the Ganglia-style stack (§2): gmond metric
  agents on every machine, a gmetad aggregator with staleness
  detection, round-robin time-series storage, declarative alerting,
  and the cluster-top dashboard — opt-in and purely observational;
* :mod:`repro.analysis` — typed diagnostics (stable ``RK*`` codes) with
  static analyzers over the XML kickstart infrastructure and a
  self-hosted AST determinism linter over this package, behind
  ``python -m repro lint``.

Quick start::

    from repro import build_cluster

    sim = build_cluster(n_compute=8)
    sim.integrate_all()            # insert-ethers + first installs
    reports = sim.reinstall_all()  # Table I's experiment

See ``examples/quickstart.py`` for the full tour.
"""

from .quickbuild import RocksCluster, build_cluster
from .telemetry import Tracer

__version__ = "1.2.0"

__all__ = ["RocksCluster", "Tracer", "build_cluster", "__version__"]
