"""Per-code suppression baseline.

A baseline records *accepted* findings so the linter can gate on "no
NEW problems" without forcing every historical or intentional finding
to zero first — the workflow every large static-analysis deployment
converges on.  The file format is line-oriented and diff-friendly::

    # comment
    RK203 src/repro/netsim/flows.py  # max-min rounds are order-independent

Each entry is ``CODE PATH  # justification``.  The justification is
mandatory by convention (the linter warns when it is missing): a
suppression nobody can explain is a suppression nobody can ever remove.
Matching is by exact code plus path suffix, never by line number —
baselines must survive unrelated edits to the file.

Baselines rot in the other direction too: once the underlying finding
is fixed, its entry keeps silently suppressing nothing — and would hide
a future regression at the same (code, path).  :meth:`Baseline.stale`
names those dead entries after an :meth:`~Baseline.apply`, scoped to
the codes the run could actually have emitted so a config-only run
never condemns self-lint entries; ``repro lint --prune-baseline``
rewrites the file without them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from .diagnostics import Diagnostic

__all__ = ["BaselineEntry", "Baseline"]


@dataclass(frozen=True)
class BaselineEntry:
    """One accepted (code, path) pair with its one-line justification."""

    code: str
    path: str
    justification: str = ""

    def matches(self, diag: Diagnostic) -> bool:
        if diag.code != self.code:
            return False
        file = diag.location.file
        return file == self.path or file.endswith("/" + self.path)

    def render(self) -> str:
        line = f"{self.code} {self.path}"
        if self.justification:
            line += f"  # {self.justification}"
        return line


class Baseline:
    """A parsed suppression file applied to a diagnostic list."""

    def __init__(self, entries: Iterable[BaselineEntry] = ()):
        self.entries = list(entries)
        #: entries that matched at least one diagnostic in the last apply()
        self.used: list[BaselineEntry] = []

    def __len__(self) -> int:
        return len(self.entries)

    # -- parsing -----------------------------------------------------------
    @classmethod
    def from_text(cls, text: str) -> "Baseline":
        entries = []
        for raw in text.splitlines():
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            body, _, comment = line.partition("#")
            parts = body.split()
            if len(parts) != 2:
                raise ValueError(f"bad baseline line: {raw!r} "
                                 "(want 'CODE PATH  # justification')")
            entries.append(
                BaselineEntry(parts[0], parts[1], comment.strip())
            )
        return cls(entries)

    @classmethod
    def from_file(cls, path) -> "Baseline":
        """Load a baseline; a missing file is an empty baseline."""
        try:
            with open(path, encoding="utf-8") as fh:
                return cls.from_text(fh.read())
        except FileNotFoundError:
            return cls()

    # -- application -------------------------------------------------------
    def entry_for(self, diag: Diagnostic) -> Optional[BaselineEntry]:
        for entry in self.entries:
            if entry.matches(diag):
                return entry
        return None

    def apply(
        self, diagnostics: Iterable[Diagnostic]
    ) -> tuple[list[Diagnostic], list[Diagnostic]]:
        """Split into (kept, suppressed); records which entries fired."""
        kept: list[Diagnostic] = []
        suppressed: list[Diagnostic] = []
        used: dict[BaselineEntry, None] = {}
        for diag in diagnostics:
            entry = self.entry_for(diag)
            if entry is None:
                kept.append(diag)
            else:
                suppressed.append(diag)
                used[entry] = None
        self.used = list(used)
        return kept, suppressed

    def unjustified(self) -> list[BaselineEntry]:
        """Entries missing their mandatory one-line justification."""
        return [e for e in self.entries if not e.justification]

    def stale(self, possible_codes: Iterable[str]) -> list[BaselineEntry]:
        """Entries that suppressed nothing in the last :meth:`apply`.

        Only entries whose code is in ``possible_codes`` — the codes the
        run's selected passes could have emitted — are eligible: an
        entry for a pass family that did not run is unproven, not stale.
        """
        possible = set(possible_codes)
        fired = set(self.used)
        return [
            e for e in self.entries
            if e.code in possible and e not in fired
        ]

    def pruned(self, stale: Iterable[BaselineEntry]) -> "Baseline":
        """A new baseline without the given (stale) entries."""
        drop = set(stale)
        return Baseline(e for e in self.entries if e not in drop)

    def render(self) -> str:
        header = [
            "# repro lint suppression baseline",
            "# one entry per line: CODE PATH  # justification",
        ]
        return "\n".join(header + [e.render() for e in self.entries]) + "\n"
