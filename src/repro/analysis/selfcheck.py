"""The self-hosted determinism linter: AST passes over our own source.

PRs 1-3 made byte-identical determinism a load-bearing guarantee —
journal replay, same-seed traces, chaos verdicts all compare runs
byte-for-byte.  Every determinism bug fixed so far was one of four
shapes, and each is mechanically detectable in the AST:

* **RK201** — wall-clock reads (``time.time``, ``datetime.now``):
  simulation code must only read ``env.now``;
* **RK202** — module-level ``random.*`` calls: the shared global RNG is
  unseeded cross-test state; use a seeded ``random.Random`` instance;
* **RK203** — ``for``-iteration over a ``set``/``frozenset`` in the
  netsim/installer hot paths: set order varies with hash seeding and
  history, so anything order-sensitive (float accumulation, event
  sequencing) silently diverges;
* **RK204** — a telemetry span opened and discarded (``tracer.span(...)``
  as a bare statement): it can never be closed, so it exports with
  ``t1: null`` and poisons duration aggregates;
* **RK205** — a round-robin metric series opened and discarded
  (``store.open_series(...)`` as a bare statement): nothing holds the
  handle, so nothing records into it or closes it, and the monitoring
  export carries a permanently empty (or never-flushed) series;
* **RK206** — an unbounded queue constructed in the ``load``/``netsim``
  packages (``deque()`` with no ``maxlen``, ``Queue()``/``SimpleQueue()``
  with no size bound): open-loop load makes any unbounded buffer an
  eventual memory-shaped outage, so storm-path queues must either carry
  an explicit bound or a baseline entry justifying the invariant that
  bounds them;
* **RK207** — a ``for`` loop over cluster membership whose body waits on
  the simulation per host (``env.step``/``env.run``/``yield``/
  ``wait_for_state``) in a campaign surface: serial per-host waits
  stretch campaign time linearly with cluster size — drive hosts
  through :class:`repro.exec.ExecTask` (sliding fanout window) or one
  ``AllOf`` barrier instead.  Intentional remnants (e.g. insert-ethers'
  sequential boot, which *binds* rack/rank to physical position) carry
  baseline entries;
* **RK208** — a span opened without ``parent=`` in instrumented
  simulation code: PR 10 made every span carry trace context
  (``span_id``/``parent_id``/``trace_id``), and the critical-path
  analyzer can only attribute time it can reach from a root.  An
  unparented span is an accidental root that silently drops its
  subtree from ``repro explain``.  Intentional roots (campaign,
  reinstall, storm, exec fanouts) and spans that parent via the
  ambient context carry baseline entries.

The linter lints itself: ``repro lint --self`` runs these passes over
``src/repro`` (including this package) against the committed baseline.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Optional

from .diagnostics import Diagnostic, SourceLocation, code_info
from .passes import SELF_PASSES, register_self, run_passes

__all__ = ["SelfLintContext", "analyze_self", "default_self_context"]


_WALL_TIME_FUNCS = frozenset({
    "time", "time_ns", "perf_counter", "perf_counter_ns",
    "monotonic", "monotonic_ns",
})
_DATETIME_FUNCS = frozenset({"now", "utcnow", "today"})
#: module-level random functions that consume the shared global RNG
_GLOBAL_RANDOM_FUNCS = frozenset({
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "seed", "getrandbits", "gauss", "betavariate",
    "normalvariate", "expovariate", "triangular", "vonmisesvariate",
    "paretovariate", "weibullvariate",
})


@dataclass
class ParsedFile:
    path: Path       # absolute
    rel: str         # repo-relative, posix separators
    tree: ast.AST
    #: names bound to the time / datetime / random modules in this file
    time_names: set[str] = field(default_factory=set)
    datetime_names: set[str] = field(default_factory=set)
    random_names: set[str] = field(default_factory=set)
    #: direct from-imports: local name -> (module, original name)
    from_imports: dict[str, tuple[str, str]] = field(default_factory=dict)

    def scan_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    if alias.name == "time":
                        self.time_names.add(bound)
                    elif alias.name == "datetime":
                        self.datetime_names.add(bound)
                    elif alias.name == "random":
                        self.random_names.add(bound)
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    bound = alias.asname or alias.name
                    self.from_imports[bound] = (node.module, alias.name)


@dataclass
class SelfLintContext:
    """What the determinism linter scans."""

    package_root: Path                    # e.g. <repo>/src/repro
    repo_root: Path                       # paths in diagnostics are relative to this
    #: package subdirectories whose loops are determinism-critical
    hot_paths: tuple[str, ...] = (
        "netsim", "installer", "exec", "load", "monitoring",
    )
    _files: Optional[list[ParsedFile]] = None

    @property
    def files(self) -> list[ParsedFile]:
        if self._files is None:
            parsed = []
            for path in sorted(self.package_root.rglob("*.py")):
                text = path.read_text(encoding="utf-8")
                try:
                    tree = ast.parse(text, filename=str(path))
                except SyntaxError:
                    continue  # not our job; the test suite will scream
                rel = path.relative_to(self.repo_root).as_posix()
                pf = ParsedFile(path=path, rel=rel, tree=tree)
                pf.scan_imports()
                parsed.append(pf)
            self._files = parsed
        return self._files

    def is_hot(self, pf: ParsedFile) -> bool:
        rel_pkg = pf.path.relative_to(self.package_root)
        return bool(rel_pkg.parts) and rel_pkg.parts[0] in self.hot_paths

    def diag(self, code: str, message: str, pf: ParsedFile,
             node: ast.AST, hint: str = "", **data) -> Diagnostic:
        return Diagnostic(
            code=code,
            severity=code_info(code).severity,
            message=message,
            location=SourceLocation(
                pf.rel, getattr(node, "lineno", 0),
                getattr(node, "col_offset", -1) + 1,
            ),
            hint=hint,
            data=data,
        )


def default_self_context() -> SelfLintContext:
    """Lint the installed ``repro`` package (src layout assumed)."""
    package_root = Path(__file__).resolve().parents[1]   # .../src/repro
    repo_root = package_root.parents[1]                  # .../
    return SelfLintContext(package_root=package_root, repo_root=repo_root)


def analyze_self(ctx: SelfLintContext, select=None, ignore=None):
    """Run every determinism pass; deterministic, sorted diagnostics."""
    return run_passes(SELF_PASSES, ctx, select=select, ignore=ignore)


# -- RK201: wall-clock reads -------------------------------------------------------


@register_self("RK201")
def check_wall_clock(ctx: SelfLintContext):
    for pf in ctx.files:
        # An aliased reference (``perf = time.perf_counter``) reads the
        # wall clock at every later call without ever matching the Call
        # pattern below — flag the alias itself.  Attribute nodes that
        # ARE the func of a call are skipped here (the Call branch owns
        # them), so nothing is reported twice.
        call_funcs = {
            id(node.func) for node in ast.walk(pf.tree)
            if isinstance(node, ast.Call)
        }
        for node in ast.walk(pf.tree):
            if (isinstance(node, ast.Attribute)
                    and id(node) not in call_funcs
                    and isinstance(node.value, ast.Name)
                    and node.value.id in pf.time_names
                    and node.attr in _WALL_TIME_FUNCS):
                yield ctx.diag(
                    "RK201",
                    f"wall-clock function time.{node.attr} aliased in "
                    f"simulation code",
                    pf, node,
                    hint="read env.now (simulated time) instead; binding "
                         "the clock to a local hides every later read "
                         "from this lint",
                    call=f"time.{node.attr}",
                )
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            label = None
            if isinstance(func, ast.Attribute):
                base = func.value
                if (isinstance(base, ast.Name)
                        and base.id in pf.time_names
                        and func.attr in _WALL_TIME_FUNCS):
                    label = f"time.{func.attr}()"
                elif (func.attr in _DATETIME_FUNCS
                      and _is_datetime_base(base, pf)):
                    label = f"datetime.{func.attr}()"
            elif isinstance(func, ast.Name):
                origin = pf.from_imports.get(func.id)
                if origin == ("time", "time") or (
                    origin is not None
                    and origin[0] == "time"
                    and origin[1] in _WALL_TIME_FUNCS
                ):
                    label = f"time.{origin[1]}()"
            if label is not None:
                yield ctx.diag(
                    "RK201",
                    f"wall-clock read {label} in simulation code",
                    pf, node,
                    hint="read env.now (simulated time) instead; wall time "
                         "breaks byte-identical replay",
                    call=label,
                )


def _is_datetime_base(base: ast.expr, pf: ParsedFile) -> bool:
    """datetime.now() via `from datetime import datetime/date` or
    datetime.datetime.now() via `import datetime`."""
    if isinstance(base, ast.Name):
        origin = pf.from_imports.get(base.id)
        return origin is not None and origin[0] == "datetime" and \
            origin[1] in ("datetime", "date")
    if isinstance(base, ast.Attribute) and isinstance(base.value, ast.Name):
        return (base.value.id in pf.datetime_names
                and base.attr in ("datetime", "date"))
    return False


# -- RK202: unseeded global RNG --------------------------------------------------


@register_self("RK202")
def check_global_random(ctx: SelfLintContext):
    for pf in ctx.files:
        for node in ast.walk(pf.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = None
            if (isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id in pf.random_names
                    and func.attr in _GLOBAL_RANDOM_FUNCS):
                name = func.attr
            elif isinstance(func, ast.Name):
                origin = pf.from_imports.get(func.id)
                if (origin is not None and origin[0] == "random"
                        and origin[1] in _GLOBAL_RANDOM_FUNCS):
                    name = origin[1]
            if name is not None:
                yield ctx.diag(
                    "RK202",
                    f"random.{name}() uses the unseeded module-level RNG",
                    pf, node,
                    hint="construct a seeded random.Random(seed) and call "
                         "the method on it",
                    call=f"random.{name}",
                )


# -- RK203: set iteration in hot paths -------------------------------------------


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset"))


def _scopes(tree: ast.AST) -> Iterator[ast.AST]:
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _scope_statements(scope: ast.AST) -> Iterator[ast.AST]:
    """Walk a scope without descending into nested function bodies."""
    stack = list(getattr(scope, "body", []))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


@register_self("RK203")
def check_set_iteration(ctx: SelfLintContext):
    for pf in ctx.files:
        if not ctx.is_hot(pf):
            continue
        for scope in _scopes(pf.tree):
            set_names: set[str] = set()
            for node in _scope_statements(scope):
                if isinstance(node, ast.Assign) and _is_set_expr(node.value):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            set_names.add(target.id)
                elif (isinstance(node, ast.AnnAssign)
                      and node.value is not None
                      and _is_set_expr(node.value)
                      and isinstance(node.target, ast.Name)):
                    set_names.add(node.target.id)

            def iter_exprs():
                for node in _scope_statements(scope):
                    if isinstance(node, (ast.For, ast.AsyncFor)):
                        yield node.iter
                    elif isinstance(node, (ast.ListComp, ast.SetComp,
                                           ast.DictComp, ast.GeneratorExp)):
                        for gen in node.generators:
                            yield gen.iter

            for it in iter_exprs():
                flagged = _is_set_expr(it) or (
                    isinstance(it, ast.Name) and it.id in set_names
                )
                if flagged:
                    what = (it.id if isinstance(it, ast.Name)
                            else ast.unparse(it))
                    yield ctx.diag(
                        "RK203",
                        f"iteration over unordered set {what!r} in a "
                        f"hot path",
                        pf, it,
                        hint="use dict.fromkeys(...) (insertion-ordered "
                             "set) or sorted(...) when order can reach "
                             "floats, events, or telemetry",
                        expr=what,
                    )


# -- RK204: leaked telemetry spans ----------------------------------------------


@register_self("RK204")
def check_leaked_spans(ctx: SelfLintContext):
    for pf in ctx.files:
        for node in ast.walk(pf.tree):
            if (isinstance(node, ast.Expr)
                    and isinstance(node.value, ast.Call)
                    and isinstance(node.value.func, ast.Attribute)
                    and node.value.func.attr == "span"):
                yield ctx.diag(
                    "RK204",
                    "span opened and discarded: it can never be closed",
                    pf, node,
                    hint="bind it and call .end(), or use the context-"
                         "manager form: `with tracer.span(...):`",
                )


# -- RK206: unbounded queues on storm paths --------------------------------------

#: packages (relative to the package root) where open-loop load can reach
#: (exec included: a 4096-target fan-out gathers output through MsgTree
#: and per-node buffers, which an open-loop caller can grow without bound)
_QUEUE_HOT_PACKAGES = ("load", "netsim", "exec")


def _in_queue_hot_package(ctx: SelfLintContext, pf: ParsedFile) -> bool:
    rel_pkg = pf.path.relative_to(ctx.package_root)
    return bool(rel_pkg.parts) and rel_pkg.parts[0] in _QUEUE_HOT_PACKAGES


def _queue_call_name(node: ast.Call, pf: ParsedFile) -> Optional[str]:
    """'deque' / 'Queue' / 'SimpleQueue' when ``node`` constructs one."""
    func = node.func
    if isinstance(func, ast.Name):
        origin = pf.from_imports.get(func.id)
        if origin == ("collections", "deque"):
            return "deque"
        if origin is not None and origin[0] in ("queue", "asyncio") and \
                origin[1] in ("Queue", "SimpleQueue", "LifoQueue",
                              "PriorityQueue"):
            return origin[1]
        return None
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        if func.value.id == "collections" and func.attr == "deque":
            return "deque"
        if func.value.id in ("queue", "asyncio") and func.attr in (
                "Queue", "SimpleQueue", "LifoQueue", "PriorityQueue"):
            return func.attr
    return None


def _queue_is_bounded(name: str, node: ast.Call) -> bool:
    if name == "SimpleQueue":
        return False  # SimpleQueue has no bound at all
    bound_kw = "maxlen" if name == "deque" else "maxsize"
    for kw in node.keywords:
        if kw.arg == bound_kw and not (
            isinstance(kw.value, ast.Constant) and kw.value.value in (None, 0)
        ):
            return True
    # deque's bound may also arrive as the second positional argument.
    if name == "deque" and len(node.args) >= 2:
        return True
    if name != "deque" and node.args:
        return not (isinstance(node.args[0], ast.Constant)
                    and node.args[0].value in (None, 0))
    return False


@register_self("RK206")
def check_unbounded_queues(ctx: SelfLintContext):
    """Queues on the open-loop load paths must carry an explicit bound.

    An open-loop arrival process keeps producing no matter how slow the
    consumer is; any unbounded buffer between the two converts overload
    into unbounded memory growth instead of visible backpressure.  A
    queue whose boundedness is enforced elsewhere (e.g. an accept queue
    that is length-checked before every append) is suppressed via the
    lint baseline, which doubles as an inventory of such invariants.
    """
    for pf in ctx.files:
        if not _in_queue_hot_package(ctx, pf):
            continue
        for node in ast.walk(pf.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _queue_call_name(node, pf)
            if name is None or _queue_is_bounded(name, node):
                continue
            yield ctx.diag(
                "RK206",
                f"{name}() constructed without a bound on an open-loop "
                f"load path",
                pf, node,
                hint="pass maxlen=/maxsize=, or add a baseline entry "
                     "naming the invariant that bounds it",
                queue=name,
            )


# -- RK207: per-host serial wait loops over cluster membership --------------------

#: modules/packages (relative to the package root) that are campaign
#: surfaces: where an administrator-visible sweep over the whole cluster
#: is driven from
_SERIAL_SURFACES = ("cli.py", "quickbuild.py", "core/tools", "faults", "load")

#: iterable names that denote cluster membership
_MEMBERSHIP_RE = re.compile(
    r"\b(nodes|machines|compute_machines|compute_nodes|targets|outlets)\b"
)

#: env methods that advance/block the simulation inside the loop body
_SERIAL_WAIT_ATTRS = frozenset({"step", "run", "wait_for_state"})


def _in_serial_surface(ctx: SelfLintContext, pf: ParsedFile) -> bool:
    rel_pkg = pf.path.relative_to(ctx.package_root).as_posix()
    return any(
        rel_pkg == surface or rel_pkg.startswith(surface + "/")
        for surface in _SERIAL_SURFACES
    )


def _body_waits_per_host(loop: ast.For) -> Optional[str]:
    """The first per-iteration simulation wait in the loop body, if any."""
    stack = list(loop.body) + list(loop.orelse)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue  # a nested def's waits run on its caller's schedule
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return "yield"
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _SERIAL_WAIT_ATTRS):
            return node.func.attr
        stack.extend(ast.iter_child_nodes(node))
    return None


@register_self("RK207")
def check_serial_host_loops(ctx: SelfLintContext):
    """Per-host serial waits make campaign time linear in cluster size.

    A 4096-node sweep that waits for each host in turn takes 4096x one
    host's latency; the exec fabric's sliding fanout window (or a single
    ``AllOf`` barrier) takes ~max instead of ~sum.  Loops whose
    serialization is the point (insert-ethers' sequential boot binds
    rack/rank to physical position, §6.4) are suppressed via the lint
    baseline, which doubles as the inventory of intentional remnants.
    """
    for pf in ctx.files:
        if not _in_serial_surface(ctx, pf):
            continue
        for node in ast.walk(pf.tree):
            if not isinstance(node, ast.For):
                continue
            iter_text = ast.unparse(node.iter)
            if not _MEMBERSHIP_RE.search(iter_text):
                continue
            wait = _body_waits_per_host(node)
            if wait is None:
                continue
            yield ctx.diag(
                "RK207",
                f"serial per-host loop over {iter_text!r} waits on the "
                f"simulation ({wait}) once per host",
                pf, node,
                hint="drive hosts through repro.exec.ExecTask (sliding "
                     "fanout window) or one AllOf barrier; add a baseline "
                     "entry when serialization is the point",
                iterable=iter_text,
                wait=wait,
            )


# -- RK208: unparented spans in instrumented code ---------------------------------


def _is_tracer_receiver(node: ast.expr) -> bool:
    """True when ``node`` is a tracer handle: ``tracer`` / ``env.tracer``
    / ``self.tracer`` — any name or attribute chain ending in "tracer"."""
    if isinstance(node, ast.Name):
        return node.id == "tracer" or node.id.endswith("_tracer")
    if isinstance(node, ast.Attribute):
        return node.attr == "tracer" or node.attr.endswith("_tracer")
    return False


@register_self("RK208")
def check_unparented_spans(ctx: SelfLintContext):
    """Spans opened without ``parent=`` silently root their subtree.

    The critical-path analyzer walks down from a root span; a span
    created without trace context dangles as an accidental root, and
    every second under it vanishes from the attribution report (the
    exact bug the ``shoot`` span fixed: 18% of a reinstall was
    invisible).  ``parent=None`` is fine — explicitly threading a
    maybe-parent is the pattern — the lint only wants the decision made
    visibly.  Intentional roots and ambient-context parenting carry
    baseline entries, which double as the inventory of trace roots.
    """
    for pf in ctx.files:
        rel_pkg = pf.path.relative_to(ctx.package_root).as_posix()
        # The telemetry package defines the span API (and its tests of
        # record shapes); it is not an instrumentation site.
        if rel_pkg.startswith("telemetry/"):
            continue
        for node in ast.walk(pf.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute)
                    and func.attr in ("span", "record_span")
                    and _is_tracer_receiver(func.value)):
                continue
            if any(kw.arg == "parent" for kw in node.keywords):
                continue
            yield ctx.diag(
                "RK208",
                f"tracer.{func.attr}(...) without parent= — an accidental "
                f"trace root drops its subtree from critical-path "
                f"attribution",
                pf, node,
                hint="thread the causal parent span (parent=..., possibly "
                     "None), or add a baseline entry naming this an "
                     "intentional root",
                call=func.attr,
            )


# -- RK205: leaked metric series ------------------------------------------------


@register_self("RK205")
def check_leaked_series(ctx: SelfLintContext):
    """A bare ``store.open_series(...)`` statement leaks the series.

    ``open_series`` is idempotent-by-name, so a discarded call *can* be
    a deliberate pre-registration — but every real use either records
    into the returned handle or keeps it for ``close()``; a bare
    statement does neither and the export ships a dead series.
    """
    for pf in ctx.files:
        for node in ast.walk(pf.tree):
            if (isinstance(node, ast.Expr)
                    and isinstance(node.value, ast.Call)
                    and isinstance(node.value.func, ast.Attribute)
                    and node.value.func.attr == "open_series"):
                yield ctx.diag(
                    "RK205",
                    "metric series opened and discarded: nothing records "
                    "into it or flushes it",
                    pf, node,
                    hint="bind the returned RoundRobinSeries and record "
                         "into it, or route writes through store.record()",
                )
