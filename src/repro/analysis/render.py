"""Diagnostic renderers: text for humans, JSON for machines.

Both renderers are deterministic functions of the diagnostic list:
two runs over the same inputs produce byte-identical output (the JSON
form is what CI diffs and the schema-stability test locks down).
"""

from __future__ import annotations

import json
from typing import Iterable, Sequence

from .diagnostics import Diagnostic, Severity

__all__ = ["render_text", "render_json", "summarize", "JSON_SCHEMA_VERSION"]

#: bump only on incompatible changes to the JSON layout
JSON_SCHEMA_VERSION = "repro-lint/1"


def summarize(diagnostics: Iterable[Diagnostic]) -> dict[str, int]:
    """Counts per severity, every severity always present."""
    counts = {sev.value: 0 for sev in Severity}
    for diag in diagnostics:
        counts[diag.severity.value] += 1
    return counts


def render_text(
    diagnostics: Sequence[Diagnostic],
    suppressed: int = 0,
) -> str:
    """The classic compiler-style listing plus a one-line summary."""
    lines: list[str] = []
    for diag in diagnostics:
        lines.append(diag.render())
        if diag.hint:
            lines.append(f"    hint: {diag.hint}")
    counts = summarize(diagnostics)
    summary = (
        f"{counts['error']} error(s), {counts['warning']} warning(s), "
        f"{counts['info']} info"
    )
    if suppressed:
        summary += f"; {suppressed} suppressed by baseline"
    lines.append(summary)
    return "\n".join(lines) + "\n"


def render_json(
    diagnostics: Sequence[Diagnostic],
    suppressed: int = 0,
) -> str:
    """Schema-stable JSON: fixed top-level keys, sorted keys throughout.

    ``sort_keys`` plus fixed separators make the output byte-identical
    across runs and Python versions — determinism applies to the
    analyzer too.
    """
    doc = {
        "schema": JSON_SCHEMA_VERSION,
        "diagnostics": [d.to_dict() for d in diagnostics],
        "summary": summarize(diagnostics),
        "suppressed": suppressed,
    }
    return json.dumps(doc, sort_keys=True, separators=(",", ":")) + "\n"
