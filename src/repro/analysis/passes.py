"""The analyzer pass registry and the shared run loop.

A :class:`Pass` is one analyzer: it declares the codes it may emit and
produces :class:`~repro.analysis.diagnostics.Diagnostic` objects from a
context.  Three families are registered here:

* ``CONFIG_PASSES`` run over a :class:`~repro.analysis.config_passes.ConfigContext`
  (graph + node files + distribution) — the §6.1 XML infrastructure;
* ``SELF_PASSES`` run over a :class:`~repro.analysis.selfcheck.SelfLintContext`
  (parsed ASTs of our own source) — the determinism linter;
* ``DEEP_PASSES`` run over a :class:`~repro.analysis.deepcheck.DeepContext`
  (project-wide symbol table + call graph) — the RK3xx dataflow
  determinism passes behind ``repro lint --deep``.

``run_passes`` is the only execution path: it runs every selected pass,
sorts the result deterministically, and applies ``--select``/``--ignore``
code-prefix filters, so every front end (CLI, CI, the
``KickstartGenerator.lint`` shim) sees identical behaviour.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional, Sequence

from .diagnostics import CODES, Diagnostic

__all__ = [
    "Pass",
    "CONFIG_PASSES",
    "SELF_PASSES",
    "DEEP_PASSES",
    "register_config",
    "register_self",
    "register_deep",
    "run_passes",
    "filter_codes",
]


class Pass:
    """One analyzer.  Subclass or wrap a function via the decorators."""

    #: codes this pass may emit (checked against the registry at import)
    codes: tuple[str, ...] = ()
    name: str = "pass"

    def run(self, ctx: Any) -> Iterable[Diagnostic]:  # pragma: no cover
        raise NotImplementedError


class _FunctionPass(Pass):
    def __init__(self, fn: Callable[[Any], Iterable[Diagnostic]],
                 codes: Sequence[str]):
        self.fn = fn
        self.codes = tuple(codes)
        self.name = fn.__name__
        self.__doc__ = fn.__doc__

    def run(self, ctx: Any) -> Iterable[Diagnostic]:
        return self.fn(ctx)


CONFIG_PASSES: list[Pass] = []
SELF_PASSES: list[Pass] = []
DEEP_PASSES: list[Pass] = []


def _register(registry: list[Pass], codes: Sequence[str]):
    for code in codes:
        if code not in CODES:
            raise ValueError(f"pass declares unregistered code {code!r}")

    def deco(fn: Callable[[Any], Iterable[Diagnostic]]):
        registry.append(_FunctionPass(fn, codes))
        return fn

    return deco


def register_config(*codes: str):
    """Register a config-graph analyzer emitting ``codes``."""
    return _register(CONFIG_PASSES, codes)


def register_self(*codes: str):
    """Register a determinism self-lint analyzer emitting ``codes``."""
    return _register(SELF_PASSES, codes)


def register_deep(*codes: str):
    """Register a dataflow determinism analyzer emitting ``codes``.

    Deep passes run over a :class:`~repro.analysis.deepcheck.DeepContext`
    (project-wide symbol table + call graph), not the per-file ASTs the
    self-linter sees, so they live in their own registry and behind
    ``repro lint --deep``.
    """
    return _register(DEEP_PASSES, codes)


def _match_any(code: str, prefixes: Sequence[str]) -> bool:
    return any(code.startswith(p) for p in prefixes)


def filter_codes(
    diagnostics: Iterable[Diagnostic],
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> list[Diagnostic]:
    """Keep diagnostics whose code matches ``select`` prefixes (all, when
    None) and does not match any ``ignore`` prefix."""
    out = []
    for diag in diagnostics:
        if select is not None and not _match_any(diag.code, select):
            continue
        if ignore is not None and _match_any(diag.code, ignore):
            continue
        out.append(diag)
    return out


def run_passes(
    passes: Sequence[Pass],
    ctx: Any,
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> list[Diagnostic]:
    """Run every pass (skipping ones fully filtered out), sorted output."""
    diagnostics: list[Diagnostic] = []
    for p in passes:
        if select is not None and not any(_match_any(c, select) for c in p.codes):
            continue
        if ignore is not None and all(_match_any(c, ignore) for c in p.codes):
            continue
        diagnostics.extend(p.run(ctx))
    diagnostics = filter_codes(diagnostics, select, ignore)
    diagnostics.sort(key=lambda d: d.sort_key)
    return diagnostics
