"""Config-graph analyzers: static checks over the §6.1 XML infrastructure.

The paper's CGI compiler only fails *at install time*; these passes run
the same semantic checks statically, before any (simulated) node asks
for a kickstart.  The context carries everything a site's description
consists of: the graph, the node files, the distribution the packages
must resolve against, and (optionally) the ordered rocks-dist source
stack so composition defects are visible too.

Every pass emits typed :class:`~repro.analysis.diagnostics.Diagnostic`
objects with stable ``RK1xx`` codes; see ``CODES`` for the table.
"""

from __future__ import annotations

import dataclasses
import re
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from ..core.database.clusterdb import NodeRow
from ..core.kickstart.graph import Graph
from ..core.kickstart.nodefile import NodeFile
from ..rpm import DependencyError, Repository, resolve
from ..rpm.repository import PackageNotFound
from .diagnostics import Diagnostic, SourceLocation, code_info
from .passes import CONFIG_PASSES, register_config, run_passes

__all__ = ["ConfigContext", "analyze_config", "PROVIDED_ATTRIBUTES"]


#: Database attributes a post script may reference as ``&name;`` tokens
#: (authored as ``&amp;name;`` in the XML).  ``node.*`` mirrors the nodes
#: table one-to-one; the ``Kickstart_*`` names are the classic Rocks
#: entities the report generators provide for the frontend.
PROVIDED_ATTRIBUTES: frozenset[str] = frozenset(
    {f"node.{f.name}" for f in dataclasses.fields(NodeRow)}
    | {
        "frontend.name",
        "frontend.ip",
        "Kickstart_PrivateHostname",
        "Kickstart_PrivateAddress",
        "Kickstart_PublicHostname",
        "Kickstart_PublicAddress",
    }
)

#: &token; references inside parsed post-script text.  XML's own five
#: entities never survive parsing, so anything matching is ours.
_ATTR_REF = re.compile(r"&([A-Za-z_][A-Za-z0-9_.]*);")


@dataclass
class ConfigContext:
    """Everything the config analyzers look at."""

    graph: Graph
    node_files: dict[str, NodeFile]
    dist_name: str = "rocks-dist"
    #: maps dist name -> Repository; raises KeyError for unknown dists
    dist_resolver: Optional[Callable[[str], Repository]] = None
    #: architectures the site supports (drives traversals and RK104)
    arches: tuple[str, ...] = ("i386",)
    #: ordered (source name, repository) stack for composition checks;
    #: later sources take precedence on version ties, as rocks-dist does
    sources: Optional[Sequence[tuple[str, Repository]]] = None
    provided_attributes: frozenset[str] = field(
        default=PROVIDED_ATTRIBUTES
    )

    # -- shared lookups ---------------------------------------------------
    @property
    def graph_file(self) -> str:
        return f"graph/{self.graph.name}.xml"

    def node_file_loc(self, name: str) -> SourceLocation:
        return SourceLocation(f"nodes/{name}.xml")

    def diag(self, code: str, message: str, location: SourceLocation,
             hint: str = "", arch: Optional[str] = None,
             **data) -> Diagnostic:
        return Diagnostic(
            code=code,
            severity=code_info(code).severity,
            message=message,
            location=location,
            hint=hint,
            arch=arch,
            data=data,
        )


def analyze_config(ctx: ConfigContext, select=None, ignore=None):
    """Run every config pass; deterministic, sorted diagnostics."""
    return run_passes(CONFIG_PASSES, ctx, select=select, ignore=ignore)


# -- RK101: dangling graph references --------------------------------------------


@register_config("RK101")
def check_dangling_edges(ctx: ConfigContext):
    """Graph names (either end of an edge) with no node-file definition."""
    defined = set(ctx.node_files)
    edges_by_name: dict[str, list[str]] = {}
    for edge in ctx.graph.edges:
        for name in (edge.frm, edge.to):
            if name not in defined:
                edges_by_name.setdefault(name, []).append(
                    f"{edge.frm} -> {edge.to}"
                )
    for name in sorted(edges_by_name):
        yield ctx.diag(
            "RK101",
            f"graph references undefined node file {name!r}",
            SourceLocation(ctx.graph_file),
            hint=(
                f"define nodes/{name}.xml or drop edge(s) "
                + ", ".join(sorted(set(edges_by_name[name])))
            ),
            module=name,
            edges=sorted(set(edges_by_name[name])),
        )


# -- RK102: orphan modules ---------------------------------------------------------


@register_config("RK102")
def check_orphan_modules(ctx: ConfigContext):
    """Defined node files no appliance root reaches on any supported arch."""
    roots = ctx.graph.roots()
    reachable: set[str] = set()
    for root in roots:
        for arch in ctx.arches:
            try:
                reachable.update(ctx.graph.traverse(root, arch))
            except Exception:
                continue
    for orphan in sorted(set(ctx.node_files) - reachable - set(roots)):
        yield ctx.diag(
            "RK102",
            f"node file {orphan!r} is not reachable from any appliance",
            ctx.node_file_loc(orphan),
            hint=f"add an edge from an appliance (roots: {', '.join(roots)}) "
                 f"or delete the module",
            module=orphan,
        )


# -- RK103: cycles -----------------------------------------------------------------


def _find_cycles(graph: Graph, arch: str) -> list[tuple[str, ...]]:
    """All elementary cycles found by DFS back-edges, canonicalised."""
    adjacency: dict[str, list[str]] = {}
    for edge in graph.edges:
        if edge.applies_to(arch):
            adjacency.setdefault(edge.frm, []).append(edge.to)
    cycles: set[tuple[str, ...]] = set()
    WHITE, GREY, BLACK = 0, 1, 2
    color: dict[str, int] = {}

    def visit(node: str, path: list[str]) -> None:
        color[node] = GREY
        path.append(node)
        for succ in adjacency.get(node, ()):
            state = color.get(succ, WHITE)
            if state == GREY:
                cycle = tuple(path[path.index(succ):])
                # canonical rotation: smallest member first
                pivot = cycle.index(min(cycle))
                cycles.add(cycle[pivot:] + cycle[:pivot])
            elif state == WHITE:
                visit(succ, path)
        path.pop()
        color[node] = BLACK

    for start in sorted(adjacency):
        if color.get(start, WHITE) == WHITE:
            visit(start, [])
    return sorted(cycles)


@register_config("RK103")
def check_cycles(ctx: ConfigContext):
    """Cycles with the offending path.  Traversal dedups, so installs
    still work — but a cycle always means an edge points the wrong way."""
    found: dict[tuple[str, ...], list[str]] = {}
    for arch in ctx.arches:
        for cycle in _find_cycles(ctx.graph, arch):
            found.setdefault(cycle, []).append(arch)
    for cycle in sorted(found):
        arches = found[cycle]
        path = " -> ".join(cycle + (cycle[0],))
        yield ctx.diag(
            "RK103",
            f"graph cycle: {path}",
            SourceLocation(ctx.graph_file),
            hint=f"remove or reverse one edge on the path {path}",
            arch=None if len(arches) == len(ctx.arches) else arches[0],
            cycle=list(cycle),
        )


# -- RK104: dead arch-conditional edges ----------------------------------------


@register_config("RK104")
def check_dead_arch_edges(ctx: ConfigContext):
    """Edges whose arch set intersects no supported architecture."""
    supported = set(ctx.arches)
    for edge in ctx.graph.edges:
        if edge.archs is not None and not (edge.archs & supported):
            archs = ",".join(sorted(edge.archs))
            yield ctx.diag(
                "RK104",
                f"edge {edge.frm} -> {edge.to} (arch={archs}) applies to no "
                f"supported architecture ({', '.join(ctx.arches)})",
                SourceLocation(ctx.graph_file),
                hint="fix the arch attribute or add the architecture to the "
                     "supported set",
                edge=f"{edge.frm} -> {edge.to}",
                archs=sorted(edge.archs),
            )


# -- RK105: duplicate package declarations ------------------------------------------


@register_config("RK105")
def check_duplicate_packages(ctx: ConfigContext):
    """A package declared by two modules of one traversal (or twice in
    one module) installs once but is owned by nobody."""
    seen: set[tuple[str, str, tuple[str, ...]]] = set()
    for root in ctx.graph.roots():
        for arch in ctx.arches:
            try:
                order = ctx.graph.traverse(root, arch)
            except Exception:
                continue
            declared: dict[str, list[str]] = {}
            for module in order:
                node = ctx.node_files.get(module)
                if node is None:
                    continue
                for pkg in node.package_names(arch):
                    declared.setdefault(pkg, []).append(module)
            for pkg, modules in sorted(declared.items()):
                if len(modules) < 2:
                    continue
                key = (root, pkg, tuple(modules))
                if key in seen:
                    continue
                seen.add(key)
                yield ctx.diag(
                    "RK105",
                    f"package {pkg!r} declared {len(modules)} times in the "
                    f"{root!r} traversal (by {', '.join(modules)})",
                    ctx.node_file_loc(modules[-1]),
                    hint=f"keep the declaration in exactly one module; "
                         f"candidates: {', '.join(dict.fromkeys(modules))}",
                    arch=arch if len(ctx.arches) > 1 else None,
                    appliance=root,
                    package=pkg,
                    modules=modules,
                )


# -- RK106: unresolvable packages -------------------------------------------------


@register_config("RK106", "RK110")
def check_package_resolution(ctx: ConfigContext):
    """Every traversal's package set must resolve against the dist.

    Direct misses carry the declaration chain (appliance -> module ->
    package); transitive misses carry the requirement chain the
    depsolver reports (``nevra requires dep (no provider)``).
    """
    if ctx.dist_resolver is None:
        return
    try:
        repo = ctx.dist_resolver(ctx.dist_name)
    except KeyError as err:
        yield ctx.diag(
            "RK110",
            str(err),
            SourceLocation(f"dist/{ctx.dist_name}"),
            hint="run rocks-dist dist, or point the node rows at an "
                 "existing distribution",
            dist=ctx.dist_name,
        )
        return
    for root in ctx.graph.roots():
        for arch in ctx.arches:
            try:
                order = ctx.graph.traverse(root, arch)
            except Exception:
                continue
            requested: list[str] = []
            declared_by: dict[str, str] = {}
            for module in order:
                node = ctx.node_files.get(module)
                if node is None:
                    continue
                for pkg in node.package_names(arch):
                    declared_by.setdefault(pkg, module)
                    requested.append(pkg)
            # direct misses, with the declaration chain
            missing: set[str] = set()
            for pkg in sorted(declared_by):
                try:
                    repo.latest(pkg, arch=arch)
                except PackageNotFound:
                    missing.add(pkg)
                    yield ctx.diag(
                        "RK106",
                        f"{root}/{arch}: package {pkg!r} not in "
                        f"{ctx.dist_name}",
                        ctx.node_file_loc(declared_by[pkg]),
                        hint=f"chain: appliance {root!r} -> module "
                             f"{declared_by[pkg]!r} -> package {pkg!r}; add "
                             f"the package to a rocks-dist source or drop it",
                        arch=arch,
                        appliance=root,
                        package=pkg,
                        module=declared_by[pkg],
                    )
            # transitive misses, with the depsolver's requirement chain
            try:
                resolve(repo, [p for p in requested if p not in missing],
                        arch=arch)
            except DependencyError as err:
                for problem in sorted(set(err.problems)):
                    if problem.startswith("<requested>"):
                        continue  # direct miss, already reported above
                    yield ctx.diag(
                        "RK106",
                        f"{root}/{arch}: {problem}",
                        SourceLocation(f"dist/{ctx.dist_name}"),
                        hint="the dependency chain above names the package "
                             "whose requirement cannot be satisfied",
                        arch=arch,
                        appliance=root,
                        problem=problem,
                    )


# -- RK107: unknown database attributes ----------------------------------------


@register_config("RK107")
def check_db_attributes(ctx: ConfigContext):
    """``&name;`` references in post scripts must name attributes a
    report generator provides."""
    for name in sorted(ctx.node_files):
        node = ctx.node_files[name]
        for frag in node.post:
            for match in _ATTR_REF.finditer(frag.script):
                attr = match.group(1)
                if attr in ctx.provided_attributes:
                    continue
                yield ctx.diag(
                    "RK107",
                    f"post script in {name!r} references database attribute "
                    f"&{attr}; which no report generator provides",
                    ctx.node_file_loc(name),
                    hint="provided attributes: node.<column> for every nodes-"
                         "table column, frontend.name/ip, Kickstart_*",
                    module=name,
                    attribute=attr,
                )


# -- RK108 / RK109: distribution composition -----------------------------------


@register_config("RK108", "RK109")
def check_dist_composition(ctx: ConfigContext):
    """Replay rocks-dist's gather with provenance tracking.

    rocks-dist keeps the newest EVR per (name, arch); a later (higher
    precedence) source only wins ties.  A site-local package silently
    beaten by a newer upstream build is the classic "my override never
    installs" defect (RK108).  A composition that yields zero packages
    is RK109.
    """
    if not ctx.sources:
        return
    loc = SourceLocation(f"dist/{ctx.dist_name}")
    best: dict[tuple[str, str], tuple] = {}  # (name, arch) -> (pkg, src idx)
    shadowed: list[tuple] = []
    for idx, (src_name, repo) in enumerate(ctx.sources):
        for pkg in repo:
            key = (pkg.name, pkg.arch)
            current = best.get(key)
            if current is None:
                best[key] = (pkg, idx)
            elif pkg.newer_than(current[0]) or pkg.evr == current[0].evr:
                best[key] = (pkg, idx)
            else:
                # a later source lost to an earlier, newer build
                shadowed.append((pkg, src_name, current[0],
                                 ctx.sources[current[1]][0]))
    for pkg, src_name, winner, winner_src in shadowed:
        yield ctx.diag(
            "RK108",
            f"{src_name}: {pkg.nevra} is shadowed by newer {winner.nevra} "
            f"from {winner_src}; the {src_name} build never reaches the "
            f"distribution",
            loc,
            hint=f"bump {pkg.name} in {src_name} past "
                 f"{winner.version}-{winner.release}, or delete the stale "
                 f"build",
            package=pkg.name,
            shadowed=pkg.nevra,
            by=winner.nevra,
            source=src_name,
            winning_source=winner_src,
        )
    if not best:
        yield ctx.diag(
            "RK109",
            f"distribution {ctx.dist_name!r} is empty: "
            f"{len(ctx.sources)} source(s) contribute no packages",
            loc,
            hint="check that the mirror ran and the source repositories "
                 "are populated",
            dist=ctx.dist_name,
            sources=[name for name, _ in ctx.sources],
        )
