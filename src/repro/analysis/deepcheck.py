"""Project-wide dataflow determinism passes (RK3xx): ``repro lint --deep``.

The RK2xx self-linter is deliberately syntax-local: each pass looks at
one file's AST and flags one statement shape.  That was enough for the
bug classes PRs 1–5 fixed by hand, but PR 7's stale-active bug — a
completion callback mutating flow membership while a refill held a
snapshot of it — is *dataflow*-shaped: the hazard spans an assignment,
a suspension point, and a later use, and whether an unseeded RNG
matters depends on where its value ends up, not where it is built.

This module builds the project-wide infrastructure those checks need:

* a **symbol table** over ``src/repro`` — every module, class, function
  and method with a stable qualified name;
* a **call graph** resolved heuristically from imports (absolute and
  relative), module-level names, and ``self.method`` dispatch;

and feeds it to the RK3xx pass family:

* **RK301 — unseeded-RNG taint**: a ``random.Random()`` constructed
  without a seed argument inside simulation code, or flowing into it
  through the call graph.  Hash-seed jitter in disguise: every draw from
  it differs run to run.  The diagnostic carries the call chain from the
  nearest simulation entry point to the construction site.
* **RK302 — yield-straddling staleness**: a local snapshot of shared
  mutable state (``list(self.flows)``, ``x.members.copy()``, …) captured
  before a ``yield`` and read after it.  While the generator was
  suspended, anyone may have mutated the underlying state — the exact
  PR 7 bug class, mechanically.
* **RK303 — unbounded wait loops**: a ``while`` loop polling a
  condition whose body does nothing but sleep (``yield env.timeout``)
  with no deadline, attempt budget, or escape on the path.  If the
  condition never comes true the process spins forever and the scenario
  wedges with no diagnosis.
* **RK304 — order-sensitive float accumulation**: ``sum()`` over an
  unordered set (or ``+=`` under iteration over one) in a hot package.
  Float addition is not associative; summing in hash order makes the
  low bits of every derived rate and timestamp hash-seed-dependent.

All four run behind ``repro lint --deep`` against the same baseline and
renderers as every other family, and their JSON output is byte-identical
across ``PYTHONHASHSEED`` values.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Optional

from .diagnostics import Diagnostic, SourceLocation, code_info
from .passes import DEEP_PASSES, register_deep, run_passes

__all__ = [
    "DeepContext",
    "FunctionInfo",
    "analyze_deep",
    "default_deep_context",
]

#: top-level package name of everything we index
_PKG = "repro"

#: packages whose code runs under (or drives) the DES — an unseeded RNG
#: reaching any of these is a determinism hazard.  Everything except the
#: analyzers themselves, in practice.
_SIM_PACKAGES = frozenset({
    "netsim", "installer", "services", "faults", "load", "monitoring",
    "exec", "resilience", "scheduler", "cluster", "core", "rpm",
    "telemetry", "kernel", "quickbuild", "cli", "__init__", "__main__",
})

#: packages where float accumulation order reaches rates/timestamps
_HOT_PACKAGES = ("netsim", "installer", "exec", "load", "monitoring")

#: names that evidence a bound on a polling loop (deadline, budget, …)
_BOUND_NAME_RE = re.compile(
    r"deadline|timeout|attempt|retr|budget|remaining|until|expir|"
    r"max_|_max|tries|give_up|limit",
    re.IGNORECASE,
)

_SNAPSHOT_FUNCS = frozenset({
    "list", "sorted", "tuple", "dict", "set", "frozenset",
})


@dataclass
class FunctionInfo:
    """One function or method in the project symbol table."""

    qualname: str                 # repro.netsim.flows.FlowNetwork._fill
    module: str                   # repro.netsim.flows
    rel: str                      # src/repro/netsim/flows.py
    node: ast.AST                 # FunctionDef / AsyncFunctionDef / Module
    cls: Optional[str] = None     # enclosing class name, if a method
    is_generator: bool = False
    #: resolved callee qualnames (call-graph edges out of this function)
    calls: list[str] = field(default_factory=list)


@dataclass
class _ModuleInfo:
    module: str                   # dotted name
    rel: str
    tree: ast.Module
    #: local binding -> dotted module it names (``import repro.x as y``,
    #: ``from . import engine``)
    module_names: dict[str, str] = field(default_factory=dict)
    #: local binding -> (dotted module, original name) for from-imports
    from_imports: dict[str, tuple[str, str]] = field(default_factory=dict)
    #: names bound to the stdlib ``random`` module in this file
    random_names: set[str] = field(default_factory=set)


class DeepContext:
    """Symbol table + call graph over one package tree.

    Construction parses every file; the table and graph are built once
    and shared by all passes.  Iteration everywhere is over sorted file
    lists and insertion-ordered dicts, so diagnostics come out in the
    same order on every run regardless of hash seeding.
    """

    def __init__(self, package_root: Path, repo_root: Path,
                 hot_paths: tuple[str, ...] = _HOT_PACKAGES):
        self.package_root = package_root
        self.repo_root = repo_root
        self.hot_paths = hot_paths
        self.modules: dict[str, _ModuleInfo] = {}
        #: qualname -> FunctionInfo, insertion-ordered by (file, lineno)
        self.functions: dict[str, FunctionInfo] = {}
        #: module -> {top-level function name -> qualname}
        self._module_funcs: dict[str, dict[str, str]] = {}
        #: (module, class) -> {method name -> qualname}
        self._class_methods: dict[tuple[str, str], dict[str, str]] = {}
        self._build()
        self._resolve_calls()

    # -- construction ------------------------------------------------------
    def _module_name(self, path: Path) -> str:
        rel = path.relative_to(self.package_root).with_suffix("")
        parts = (_PKG,) + rel.parts
        if parts[-1] == "__init__":
            parts = parts[:-1]
        return ".".join(parts)

    def _build(self) -> None:
        for path in sorted(self.package_root.rglob("*.py")):
            try:
                tree = ast.parse(path.read_text(encoding="utf-8"),
                                 filename=str(path))
            except SyntaxError:
                continue  # the test suite owns syntax errors
            module = self._module_name(path)
            rel = path.relative_to(self.repo_root).as_posix()
            mi = _ModuleInfo(module=module, rel=rel, tree=tree)
            self._scan_imports(mi)
            self.modules[module] = mi
            self._index_module(mi)

    def _scan_imports(self, mi: _ModuleInfo) -> None:
        pkg_parts = mi.module.split(".")
        for node in ast.walk(mi.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    if alias.name == "random":
                        mi.random_names.add(bound)
                    elif alias.name.split(".")[0] == _PKG:
                        mi.module_names[bound] = (
                            alias.name if alias.asname else alias.name.split(".")[0]
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    # relative import: resolve against this module's package
                    base = pkg_parts[: len(pkg_parts) - node.level]
                    origin = ".".join(base + ([node.module] if node.module else []))
                else:
                    origin = node.module or ""
                for alias in node.names:
                    bound = alias.asname or alias.name
                    if origin == "random":
                        mi.from_imports[bound] = (origin, alias.name)
                    elif origin.split(".")[0] == _PKG or node.level:
                        # `from . import engine` binds a submodule name
                        sub = f"{origin}.{alias.name}"
                        if sub in self.modules or True:
                            mi.module_names.setdefault(bound, sub)
                        mi.from_imports[bound] = (origin, alias.name)

    def _index_module(self, mi: _ModuleInfo) -> None:
        funcs = self._module_funcs.setdefault(mi.module, {})
        # module body is itself a callable scope for taint purposes
        mod_info = FunctionInfo(
            qualname=f"{mi.module}.<module>", module=mi.module,
            rel=mi.rel, node=mi.tree,
        )
        self.functions[mod_info.qualname] = mod_info

        def index(node: ast.AST, cls: Optional[str]) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.ClassDef):
                    index(child, child.name)
                elif isinstance(child,
                                (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if cls is None:
                        qual = f"{mi.module}.{child.name}"
                        funcs[child.name] = qual
                    else:
                        qual = f"{mi.module}.{cls}.{child.name}"
                        self._class_methods.setdefault(
                            (mi.module, cls), {})[child.name] = qual
                    self.functions[qual] = FunctionInfo(
                        qualname=qual, module=mi.module, rel=mi.rel,
                        node=child, cls=cls,
                        is_generator=_is_generator(child),
                    )
                    index(child, cls)  # nested defs keep the class scope

        index(mi.tree, None)

    # -- call-graph resolution ---------------------------------------------
    def _resolve_calls(self) -> None:
        for info in self.functions.values():
            mi = self.modules[info.module]
            seen: dict[str, None] = {}
            for node in _scope_walk(info.node):
                if not isinstance(node, ast.Call):
                    continue
                target = self._resolve_call(node.func, info, mi)
                if target is not None and target != info.qualname:
                    seen[target] = None
            info.calls = list(seen)

    def _resolve_call(self, func: ast.expr, info: FunctionInfo,
                      mi: _ModuleInfo) -> Optional[str]:
        if isinstance(func, ast.Name):
            local = self._module_funcs.get(info.module, {})
            if func.id in local:
                return local[func.id]
            origin = mi.from_imports.get(func.id)
            if origin is not None and origin[0].split(".")[0] == _PKG:
                return f"{origin[0]}.{origin[1]}"
            return None
        if isinstance(func, ast.Attribute):
            base = func.value
            if isinstance(base, ast.Name):
                if base.id == "self" and info.cls is not None:
                    methods = self._class_methods.get(
                        (info.module, info.cls), {})
                    return methods.get(func.attr)
                mod = mi.module_names.get(base.id)
                if mod is not None:
                    return f"{mod}.{func.attr}"
        return None

    # -- queries -------------------------------------------------------------
    def is_sim(self, info: FunctionInfo) -> bool:
        """Does this function live in code that runs under the DES?"""
        tail = info.module.split(".", 1)
        sub = tail[1].split(".")[0] if len(tail) > 1 else "__init__"
        return sub in _SIM_PACKAGES

    def sim_chain(self, qualname: str) -> Optional[list[str]]:
        """Shortest caller chain from simulation code down to ``qualname``.

        Returns ``[sim_entry, ..., qualname]`` or None when nothing in a
        simulation package (transitively) calls it.  A qualname already
        in simulation code is its own one-element chain.
        """
        info = self.functions.get(qualname)
        if info is not None and self.is_sim(info):
            return [qualname]
        # reverse-BFS: walk callers until one lives in a sim package
        callers: dict[str, list[str]] = {}
        for src in self.functions.values():
            for dst in src.calls:
                callers.setdefault(dst, []).append(src.qualname)
        frontier = [[qualname]]
        visited = {qualname}
        while frontier:
            nxt: list[list[str]] = []
            for chain in frontier:
                for caller in callers.get(chain[0], []):
                    if caller in visited:
                        continue
                    visited.add(caller)
                    new = [caller] + chain
                    caller_info = self.functions.get(caller)
                    if caller_info is not None and self.is_sim(caller_info):
                        return new
                    nxt.append(new)
            frontier = nxt
        return None

    def is_hot(self, info: FunctionInfo) -> bool:
        tail = info.module.split(".", 1)
        sub = tail[1].split(".")[0] if len(tail) > 1 else ""
        return sub in self.hot_paths

    def diag(self, code: str, message: str, info: FunctionInfo,
             node: ast.AST, hint: str = "", **data) -> Diagnostic:
        return Diagnostic(
            code=code,
            severity=code_info(code).severity,
            message=message,
            location=SourceLocation(
                info.rel, getattr(node, "lineno", 0),
                getattr(node, "col_offset", -1) + 1,
            ),
            hint=hint,
            data=data,
        )


def _is_generator(fn: ast.AST) -> bool:
    return any(isinstance(n, (ast.Yield, ast.YieldFrom))
               for n in _scope_walk(fn))


def _scope_walk(scope: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested defs/classes."""
    stack = list(getattr(scope, "body", []))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def default_deep_context() -> DeepContext:
    package_root = Path(__file__).resolve().parents[1]   # .../src/repro
    repo_root = package_root.parents[1]
    return DeepContext(package_root=package_root, repo_root=repo_root)


def analyze_deep(ctx: DeepContext, select=None, ignore=None):
    """Run every RK3xx pass; deterministic, sorted diagnostics."""
    return run_passes(DEEP_PASSES, ctx, select=select, ignore=ignore)


# -- RK301: unseeded-RNG taint ---------------------------------------------------


def _is_unseeded_random(node: ast.Call, mi: _ModuleInfo) -> bool:
    """``random.Random()`` / imported ``Random()`` with no seed argument."""
    func = node.func
    named = False
    if (isinstance(func, ast.Attribute) and func.attr == "Random"
            and isinstance(func.value, ast.Name)
            and func.value.id in mi.random_names):
        named = True
    elif isinstance(func, ast.Name):
        origin = mi.from_imports.get(func.id)
        named = origin == ("random", "Random")
    if not named:
        return False
    if node.args:
        return False
    return not any(kw.arg in ("x", "seed") for kw in node.keywords)


@register_deep("RK301")
def check_unseeded_rng_taint(ctx: DeepContext):
    """An unseeded ``random.Random()`` is hash-seed jitter with a handle.

    ``random.Random()`` with no seed initialises from OS entropy: every
    value drawn from it differs run to run, so any rate, delay or
    ordering derived from it breaks byte-identical replay.  The call
    graph decides whether it matters: a construction inside simulation
    code (or returned into it through a helper) is flagged with the
    chain from the nearest simulation entry point.
    """
    for info in ctx.functions.values():
        mi = ctx.modules[info.module]
        for node in _scope_walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            if not _is_unseeded_random(node, mi):
                continue
            chain = ctx.sim_chain(info.qualname)
            if chain is None:
                continue  # never reaches simulation code
            yield ctx.diag(
                "RK301",
                "random.Random() constructed without a seed "
                + ("in simulation code" if len(chain) == 1 else
                   f"flows into simulation code via {chain[0]}"),
                info, node,
                hint="pass an explicit seed (derive it from the scenario "
                     "seed) so every draw replays byte-identically",
                chain=chain,
            )


# -- RK302: yield-straddling staleness -------------------------------------------


def _is_shared_snapshot(value: ast.expr) -> Optional[str]:
    """The snapshot expression when ``value`` copies shared mutable state.

    Recognised shapes: ``list(x.attr...)`` / ``sorted`` / ``dict`` /
    ``set`` / ``tuple`` / ``frozenset`` over an expression that reads an
    attribute, and ``x.attr.copy()``.  A copy of purely local data
    (``list(names)``) is not shared state and stays exempt.
    """
    if not isinstance(value, ast.Call):
        return None
    func = value.func
    if (isinstance(func, ast.Name) and func.id in _SNAPSHOT_FUNCS
            and value.args
            and any(isinstance(n, ast.Attribute)
                    for n in ast.walk(value.args[0]))):
        return ast.unparse(value)
    if (isinstance(func, ast.Attribute) and func.attr == "copy"
            and isinstance(func.value, ast.Attribute)):
        return ast.unparse(value)
    return None


@register_deep("RK302")
def check_yield_straddle(ctx: DeepContext):
    """The PR 7 stale-active bug class, mechanically.

    A generator that snapshots shared mutable state, suspends at a
    ``yield``, and then consumes the snapshot is trusting that nobody
    mutated the underlying state while it slept — but a yield is exactly
    where every other process (and every completion callback) gets to
    run.  Re-derive the snapshot after resuming, or re-validate each
    member against the live structure (the PR 7 fix).
    """
    for info in ctx.functions.values():
        if not info.is_generator:
            continue
        yields = sorted(n.lineno for n in _scope_walk(info.node)
                        if isinstance(n, (ast.Yield, ast.YieldFrom)))
        if not yields:
            continue
        for node in _scope_walk(info.node):
            if not isinstance(node, ast.Assign):
                continue
            snap = _is_shared_snapshot(node.value)
            if snap is None:
                continue
            names = [t.id for t in node.targets if isinstance(t, ast.Name)]
            if not names:
                continue
            name = names[0]
            uses = sorted(
                n.lineno for n in _scope_walk(info.node)
                if isinstance(n, ast.Name) and n.id == name
                and isinstance(n.ctx, ast.Load)
            )
            straddling = [
                u for u in uses
                if any(node.lineno < y < u for y in yields)
            ]
            if straddling:
                yield ctx.diag(
                    "RK302",
                    f"snapshot {name!r} = {snap} is captured before a "
                    f"yield and read at line {straddling[0]} after it",
                    info, node,
                    hint="re-derive the snapshot after the yield, or "
                         "re-check each member against the live "
                         "structure before acting on it",
                    snapshot=snap, first_stale_use=straddling[0],
                )


# -- RK303: unbounded wait loops -------------------------------------------------


def _is_sleep_yield(stmt: ast.AST) -> bool:
    """``yield env.timeout(...)`` / ``yield env.slotted_timeout(...)``."""
    if not (isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Yield)):
        return False
    val = stmt.value.value
    return (isinstance(val, ast.Call)
            and isinstance(val.func, ast.Attribute)
            and val.func.attr in ("timeout", "slotted_timeout"))


@register_deep("RK303")
def check_unbounded_wait_loops(ctx: DeepContext):
    """A pure sleep-poll loop with no bound can spin forever.

    The shape is ``while <condition>: yield env.timeout(t)`` (the body
    does nothing but sleep).  If the condition is wedged — the event it
    polls for was lost to a fault — the process never exits and never
    raises, so the scenario hangs with no diagnosis.  Loops whose test
    or surrounding statements reference a deadline/attempt bound, and
    loops that do real work per tick (service loops), are exempt.
    """
    for info in ctx.functions.values():
        for node in _scope_walk(info.node):
            if not isinstance(node, ast.While):
                continue
            if isinstance(node.test, ast.Constant):
                continue  # `while True` service loops are not polls
            body = [s for s in node.body
                    if not (isinstance(s, ast.Expr)
                            and isinstance(s.value, ast.Constant))]
            if len(body) != 1 or not _is_sleep_yield(body[0]):
                continue
            cond_text = ast.unparse(node.test)
            if _BOUND_NAME_RE.search(cond_text):
                continue
            yield ctx.diag(
                "RK303",
                f"polling wait loop on {cond_text!r} sleeps with no "
                f"deadline or attempt bound",
                info, node,
                hint="wait on the event itself (or AnyOf(event, "
                     "env.timeout(deadline))) so a wedged condition "
                     "fails loudly instead of spinning forever",
                condition=cond_text,
            )


# -- RK304: order-sensitive float accumulation ------------------------------------


def _set_names_in_scope(scope: ast.AST) -> set[str]:
    names: set[str] = set()
    for node in _scope_walk(scope):
        value = None
        if isinstance(node, ast.Assign):
            value = node.value
            targets = [t for t in node.targets if isinstance(t, ast.Name)]
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target,
                                                            ast.Name):
            value = node.value
            targets = [node.target]
        else:
            continue
        if value is None:
            continue
        is_set = isinstance(value, (ast.Set, ast.SetComp)) or (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in ("set", "frozenset")
        )
        if is_set:
            names.update(t.id for t in targets)
    return names


def _is_unordered_iterable(node: ast.expr, set_names: set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name) and node.id in set_names:
        return True
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset"))


@register_deep("RK304")
def check_float_accumulation_order(ctx: DeepContext):
    """Summing floats in hash order makes the low bits seed-dependent.

    ``sum()`` over a set (directly, or through a comprehension iterating
    one) and ``+=`` under a for-over-set both accumulate in whatever
    order the hash seed dealt; IEEE addition is not associative, so two
    runs can disagree in the last ulp — and a rate or timestamp derived
    from the total diverges from there.  Only hot packages are scanned:
    that is where float totals reach rates, etas and telemetry.
    """
    for info in ctx.functions.values():
        if not ctx.is_hot(info):
            continue
        set_names = _set_names_in_scope(info.node)
        for node in _scope_walk(info.node):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "sum" and node.args):
                arg = node.args[0]
                unordered = _is_unordered_iterable(arg, set_names)
                if not unordered and isinstance(
                        arg, (ast.GeneratorExp, ast.ListComp)):
                    unordered = any(
                        _is_unordered_iterable(gen.iter, set_names)
                        for gen in arg.generators
                    )
                if unordered:
                    yield ctx.diag(
                        "RK304",
                        f"sum() over unordered iterable "
                        f"{ast.unparse(arg)!r} in a hot path",
                        info, node,
                        hint="accumulate over an insertion-ordered dict "
                             "or sorted(...) so the float total is "
                             "identical on every run",
                        expr=ast.unparse(arg),
                    )
            elif isinstance(node, ast.For) and _is_unordered_iterable(
                    node.iter, set_names):
                for stmt in ast.walk(node):
                    if isinstance(stmt, ast.AugAssign) and isinstance(
                            stmt.op, ast.Add):
                        yield ctx.diag(
                            "RK304",
                            f"'+=' accumulation under iteration over "
                            f"unordered {ast.unparse(node.iter)!r} in a "
                            f"hot path",
                            info, stmt,
                            hint="iterate an insertion-ordered dict or "
                                 "sorted(...) when accumulating floats",
                            expr=ast.unparse(node.iter),
                        )
