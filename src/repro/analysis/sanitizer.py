"""Schedule-perturbation sanitizer: a race detector for simulated time.

Every guarantee this repo makes — byte-identical Table I traces, storm
SLO JSON, exec-fabric golden digests — rests on one property: when two
events are scheduled for the same simulated instant, the outcome must
not depend on which dispatches first.  The engine breaks such ties with
a monotone sequence number, which makes runs *reproducible* — but
reproducible is not the same as *race-free*.  Code that accidentally
depends on tie order (PR 7's stale-active bug) replays byte-identically
right up until an unrelated change perturbs the schedule, and then a
golden digest far from the real bug starts flaking.

This module is TSan for the DES.  Two mechanisms, both opt-in:

* **Schedule perturbation** — ``Environment(sanitize=SanitizeOptions(seed))``
  builds a :class:`SanitizedEnvironment` whose tie-breaks among
  same-timestamp events are drawn from a seeded RNG instead of the
  arrival sequence.  Same-tick events are logically *concurrent*: any
  dispatch order is a legal execution, so if two perturbation seeds
  produce different scenario digests, a scheduling race is **proven** —
  no false positives.  Each dispatch is logged with the event's
  scheduling stack, so :func:`diagnose_divergence` can report the
  colliding event pair and the first divergent simulated timestamp.

* **Runtime traps** — inside a :func:`sanitized` session, module-level
  ``random.*`` calls (RK311) and wall-clock reads (RK312) are
  intercepted and reported as diagnostics through the standard
  :class:`~repro.analysis.diagnostics.Diagnostic` machinery, and
  classes registered with :meth:`SanitizerSession.watch` get a
  lightweight write-log keyed on ``(id(obj), attr, now)`` that flags an
  attribute written by two different processes within one tick (RK313).

The default ``Environment()`` path is untouched: sanitization swaps in
a subclass at construction time, so the unsanitized scheduler and
dispatch loops carry zero extra instructions (see
``bench_scaling_10k.py --quick``'s overhead guard).
"""

from __future__ import annotations

import hashlib
import heapq
import random
import sys
import time
import traceback
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Optional

from ..netsim import engine as _engine
from ..netsim.engine import Environment, Event, Process, SimulationError, Timeout
from .diagnostics import Diagnostic, SourceLocation, code_info

__all__ = [
    "SanitizeOptions",
    "SanitizedEnvironment",
    "SanitizerSession",
    "sanitized",
    "DispatchRecord",
    "RaceReport",
    "ScenarioRun",
    "SCENARIOS",
    "run_scenario",
    "diagnose_divergence",
]


_REPO_ROOT = Path(__file__).resolve().parents[3]
_THIS_FILE = __file__


@dataclass(frozen=True)
class SanitizeOptions:
    """How aggressively to sanitize.

    ``seed`` drives the tie-break perturbation: two runs with different
    seeds explore two different (equally legal) dispatch orders of every
    same-tick event population.  ``record_stacks`` captures a scheduling
    stack per event for race reports; turn it off for very large
    scenarios where the digest verdict alone is enough.  ``traps``
    controls the runtime random/wall-clock interception installed by
    :func:`sanitized`.
    """

    seed: int = 0
    record_stacks: bool = True
    stack_depth: int = 5
    traps: bool = True


@dataclass(frozen=True)
class DispatchRecord:
    """One dispatched event: when, what, and who scheduled it."""

    t: float
    label: str        # e.g. "Process(installer:node0)" / "Timeout+10.0"
    site: str         # innermost non-engine frame at schedule time
    stack: tuple[str, ...] = ()

    @property
    def key(self) -> tuple[str, str]:
        """Identity used to match records across perturbed runs."""
        return (self.label, self.site)


def _relpath(filename: str) -> str:
    try:
        return Path(filename).resolve().relative_to(_REPO_ROOT).as_posix()
    except ValueError:
        return filename


def _event_label(event: Event) -> str:
    if isinstance(event, Process):
        return f"Process({event.name})"
    if isinstance(event, Timeout):
        return f"Timeout+{event.delay!r}"
    return type(event).__name__


class SanitizedEnvironment(Environment):
    """An :class:`Environment` with seeded-random same-tick tie-breaks.

    Heap entries are ``(time, (perturbation, seq), event)`` — the seeded
    32-bit perturbation dominates the sequence number, so events due at
    the same instant dispatch in a seed-dependent order while distinct
    instants keep their causal order.  The trailing sequence number
    keeps keys unique (events are never compared) and keeps a single
    run fully deterministic for its seed.

    Every dispatch is appended to :attr:`dispatch_log`; every scheduled
    event's scheduling stack is captured so a divergence can be
    explained, not just detected.
    """

    __slots__ = ("options", "dispatch_log", "_pert", "_meta", "_session")

    def __init__(self, initial_time: float = 0.0,
                 sanitize: Optional[SanitizeOptions] = None):
        options = sanitize
        if options is None:
            options = getattr(_engine, "_AMBIENT_SANITIZE", None)
        if options is None:
            options = SanitizeOptions()
        super().__init__(initial_time)
        self.options = options
        self.dispatch_log: list[DispatchRecord] = []
        self._pert = random.Random(("perturb", options.seed).__repr__())
        #: Event -> (label, site, stack), captured at schedule time
        self._meta: dict[Event, tuple[str, str, tuple[str, ...]]] = {}
        self._session = _ACTIVE_SESSION
        if self._session is not None:
            self._session.envs.append(self)

    # -- scheduling with perturbed tie-breaks ------------------------------
    _INTERNAL_FRAMES = frozenset(
        {"_capture", "_schedule", "timeout_batch", "step", "run"})

    def _capture(self) -> tuple[str, tuple[str, ...]]:
        """(site, stack) of the schedule call, machinery frames dropped."""
        raw = traceback.extract_stack()
        frames = [
            f for f in raw
            if "netsim/engine" not in f.filename.replace("\\", "/")
            and not (f.filename == _THIS_FILE
                     and f.name in self._INTERNAL_FRAMES)
        ]
        trimmed = frames[-self.options.stack_depth:]
        rendered = tuple(
            f"{_relpath(f.filename)}:{f.lineno} in {f.name}"
            for f in reversed(trimmed)
        )
        site = rendered[0] if rendered else "<unknown>"
        if not self.options.record_stacks:
            return site, ()
        return site, rendered

    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        event._scheduled = True
        if event._cancelled:
            self._n_cancelled += 1
        if event not in self._meta:
            site, stack = self._capture()
            label = _event_label(event)
            active = self._active_process
            if active is not None:
                label = f"{label} by {active.name}"
            self._meta[event] = (label, site, stack)
        heapq.heappush(
            self._queue,
            (self._now + delay,
             (self._pert.getrandbits(32), next(self._seq)),
             event),
        )

    def timeout_batch(self, delays: Iterable[float],
                      value: Any = None) -> list[Timeout]:
        # The base class pushes raw (due, seq, event) entries; sanitized
        # heaps need perturbed keys, so fall back to one-by-one creation
        # (identical semantics and sequence-number order, just slower).
        return [Timeout(self, delay, value) for delay in delays]

    # -- dispatch with logging ---------------------------------------------
    def step(self) -> None:
        if not self._queue:
            raise SimulationError("no more events to step through")
        when, _, event = heapq.heappop(self._queue)
        self._now = when
        meta = self._meta.pop(event, None)
        if event._cancelled:
            self._n_cancelled -= 1
            event._scheduled = False
            return
        if meta is None:
            meta = (_event_label(event), "<unknown>", ())
        self.dispatch_log.append(
            DispatchRecord(when, meta[0], meta[1], meta[2])
        )
        callbacks, event.callbacks = event.callbacks, []
        event._scheduled = False
        self.events_dispatched += 1
        for cb in callbacks:
            cb(event)

    def run(self, until: Optional[float | Event] = None) -> Any:
        # Same semantics as the base loop, routed through the recording
        # step(); sanitized runs trade raw speed for observability.
        step = self.step
        if isinstance(until, Event):
            stop_event = until
            while not stop_event._triggered:
                if stop_event._cancelled:
                    raise SimulationError(
                        "run(until=...) awaits a cancelled event, "
                        "which can never trigger"
                    )
                if not self._queue:
                    raise SimulationError(
                        "simulation ran out of events before the awaited "
                        "event triggered"
                    )
                step()
            if stop_event._ok:
                return stop_event._value
            raise stop_event._value
        deadline = float("inf") if until is None else float(until)
        while self._queue and self._queue[0][0] <= deadline:
            step()
        if deadline != float("inf"):
            self._now = max(self._now, deadline)
        return None


# -- the session: traps + write log -----------------------------------------------

_ACTIVE_SESSION: Optional["SanitizerSession"] = None

#: module-level random functions routed through the shared global RNG
_TRAPPED_RANDOM = (
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "getrandbits", "gauss", "expovariate",
    "betavariate", "normalvariate", "triangular", "vonmisesvariate",
    "paretovariate", "weibullvariate",
)
#: wall-clock reads (perf counters are left alone: harnesses time walls)
_TRAPPED_TIME = ("time", "time_ns")


def _caller_site() -> tuple[str, int]:
    frame = sys._getframe(2)
    return _relpath(frame.f_code.co_filename), frame.f_lineno


class SanitizerSession:
    """Collects runtime-trap diagnostics for one sanitized region."""

    def __init__(self, options: SanitizeOptions):
        self.options = options
        #: sanitized environments constructed while this session is active
        self.envs: list[SanitizedEnvironment] = []
        self._diagnostics: list[Diagnostic] = []
        self._seen: set[tuple[str, str, int]] = set()
        #: (id(obj), attr) -> (tick, writer) — the same-tick write log
        self._write_log: dict[tuple[int, str], tuple[float, str]] = {}
        self._watched: list[tuple[type, Optional[Callable]]] = []
        self._saved_traps: list[tuple[Any, str, Callable]] = []

    # -- diagnostics ------------------------------------------------------
    @property
    def current_env(self) -> Optional[SanitizedEnvironment]:
        return self.envs[-1] if self.envs else None

    def diagnostics(self) -> list[Diagnostic]:
        """Sorted, deterministic trap findings."""
        return sorted(self._diagnostics, key=lambda d: d.sort_key)

    def _diag_once(self, code: str, message: str,
                   site: tuple[str, int], hint: str = "", **data) -> None:
        key = (code, site[0], site[1])
        if key in self._seen:
            return
        self._seen.add(key)
        self._diagnostics.append(Diagnostic(
            code=code,
            severity=code_info(code).severity,
            message=message,
            location=SourceLocation(site[0], site[1]),
            hint=hint,
            data=data,
        ))

    # -- random / wall-clock traps ----------------------------------------
    def _install_traps(self) -> None:
        for name in _TRAPPED_RANDOM:
            orig = getattr(random, name)

            def trap(*args, __orig=orig, __name=name, **kwargs):
                self._diag_once(
                    "RK311",
                    f"random.{__name}() drew from the unseeded "
                    f"module-level RNG at runtime",
                    _caller_site(),
                    hint="use a seeded random.Random(seed) instance; the "
                         "shared global RNG makes replay seed-dependent",
                    call=f"random.{__name}",
                )
                return __orig(*args, **kwargs)

            setattr(random, name, trap)
            self._saved_traps.append((random, name, orig))
        for name in _TRAPPED_TIME:
            orig = getattr(time, name)

            def trap(*args, __orig=orig, __name=name, **kwargs):
                self._diag_once(
                    "RK312",
                    f"time.{__name}() wall-clock read at runtime under a "
                    f"sanitized environment",
                    _caller_site(),
                    hint="read env.now (simulated time) instead",
                    call=f"time.{__name}",
                )
                return __orig(*args, **kwargs)

            setattr(time, name, trap)
            self._saved_traps.append((time, name, orig))

    def _remove_traps(self) -> None:
        for module, name, orig in reversed(self._saved_traps):
            setattr(module, name, orig)
        self._saved_traps.clear()

    # -- cross-process same-tick write log --------------------------------
    def watch(self, cls: type) -> None:
        """Log every attribute write on ``cls`` instances.

        Two *different* writers (processes, or a process and a dispatch
        callback) writing the same ``(object, attribute)`` within one
        simulated tick is flagged as RK313: whichever write lands last
        wins, and which one that is depends on tie-break order — the
        write-write shape of a scheduling race.  Writes mediated by a
        deterministic owner (e.g. the flow network crediting its flows)
        should not be watched; this trap is for state shared *between*
        processes.
        """
        own = cls.__dict__.get("__setattr__")
        effective = cls.__setattr__
        session = self

        def traced(obj, name, value, __orig=effective, __cls=cls):
            env = session.current_env
            if env is not None:
                ap = env._active_process
                writer = ap.name if ap is not None else "<dispatch>"
                key = (id(obj), name)
                now = env._now
                prev = session._write_log.get(key)
                if (prev is not None and prev[0] == now
                        and prev[1] != writer):
                    frame = sys._getframe(1)
                    session._diag_once(
                        "RK313",
                        f"{__cls.__name__}.{name} written by "
                        f"{prev[1]!r} and then {writer!r} within one "
                        f"tick (t={now:g})",
                        (_relpath(frame.f_code.co_filename),
                         frame.f_lineno),
                        hint="route the write through a single owner, or "
                             "make the update commutative — last-writer-"
                             "wins under a tie is a scheduling race",
                        attr=name, tick=now,
                        writers=sorted([prev[1], writer]),
                    )
                session._write_log[key] = (now, writer)
            __orig(obj, name, value)

        cls.__setattr__ = traced
        self._watched.append((cls, own))

    def _unwatch_all(self) -> None:
        for cls, own in reversed(self._watched):
            if own is None:
                delattr(cls, "__setattr__")
            else:
                setattr(cls, "__setattr__", own)
        self._watched.clear()


@contextmanager
def sanitized(options: Optional[SanitizeOptions] = None,
              watch: Iterable[type] = ()):
    """Run a region under the sanitizer.

    Inside the block every ``Environment()`` constructed anywhere — in
    ``build_cluster``, ``run_storm``, a test fixture — becomes a
    :class:`SanitizedEnvironment` with the given options, and the
    runtime traps are armed.  Yields the :class:`SanitizerSession`
    holding the per-environment dispatch logs and trap diagnostics.
    """
    global _ACTIVE_SESSION
    opts = options if options is not None else SanitizeOptions()
    session = SanitizerSession(opts)
    prev_session = _ACTIVE_SESSION
    _ACTIVE_SESSION = session
    prev_ambient = _engine.set_ambient_sanitize(opts)
    if opts.traps:
        session._install_traps()
    for cls in watch:
        session.watch(cls)
    try:
        yield session
    finally:
        session._unwatch_all()
        session._remove_traps()
        _engine.set_ambient_sanitize(prev_ambient)
        _ACTIVE_SESSION = prev_session


# -- scenarios --------------------------------------------------------------------


def _scenario_race_fixture(n: int) -> str:
    """A planted same-tick race: n processes mutate shared state at t=10.

    Every worker's timeout is due at the same instant, so their wakeups
    are logically concurrent — and both the append order and the
    non-associative float update make the outcome depend on dispatch
    order.  This is the positive control: the sanitizer must catch it.
    """
    env = Environment()  # ambient sanitize makes this a SanitizedEnvironment
    order: list[int] = []
    shared = [0.0]

    def worker(i: int):
        yield env.timeout(10.0)
        order.append(i)
        shared[0] = shared[0] * 1.0000001 + i  # order-sensitive

    for i in range(n):
        env.process(worker(i), name=f"racer{i}")
    env.run()
    return repr((order, shared[0])) + "\n"


def _scenario_table1(n: int) -> str:
    """The paper's Table I point: integrate + concurrently reinstall."""
    from .. import build_cluster

    sim = build_cluster(n_compute=n)
    sim.integrate_all()
    reports = sim.reinstall_all()
    lines = [
        f"{r.host} {r.method} {r.started_at!r} {r.finished_at!r}"
        for r in sorted(reports, key=lambda r: r.host)
    ]
    return "\n".join(lines) + "\n"


def _scenario_storm(n: int) -> str:
    """Whole-site power-restore install storm; digest is the SLO JSON."""
    from ..load import StormOptions, run_storm

    result = run_storm(StormOptions(n_nodes=n, seed=42))
    return result.slo_json()


#: name -> (runner, default node count).  Runners return the canonical
#: scenario output whose sha256 is the determinism digest.
SCENARIOS: dict[str, tuple[Callable[[int], str], int]] = {
    "race-fixture": (_scenario_race_fixture, 8),
    "table1": (_scenario_table1, 8),
    "storm": (_scenario_storm, 12),
}


@dataclass
class ScenarioRun:
    """One scenario execution under one perturbation seed."""

    scenario: str
    perturb_seed: int
    digest: str
    output: str
    dispatch_log: list[DispatchRecord]
    diagnostics: list[Diagnostic] = field(default_factory=list)


def run_scenario(name: str, perturb_seed: int,
                 nodes: Optional[int] = None,
                 record_stacks: bool = True) -> ScenarioRun:
    """Run one named scenario under the sanitizer; digest its output."""
    try:
        runner, default_nodes = SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r} (have: {', '.join(sorted(SCENARIOS))})"
        ) from None
    opts = SanitizeOptions(seed=perturb_seed, record_stacks=record_stacks)
    with sanitized(opts) as session:
        output = runner(nodes if nodes is not None else default_nodes)
    log: list[DispatchRecord] = []
    for env in session.envs:
        log.extend(env.dispatch_log)
    return ScenarioRun(
        scenario=name,
        perturb_seed=perturb_seed,
        digest=hashlib.sha256(output.encode("utf-8")).hexdigest(),
        output=output,
        dispatch_log=log,
        diagnostics=session.diagnostics(),
    )


# -- divergence diagnosis ---------------------------------------------------------


@dataclass
class RaceReport:
    """A proven scheduling race: what diverged, where, and which pair."""

    scenario: str
    seeds: tuple[int, int]
    digests: tuple[str, str]
    divergence_time: float
    pair: Optional[tuple[DispatchRecord, DispatchRecord]]
    note: str = ""

    def render(self) -> str:
        a, b = self.seeds
        lines = [
            f"RACE: scenario {self.scenario!r} diverges between "
            f"perturbation seeds {a} and {b}",
            f"  digest (seed {a}): {self.digests[0]}",
            f"  digest (seed {b}): {self.digests[1]}",
            f"  first divergent simulated timestamp: "
            f"t={self.divergence_time:g}",
        ]
        if self.note:
            lines.append(f"  {self.note}")
        if self.pair is not None:
            ra, rb = self.pair
            lines.append("  colliding event pair (same tick, "
                         "perturbation-dependent order):")
            for tag, rec in ((f"seed {a}", ra), (f"seed {b}", rb)):
                lines.append(f"    [{tag}] {rec.label} scheduled at "
                             f"{rec.site}")
                for frame in rec.stack:
                    lines.append(f"        {frame}")
        return "\n".join(lines) + "\n"

    def to_diagnostic(self) -> Diagnostic:
        site = self.pair[0].site if self.pair is not None else "<unknown>"
        file, _, line = site.partition(":")
        lineno = int(line.split(" ")[0]) if line[:1].isdigit() else 0
        return Diagnostic(
            code="RK310",
            severity=code_info("RK310").severity,
            message=(
                f"scenario {self.scenario!r} digest diverges between "
                f"perturbation seeds {self.seeds[0]} and {self.seeds[1]} "
                f"(first divergence at t={self.divergence_time:g})"
            ),
            location=SourceLocation(file, lineno),
            hint="the colliding events are logically concurrent; make "
                 "the outcome independent of their dispatch order",
            data={
                "seeds": list(self.seeds),
                "divergence_time": self.divergence_time,
            },
        )


def _group_by_tick(
    log: list[DispatchRecord],
) -> list[tuple[float, list[DispatchRecord]]]:
    groups: list[tuple[float, list[DispatchRecord]]] = []
    for rec in log:
        if groups and groups[-1][0] == rec.t:
            groups[-1][1].append(rec)
        else:
            groups.append((rec.t, [rec]))
    return groups


def _first_difference(
    a: list[DispatchRecord], b: list[DispatchRecord],
) -> Optional[tuple[DispatchRecord, DispatchRecord]]:
    for ra, rb in zip(a, b):
        if ra.key != rb.key:
            return ra, rb
    return None


def diagnose_divergence(
    run_a: ScenarioRun, run_b: ScenarioRun,
) -> Optional[RaceReport]:
    """Compare two perturbed runs; a digest mismatch is a proven race.

    Same-tick events are concurrent, so two seeds legitimately dispatch
    each tick's population in different orders — a divergence exists
    only when the *digests* differ.  The dispatch logs then localise it:
    the first tick whose event multiset differs bounds the divergence,
    and the last purely-reordered tick at or before it names the
    colliding pair whose swap flipped the outcome.
    """
    if run_a.digest == run_b.digest:
        return None
    seeds = (run_a.perturb_seed, run_b.perturb_seed)
    digests = (run_a.digest, run_b.digest)
    ticks_a = _group_by_tick(run_a.dispatch_log)
    ticks_b = _group_by_tick(run_b.dispatch_log)
    reordered: list[tuple[float, list[DispatchRecord], list[DispatchRecord]]] = []
    divergent_t: Optional[float] = None
    divergent_pair: Optional[tuple[DispatchRecord, DispatchRecord]] = None
    note = ""
    for (ta, ga), (tb, gb) in zip(ticks_a, ticks_b):
        if ta != tb:
            divergent_t = min(ta, tb)
            note = (f"runs schedule different instants from here on "
                    f"(t={ta:g} vs t={tb:g})")
            break
        keys_a = [r.key for r in ga]
        keys_b = [r.key for r in gb]
        if sorted(keys_a) != sorted(keys_b):
            divergent_t = ta
            divergent_pair = _first_difference(ga, gb)
            note = "runs dispatch different event populations at this tick"
            break
        if keys_a != keys_b:
            reordered.append((ta, ga, gb))
    if divergent_t is None and len(ticks_a) != len(ticks_b):
        shorter = min(len(ticks_a), len(ticks_b))
        divergent_t = (ticks_a[shorter][0] if len(ticks_a) > shorter
                       else ticks_b[shorter][0])
        note = "one run schedules events past the other's final instant"
    pair = divergent_pair
    if reordered:
        if divergent_t is None:
            # Outcome diverged while every tick's population matched:
            # the first reordering is the first candidate cause.
            t, ga, gb = reordered[0]
            divergent_t = t
            note = ("every tick dispatched the same events; the first "
                    "perturbed reordering is the earliest candidate cause")
        else:
            before = [r for r in reordered if r[0] <= divergent_t]
            t, ga, gb = before[-1] if before else reordered[0]
        if pair is None:
            pair = _first_difference(ga, gb)
    if divergent_t is None:
        divergent_t = float("nan")
        note = "digests differ but dispatch logs are identical (racy " \
               "state outside the event system, e.g. iteration order)"
    return RaceReport(
        scenario=run_a.scenario,
        seeds=seeds,
        digests=digests,
        divergence_time=divergent_t,
        pair=pair,
        note=note,
    )
