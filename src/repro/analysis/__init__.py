"""repro.analysis — typed static analysis for the Rocks description layer.

Four analyzer families over one diagnostics core:

* **config analyzers** (:mod:`repro.analysis.config_passes`): semantic
  checks over the kickstart graph, node files, and rocks-dist stack —
  the defects the CERN/BNL follow-up papers report as the dominant
  cause of failed mass reinstalls, caught before any install;
* **determinism self-linter** (:mod:`repro.analysis.selfcheck`): AST
  passes over ``src/repro`` itself that flag the wall-clock / unseeded
  RNG / unordered-iteration / leaked-span bug classes earlier PRs fixed
  by hand;
* **deep dataflow passes** (:mod:`repro.analysis.deepcheck`): a
  project-wide symbol table + call graph feeding the RK3xx determinism
  analyses (unseeded-RNG taint, yield-straddling staleness, unbounded
  wait loops, order-sensitive float accumulation);
* **dynamic sanitizer** (:mod:`repro.analysis.sanitizer`): a runtime
  race detector that perturbs same-tick scheduling order under a seeded
  RNG and proves races by digest divergence.

Entry points::

    from repro.analysis import ConfigContext, analyze_config
    diags = analyze_config(ConfigContext(graph, node_files,
                                         dist_resolver=resolver))

    from repro.analysis import analyze_self, default_self_context
    diags = analyze_self(default_self_context())

    from repro.analysis import analyze_deep, default_deep_context
    diags = analyze_deep(default_deep_context())

    from repro.analysis import run_scenario, diagnose_divergence
    race = diagnose_divergence(run_scenario("table1", 1),
                               run_scenario("table1", 2))

or ``python -m repro lint [--self] [--deep] [--strict]`` and
``python -m repro sanitize table1``.
"""

from .baseline import Baseline, BaselineEntry
from .config_passes import PROVIDED_ATTRIBUTES, ConfigContext, analyze_config
from .deepcheck import DeepContext, analyze_deep, default_deep_context
from .diagnostics import CODES, CodeInfo, Diagnostic, Severity, SourceLocation, code_info
from .passes import (
    CONFIG_PASSES,
    DEEP_PASSES,
    SELF_PASSES,
    Pass,
    filter_codes,
    register_config,
    register_deep,
    register_self,
    run_passes,
)
from .render import JSON_SCHEMA_VERSION, render_json, render_text, summarize
from .sanitizer import (
    SCENARIOS,
    SanitizeOptions,
    SanitizedEnvironment,
    SanitizerSession,
    diagnose_divergence,
    run_scenario,
    sanitized,
)
from .selfcheck import SelfLintContext, analyze_self, default_self_context

__all__ = [
    "Baseline",
    "BaselineEntry",
    "CODES",
    "CodeInfo",
    "ConfigContext",
    "CONFIG_PASSES",
    "DeepContext",
    "DEEP_PASSES",
    "Diagnostic",
    "JSON_SCHEMA_VERSION",
    "Pass",
    "PROVIDED_ATTRIBUTES",
    "SCENARIOS",
    "SELF_PASSES",
    "SanitizeOptions",
    "SanitizedEnvironment",
    "SanitizerSession",
    "SelfLintContext",
    "Severity",
    "SourceLocation",
    "analyze_config",
    "analyze_deep",
    "analyze_self",
    "code_info",
    "default_deep_context",
    "default_self_context",
    "diagnose_divergence",
    "filter_codes",
    "register_config",
    "register_deep",
    "register_self",
    "render_json",
    "render_text",
    "run_scenario",
    "run_passes",
    "sanitized",
    "summarize",
]
