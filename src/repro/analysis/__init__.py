"""repro.analysis — typed static analysis for the Rocks description layer.

Two analyzer families over one diagnostics core:

* **config analyzers** (:mod:`repro.analysis.config_passes`): semantic
  checks over the kickstart graph, node files, and rocks-dist stack —
  the defects the CERN/BNL follow-up papers report as the dominant
  cause of failed mass reinstalls, caught before any install;
* **determinism self-linter** (:mod:`repro.analysis.selfcheck`): AST
  passes over ``src/repro`` itself that flag the wall-clock / unseeded
  RNG / unordered-iteration / leaked-span bug classes earlier PRs fixed
  by hand.

Entry points::

    from repro.analysis import ConfigContext, analyze_config
    diags = analyze_config(ConfigContext(graph, node_files,
                                         dist_resolver=resolver))

    from repro.analysis import analyze_self, default_self_context
    diags = analyze_self(default_self_context())

or ``python -m repro lint [--self] [--format json] [--strict]``.
"""

from .baseline import Baseline, BaselineEntry
from .config_passes import PROVIDED_ATTRIBUTES, ConfigContext, analyze_config
from .diagnostics import CODES, CodeInfo, Diagnostic, Severity, SourceLocation, code_info
from .passes import (
    CONFIG_PASSES,
    SELF_PASSES,
    Pass,
    filter_codes,
    register_config,
    register_self,
    run_passes,
)
from .render import JSON_SCHEMA_VERSION, render_json, render_text, summarize
from .selfcheck import SelfLintContext, analyze_self, default_self_context

__all__ = [
    "Baseline",
    "BaselineEntry",
    "CODES",
    "CodeInfo",
    "ConfigContext",
    "CONFIG_PASSES",
    "Diagnostic",
    "JSON_SCHEMA_VERSION",
    "Pass",
    "PROVIDED_ATTRIBUTES",
    "SELF_PASSES",
    "SelfLintContext",
    "Severity",
    "SourceLocation",
    "analyze_config",
    "analyze_self",
    "code_info",
    "default_self_context",
    "filter_codes",
    "register_config",
    "register_self",
    "render_json",
    "render_text",
    "run_passes",
    "summarize",
]
