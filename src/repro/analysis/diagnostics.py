"""Typed diagnostics: the shared currency of every analyzer.

The CERN and BNL follow-up papers both report that *configuration
description errors* — not hardware — dominated failed mass reinstalls.
Rocks' answer (and the original ``KickstartGenerator.lint``) was a flat
list of strings checked by eyeball.  This module replaces that with a
structured model so tools can filter, sort, render, baseline and gate
on findings mechanically:

* :class:`Diagnostic` — one finding: a stable error code (``RK101``),
  a :class:`Severity`, a source location, a message, an optional fix
  hint, an optional architecture tag, and free-form structured data;
* :class:`SourceLocation` — where it was found.  Config analyzers use
  *logical* files (``graph/default.xml``, ``nodes/mpi.xml``); the
  determinism self-linter uses real paths and line numbers;
* :data:`CODES` — the registry of every known code with its default
  severity and one-line description (rendered into README's table).

Codes are append-only and never renumbered: suppression baselines and
CI gates reference them by name.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = [
    "Severity",
    "SourceLocation",
    "Diagnostic",
    "CodeInfo",
    "CODES",
    "code_info",
]


class Severity(enum.Enum):
    """How bad a finding is; ordering is ERROR > WARNING > INFO."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        return {"error": 0, "warning": 1, "info": 2}[self.value]

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class SourceLocation:
    """Where a diagnostic points.

    ``file`` is a repo-relative path for real source files, or a logical
    name (``graph/default.xml``) for configuration objects that only
    exist as parsed XML.  ``line`` 0 means "the whole file".
    """

    file: str
    line: int = 0
    column: int = 0

    def __str__(self) -> str:
        if self.line <= 0:
            return self.file
        if self.column <= 0:
            return f"{self.file}:{self.line}"
        return f"{self.file}:{self.line}:{self.column}"


@dataclass
class Diagnostic:
    """One analyzer finding, stable enough to diff and baseline."""

    code: str                    # e.g. "RK101"
    severity: Severity
    message: str
    location: SourceLocation
    hint: str = ""               # how to fix it, when the pass knows
    arch: Optional[str] = None   # set when the finding is arch-conditional
    data: dict[str, Any] = field(default_factory=dict)

    @property
    def sort_key(self) -> tuple:
        """Deterministic ordering: location, then code, then message."""
        return (
            self.location.file,
            self.location.line,
            self.location.column,
            self.code,
            self.arch or "",
            self.message,
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-schema-stable dict (fixed key set, sorted ``data``)."""
        return {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
            "file": self.location.file,
            "line": self.location.line,
            "column": self.location.column,
            "hint": self.hint,
            "arch": self.arch,
            "data": {k: self.data[k] for k in sorted(self.data)},
        }

    def render(self) -> str:
        """One human-readable line (the text renderer's unit)."""
        tag = f" [{self.arch}]" if self.arch else ""
        return f"{self.location}: {self.code} {self.severity}: {self.message}{tag}"


@dataclass(frozen=True)
class CodeInfo:
    """Registry entry for one diagnostic code."""

    code: str
    severity: Severity
    title: str


#: Every code any pass may emit.  Append-only; renumbering breaks
#: committed baselines.
CODES: dict[str, CodeInfo] = {
    info.code: info
    for info in [
        # -- config-graph analyzers (RK1xx) --------------------------------
        CodeInfo("RK101", Severity.ERROR,
                 "graph references a node file that is not defined"),
        CodeInfo("RK102", Severity.WARNING,
                 "node file unreachable from any appliance root"),
        CodeInfo("RK103", Severity.WARNING,
                 "graph cycle (traversal tolerates it, but it is never intent)"),
        CodeInfo("RK104", Severity.WARNING,
                 "arch-conditional edge applies to no supported architecture"),
        CodeInfo("RK105", Severity.WARNING,
                 "package declared more than once across one traversal"),
        CodeInfo("RK106", Severity.ERROR,
                 "package does not resolve against the distribution"),
        CodeInfo("RK107", Severity.ERROR,
                 "post script references a database attribute nothing provides"),
        CodeInfo("RK108", Severity.WARNING,
                 "package shadowed in the distribution by another source"),
        CodeInfo("RK109", Severity.ERROR,
                 "distribution is empty (no packages survive composition)"),
        CodeInfo("RK110", Severity.ERROR,
                 "distribution name does not resolve to a repository"),
        # -- determinism self-linter (RK2xx) -------------------------------
        CodeInfo("RK201", Severity.ERROR,
                 "wall-clock read in simulation code"),
        CodeInfo("RK202", Severity.ERROR,
                 "module-level random.* call (unseeded shared RNG)"),
        CodeInfo("RK203", Severity.WARNING,
                 "iteration over an unordered set in a hot path"),
        CodeInfo("RK204", Severity.WARNING,
                 "telemetry span opened and discarded (never closed)"),
        CodeInfo("RK205", Severity.WARNING,
                 "metric series opened and discarded (never recorded or "
                 "flushed)"),
        CodeInfo("RK206", Severity.WARNING,
                 "unbounded queue construction in a load/netsim hot path"),
        CodeInfo("RK207", Severity.WARNING,
                 "per-host serial wait loop over cluster membership in a "
                 "campaign surface"),
        CodeInfo("RK208", Severity.WARNING,
                 "span opened without a parent= in instrumented simulation "
                 "code (breaks causal attribution)"),
        # -- dataflow determinism passes (RK30x, `repro lint --deep`) ------
        CodeInfo("RK301", Severity.ERROR,
                 "random.Random() constructed without a seed flows into "
                 "simulation code"),
        CodeInfo("RK302", Severity.WARNING,
                 "snapshot of shared mutable state captured before a yield "
                 "and consumed after it"),
        CodeInfo("RK303", Severity.WARNING,
                 "polling wait loop with no timeout, deadline or attempt "
                 "bound on the path"),
        CodeInfo("RK304", Severity.WARNING,
                 "order-sensitive float accumulation over an unordered "
                 "iterable in a hot path"),
        # -- dynamic sanitizer (RK31x, `repro sanitize`) -------------------
        CodeInfo("RK310", Severity.ERROR,
                 "scheduling race: digests diverge across perturbation "
                 "seeds"),
        CodeInfo("RK311", Severity.ERROR,
                 "unseeded module-level random.* call at runtime under a "
                 "sanitized environment"),
        CodeInfo("RK312", Severity.ERROR,
                 "wall-clock read at runtime under a sanitized environment"),
        CodeInfo("RK313", Severity.WARNING,
                 "same object attribute written by two writers within one "
                 "simulated tick"),
    ]
}


def code_info(code: str) -> CodeInfo:
    try:
        return CODES[code]
    except KeyError:
        raise ValueError(f"unknown diagnostic code {code!r}") from None
