"""The open-loop load generator.

Replays an :class:`~repro.load.arrivals.ArrivalProcess` schedule against
anything with the HTTP client surface ``get(client, path)`` — an
:class:`~repro.netsim.HttpServer`, a :class:`~repro.netsim.LoadBalancer`,
or an :class:`~repro.services.httpd.InstallReplicaSet`'s balancer.  Each
arrival fires as its own environment process and the generator *never
waits for a response before issuing the next request*: under overload
the arrival schedule keeps its own time, which is exactly the pressure
admission control and autoscaling exist to absorb.

Outcomes are tallied, not raised: a 503 counts as *shed*, other HTTP
errors and transport failures as *errors*, and completed requests
contribute a latency sample.  :meth:`LoadGenerator.report` reduces the
tally to the p50/p95/p99 numbers an SLO speaks in.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..netsim import Environment, Event, HttpError, Process, TransferAborted
from ..netsim.topology import HostDown
from ..telemetry.summary import percentile
from .arrivals import ArrivalProcess

__all__ = ["LoadGenerator"]


class LoadGenerator:
    """Issue one request per scheduled arrival, round-robin over clients."""

    def __init__(
        self,
        env: Environment,
        target,
        clients: Sequence[str],
        path: str,
        process: ArrivalProcess,
        name: str = "load",
    ):
        if not clients:
            raise ValueError("load generator needs at least one client host")
        self.env = env
        self.target = target
        self.clients = list(clients)
        self.path = path
        self.process = process
        self.name = name
        self.issued = 0
        self.completed = 0
        self.ok = 0
        self.shed = 0
        self.errors = 0
        self.latencies: list[float] = []
        self._schedule_done = False
        self._done: Optional[Event] = None
        self._driver: Optional[Process] = None

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> "LoadGenerator":
        if self._driver is not None:
            raise RuntimeError("load generator already started")
        self._done = self.env.event()
        self._driver = self.env.process(
            self._drive(), name=f"loadgen:{self.name}"
        )
        return self

    @property
    def done(self) -> Event:
        """Event fired when every issued request has resolved."""
        if self._done is None:
            raise RuntimeError("load generator not started")
        return self._done

    def _drive(self):
        env = self.env
        last = 0.0
        for i, t in enumerate(self.process.times()):
            if t > last:
                yield env.timeout(t - last)
                last = t
            client = self.clients[i % len(self.clients)]
            self.issued += 1
            env.process(
                self._one(client), name=f"loadgen:{self.name}:{self.issued}"
            )
        self._schedule_done = True
        self._maybe_finish()

    def _one(self, client: str):
        t0 = self.env.now
        try:
            yield self.target.get(client, self.path)
        except HttpError as err:
            if err.status == 503:
                self.shed += 1
            else:
                self.errors += 1
        except (TransferAborted, HostDown):
            self.errors += 1
        else:
            self.ok += 1
            self.latencies.append(self.env.now - t0)
        self.completed += 1
        self._maybe_finish()

    def _maybe_finish(self) -> None:
        if (
            self._schedule_done
            and self.completed == self.issued
            and self._done is not None
            and not self._done.triggered
        ):
            self._done.succeed(self)

    # -- results -----------------------------------------------------------
    @property
    def shed_rate(self) -> float:
        return self.shed / self.completed if self.completed else 0.0

    def report(self) -> dict:
        """Outcome tally plus latency percentiles (seconds)."""
        return {
            "name": self.name,
            "arrivals": self.process.describe(),
            "issued": self.issued,
            "completed": self.completed,
            "ok": self.ok,
            "shed": self.shed,
            "errors": self.errors,
            "shed_rate": self.shed_rate,
            "latency_s": {
                "p50": percentile(self.latencies, 0.50),
                "p95": percentile(self.latencies, 0.95),
                "p99": percentile(self.latencies, 0.99),
                "max": max(self.latencies, default=0.0),
            },
        }
