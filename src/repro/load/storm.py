"""The install storm: whole-site power restore, replayed end to end.

The canonical large-cluster disaster (CERN's and LCG-1's operations
reports both open with it): utility power drops, every PDU goes dark,
and when power returns all N nodes boot *simultaneously* — each one
DHCPs, pulls its kickstart, and then its full distribution over HTTP in
one thundering herd against a single frontend.

:func:`run_storm` is the driver: it builds and integrates a cluster,
hardens the frontend (admission control with seeded Retry-After jitter,
circuit breakers, supervisor), stands up monitoring, optionally closes
the loop with a gauge-driven
:class:`~repro.resilience.Autoscaler` over an
:class:`~repro.services.httpd.InstallReplicaSet`, then arms the
``SitePowerFailure``/``PowerRestore`` fault pair and measures recovery.

The output is an SLO report — p99 install-HTTP latency, shed counts,
and time-to-stable-cluster — serialised as canonical JSON so the same
seed always produces a byte-identical artifact; that byte-identity is a
CI invariant.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Optional

from ..cluster import MachineState
from ..installer import DEFAULT_CALIBRATION, InstallCalibration
from ..netsim import AdmissionConfig, AllOf, AnyOf, Interrupt
from ..quickbuild import RocksCluster, build_cluster
from ..services.httpd import InstallReplicaSet
from ..telemetry import Tracer

__all__ = ["StormOptions", "StormResult", "run_storm", "slo_json"]

SLO_FORMAT = "repro-storm-slo"
SLO_VERSION = 1


@dataclass(frozen=True)
class StormOptions:
    """Scenario knobs for :func:`run_storm` — all defaults deterministic."""

    n_nodes: int = 32
    seed: int = 42
    #: seconds after integration when the site loses power
    fail_at: float = 60.0
    #: seconds after integration when power is restored (the herd)
    restore_at: float = 360.0
    #: close the loop: autoscale install-server replicas from the gauges
    autoscale: bool = True
    #: per-node max seeded delay before the first DISCOVER after boot
    dhcp_stagger: float = 45.0
    #: admission control on the install httpd (and cloned to replicas)
    max_concurrent: int = 6
    queue_limit: int = 8
    retry_after: float = 20.0
    retry_jitter: float = 0.75
    #: autoscaler cadence and bounds
    scaler_interval: float = 15.0
    scaler_cooldown: float = 45.0
    max_replicas: int = 8
    #: monitoring sampling period (the gauges the scaler sees)
    monitor_interval: float = 15.0
    #: give up waiting for stability this long after the restore
    deadline: float = 4.0 * 3600.0

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("need at least one node")
        if not 0 <= self.fail_at < self.restore_at:
            raise ValueError("need 0 <= fail_at < restore_at")
        if self.deadline <= 0:
            raise ValueError("deadline must be positive")


@dataclass
class StormResult:
    """Everything one storm run produced, plus the SLO report."""

    options: StormOptions
    sim: RocksCluster
    tracer: Tracer
    report: dict
    injector: object
    resilience: object
    monitoring: object
    autoscaler: Optional[object] = None
    replica_set: Optional[InstallReplicaSet] = None
    scale_events: list = field(default_factory=list)

    @property
    def stable(self) -> bool:
        return bool(self.report["stable"])

    @property
    def time_to_stable(self) -> Optional[float]:
        return self.report["time_to_stable_s"]

    def slo_json(self) -> str:
        return slo_json(self.report)

    def render(self) -> str:
        rep = self.report
        lines = [
            f"install storm: {rep['n_nodes']} nodes, seed {rep['seed']}, "
            f"autoscale={'on' if rep['autoscale'] else 'off'}",
            f"  power lost t={self.options.fail_at:g}s, "
            f"restored t={self.options.restore_at:g}s",
        ]
        if rep["stable"]:
            lines.append(
                f"  stable cluster after {rep['time_to_stable_s']:.0f}s "
                f"({rep['nodes_up']}/{rep['n_nodes']} nodes up)"
            )
        else:
            lines.append(
                f"  NOT stable at deadline: {rep['nodes_up']}/{rep['n_nodes']} "
                f"nodes up"
            )
        http = rep["http"]
        lines.append(
            f"  install HTTP: {http['requests']} requests, "
            f"p50 {http['p50_s']:.1f}s, p99 {http['p99_s']:.1f}s"
        )
        shed = rep["shed"]
        lines.append(
            f"  shed: {shed['total']} rejected "
            f"(rate {shed['rate']:.3f}), last reject "
            f"{shed['last_reject_after_restore_s']:.0f}s after restore"
        )
        scaler = rep["autoscaler"]
        lines.append(
            f"  autoscaler: {scaler['actions']} action(s), "
            f"peak {scaler['peak_replicas']} replica(s), "
            f"final {scaler['final_replicas']}"
        )
        return "\n".join(lines)


def _round(value, places: int = 3):
    """Round every float in a JSON-ish structure (canonical artifact)."""
    if isinstance(value, float):
        return round(value, places)
    if isinstance(value, dict):
        return {k: _round(v, places) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_round(v, places) for v in value]
    return value


def slo_json(report: dict) -> str:
    """Canonical JSON: sorted keys, no whitespace, trailing newline."""
    return json.dumps(report, sort_keys=True, separators=(",", ":")) + "\n"


def _settle(env, machines):
    """Process: resolve once every machine has reached UP (one barrier).

    All state-watches arm simultaneously, so settle time is the max over
    machines rather than a rack-order serial walk — and a machine that
    flaps after reaching UP cannot be missed the way a serial walk
    misses hosts behind the cursor.
    """
    yield AllOf(env, [m.wait_for_state(MachineState.UP) for m in machines])
    return env.now


def run_storm(
    options: Optional[StormOptions] = None,
    calibration: InstallCalibration = DEFAULT_CALIBRATION,
) -> StormResult:
    """Replay the power-restore storm; returns the result + SLO report."""
    from ..faults import FaultInjector, FaultPlan, PowerRestore, SitePowerFailure
    from ..monitoring import MonitoringOptions, enable_cluster_monitoring
    from ..resilience import (
        Autoscaler,
        AutoscalerPolicy,
        ResilienceOptions,
        harden_frontend,
    )

    opts = options or StormOptions()
    tracer = Tracer()
    cal = dataclasses.replace(
        calibration, dhcp_stagger_seconds=opts.dhcp_stagger
    )
    sim = build_cluster(
        n_compute=opts.n_nodes, calibration=cal, seed=opts.seed, tracer=tracer
    )
    env = sim.env
    frontend = sim.frontend
    sim.integrate_all()
    t_integrated = env.now

    # Replica set first, so the breaker layer wraps the *balanced* source
    # and installs its per-backend avoidance hook on the balancer.
    replica_set = InstallReplicaSet(frontend.install_server)
    frontend.installer.source = replica_set
    admission = AdmissionConfig(
        max_concurrent=opts.max_concurrent,
        queue_limit=opts.queue_limit,
        retry_after=opts.retry_after,
        retry_jitter=opts.retry_jitter,
        jitter_seed=opts.seed,
    )
    resilience = harden_frontend(
        frontend, ResilienceOptions(admission=admission)
    )
    monitoring = enable_cluster_monitoring(
        frontend,
        sim.nodes,
        MonitoringOptions(interval=opts.monitor_interval, seed=opts.seed),
    )
    autoscaler = None
    if opts.autoscale:
        autoscaler = Autoscaler.from_monitoring(
            env,
            replica_set,
            monitoring.aggregator,
            frontend.machine.hostid,
            policy=AutoscalerPolicy(
                interval=opts.scaler_interval,
                cooldown=opts.scaler_cooldown,
                max_replicas=opts.max_replicas,
                seed=opts.seed,
            ),
        )

    # Root span for the whole storm: fault injections parent on it
    # directly, and every install in the restore herd reaches it through
    # Machine.trace_parent — one causality tree for `repro explain`.
    storm_span = tracer.span(
        "storm", f"x{opts.n_nodes}", nodes=opts.n_nodes, seed=opts.seed
    )
    plan = FaultPlan(
        "power-restore",
        (
            SitePowerFailure(at=opts.fail_at),
            PowerRestore(at=opts.restore_at),
        ),
        seed=opts.seed,
    )
    injector = FaultInjector(plan).arm(frontend, sim.nodes, parent=storm_span)

    t_restore = t_integrated + opts.restore_at
    # Let the power events fire, then race recovery against the deadline.
    env.run(until=t_restore)
    settle = env.process(_settle(env, sim.nodes), name="storm:settle")
    deadline = env.timeout(opts.deadline)
    env.run(until=AnyOf(env, [settle, deadline]))
    stable = settle.triggered and settle.ok
    t_stable = settle.value if stable else None
    if not stable and settle.is_alive:
        settle.interrupt("storm deadline")
        try:
            env.run(until=settle)
        except Interrupt:
            pass
    if autoscaler is not None:
        autoscaler.stop()
    storm_span.end(
        stable=stable, outcome="stable" if stable else "deadline"
    )

    report = _slo_report(
        opts, sim, tracer, t_restore, stable, t_stable, autoscaler
    )
    return StormResult(
        options=opts,
        sim=sim,
        tracer=tracer,
        report=report,
        injector=injector,
        resilience=resilience,
        monitoring=monitoring,
        autoscaler=autoscaler,
        replica_set=replica_set,
        scale_events=list(autoscaler.events) if autoscaler else [],
    )


def _slo_report(
    opts: StormOptions,
    sim: RocksCluster,
    tracer: Tracer,
    t_restore: float,
    stable: bool,
    t_stable: Optional[float],
    autoscaler,
) -> dict:
    """Reduce the run's telemetry to the SLO numbers, canonically."""
    from ..telemetry.summary import percentile

    env = sim.env
    # Install-HTTP latency: completed http spans from the herd (post-restore).
    durations = [
        span.duration
        for span in tracer.spans("http")
        if span.t1 is not None and span.t0 >= t_restore
    ]
    rejects = [
        e["t"] for e in tracer.events("http-reject") if e["t"] >= t_restore
    ]
    completed = len(durations)
    shed = len(rejects)
    nodes_up = sum(
        1 for m in sim.nodes if m.state is MachineState.UP
    )
    events = []
    peak_replicas = 0
    if autoscaler is not None:
        events = [
            {"t_s": e.t - t_restore, "action": e.action, "replicas": e.replicas}
            for e in autoscaler.events
        ]
        peak_replicas = max((e.replicas for e in autoscaler.events), default=0)
    report = {
        "format": SLO_FORMAT,
        "version": SLO_VERSION,
        "n_nodes": opts.n_nodes,
        "seed": opts.seed,
        "autoscale": opts.autoscale,
        "dhcp_stagger_s": opts.dhcp_stagger,
        "stable": stable,
        "time_to_stable_s": (
            None if t_stable is None else t_stable - t_restore
        ),
        "nodes_up": nodes_up,
        "http": {
            "requests": completed,
            "p50_s": percentile(durations, 0.50),
            "p95_s": percentile(durations, 0.95),
            "p99_s": percentile(durations, 0.99),
            "max_s": max(durations, default=0.0),
        },
        "shed": {
            "total": shed,
            "rate": shed / (shed + completed) if (shed + completed) else 0.0,
            "last_reject_after_restore_s": (
                max(rejects) - t_restore if rejects else 0.0
            ),
        },
        "autoscaler": {
            "actions": len(events),
            "peak_replicas": peak_replicas,
            "final_replicas": (
                autoscaler.n_replicas if autoscaler is not None else 0
            ),
            "events": events,
        },
        "end_time_s": env.now - t_restore,
    }
    return _round(report)
