"""Open-loop load generation and the install-storm scenario driver.

Two halves:

* :mod:`~repro.load.arrivals` / :mod:`~repro.load.generator` — seeded
  open-loop arrival processes (Poisson, diurnal, flash-crowd) and a
  generator that replays them against an HTTP target without ever
  waiting for responses: load that does not slow down when the server
  does;
* :mod:`~repro.load.storm` — the whole-site power-restore scenario
  (every PDU drops, then re-energizes at once) measured end to end,
  producing a canonical-JSON SLO report of p99 latency, shed rate, and
  time-to-stable-cluster.
"""

from .arrivals import ArrivalProcess, Diurnal, FlashCrowd, Poisson
from .generator import LoadGenerator
from .storm import StormOptions, StormResult, run_storm, slo_json

__all__ = [
    "ArrivalProcess",
    "Diurnal",
    "FlashCrowd",
    "Poisson",
    "LoadGenerator",
    "StormOptions",
    "StormResult",
    "run_storm",
    "slo_json",
]
