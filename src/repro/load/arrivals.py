"""Seeded open-loop arrival processes.

An *open-loop* load model issues requests on its own schedule, ignoring
how the server is coping — the property that distinguishes a real
client population (nodes rebooting after a power event, browsers
refreshing a status page) from the closed-loop benchmark clients that
politely wait for each response.  Under overload, open-loop arrivals
keep coming; that is what makes admission control and autoscaling
load-bearing rather than decorative.

Each process is a frozen dataclass; :meth:`ArrivalProcess.times`
materialises the whole schedule as a sorted list of offsets in
``[0, duration)``.  Generation uses Lewis–Shedler thinning against the
process's peak rate, so a non-homogeneous rate function (diurnal,
flash-crowd) needs no inversion — and every draw flows from ``seed``,
so the same process always produces the identical schedule.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

__all__ = ["ArrivalProcess", "Poisson", "Diurnal", "FlashCrowd"]


@dataclass(frozen=True)
class ArrivalProcess:
    """Base class: a seeded arrival schedule over ``[0, duration)``.

    ``rate`` is events/second (the constant rate for :class:`Poisson`,
    the peak for the shaped subclasses).  ``max_events`` bounds the
    materialised schedule — a mis-parameterised process degrades into a
    truncated schedule, never an unbounded list.
    """

    rate: float = 1.0
    duration: float = 60.0
    seed: int = 0
    max_events: int = 100_000

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError("rate must be positive")
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.max_events < 1:
            raise ValueError("max_events must be at least 1")

    # -- the shape, overridden by subclasses -------------------------------
    def rate_at(self, t: float) -> float:
        """Instantaneous rate at offset ``t`` (events/second)."""
        return self.rate

    def peak_rate(self) -> float:
        """An upper bound on :meth:`rate_at` over the whole duration."""
        return self.rate

    # -- schedule generation ----------------------------------------------
    def times(self) -> list[float]:
        """The arrival offsets, sorted ascending, deterministic in seed."""
        rng = random.Random(
            (type(self).__name__, self.seed, self.rate, self.duration).__repr__()
        )
        peak = self.peak_rate()
        out: list[float] = []
        t = 0.0
        while len(out) < self.max_events:
            t += rng.expovariate(peak)
            if t >= self.duration:
                break
            # Thinning: accept with probability rate_at(t)/peak.
            if rng.random() * peak <= self.rate_at(t):
                out.append(t)
        return out

    def describe(self) -> str:
        return (
            f"{type(self).__name__}(rate={self.rate:g}/s, "
            f"duration={self.duration:g}s, seed={self.seed})"
        )


@dataclass(frozen=True)
class Poisson(ArrivalProcess):
    """Memoryless arrivals at a constant rate — the null hypothesis."""


@dataclass(frozen=True)
class Diurnal(ArrivalProcess):
    """A day-night cycle: rate peaks at ``rate``, bottoms out at
    ``trough_frac * rate``, following a raised cosine of ``period``.

    The phase starts at the trough (t=0 is the quiet of the night), so
    a schedule shorter than half a period is a pure ramp-up.
    """

    period: float = 86_400.0
    trough_frac: float = 0.2

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.period <= 0:
            raise ValueError("period must be positive")
        if not 0 <= self.trough_frac <= 1:
            raise ValueError("trough_frac must be in [0, 1]")

    def rate_at(self, t: float) -> float:
        swing = 0.5 * (1.0 - math.cos(2.0 * math.pi * t / self.period))
        return self.rate * (self.trough_frac + (1.0 - self.trough_frac) * swing)


@dataclass(frozen=True)
class FlashCrowd(ArrivalProcess):
    """A baseline trickle with a rectangular burst — the slashdotting.

    Outside ``[burst_at, burst_at + burst_duration)`` arrivals trickle
    at ``base_frac * rate``; inside, they arrive at the full ``rate``.
    This is also the profile of a power-restore herd seen from the
    install server: near-silence, then everyone at once.
    """

    base_frac: float = 0.1
    burst_at: float = 0.0
    burst_duration: float = 30.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0 <= self.base_frac <= 1:
            raise ValueError("base_frac must be in [0, 1]")
        if self.burst_at < 0 or self.burst_duration <= 0:
            raise ValueError("burst window must be non-negative/positive")

    def rate_at(self, t: float) -> float:
        if self.burst_at <= t < self.burst_at + self.burst_duration:
            return self.rate
        return self.rate * self.base_frac
