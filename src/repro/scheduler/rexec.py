"""REXEC: UC Berkeley's transparent remote execution (§4.1).

"REXEC provides transparent, secure remote execution of parallel and
sequential jobs.  It has a sophisticated signal handling system which
provides remote forwarding of signals.  REXEC also redirects stdin,
stdout and stderr from each parallel process and it propagates a local
environment including environment variables, user ID, group ID and
current working directory."

The simulated rexecd runs a Python callable "command" per selected node,
capturing its stdout/stderr and honouring forwarded signals; this is
also the transport cluster-fork/cluster-kill ride on (§6.4).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from ..cluster import Machine, MachineState
from ..netsim import Environment

__all__ = ["Rexec", "RexecSession", "RemoteProcess", "Signal", "RemoteEnvironment"]


class Signal(enum.Enum):
    SIGTERM = 15
    SIGKILL = 9
    SIGINT = 2
    SIGUSR1 = 10


@dataclass(frozen=True)
class RemoteEnvironment:
    """What REXEC propagates from the submitting shell."""

    user: str
    uid: int
    gid: int
    cwd: str
    variables: dict[str, str] = field(default_factory=dict)


@dataclass
class RemoteProcess:
    """One process of a (possibly parallel) rexec job."""

    host: str
    rank: int
    env: RemoteEnvironment
    stdout: list[str] = field(default_factory=list)
    stderr: list[str] = field(default_factory=list)
    exit_code: Optional[int] = None
    signals_received: list[Signal] = field(default_factory=list)

    @property
    def finished(self) -> bool:
        return self.exit_code is not None


#: a command is fn(machine, process) -> exit_code; it may write to
#: process.stdout/stderr and read the propagated environment
RemoteCommand = Callable[[Machine, RemoteProcess], int]


class RexecSession:
    """A dispatched command: one RemoteProcess per node."""

    def __init__(self, processes: list[RemoteProcess], unreachable: list[str]):
        self.processes = processes
        self.unreachable = unreachable

    @property
    def stdout(self) -> list[str]:
        """Interleaved stdout, each line tagged with its origin (rank)."""
        out = []
        for p in self.processes:
            out.extend(f"{p.host}: {line}" for line in p.stdout)
        return out

    @property
    def exit_codes(self) -> dict[str, Optional[int]]:
        return {p.host: p.exit_code for p in self.processes}

    @property
    def ok(self) -> bool:
        return not self.unreachable and all(
            p.exit_code == 0 for p in self.processes
        )

    def forward_signal(self, signal: Signal) -> int:
        """Deliver a local signal to every remote process; returns count."""
        n = 0
        for p in self.processes:
            if not p.finished:
                p.signals_received.append(signal)
                if signal in (Signal.SIGTERM, Signal.SIGKILL, Signal.SIGINT):
                    p.exit_code = 128 + signal.value
                n += 1
        return n


class Rexec:
    """The rexec client + per-node daemons."""

    def __init__(self, env: Environment, resolve: Callable[[str], Machine]):
        """``resolve`` maps a hostname to its Machine (the cluster view)."""
        self.env = env
        self.resolve = resolve

    def run(
        self,
        hosts: Sequence[str],
        command: RemoteCommand,
        environment: RemoteEnvironment,
    ) -> RexecSession:
        """Execute ``command`` on each reachable, up host."""
        processes: list[RemoteProcess] = []
        unreachable: list[str] = []
        for rank, host in enumerate(hosts):
            try:
                machine = self.resolve(host)
            except KeyError:
                unreachable.append(host)
                continue
            if machine.state is not MachineState.UP:
                unreachable.append(host)
                continue
            proc = RemoteProcess(host=host, rank=rank, env=environment)
            try:
                proc.exit_code = command(machine, proc)
            except Exception as err:
                proc.stderr.append(str(err))
                proc.exit_code = 1
            processes.append(proc)
        return RexecSession(processes, unreachable)
