"""REXEC: UC Berkeley's transparent remote execution (§4.1).

"REXEC provides transparent, secure remote execution of parallel and
sequential jobs.  It has a sophisticated signal handling system which
provides remote forwarding of signals.  REXEC also redirects stdin,
stdout and stderr from each parallel process and it propagates a local
environment including environment variables, user ID, group ID and
current working directory."

The simulated rexecd runs a Python callable "command" per selected node,
capturing its stdout/stderr and honouring forwarded signals; this is
also the transport cluster-fork/cluster-kill ride on (§6.4).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Generator, Optional, Sequence, Union

from ..cluster import Machine, MachineState
from ..netsim import AnyOf, Environment, Interrupt, Process

__all__ = [
    "Rexec",
    "RexecSession",
    "RemoteProcess",
    "RemoteDispatch",
    "Signal",
    "RemoteEnvironment",
]


class Signal(enum.Enum):
    SIGTERM = 15
    SIGKILL = 9
    SIGINT = 2
    SIGUSR1 = 10


@dataclass(frozen=True)
class RemoteEnvironment:
    """What REXEC propagates from the submitting shell."""

    user: str
    uid: int
    gid: int
    cwd: str
    variables: dict[str, str] = field(default_factory=dict)


@dataclass
class RemoteProcess:
    """One process of a (possibly parallel) rexec job."""

    host: str
    rank: int
    env: RemoteEnvironment
    stdout: list[str] = field(default_factory=list)
    stderr: list[str] = field(default_factory=list)
    exit_code: Optional[int] = None
    signals_received: list[Signal] = field(default_factory=list)
    #: the target died (powered off, hung, or was unresolvable) before
    #: the command could finish — the typed NODE_DEAD terminal state
    node_dead: bool = False
    #: why the command never produced an exit code (death cause, abort)
    error: Optional[str] = None

    @property
    def finished(self) -> bool:
        return self.exit_code is not None


#: a command is fn(machine, process) -> exit_code; it may write to
#: process.stdout/stderr and read the propagated environment.  A command
#: may instead return a *generator of events* (a timed command): rexecd
#: then runs it on the simulation clock and its return value is the exit
#: code.
RemoteCommand = Callable[
    [Machine, RemoteProcess], Union[int, Generator]
]


class RexecSession:
    """A dispatched command: one RemoteProcess per node."""

    def __init__(self, processes: list[RemoteProcess], unreachable: list[str]):
        self.processes = processes
        self.unreachable = unreachable

    @property
    def stdout(self) -> list[str]:
        """Interleaved stdout, each line tagged with its origin (rank)."""
        out = []
        for p in self.processes:
            out.extend(f"{p.host}: {line}" for line in p.stdout)
        return out

    @property
    def exit_codes(self) -> dict[str, Optional[int]]:
        return {p.host: p.exit_code for p in self.processes}

    @property
    def ok(self) -> bool:
        return not self.unreachable and all(
            p.exit_code == 0 for p in self.processes
        )

    def forward_signal(self, signal: Signal) -> int:
        """Deliver a local signal to every remote process; returns count."""
        n = 0
        for p in self.processes:
            if not p.finished:
                p.signals_received.append(signal)
                if signal in (Signal.SIGTERM, Signal.SIGKILL, Signal.SIGINT):
                    p.exit_code = 128 + signal.value
                n += 1
        return n


@dataclass
class RemoteDispatch:
    """One in-flight remote command: the live record plus its session.

    ``process`` is the DES process driving the session; it triggers with
    the finished :class:`RemoteProcess` — *always*, even when the target
    host dies mid-command (``node_dead`` is then set and ``exit_code``
    stays ``None``).  ``proc`` is the same record, readable while the
    command is still running (stdout accumulates live).
    """

    host: str
    proc: RemoteProcess
    process: Process

    def abort(self, cause: str = "aborted") -> None:
        """Tear the session down (timeout expiry, operator cancel)."""
        if self.process.is_alive:
            self.process.interrupt(cause)


class Rexec:
    """The rexec client + per-node daemons."""

    def __init__(self, env: Environment, resolve: Callable[[str], Machine]):
        """``resolve`` maps a hostname to its Machine (the cluster view)."""
        self.env = env
        self.resolve = resolve

    # -- event-driven dispatch (the repro.exec transport) ------------------
    def spawn(
        self,
        host: str,
        command: RemoteCommand,
        environment: RemoteEnvironment,
        rank: int = 0,
    ) -> RemoteDispatch:
        """Dispatch one command asynchronously; never hangs on a dead host.

        The returned dispatch's ``process`` resolves with the
        :class:`RemoteProcess` when the command finishes — or *promptly*
        with ``node_dead=True`` when the target is unresolvable, not UP,
        or dies (power-off / hang / teardown) mid-command.  Before the
        dead-watch existed, a session awaiting a command on a host that
        a PDU killed mid-run waited forever; now death is a first-class
        typed result.
        """
        proc = RemoteProcess(host=host, rank=rank, env=environment)
        process = self.env.process(
            self._session(host, command, proc), name=f"rexecd:{host}"
        )
        return RemoteDispatch(host=host, proc=proc, process=process)

    def _session(
        self, host: str, command: RemoteCommand, proc: RemoteProcess
    ) -> Generator:
        env = self.env
        try:
            machine = self.resolve(host)
        except KeyError:
            proc.node_dead = True
            proc.error = "unknown host"
            return proc
        if machine.state is not MachineState.UP:
            proc.node_dead = True
            proc.error = f"host is {machine.state.value}"
            return proc

        def body() -> Generator:
            try:
                rv = command(machine, proc)
                if hasattr(rv, "send") and hasattr(rv, "throw"):
                    rv = yield from rv
            except Interrupt:
                raise
            except Exception as err:
                proc.stderr.append(str(err))
                return 1
            return rv if isinstance(rv, int) else 0

        child = env.process(body(), name=f"rexecd-cmd:{host}")
        # The dead-watch: resolve the session the instant the host's OS
        # stops running underneath the command.
        went_off = machine.wait_for_state(MachineState.OFF)
        went_hung = machine.wait_for_state(MachineState.HUNG)
        try:
            yield AnyOf(env, (child, went_off, went_hung))
        except Interrupt as interrupt:
            if child.is_alive:
                child.interrupt(interrupt.cause)
            proc.error = str(interrupt.cause or "aborted")
            return proc
        finally:
            machine.cancel_wait(went_off)
            machine.cancel_wait(went_hung)
        if child.triggered:
            proc.exit_code = child.value if child.ok else 1
            return proc
        child.interrupt("node died")
        proc.node_dead = True
        proc.error = f"host died mid-command (now {machine.state.value})"
        return proc

    def run(
        self,
        hosts: Sequence[str],
        command: RemoteCommand,
        environment: RemoteEnvironment,
    ) -> RexecSession:
        """Execute ``command`` on each reachable, up host."""
        processes: list[RemoteProcess] = []
        unreachable: list[str] = []
        for rank, host in enumerate(hosts):
            try:
                machine = self.resolve(host)
            except KeyError:
                unreachable.append(host)
                continue
            if machine.state is not MachineState.UP:
                unreachable.append(host)
                continue
            proc = RemoteProcess(host=host, rank=rank, env=environment)
            try:
                proc.exit_code = command(machine, proc)
            except Exception as err:
                proc.stderr.append(str(err))
                proc.exit_code = 1
            processes.append(proc)
        return RexecSession(processes, unreachable)
