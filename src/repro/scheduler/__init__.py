"""Workload management substrate: PBS, the Maui scheduler, and REXEC."""

from .maui import MauiScheduler
from .mpirun import Mpirun, MpirunError
from .pbs import Job, JobState, NodeState, PbsError, PbsServer
from .rexec import (
    RemoteEnvironment,
    RemoteProcess,
    Rexec,
    RexecSession,
    Signal,
)

__all__ = [
    "MauiScheduler",
    "Mpirun",
    "MpirunError",
    "Job",
    "JobState",
    "NodeState",
    "PbsError",
    "PbsServer",
    "RemoteEnvironment",
    "RemoteProcess",
    "Rexec",
    "RexecSession",
    "Signal",
]
