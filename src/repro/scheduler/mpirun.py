"""mpirun: interactive parallel launch over REXEC (§4.1).

"For interactive and development environments, Rocks includes mpirun
from the MPICH distribution and REXEC...  REXEC provides transparent,
secure remote execution of parallel and sequential jobs."

This mpirun selects N up nodes (a machinefile, or every compute node),
assigns MPI ranks, propagates the caller's environment plus the
``MPI_RANK``/``MPI_NPROCS`` variables MPICH's ch_p4 device exports, and
returns a session whose stdio and signals behave like §4.1 describes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Optional, Sequence

from .rexec import RemoteCommand, RemoteEnvironment, Rexec, RexecSession

__all__ = ["Mpirun", "MpirunError"]


class MpirunError(Exception):
    """Not enough nodes, or a bad launch request."""


class Mpirun:
    """The mpirun client on the frontend."""

    def __init__(
        self,
        rexec: Rexec,
        default_machinefile: Callable[[], list[str]],
    ):
        """``default_machinefile`` lists candidate hostnames (e.g. the
        database's compute members) when the caller gives none."""
        self.rexec = rexec
        self.default_machinefile = default_machinefile

    def _up_hosts(self, machinefile: Optional[Sequence[str]]) -> list[str]:
        candidates = (
            list(machinefile)
            if machinefile is not None
            else self.default_machinefile()
        )
        up = []
        for host in candidates:
            try:
                machine = self.rexec.resolve(host)
            except KeyError:
                continue
            if machine.is_up:
                up.append(host)
        return up

    def run(
        self,
        np: int,
        command: RemoteCommand,
        environment: RemoteEnvironment,
        machinefile: Optional[Sequence[str]] = None,
        program: str = "a.out",
    ) -> RexecSession:
        """``mpirun -np N command``.

        Ranks wrap around the machinefile when N exceeds the node count
        (MPICH's default round-robin placement).  Every rank's
        environment carries MPI_RANK and MPI_NPROCS, and the program
        name appears in each node's process table for cluster-ps.
        """
        if np <= 0:
            raise MpirunError("mpirun: -np must be positive")
        hosts = self._up_hosts(machinefile)
        if not hosts:
            raise MpirunError("mpirun: no up nodes available")
        placement = [hosts[i % len(hosts)] for i in range(np)]

        def rank_command(machine, proc):
            machine.user_processes.append(program)
            try:
                return command(machine, proc)
            finally:
                if program in machine.user_processes:
                    machine.user_processes.remove(program)

        # per-rank environments: REXEC propagates, mpirun decorates
        sessions = []
        processes = []
        unreachable: list[str] = []
        for rank, host in enumerate(placement):
            rank_env = replace(
                environment,
                variables={
                    **environment.variables,
                    "MPI_RANK": str(rank),
                    "MPI_NPROCS": str(np),
                },
            )
            session = self.rexec.run([host], rank_command, rank_env)
            processes.extend(session.processes)
            unreachable.extend(session.unreachable)
            for proc in session.processes:
                proc.rank = rank
        return RexecSession(processes, unreachable)
