"""The Portable Batch System substrate.

§4.1: "we've packaged the Portable Batch System (PBS) and the Maui
scheduler.  PBS is used for its workload management system (starting
and monitoring jobs) and Maui is used for its rich scheduling
functionality.  When the frontend is installed, PBS and Maui are
automatically started and a default queue is defined."

PBS here is the bookkeeping half: queues, job records, node states.
Scheduling decisions (which job runs where, draining nodes for a
cluster reinstall) belong to :mod:`repro.scheduler.maui`.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional

from ..netsim import Environment, Event

__all__ = ["PbsServer", "Job", "JobState", "NodeState", "PbsError"]


class PbsError(Exception):
    """qsub/qdel/pbsnodes misuse."""


class JobState(enum.Enum):
    QUEUED = "Q"
    RUNNING = "R"
    COMPLETE = "C"
    CANCELLED = "X"
    FAILED = "F"  # a node died under the job


class NodeState(enum.Enum):
    FREE = "free"
    JOB_EXCLUSIVE = "job-exclusive"
    DOWN = "down"
    OFFLINE = "offline"  # administratively drained


@dataclass
class Job:
    """One batch job."""

    job_id: int
    owner: str
    name: str
    nodes_requested: int
    walltime: float
    priority: int = 0
    system: bool = False  # e.g. the "reinstall cluster" job (§5)
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    state: JobState = JobState.QUEUED
    assigned_nodes: list[str] = field(default_factory=list)
    #: pin the job to specific hosts (e.g. "reinstall exactly this node")
    required_nodes: Optional[list[str]] = None
    #: invoked as fn(job) when the job starts (lets the reinstall job act)
    on_start: Optional[Callable[["Job"], None]] = None
    done: Optional[Event] = None

    @property
    def jid(self) -> str:
        return f"{self.job_id}.frontend-0"


class PbsServer:
    """pbs_server: queue and node-state bookkeeping.

    When constructed with ``resolve`` (hostname -> Machine), jobs become
    *real*: starting a job registers a process on each assigned machine
    (pbs_mom's child), and a machine leaving the UP state mid-job fails
    the job — so "do not disturb running applications" (§5) is an
    observable property, not an assumption.
    """

    def __init__(
        self,
        env: Environment,
        default_queue: str = "default",
        resolve: Optional[Callable[[str], Any]] = None,
    ):
        self.env = env
        self.default_queue = default_queue
        self.resolve = resolve
        self.queues: dict[str, list[Job]] = {default_queue: []}
        self._jobs: dict[int, Job] = {}
        self._nodes: dict[str, NodeState] = {}
        self._ids = itertools.count(1)
        self._watchers: dict[int, list[tuple[Any, Callable]]] = {}

    # -- node management (pbsnodes) ------------------------------------------
    def register_node(self, name: str) -> None:
        if name in self._nodes:
            raise PbsError(f"node {name} already registered")
        self._nodes[name] = NodeState.FREE

    def unregister_node(self, name: str) -> None:
        self._nodes.pop(name, None)

    def set_node_state(self, name: str, state: NodeState) -> None:
        if name not in self._nodes:
            raise PbsError(f"unknown node {name}")
        self._nodes[name] = state

    def node_state(self, name: str) -> NodeState:
        return self._nodes[name]

    def nodes(self, state: Optional[NodeState] = None) -> list[str]:
        return sorted(
            n for n, s in self._nodes.items() if state is None or s is state
        )

    def nodes_file(self) -> str:
        """The PBS ``nodes`` file the cluster DB report generates (§6.4)."""
        return "\n".join(f"{n} np=1" for n in sorted(self._nodes))

    # -- job management (qsub/qstat/qdel) ----------------------------------------
    def qsub(
        self,
        owner: str,
        name: str,
        nodes: int,
        walltime: float,
        queue: Optional[str] = None,
        priority: int = 0,
        system: bool = False,
        on_start: Optional[Callable[[Job], None]] = None,
        required_nodes: Optional[list[str]] = None,
    ) -> Job:
        if nodes <= 0:
            raise PbsError("a job needs at least one node")
        if walltime <= 0:
            raise PbsError("walltime must be positive")
        if required_nodes is not None and len(required_nodes) != nodes:
            raise PbsError("required_nodes length must match the node count")
        qname = queue or self.default_queue
        if qname not in self.queues:
            raise PbsError(f"no queue named {qname}")
        job = Job(
            job_id=next(self._ids),
            owner=owner,
            name=name,
            nodes_requested=nodes,
            walltime=walltime,
            priority=priority,
            system=system,
            submitted_at=self.env.now,
            on_start=on_start,
            done=self.env.event(),
            required_nodes=list(required_nodes) if required_nodes else None,
        )
        self._jobs[job.job_id] = job
        self.queues[qname].append(job)
        return job

    def qdel(self, job_id: int) -> None:
        job = self._jobs.get(job_id)
        if job is None:
            raise PbsError(f"unknown job {job_id}")
        if job.state is JobState.RUNNING:
            self._finish(job, JobState.CANCELLED)
        elif job.state is JobState.QUEUED:
            job.state = JobState.CANCELLED
            for q in self.queues.values():
                if job in q:
                    q.remove(job)
            if job.done is not None and not job.done.triggered:
                job.done.succeed(job)

    def qstat(self, state: Optional[JobState] = None) -> list[Job]:
        return sorted(
            (j for j in self._jobs.values() if state is None or j.state is state),
            key=lambda j: j.job_id,
        )

    def job(self, job_id: int) -> Job:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise PbsError(f"unknown job {job_id}") from None

    def add_queue(self, name: str) -> None:
        if name in self.queues:
            raise PbsError(f"queue {name} exists")
        self.queues[name] = []

    # -- execution hooks (driven by the scheduler) ------------------------------------
    def start_job(self, job: Job, nodes: list[str]) -> None:
        """Mark a queued job running on ``nodes`` and arm its completion."""
        if job.state is not JobState.QUEUED:
            raise PbsError(f"job {job.jid} is {job.state.value}, not queued")
        if len(nodes) != job.nodes_requested:
            raise PbsError(
                f"job {job.jid} wants {job.nodes_requested} nodes, got {len(nodes)}"
            )
        for n in nodes:
            if self._nodes.get(n) is not NodeState.FREE:
                raise PbsError(f"node {n} is not free")
        for q in self.queues.values():
            if job in q:
                q.remove(job)
        job.state = JobState.RUNNING
        job.started_at = self.env.now
        job.assigned_nodes = list(nodes)
        for n in nodes:
            self._nodes[n] = NodeState.JOB_EXCLUSIVE
        self._attach_to_machines(job)
        if job.on_start is not None:
            job.on_start(job)

        def run():
            yield self.env.timeout(job.walltime)
            if job.state is JobState.RUNNING:
                self._finish(job, JobState.COMPLETE)

        self.env.process(run(), name=f"job:{job.jid}")

    def _attach_to_machines(self, job: Job) -> None:
        """Spawn the job's processes on its machines and watch their health."""
        if self.resolve is None or job.system:
            return
        watchers = []
        for hostname in job.assigned_nodes:
            try:
                machine = self.resolve(hostname)
            except KeyError:
                continue
            machine.user_processes.append(job.name)

            def on_change(m, state, _job=job):
                # Any transition away from UP kills this MPI-style job.
                if (
                    _job.state is JobState.RUNNING
                    and state.value != "up"
                ):
                    self._finish(_job, JobState.FAILED)

            machine.on_state_change.append(on_change)
            watchers.append((machine, on_change))
        self._watchers[job.job_id] = watchers

    def _detach_from_machines(self, job: Job) -> None:
        for machine, listener in self._watchers.pop(job.job_id, []):
            if job.name in machine.user_processes:
                machine.user_processes.remove(job.name)
            if listener in machine.on_state_change:
                machine.on_state_change.remove(listener)

    def finish_job(self, job: Job) -> None:
        """Complete a running job before its walltime (its payload is done)."""
        if job.state is JobState.RUNNING:
            self._finish(job, JobState.COMPLETE)

    def _finish(self, job: Job, state: JobState) -> None:
        job.state = state
        job.finished_at = self.env.now
        self._detach_from_machines(job)
        for n in job.assigned_nodes:
            if self._nodes.get(n) is NodeState.JOB_EXCLUSIVE:
                self._nodes[n] = NodeState.FREE
        if job.done is not None and not job.done.triggered:
            job.done.succeed(job)

    def queued_jobs(self) -> list[Job]:
        out: list[Job] = []
        for q in self.queues.values():
            out.extend(q)
        return sorted(out, key=lambda j: j.job_id)
