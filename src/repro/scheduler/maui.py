"""A Maui-flavoured scheduler over the PBS substrate.

The paper uses Maui for its "rich scheduling functionality"; the single
behaviour the evaluation leans on is §5's upgrade recipe: *"the
production system can be upgraded by submitting a 'reinstall cluster'
job to Maui, as not to disturb any running applications.  Once the
reinstallation is complete, the next job will have a known, consistent
software base."*

The scheduler here implements priority + FIFO dispatch with that
drain semantics: a **system job** submitted for N nodes does not kill
running work — it waits, takes nodes as they free up, and (crucially)
keeps lower-priority queued jobs from jumping ahead onto nodes it has
reserved.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..netsim import Environment
from .pbs import Job, JobState, NodeState, PbsServer

__all__ = ["MauiScheduler"]


class MauiScheduler:
    """Periodic scheduling iterations against a PbsServer."""

    def __init__(
        self,
        env: Environment,
        pbs: PbsServer,
        iteration_seconds: float = 5.0,
    ):
        self.env = env
        self.pbs = pbs
        self.iteration_seconds = iteration_seconds
        self.iterations = 0
        self._running = False
        self._proc = None

    # -- lifecycle -------------------------------------------------------------
    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._proc = self.env.process(self._loop(), name="maui")

    def stop(self) -> None:
        self._running = False

    def _loop(self):
        while self._running:
            self.schedule_once()
            # Fixed-period iteration; slotted so aligned tickers share
            # one heap entry per instant.
            yield self.env.slotted_timeout(self.iteration_seconds)

    # -- one scheduling iteration --------------------------------------------------
    def schedule_once(self) -> int:
        """Dispatch as many queued jobs as possible; returns starts."""
        self.iterations += 1
        started = 0
        # Priority first, then submission order (FIFO within a priority).
        backlog = sorted(
            self.pbs.queued_jobs(), key=lambda j: (-j.priority, j.job_id)
        )
        if not backlog:  # idle iterations must stay cheap
            return 0
        free = self.pbs.nodes(NodeState.FREE)
        reserved = 0  # nodes promised to a blocked higher-priority job
        for job in backlog:
            if job.required_nodes is not None:
                # Pinned job (per-node reinstall): runs exactly when its
                # own nodes are free — never displaces running work.
                if all(n in free for n in job.required_nodes):
                    free = [n for n in free if n not in job.required_nodes]
                    self.pbs.start_job(job, list(job.required_nodes))
                    started += 1
                continue
            available = len(free) - reserved
            if job.nodes_requested <= available:
                nodes, free = (
                    free[: job.nodes_requested],
                    free[job.nodes_requested:],
                )
                self.pbs.start_job(job, nodes)
                started += 1
            elif job.system:
                # Drain semantics: hold every free node for the system job
                # rather than backfilling work behind it.
                reserved = len(free)
        return started
