"""The simulated Red Hat installer (anaconda) driven by a kickstart.

This is the process a node runs while in the ``INSTALLING`` state:

1. bring up Ethernet and DHCP (retrying until the cluster database knows
   the node — which is exactly the window insert-ethers uses to adopt
   new hardware);
2. fetch the dynamically generated kickstart file over HTTP (§6.1);
3. autodetect hardware, partition disks (non-root preserved);
4. pull each RPM over HTTP and install it — the per-package
   *download-then-unpack* interleaving is what makes install traffic
   bursty (~14 % wire duty cycle) and lets a single 100 Mbit server
   feed many concurrent reinstalls (Table I); every fetch is guarded by
   a timeout and bounded exponential-backoff retries, and payloads are
   checksum-verified (corrupt packages are re-fetched), so transient
   server crashes, link flaps, and bad payloads delay rather than kill
   an installation;
5. run %post scripts, including the Myrinet GM source rebuild on nodes
   with Myrinet hardware (20-30 % time penalty, §6.3);
6. hand back to the lifecycle, which reboots into the fresh OS.

Every line of progress goes to the machine console, where eKV makes it
remotely visible (Figure 7).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Generator, Optional

from ..cluster.node import Machine
from ..kernel import MyrinetDriver
from ..netsim import (
    AnyOf,
    Environment,
    HostDown,
    HttpError,
    Interrupt,
    Process,
    TransferAborted,
)
from ..rpm import BuildError
from ..services import DhcpLease, DhcpServer, ServiceError
from .hwdetect import probe
from .partition import apply_plan
from .phases import DEFAULT_CALIBRATION, InstallCalibration
from .profile import InstallProfile
from .screen import InstallProgress

__all__ = [
    "KickstartInstaller",
    "InstallError",
    "InstallReport",
    "InstallSource",
    "fetch_with_retry",
]


class InstallError(Exception):
    """Anaconda gave up: the failure verdict a hung installation reports.

    Raising this (rather than looping forever) is what turns a dead
    dhcpd or an unreachable install server into a diagnosable HUNG node
    that shoot-node's §4 escalation can recover.
    """


#: Retriable transport failures: the server crashed (5xx), the transfer
#: was reset (flow cancelled), or an endpoint link is down.
RETRIABLE_ERRORS = (HttpError, TransferAborted, ServiceError, HostDown)


def fetch_with_retry(
    env: Environment,
    make_fetch: Callable[[], Process],
    cal: InstallCalibration,
    what: str,
    say: Callable[[str], None] = lambda line: None,
    expect_checksum: str = "",
    stats: Optional[dict] = None,
    parent=None,
):
    """Fetch with a timeout, bounded retries, and checksum verification.

    ``make_fetch`` builds a fresh fetch process per attempt — against a
    load-balanced source each retry naturally re-selects a live server.
    A response whose checksum disagrees with ``expect_checksum`` counts
    as a failed attempt and is re-fetched.  ``stats`` (if given) gets
    ``retries``/``corrupt`` counters incremented.  Raises
    :class:`InstallError` once ``cal.download_max_attempts`` is spent.

    ``parent`` (a tracer span) parents the retry telemetry: each
    backoff sleep becomes a ``retry-wait`` span, so a critical-path
    analysis can attribute time lost to retry chains.
    """
    attempt = 0
    while True:
        attempt += 1
        fetch = make_fetch()
        deadline = env.timeout(cal.download_timeout_seconds)
        failure = None
        retry_hint = None  # Retry-After from an admission-control 503
        try:
            yield AnyOf(env, (fetch, deadline))
        except Interrupt:
            # The machine died under us: tear down the in-flight fetch.
            if fetch.is_alive:
                fetch.interrupt("installation aborted")
            raise
        except RETRIABLE_ERRORS as err:
            failure = str(err)
            retry_hint = getattr(err, "retry_after", None)
        else:
            if not fetch.triggered:
                fetch.interrupt("download timeout")
                failure = f"no data for {cal.download_timeout_seconds:.0f}s"
                if env.tracer.enabled:
                    env.tracer.event(
                        "download-timeout", what, parent=parent,
                        attempt=attempt,
                        timeout=cal.download_timeout_seconds,
                    )
            elif not fetch.ok:
                failure = str(fetch.value)
                retry_hint = getattr(fetch.value, "retry_after", None)
            else:
                resp = fetch.value
                got = getattr(resp, "checksum", "")
                if expect_checksum and got and got != expect_checksum:
                    failure = f"checksum mismatch ({got})"
                    if stats is not None:
                        stats["corrupt"] = stats.get("corrupt", 0) + 1
                else:
                    return resp
        if attempt >= cal.download_max_attempts:
            if env.tracer.enabled:
                env.tracer.event(
                    "download-failed", what, parent=parent,
                    attempts=attempt, failure=failure,
                )
            raise InstallError(
                f"{what}: giving up after {attempt} attempts ({failure})"
            )
        if stats is not None:
            stats["retries"] = stats.get("retries", 0) + 1
        if env.tracer.enabled:
            env.tracer.event(
                "download-retry", what, parent=parent,
                attempt=attempt, failure=failure,
            )
            env.tracer.metrics.inc("install.download_retries")
        backoff = cal.download_backoff(attempt)
        if retry_hint is not None and retry_hint > backoff:
            # A 503's Retry-After hint overrides a shorter backoff: the
            # server told us when capacity frees up — hammering it
            # sooner just earns another rejection.
            backoff = retry_hint
            if env.tracer.enabled:
                env.tracer.metrics.inc("install.retry_after_honored")
        say(f"{what}: {failure}; retrying in {backoff:.0f}s")
        if env.tracer.enabled:
            # The backoff sleep is dead time on the install's critical
            # path — trace it so `repro explain` can name it.
            with env.tracer.span("retry-wait", what, parent=parent,
                                 attempt=attempt, backoff=backoff):
                yield env.timeout(backoff)
        else:
            yield env.timeout(backoff)


class InstallSource:
    """Protocol the installer pulls from (an InstallServer or LoadBalancer).

    Must provide ``fetch_kickstart(client, parent=None) -> Process``
    whose response body is an :class:`InstallProfile`, and
    ``fetch_package(client, dist, pkg, max_rate, parent=None) ->
    Process``; ``parent`` threads trace context into the HTTP layer.
    """


@dataclass
class InstallReport:
    """Timings and counters for one completed installation."""

    host: str
    started_at: float
    finished_at: float = 0.0
    ip: Optional[str] = None
    n_packages: int = 0
    bytes_transferred: float = 0.0
    myrinet_rebuilt: bool = False
    phase_seconds: dict[str, float] = field(default_factory=dict)
    #: download attempts beyond the first (timeouts, 5xx, resets)
    download_retries: int = 0
    #: packages re-fetched because their payload checksum was wrong
    corrupt_refetches: int = 0

    @property
    def total_seconds(self) -> float:
        return self.finished_at - self.started_at

    @property
    def total_minutes(self) -> float:
        return self.total_seconds / 60.0


class KickstartInstaller:
    """Builds install-driver processes for machines (Machine.install_driver)."""

    def __init__(
        self,
        dhcp: DhcpServer,
        source,
        calibration: InstallCalibration = DEFAULT_CALIBRATION,
        myrinet: MyrinetDriver = MyrinetDriver(),
        on_progress: Optional[Callable[[Machine, str], None]] = None,
    ):
        self.dhcp = dhcp
        self.source = source
        self.cal = calibration
        self.myrinet = myrinet
        self.on_progress = on_progress
        self.reports: list[InstallReport] = []

    def attach(self, machine: Machine) -> None:
        """Wire this installer in as the machine's install driver."""
        machine.install_driver = self.driver

    # -- the install process ----------------------------------------------------
    def driver(self, machine: Machine) -> Generator:
        env = machine.env
        cal = self.cal
        tracer = env.tracer
        report = InstallReport(host=machine.hostid, started_at=env.now)
        stats: dict = {}

        def say(line: str) -> None:
            machine.console_write(line)
            if self.on_progress is not None:
                self.on_progress(machine, line)

        phase_span = None

        def enter(phase: str) -> float:
            # Advertised on the machine so monitoring agents (and eKV)
            # can report which phase an installation is sitting in.  The
            # phase opens as a live span under the install span, so the
            # HTTP fetches it issues can nest inside it.
            nonlocal phase_span
            machine.install_phase = phase
            if tracer.enabled:
                phase_span = tracer.span(
                    "install-phase", phase, parent=span, host=machine.hostid
                )
            return env.now

        def mark(phase: str, t0: float) -> None:
            nonlocal phase_span
            report.phase_seconds[phase] = (
                report.phase_seconds.get(phase, 0.0) + env.now - t0
            )
            if phase_span is not None:
                phase_span.end()
                phase_span = None

        # The install span parents on whatever caused this installation
        # (a campaign's per-node span, an exec fanout, a storm) — the
        # shooter stashes its span on the machine before power-cycling.
        span = (
            tracer.span("install", machine.hostid,
                        parent=machine.trace_parent)
            if tracer.enabled
            else None
        )
        if tracer.enabled:
            tracer.metrics.adjust("installs.concurrent", 1)
        outcome = "failed"
        try:
            say("Red Hat Linux (C) 2000 Red Hat, Inc. -- Install System")
            # -- phase: DHCP -----------------------------------------------------
            t0 = enter("dhcp")
            lease = yield from self._dhcp_loop(machine, say)
            machine.ip = lease.ip
            report.ip = lease.ip
            mark("dhcp", t0)

            # -- phase: kickstart fetch ------------------------------------------
            t0 = enter("kickstart")
            resp = yield from fetch_with_retry(
                env,
                lambda: self.source.fetch_kickstart(
                    machine.mac, parent=phase_span
                ),
                cal,
                "kickstart",
                say,
                stats=stats,
                parent=phase_span,
            )
            profile: InstallProfile = resp.body
            if not isinstance(profile, InstallProfile):
                raise TypeError(
                    f"kickstart CGI returned {type(profile).__name__}, "
                    "expected InstallProfile"
                )
            say(f"retrieved kickstart ({profile.appliance}, {profile.n_packages} packages)")
            mark("kickstart", t0)

            # -- phase: hardware detection + partitioning ----------------------------
            t0 = enter("partition")
            hw = probe(machine.spec)
            yield env.timeout(cal.hwdetect_seconds)
            say(f"loaded modules: {', '.join(hw.modules)}")
            formatted = apply_plan(machine, profile.partitions)
            yield env.timeout(cal.format_seconds)
            say(f"formatted {', '.join(formatted)} on {hw.disk_device}")
            mark("partition", t0)

            # -- phase: package installation ---------------------------------------
            t0 = enter("packages")
            machine.rpmdb.wipe()
            total = profile.n_packages
            total_bytes = profile.total_bytes
            done_bytes = 0.0
            progress = InstallProgress(
                total_packages=total,
                total_bytes=total_bytes,
                started_at=env.now,
                now=env.now,
            )
            machine.install_progress = progress
            for i, pkg in enumerate(profile.packages):
                progress.current_name = pkg.nvr
                progress.current_size = pkg.size
                progress.current_summary = pkg.summary
                progress.now = env.now
                yield from fetch_with_retry(
                    env,
                    lambda pkg=pkg: self.source.fetch_package(
                        machine.mac,
                        profile.dist_name,
                        pkg,
                        max_rate=cal.single_stream_rate,
                        parent=phase_span,
                    ),
                    cal,
                    pkg.nvr,
                    say,
                    expect_checksum=pkg.checksum,
                    stats=stats,
                    parent=phase_span,
                )
                yield env.timeout(
                    cal.cpu_install_seconds(pkg.size, hw.relative_cpu_speed)
                )
                machine.rpmdb.install(pkg, nodeps=True)
                done_bytes += pkg.size
                progress.done_packages = i + 1
                progress.done_bytes = done_bytes
                progress.now = env.now
                if i % 20 == 0 or i == total - 1:
                    say(
                        f"Package Installation: {pkg.nvr} "
                        f"[{i + 1}/{total}] "
                        f"{done_bytes / 1e6:.0f}M/{total_bytes / 1e6:.0f}M"
                    )
            report.n_packages = total
            report.bytes_transferred = done_bytes
            kernel = machine.rpmdb.query("kernel")
            if kernel is not None:
                machine.kernel_version = f"{kernel.version}-{kernel.release}"
            mark("packages", t0)

            # -- phase: post configuration ------------------------------------------
            t0 = enter("post")
            for script in profile.post_scripts:
                yield env.timeout(script.seconds / hw.relative_cpu_speed)
                if script.action is not None:
                    script.action(machine)
                say(f"%post: {script.name}")
            yield env.timeout(cal.post_config_seconds / hw.relative_cpu_speed)
            mark("post", t0)

            # -- phase: Myrinet driver rebuild (first-boot, counted in total) ---------
            if hw.needs_myrinet_rebuild:
                t0 = enter("myrinet")
                yield env.timeout(self.myrinet.build_seconds(hw.relative_cpu_speed))
                _pkg, module = self.myrinet.rebuild(
                    machine.kernel_version or "2.4.9-5",
                    available=list(machine.rpmdb),
                )
                machine.loaded_modules.append(module.name)
                report.myrinet_rebuilt = True
                say(f"rebuilt and loaded {module}")
                mark("myrinet", t0)

            report.finished_at = env.now
            report.download_retries = stats.get("retries", 0)
            report.corrupt_refetches = stats.get("corrupt", 0)
            self.reports.append(report)
            say(
                f"installation complete: {report.total_seconds:.0f}s, "
                f"{report.n_packages} packages, {report.bytes_transferred / 1e6:.0f} MB"
            )
            outcome = "ok"
            return report
        except Interrupt:
            # Machine died under us; fetch_with_retry has already torn
            # down any in-flight HTTP transfer on its way out.
            outcome = "aborted"
            say("installation aborted")
            raise
        finally:
            machine.install_phase = None
            if tracer.enabled:
                tracer.metrics.adjust("installs.concurrent", -1)
            if phase_span is not None:
                # The installation died mid-phase: close the phase span
                # with the install's verdict instead of leaking it open.
                phase_span.end(outcome=outcome)
                phase_span = None
            if span is not None:
                span.end(
                    outcome=outcome,
                    packages=report.n_packages,
                    retries=stats.get("retries", 0),
                )

    def _dhcp_loop(self, machine: Machine, say) -> Generator:
        """DISCOVER until the database knows us (insert-ethers window).

        Bounded by ``dhcp_max_attempts``: a dhcpd that never answers
        produces an installer-failure verdict (the node goes HUNG with a
        diagnosis) instead of an install that spins forever.
        """
        env = machine.env
        if self.cal.dhcp_stagger_seconds > 0:
            # Per-MAC seeded stagger, drawn from a dedicated RNG so the
            # machine's own stream (POST jitter) is untouched: nodes
            # restored in the same instant desynchronize deterministically.
            stagger_rng = random.Random(("dhcp-stagger", machine.mac).__repr__())
            yield env.timeout(
                stagger_rng.uniform(0.0, self.cal.dhcp_stagger_seconds)
            )
        attempt = 0
        while True:
            yield env.timeout(self.cal.dhcp_seconds)
            attempt += 1
            try:
                lease: Optional[DhcpLease] = self.dhcp.discover(machine.mac)
            except ServiceError:
                lease = None
            if lease is not None:
                say(f"eth0: bound to {lease.ip} ({lease.hostname})")
                return lease
            if attempt == 1:
                say("eth0: DHCPDISCOVER — waiting to be inserted into the database")
            if self.cal.dhcp_max_attempts and attempt >= self.cal.dhcp_max_attempts:
                raise InstallError(
                    f"DHCP: no answer after {attempt} attempts; "
                    "is dhcpd running and this MAC in the database?"
                )
            # Staggered nodes retry at distinct instants (own slot each);
            # unstaggered nodes collapse into one shared retry timer.
            yield env.slotted_timeout(self.cal.dhcp_retry_seconds)
