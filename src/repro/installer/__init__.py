"""The simulated anaconda/Kickstart installer substrate."""

from .anaconda import (
    InstallError,
    InstallReport,
    InstallSource,
    KickstartInstaller,
    fetch_with_retry,
)
from .hwdetect import DetectedHardware, probe
from .partition import PartitionError, apply_plan
from .phases import (
    DEFAULT_CALIBRATION,
    SINGLE_STREAM_HTTP_RATE,
    InstallCalibration,
)
from .profile import (
    InstallProfile,
    PartitionPlan,
    PartitionRequest,
    PostScript,
)
from .screen import InstallProgress, render_install_screen

__all__ = [
    "InstallError",
    "InstallReport",
    "InstallSource",
    "KickstartInstaller",
    "fetch_with_retry",
    "DetectedHardware",
    "probe",
    "PartitionError",
    "apply_plan",
    "DEFAULT_CALIBRATION",
    "SINGLE_STREAM_HTTP_RATE",
    "InstallCalibration",
    "InstallProfile",
    "PartitionPlan",
    "PartitionRequest",
    "PostScript",
    "InstallProgress",
    "render_install_screen",
]
