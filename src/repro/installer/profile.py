"""The installer's input contract: what a generated kickstart resolves to.

The kickstart CGI on the frontend compiles XML node files + database
state into a Red Hat-compliant kickstart *text* file; anaconda then
resolves the %packages list against the distribution's metadata.  An
:class:`InstallProfile` is that resolved form — ordered packages,
partition scheme, and post-install scripts — which the simulated
installer executes.  Keeping the contract here (in the substrate) lets
the Rocks core produce profiles without the installer depending on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from ..rpm import Package

__all__ = ["InstallProfile", "PostScript", "PartitionPlan", "PartitionRequest"]


@dataclass(frozen=True)
class PartitionRequest:
    """One ``part`` directive from the kickstart main section."""

    mountpoint: str
    size_mb: int
    grow: bool = False

    @property
    def is_root(self) -> bool:
        return self.mountpoint == "/"


@dataclass(frozen=True)
class PartitionPlan:
    """The node's disk layout.  Non-root partitions persist (§6.3)."""

    requests: tuple[PartitionRequest, ...]

    @classmethod
    def default(cls) -> "PartitionPlan":
        """The Rocks compute-node default: /, swap, and persistent /state."""
        return cls(
            (
                PartitionRequest("/", 4096),
                PartitionRequest("swap", 1024),
                PartitionRequest("/state/partition1", 1, grow=True),
            )
        )

    def root(self) -> PartitionRequest:
        for req in self.requests:
            if req.is_root:
                return req
        raise ValueError("partition plan has no root filesystem")


PostAction = Callable[[object], None]  # receives the Machine


@dataclass(frozen=True)
class PostScript:
    """A %post fragment: label, simulated duration, optional side effect.

    ``seconds`` is wall time on the 733 MHz reference CPU; the installer
    scales it by the node's relative speed.  ``rebuilds_myrinet`` marks
    the GM source-rebuild step so its cost can be modelled (and ablated)
    separately.
    """

    name: str
    seconds: float = 1.0
    action: Optional[PostAction] = None
    rebuilds_myrinet: bool = False


@dataclass
class InstallProfile:
    """Everything anaconda needs to lay down one node."""

    dist_name: str
    packages: list[Package]
    partitions: PartitionPlan = field(default_factory=PartitionPlan.default)
    post_scripts: list[PostScript] = field(default_factory=list)
    kickstart_text: str = ""
    appliance: str = "compute"

    @property
    def total_bytes(self) -> int:
        return sum(p.size for p in self.packages)

    @property
    def n_packages(self) -> int:
        return len(self.packages)
