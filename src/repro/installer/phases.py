"""Timing calibration for the simulated Kickstart installation.

Calibrated against §6.3 of the paper (see DESIGN.md §5):

* a 1-node reinstall totals ~10.3 minutes (618 s);
* ~223 s of that is downloading-and-installing 225 MB / 162 packages,
  i.e. a 1 MB/s average demand per installing node;
* a serial client sees the web server source 7-8 MB/s (single-stream
  HTTP rate), while under high concurrency pipelining lets the server
  fill its 100 Mbit wire;
* the Myrinet driver source rebuild adds a 20-30 % penalty.

Splitting the 223 s: at ~7.5 MB/s a node's 225 MB needs ~30 s of wire
time, leaving ~193 s of CPU time for rpm unpacking — hence
``cpu_seconds_per_mb`` ≈ 0.85 at the 733 MHz reference.  Because the
wire is busy only ~14 % of the install phase, concurrent installs
self-smooth and Table I's flat-then-rising shape emerges.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["InstallCalibration", "DEFAULT_CALIBRATION", "SINGLE_STREAM_HTTP_RATE"]

#: Payload rate one HTTP stream achieves (bytes/s) — §6.3 micro-benchmark
#: measured 7-8 MB/s from the dual-PIII server.
SINGLE_STREAM_HTTP_RATE = 7.5e6


@dataclass(frozen=True)
class InstallCalibration:
    """All knobs of the install-time model, in reference-CPU seconds."""

    #: DHCP exchange plus kickstart CGI round trip
    dhcp_seconds: float = 4.0
    #: retry interval while the node is not yet in the database
    dhcp_retry_seconds: float = 10.0
    #: max seeded per-node delay before the first DISCOVER (0 = none);
    #: desynchronizes the thundering herd after a whole-site power
    #: restore, when every node's firmware releases at the same instant
    dhcp_stagger_seconds: float = 0.0
    #: hardware probe (disk controller, NICs) and module loading
    hwdetect_seconds: float = 18.0
    #: mkfs on the root filesystem and swap
    format_seconds: float = 35.0
    #: rpm unpack/scriptlet CPU cost per payload megabyte
    cpu_seconds_per_mb: float = 0.85
    #: fixed per-package overhead (HTTP request turnaround, rpm bookkeeping)
    per_package_overhead: float = 0.12
    #: generic %post configuration work not itemised by scripts
    post_config_seconds: float = 45.0
    #: single-stream HTTP payload rate cap (bytes/s)
    single_stream_rate: float = SINGLE_STREAM_HTTP_RATE
    #: DHCPDISCOVER attempts before anaconda gives up (0 = retry forever);
    #: the default bounds a dead dhcpd at ~56 min of retrying — far past
    #: any insert-ethers window, so only true outages hit the verdict
    dhcp_max_attempts: int = 240
    #: wall-clock bound on one HTTP fetch before anaconda resets the
    #: connection and retries; generous against worst-case Table I
    #: contention (32 nodes sharing the server NIC)
    download_timeout_seconds: float = 300.0
    #: download attempts per object (timeouts, 5xx, resets, corruption);
    #: six attempts give 62 s of cumulative backoff, enough to ride out
    #: a short install-server crash/restart without condemning the node
    download_max_attempts: int = 6
    #: base of the exponential backoff between download retries
    download_backoff_seconds: float = 2.0

    def download_backoff(self, attempt: int) -> float:
        """Seconds to wait after failed attempt number ``attempt`` (1-based)."""
        return self.download_backoff_seconds * (2.0 ** (attempt - 1))

    def cpu_install_seconds(self, size_bytes: float, relative_speed: float) -> float:
        """CPU time to unpack/install one package on a given node."""
        mb = size_bytes / 1e6
        return (mb * self.cpu_seconds_per_mb + self.per_package_overhead) / relative_speed


DEFAULT_CALIBRATION = InstallCalibration()
