"""Hardware autodetection — what kickstart does so Rocks doesn't have to.

§1 of the paper: "we can abstract out many of the hardware differences
and allow the Kickstart process to autodetect the correct hardware
modules to load (e.g., disk subsystem type: SCSI, IDE, integrated RAID
adapter; Ethernet interfaces; and high-speed network interfaces)."
§3.3 names replicating this detection as the trap proprietary installers
fall into; Rocks rides the distribution's.  The probe here reads the
:class:`~repro.cluster.hardware.MachineSpec` and reports which driver
modules the installer must load — including whether a Myrinet source
rebuild will be needed.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.hardware import MachineSpec, NicKind

__all__ = ["DetectedHardware", "probe"]


@dataclass(frozen=True)
class DetectedHardware:
    """The probe result anaconda acts on."""

    cpu_arch: str
    relative_cpu_speed: float
    disk_device: str
    disk_module: str
    ethernet_module: str
    needs_myrinet_rebuild: bool

    @property
    def modules(self) -> tuple[str, ...]:
        """Driver modules to load, in load order (storage before net)."""
        mods = (self.disk_module, self.ethernet_module)
        # The GM module is NOT loadable at install time — it must be
        # rebuilt from source against the freshly-installed kernel.
        return mods


def probe(spec: MachineSpec) -> DetectedHardware:
    """Autodetect a machine's hardware from its spec."""
    nic_kinds = {n.kind for n in spec.nics("00:00:00:00:00:00")}
    return DetectedHardware(
        cpu_arch=spec.cpu.arch.rpm_arch,
        relative_cpu_speed=spec.cpu.relative_speed,
        disk_device=spec.disk.device,
        disk_module=spec.disk.controller.driver_module,
        ethernet_module=NicKind.ETHERNET.driver_module,
        needs_myrinet_rebuild=NicKind.MYRINET in nic_kinds,
    )
