"""Figure 7: the anaconda "Package Installation" screen over eKV.

The paper's Figure 7 shows shoot-node's xterm displaying Red Hat's
installer screen redirected over Ethernet: the current package's
name/size/summary and a Total/Completed/Remaining table of packages,
bytes and time.  The installer keeps a live progress structure on the
machine; this module renders it in the same layout.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = ["InstallProgress", "render_install_screen"]


@dataclass
class InstallProgress:
    """Live state of the package-installation phase on one node."""

    current_name: str = ""
    current_size: int = 0
    current_summary: str = ""
    total_packages: int = 0
    done_packages: int = 0
    total_bytes: float = 0.0
    done_bytes: float = 0.0
    started_at: float = 0.0
    now: float = 0.0

    @property
    def remaining_packages(self) -> int:
        return self.total_packages - self.done_packages

    @property
    def remaining_bytes(self) -> float:
        return self.total_bytes - self.done_bytes

    @property
    def elapsed(self) -> float:
        return self.now - self.started_at

    @property
    def eta(self) -> float:
        """Time remaining at the observed rate (the screen's third row)."""
        if self.done_bytes <= 0:
            return 0.0
        rate = self.done_bytes / max(self.elapsed, 1e-9)
        return self.remaining_bytes / rate


def _hms(seconds: float) -> str:
    seconds = max(int(seconds), 0)
    h, rest = divmod(seconds, 3600)
    m, s = divmod(rest, 60)
    return f"{h}:{m:02d}.{s:02d}"


def _mb(nbytes: float) -> str:
    if nbytes >= 1e6:
        return f"{nbytes / 1e6:.0f}M"
    return f"{nbytes / 1e3:.0f}k"


def render_install_screen(progress: InstallProgress, width: int = 66) -> str:
    """Render the Figure 7 screen as text."""
    inner = width - 2
    top = "+" + "=" * inner + "+"
    title = "Package Installation"

    def line(text: str = "") -> str:
        return "|" + text[:inner].ljust(inner) + "|"

    rows = [
        top,
        line(title.center(inner)),
        line(),
        line(f"  Name   : {progress.current_name}"),
        line(f"  Size   : {_mb(progress.current_size)}"),
        line(f"  Summary: {progress.current_summary[: inner - 11]}"),
        line(),
        line(f"  {'':<10}{'Packages':>10}{'Bytes':>10}{'Time':>12}"),
        line(
            f"  {'Total':<10}{progress.total_packages:>10}"
            f"{_mb(progress.total_bytes):>10}"
            f"{_hms(progress.elapsed + progress.eta):>12}"
        ),
        line(
            f"  {'Completed':<10}{progress.done_packages:>10}"
            f"{_mb(progress.done_bytes):>10}"
            f"{_hms(progress.elapsed):>12}"
        ),
        line(
            f"  {'Remaining':<10}{progress.remaining_packages:>10}"
            f"{_mb(progress.remaining_bytes):>10}"
            f"{_hms(progress.eta):>12}"
        ),
        top,
        " <Tab>/<Alt-Tab> between elements | <Space> selects | <F12> next screen",
    ]
    return "\n".join(rows)
