"""Disk partitioning with the Rocks preservation rule.

§6.3: "all non-root partitions are preserved over reinstalls, and
therefore, can be used as persistent storage."  The partitioner
formats the root (and swap) on every install but re-adopts any
existing non-root partition, keeping its data intact.
"""

from __future__ import annotations

from ..cluster.node import Machine, Partition
from .profile import PartitionPlan

__all__ = ["apply_plan", "PartitionError"]


class PartitionError(Exception):
    """The requested layout cannot fit on the machine's disk."""


def apply_plan(machine: Machine, plan: PartitionPlan) -> list[str]:
    """Partition/format ``machine`` per ``plan``; returns formatted names.

    Existing non-root partitions named in the plan are preserved (data
    kept); the root and swap are always (re)formatted; partitions on disk
    but absent from the plan are left alone as well — reinstalling must
    never eat a user's scratch space.
    """
    disk_mb = machine.spec.disk.size_gb * 1024
    fixed = sum(r.size_mb for r in plan.requests if not r.grow)
    if fixed > disk_mb:
        raise PartitionError(
            f"plan needs {fixed} MB but {machine.hostid} has {disk_mb} MB"
        )
    plan.root()  # validates a root exists

    grow_share = disk_mb - fixed
    n_grow = sum(1 for r in plan.requests if r.grow)
    formatted: list[str] = []
    for req in plan.requests:
        size = req.size_mb if not req.grow else max(grow_share // n_grow, 1)
        existing = machine.partitions.get(req.mountpoint)
        if req.is_root or req.mountpoint == "swap":
            machine.partitions[req.mountpoint] = Partition(
                req.mountpoint, size, is_root=req.is_root
            )
            formatted.append(req.mountpoint)
        elif existing is None:
            machine.partitions[req.mountpoint] = Partition(req.mountpoint, size)
            formatted.append(req.mountpoint)
        # else: preserved — not formatted, data intact
    return formatted
