"""MsgTree: gather per-node output and merge identical messages.

The payoff of a parallel command fabric is the *report*: 4096 nodes that
all answered ``2.4.14-rocks`` must render as one line —

    node[0-38,40-4095] (4095): 2.4.14-rocks

— not 4095 lines (clush's ``-b``/clubak behaviour).  A MsgTree keys
nodes by their complete message; rendering folds each key's nodes into a
:class:`~repro.exec.nodeset.NodeSet` and sorts groups by their first
member so the report is byte-identical run to run.
"""

from __future__ import annotations

from typing import Iterator

from .nodeset import NodeSet

__all__ = ["MsgTree"]


class MsgTree:
    """Message -> nodes, with folded, deterministic rendering."""

    __slots__ = ("_lines", "_sealed")

    def __init__(self) -> None:
        #: node -> accumulated lines (insertion order per node)
        self._lines: dict[str, list[str]] = {}
        #: message -> NodeSet, built lazily at read time
        self._sealed: dict[str, NodeSet] | None = None

    def add(self, node: str, line: str) -> None:
        """Append one output line for ``node``."""
        self._lines.setdefault(node, []).append(line)
        self._sealed = None

    def message_of(self, node: str) -> str:
        return "\n".join(self._lines.get(node, []))

    def __len__(self) -> int:
        return len(self._lines)

    def _gathered(self) -> dict[str, NodeSet]:
        if self._sealed is None:
            gathered: dict[str, NodeSet] = {}
            for node in sorted(self._lines):
                msg = "\n".join(self._lines[node])
                gathered.setdefault(msg, NodeSet()).add(node)
            self._sealed = gathered
        return self._sealed

    def walk(self) -> Iterator[tuple[str, NodeSet]]:
        """(message, nodes) groups, ordered by each group's first node."""
        gathered = self._gathered()
        def first_node(item: tuple[str, NodeSet]) -> tuple[str, str]:
            msg, nodes = item
            return (next(iter(nodes)), msg)
        for msg, nodes in sorted(gathered.items(), key=first_node):
            yield msg, nodes

    def render(self) -> str:
        """The clubak-style merged report."""
        blocks = []
        for msg, nodes in self.walk():
            header = f"{nodes.fold()} ({len(nodes)})"
            lines = msg.split("\n") if msg else [""]
            block = [f"{header}: {lines[0]}"]
            block.extend(f"{' ' * (len(header) + 2)}{line}" for line in lines[1:])
            blocks.append("\n".join(block))
        return "\n".join(blocks)
