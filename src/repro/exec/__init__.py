"""repro.exec: the fault-tolerant parallel execution fabric.

The addressing layer (:class:`RangeSet`, :class:`NodeSet`), the
clush-style engine (:class:`ExecTask`) running callables across the
simulated cluster over the rexec transport, gathered-output merging
(:class:`MsgTree`), and a cheap seeded lab (:class:`ExecLab`) for
campaign-scale runs::

    lab = ExecLab(LabOptions(nodes=4096, dead_fraction=0.05, seed=42))
    report = lab.run("@all", exec_options=ExecOptions(fanout=64, seed=42))
    print(report.render())

Every node ends in exactly one typed state — ``OK`` / ``TIMEOUT`` /
``NODE_DEAD`` / ``RETRIES_EXHAUSTED`` — and the report is byte-identical
for the same seed across ``PYTHONHASHSEED`` values.
"""

from .lab import ExecLab, LabOptions
from .msgtree import MsgTree
from .nodeset import GroupResolver, NodeSet, NodeSetParseError, fold_nodes
from .rangeset import RangeSet, RangeSetParseError
from .task import ExecOptions, ExecReport, ExecState, ExecTask, NodeResult

__all__ = [
    "RangeSet",
    "RangeSetParseError",
    "NodeSet",
    "NodeSetParseError",
    "GroupResolver",
    "fold_nodes",
    "MsgTree",
    "ExecState",
    "ExecOptions",
    "NodeResult",
    "ExecReport",
    "ExecTask",
    "ExecLab",
    "LabOptions",
]
