"""The exec lab: a cheap, seeded cluster for campaign-scale fan-out runs.

Driving :class:`~repro.exec.task.ExecTask` across 4096 nodes does not
need the installer, DHCP, or HTTP scaling model — it needs 4096
machines that are ``UP``, a few that are dead or *about to die*, and a
few that run slow.  The lab builds exactly that: machines forced
directly into the ``UP`` state (no boot path), a seeded selection of

* **dark** nodes — already off when the campaign starts (prompt
  ``NODE_DEAD``: "host is off");
* **doomed** nodes — alive at dispatch, killed by a simulated PDU cut
  partway through their command (the mid-run dead-watch path);
* **stragglers** — healthy but running ``straggler_slowdown`` times
  slower than their peers,

and a default timed command that reports the node's kernel version.
Everything flows from ``seed``; the same seed yields a byte-identical
:meth:`~repro.exec.task.ExecReport.render` regardless of
``PYTHONHASHSEED`` — the property the CI golden test pins.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Generator, Optional, Sequence, Union

from ..cluster import Machine, MachineState, PowerState
from ..cluster.hardware import CATALOG, MacAllocator
from ..netsim import Environment
from ..scheduler.rexec import RemoteCommand, RemoteProcess, Rexec
from .nodeset import NodeSet
from .task import ExecOptions, ExecReport, ExecTask

__all__ = ["LabOptions", "ExecLab"]

#: cabinet capacity used for the lab's ``@cabinetN`` groups (matches the
#: 32-node cabinets insert-ethers fills rack by rack)
_CABINET = 32


@dataclass(frozen=True)
class LabOptions:
    """Shape of the lab cluster and its injected misbehaviour."""

    nodes: int = 512
    seed: int = 0
    #: fraction of nodes that are dead; half dark at start, half killed
    #: mid-command by the simulated PDU
    dead_fraction: float = 0.0
    #: fraction of (healthy) nodes running slow
    straggler_fraction: float = 0.0
    straggler_slowdown: float = 10.0
    #: nominal command duration and its per-node jitter fraction
    command_time: float = 4.0
    command_jitter: float = 0.5
    kernel_version: str = "2.4.14-rocks"

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError("lab needs at least one node")
        if not 0 <= self.dead_fraction < 1:
            raise ValueError("dead_fraction must be in [0, 1)")
        if not 0 <= self.straggler_fraction < 1:
            raise ValueError("straggler_fraction must be in [0, 1)")
        if self.command_time <= 0 or self.straggler_slowdown < 1:
            raise ValueError("command_time must be positive, slowdown >= 1")


class ExecLab:
    """A seeded ``node[0-N]`` cluster wired straight to an exec fabric."""

    def __init__(self, options: LabOptions = LabOptions(),
                 env: Optional[Environment] = None):
        self.options = options
        self.env = env if env is not None else Environment()
        self.machines: dict[str, Machine] = {}
        rng = random.Random(("exec-lab", options.seed).__repr__())
        macs = MacAllocator()
        spec = CATALOG["pIII-733-myri"]
        for i in range(options.nodes):
            machine = Machine(
                self.env, spec, macs.allocate(), name=f"node{i}",
                rng_seed=options.seed,
            )
            self._force_up(machine)
            self.machines[machine.name] = machine

        n_dead = int(options.dead_fraction * options.nodes)
        dead = sorted(rng.sample(range(options.nodes), n_dead))
        #: killed by the PDU mid-command (the dead-watch path); the low
        #: half of the dead indices, so the cuts land on nodes the first
        #: fanout wave has already dispatched
        self.doomed = [f"node{i}" for i in dead[: (n_dead + 1) // 2]]
        #: dark before the campaign starts (prompt "host is off")
        self.dark = [f"node{i}" for i in dead[(n_dead + 1) // 2:]]
        for name in self.dark:
            self.machines[name].power_off()
        #: node -> PDU cut time: inside the command window so the cut
        #: lands mid-run for first-wave nodes and pre-dispatch for later
        #: waves — both classify as NODE_DEAD either way
        self.doom_at = {
            name: 0.25 * options.command_time
            + rng.random() * options.command_time
            for name in self.doomed
        }
        alive = [i for i in range(options.nodes) if i not in set(dead)]
        n_slow = int(options.straggler_fraction * len(alive))
        self.slow = {f"node{i}" for i in sorted(rng.sample(alive, n_slow))}

        self.rexec = Rexec(self.env, self.machines.__getitem__)

    def _force_up(self, machine: Machine) -> None:
        """Skip POST/boot: the lab studies execution, not installation."""
        machine.power = PowerState.ON
        machine.state = MachineState.UP

    # -- groups ------------------------------------------------------------
    def resolver(self, group: str) -> str:
        """Lab group source: ``@all``, ``@cabinetN`` (32-node slices)."""
        if group == "all":
            return f"node[0-{self.options.nodes - 1}]"
        if group.startswith("cabinet"):
            k = int(group[len("cabinet"):])
            lo = k * _CABINET
            hi = min(self.options.nodes, lo + _CABINET) - 1
            if lo > hi:
                raise KeyError(group)
            return f"node[{lo}-{hi}]"
        raise KeyError(group)

    # -- the default command -----------------------------------------------
    def uname_command(self) -> RemoteCommand:
        """A timed ``uname -r`` whose duration is seeded per node."""
        opts = self.options

        def command(machine: Machine, proc: RemoteProcess
                    ) -> Generator:
            rng = random.Random(
                ("exec-lab-cmd", opts.seed, machine.hostid).__repr__()
            )
            duration = opts.command_time * (
                1.0 + opts.command_jitter * rng.random()
            )
            if machine.hostid in self.slow:
                duration *= opts.straggler_slowdown
            yield machine.env.timeout(duration)
            proc.stdout.append(opts.kernel_version)
            return 0

        return command

    def _pdu_killer(self) -> Generator:
        """Cut power to each doomed node at its scheduled time."""
        env = self.env
        for name, at in sorted(self.doom_at.items(),
                               key=lambda kv: (kv[1], kv[0])):
            if at > env.now:
                yield env.timeout(at - env.now)
            self.machines[name].power_off(hard=True)
        if False:  # pragma: no cover - keep this a generator when empty
            yield

    # -- running -----------------------------------------------------------
    def run(
        self,
        targets: Union[str, NodeSet, Sequence[str], None] = None,
        command: Optional[RemoteCommand] = None,
        exec_options: Optional[ExecOptions] = None,
    ) -> ExecReport:
        """Run one campaign to completion and return its report."""
        if targets is None:
            targets = f"node[0-{self.options.nodes - 1}]"
        if command is None:
            command = self.uname_command()
        if exec_options is None:
            exec_options = ExecOptions(seed=self.options.seed)
        task = ExecTask(
            self.env, self.rexec, exec_options, resolver=self.resolver
        )
        if self.doom_at:
            self.env.process(self._pdu_killer(), name="lab:pdu")
        driver = task.run(targets, command)
        self.env.run(until=driver)
        return driver.value
