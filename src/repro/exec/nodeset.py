"""NodeSet: folded hostname sets with group sources and set algebra.

``node[0-1023]``, ``compute-0-[0-15]``, ``@compute`` — the addressing
layer every 10k-node campaign is expressed in.  A NodeSet is a set of
hostnames stored in folded form: names sharing a ``<prefix><NUM><suffix>``
shape collapse into one :class:`~repro.exec.rangeset.RangeSet` per
(prefix, suffix, padding) pattern; names with no numeric component are
kept as scalars.  Union/intersection/difference/xor, membership, length
and ordered expansion all operate on the folded representation.

Group sources (``@compute``, ``@cabinet0``) are resolved through a
caller-supplied resolver callable — the cluster database and the rack
layout each provide one (see :func:`frontend_groups`), and the exec lab
provides its own.  Resolution happens at parse time; a NodeSet never
holds an unresolved group.

Iteration order is always (prefix, suffix, padding, index) — sorted,
never hash order — so folding and expansion are byte-identical across
``PYTHONHASHSEED`` values.
"""

from __future__ import annotations

import re
from typing import Callable, Iterable, Iterator, Optional, Union

from .rangeset import RangeSet, RangeSetParseError

__all__ = ["NodeSet", "NodeSetParseError", "GroupResolver", "fold_nodes"]


class NodeSetParseError(ValueError):
    """Malformed nodeset text or unresolvable group reference."""


#: A group resolver maps a group name (without the ``@``) to either a
#: nodeset expression string or an iterable of hostnames; it raises
#: ``KeyError`` for unknown groups.
GroupResolver = Callable[[str], Union[str, Iterable[str]]]

#: One bracketed range section: ``prefix[ranges]suffix``.
_BRACKET = re.compile(r"^([^\[\]]*)\[([^\[\]]+)\]([^\[\]]*)$")
#: Trailing digit run of a plain name: ``node007`` -> (``node``, ``007``).
_TRAILING_NUM = re.compile(r"^(.*?)(\d+)$")


def _split_outer(text: str) -> Iterator[str]:
    """Split on commas outside brackets: ``a[0,5],b`` -> ``a[0,5]``, ``b``."""
    depth = 0
    part = []
    for ch in text:
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
            if depth < 0:
                raise NodeSetParseError(f"unbalanced ']' in {text!r}")
        if ch == "," and depth == 0:
            yield "".join(part)
            part = []
        else:
            part.append(ch)
    if depth != 0:
        raise NodeSetParseError(f"unbalanced '[' in {text!r}")
    yield "".join(part)


class NodeSet:
    """A folded set of hostnames."""

    __slots__ = ("_patterns", "_scalars")

    def __init__(self, text: str = "", resolver: Optional[GroupResolver] = None):
        #: (prefix, suffix, padding) -> RangeSet; insertion order is
        #: irrelevant because every read path sorts the keys.
        self._patterns: dict[tuple[str, str, int], RangeSet] = {}
        #: numberless names (``gateway``), kept as a dict-as-ordered-set
        self._scalars: dict[str, None] = {}
        if text:
            self._parse(text, resolver)

    # -- construction ------------------------------------------------------
    @classmethod
    def parse(cls, text: str, resolver: Optional[GroupResolver] = None) -> "NodeSet":
        return cls(text, resolver=resolver)

    @classmethod
    def from_names(cls, names: Iterable[str]) -> "NodeSet":
        ns = cls()
        for name in names:
            ns.add(name)
        return ns

    def _parse(self, text: str, resolver: Optional[GroupResolver]) -> None:
        for part in _split_outer(text):
            part = part.strip()
            if not part:
                raise NodeSetParseError(f"empty element in {text!r}")
            if part.startswith("@"):
                self._resolve_group(part[1:], resolver)
                continue
            m = _BRACKET.match(part)
            if m:
                prefix, ranges, suffix = m.groups()
                try:
                    rs = RangeSet(ranges)
                except RangeSetParseError as err:
                    raise NodeSetParseError(f"{part!r}: {err}") from None
                self._merge_pattern(prefix, suffix, rs)
            elif "[" in part or "]" in part:
                raise NodeSetParseError(
                    f"{part!r}: only one [ ] section per name is supported"
                )
            else:
                self.add(part)

    def _resolve_group(self, group: str, resolver: Optional[GroupResolver]) -> None:
        if resolver is None:
            raise NodeSetParseError(
                f"group @{group} used but no group source is configured"
            )
        try:
            resolved = resolver(group)
        except KeyError:
            raise NodeSetParseError(f"unknown group @{group}") from None
        if isinstance(resolved, str):
            self.update(NodeSet(resolved, resolver=resolver))
        else:
            for name in resolved:
                self.add(name)

    def _merge_pattern(self, prefix: str, suffix: str, rs: RangeSet) -> None:
        key = (prefix, suffix, rs.padding)
        have = self._patterns.get(key)
        if have is None:
            self._patterns[key] = rs.copy()
        else:
            have.update(rs)

    # -- element-level protocol --------------------------------------------
    def add(self, name: str) -> None:
        m = _TRAILING_NUM.match(name)
        if m:
            prefix, digits = m.groups()
            padding = len(digits) if len(digits) > 1 and digits[0] == "0" else 0
            rs = RangeSet(padding=padding)
            rs.add(int(digits))
            self._merge_pattern(prefix, "", rs)
        else:
            self._scalars[name] = None

    def __contains__(self, name: str) -> bool:
        if name in self._scalars:
            return True
        m = _TRAILING_NUM.match(name)
        if not m:
            return False
        prefix, digits = m.groups()
        padding = len(digits) if len(digits) > 1 and digits[0] == "0" else 0
        rs = self._patterns.get((prefix, "", padding))
        return rs is not None and int(digits) in rs

    def __len__(self) -> int:
        return sum(len(rs) for rs in self._patterns.values()) + len(self._scalars)

    def __bool__(self) -> bool:
        return bool(self._patterns) or bool(self._scalars)

    def __iter__(self) -> Iterator[str]:
        """Expanded names: patterns sorted, then indices ascending."""
        for prefix, suffix, _pad in sorted(self._patterns):
            rs = self._patterns[(prefix, suffix, _pad)]
            for num in rs.strings():
                yield f"{prefix}{num}{suffix}"
        for name in sorted(self._scalars):
            yield name

    def expand(self) -> list[str]:
        return list(self)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, NodeSet):
            return NotImplemented
        mine = {k: v for k, v in self._patterns.items() if v}
        theirs = {k: v for k, v in other._patterns.items() if v}
        return mine == theirs and set(self._scalars) == set(other._scalars)

    # -- set algebra -------------------------------------------------------
    def update(self, other: "NodeSet") -> None:
        for (prefix, suffix, _pad), rs in other._patterns.items():
            self._merge_pattern(prefix, suffix, rs)
        for name in other._scalars:
            self._scalars[name] = None

    def _binary(self, other: "NodeSet", op: str) -> "NodeSet":
        out = NodeSet()
        keys = sorted(set(self._patterns) | set(other._patterns))
        empty = RangeSet()
        for key in keys:
            a = self._patterns.get(key, empty)
            b = other._patterns.get(key, empty)
            rs = getattr(a, op)(b)
            if rs:
                out._patterns[key] = rs
        mine, theirs = set(self._scalars), set(other._scalars)
        combined = {
            "__or__": mine | theirs,
            "__and__": mine & theirs,
            "__sub__": mine - theirs,
            "__xor__": mine ^ theirs,
        }[op]
        for name in sorted(combined):
            out._scalars[name] = None
        return out

    def __or__(self, other: "NodeSet") -> "NodeSet":
        return self._binary(other, "__or__")

    def __and__(self, other: "NodeSet") -> "NodeSet":
        return self._binary(other, "__and__")

    def __sub__(self, other: "NodeSet") -> "NodeSet":
        return self._binary(other, "__sub__")

    def __xor__(self, other: "NodeSet") -> "NodeSet":
        return self._binary(other, "__xor__")

    # -- folding -----------------------------------------------------------
    def fold(self) -> str:
        """Compact text: ``node[0-38,40-99],gateway`` (sorted patterns)."""
        parts = []
        for prefix, suffix, _pad in sorted(self._patterns):
            rs = self._patterns[(prefix, suffix, _pad)]
            if not rs:
                continue
            if len(rs) == 1:
                only = next(iter(rs.strings()))
                parts.append(f"{prefix}{only}{suffix}")
            else:
                parts.append(f"{prefix}[{rs.fold()}]{suffix}")
        parts.extend(sorted(self._scalars))
        return ",".join(parts)

    def __str__(self) -> str:
        return self.fold()

    def __repr__(self) -> str:  # pragma: no cover
        return f"NodeSet({self.fold()!r})"


def fold_nodes(names: Iterable[str]) -> str:
    """Convenience: fold a plain list of hostnames to compact text."""
    return NodeSet.from_names(names).fold()
