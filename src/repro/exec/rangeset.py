"""RangeSet: folded sets of node indices (the ClusterShell idea).

At 10k-node scale a target list is not a list — ``node0 node1 ...
node10239`` is unreadable and unshippable.  ClusterShell's answer is the
*folded range*: ``node[0-10239]``, with zero-padding (``node[001-099]``)
and step parsing (``0-30/2``).  This module is the integer half of that
idea: a set of non-negative integers that parses from and folds back to
the compact textual form, with full set algebra.

Determinism rules apply: internal storage is a plain ``set`` of ints,
but every iteration point goes through ``sorted()`` so folding, string
output, and expansion are byte-identical regardless of hash seeding.
"""

from __future__ import annotations

from typing import Iterable, Iterator

__all__ = ["RangeSet", "RangeSetParseError"]


class RangeSetParseError(ValueError):
    """Malformed range text (``"3-1"``, ``"a-b"``, negative indices...)."""


class RangeSet:
    """A set of non-negative integers with folded-text round-tripping.

    ``padding`` is the zero-fill width applied when formatting members
    (``padding=3`` renders ``7`` as ``007``); 0 means no padding.  When
    two sets combine, the result keeps the widest padding so folded
    output never loses digits.
    """

    __slots__ = ("_values", "padding")

    def __init__(self, text: str = "", padding: int = 0):
        self._values: set[int] = set()
        self.padding = padding
        if text:
            self._parse(text)

    # -- construction ------------------------------------------------------
    @classmethod
    def from_ints(cls, values: Iterable[int], padding: int = 0) -> "RangeSet":
        rs = cls(padding=padding)
        for v in values:
            rs.add(v)
        return rs

    def _parse(self, text: str) -> None:
        for token in text.split(","):
            token = token.strip()
            if not token:
                raise RangeSetParseError(f"empty range in {text!r}")
            step = 1
            if "/" in token:
                token, step_text = token.split("/", 1)
                try:
                    step = int(step_text)
                except ValueError:
                    raise RangeSetParseError(
                        f"bad step {step_text!r} in {text!r}"
                    ) from None
                if step <= 0:
                    raise RangeSetParseError(f"step must be positive: {text!r}")
            if "-" in token:
                lo_text, hi_text = token.split("-", 1)
            else:
                lo_text = hi_text = token
            lo = self._parse_bound(lo_text, text)
            hi = self._parse_bound(hi_text, text)
            if hi < lo:
                raise RangeSetParseError(f"reversed range {token!r} in {text!r}")
            self._values.update(range(lo, hi + 1, step))

    def _parse_bound(self, bound: str, original: str) -> int:
        if not bound.isdigit():
            raise RangeSetParseError(f"bad index {bound!r} in {original!r}")
        if len(bound) > 1 and bound[0] == "0":
            self.padding = max(self.padding, len(bound))
        return int(bound)

    # -- basic protocol ----------------------------------------------------
    def add(self, value: int) -> None:
        if value < 0:
            raise RangeSetParseError(f"negative index {value!r}")
        self._values.add(value)

    def discard(self, value: int) -> None:
        self._values.discard(value)

    def __contains__(self, value: int) -> bool:
        return value in self._values

    def __len__(self) -> int:
        return len(self._values)

    def __bool__(self) -> bool:
        return bool(self._values)

    def __iter__(self) -> Iterator[int]:
        return iter(sorted(self._values))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RangeSet):
            return NotImplemented
        return self._values == other._values and self.padding == other.padding

    def __hash__(self) -> int:
        return hash((frozenset(self._values), self.padding))

    # -- set algebra -------------------------------------------------------
    def _combine(self, other: "RangeSet", values: set[int]) -> "RangeSet":
        out = RangeSet(padding=max(self.padding, other.padding))
        out._values = values
        return out

    def __or__(self, other: "RangeSet") -> "RangeSet":
        return self._combine(other, self._values | other._values)

    def __and__(self, other: "RangeSet") -> "RangeSet":
        return self._combine(other, self._values & other._values)

    def __sub__(self, other: "RangeSet") -> "RangeSet":
        return self._combine(other, self._values - other._values)

    def __xor__(self, other: "RangeSet") -> "RangeSet":
        return self._combine(other, self._values ^ other._values)

    def update(self, other: "RangeSet") -> None:
        self._values |= other._values
        self.padding = max(self.padding, other.padding)

    def copy(self) -> "RangeSet":
        out = RangeSet(padding=self.padding)
        out._values = set(self._values)
        return out

    # -- folding -----------------------------------------------------------
    def format(self, value: int) -> str:
        return f"{value:0{self.padding}d}" if self.padding else str(value)

    def runs(self) -> Iterator[tuple[int, int]]:
        """Maximal contiguous runs as (lo, hi) pairs, ascending."""
        lo = hi = None
        for v in sorted(self._values):
            if lo is None:
                lo = hi = v
            elif v == hi + 1:
                hi = v
            else:
                yield (lo, hi)
                lo = hi = v
        if lo is not None:
            yield (lo, hi)

    def fold(self) -> str:
        """The compact text form: ``"0-38,40,42-99"`` (padded as needed)."""
        parts = []
        for lo, hi in self.runs():
            if lo == hi:
                parts.append(self.format(lo))
            else:
                parts.append(f"{self.format(lo)}-{self.format(hi)}")
        return ",".join(parts)

    def strings(self) -> Iterator[str]:
        """Every member formatted, ascending."""
        for v in sorted(self._values):
            yield self.format(v)

    def __str__(self) -> str:
        return self.fold()

    def __repr__(self) -> str:  # pragma: no cover
        return f"RangeSet({self.fold()!r}, padding={self.padding})"
