"""The clush-style execution engine: fanout, timeouts, retries, stragglers.

:class:`ExecTask` runs one command across a nodeset over the
:class:`~repro.scheduler.rexec.Rexec` transport with

* a **sliding fanout window** — at most ``fanout`` nodes in flight; a
  completion immediately launches the next pending node (no barrier
  between waves, so one slow node never stalls the window);
* a **per-node timeout** — an attempt that exceeds ``command_timeout``
  is aborted and retried after seeded-jitter exponential backoff;
* **typed terminal classification** — every target ends in exactly one
  of :class:`ExecState` ``OK`` / ``TIMEOUT`` / ``NODE_DEAD`` /
  ``RETRIES_EXHAUSTED``; a campaign never hangs on a dead node and
  never loses a node from the report;
* **straggler detection** — once enough nodes have finished, a rolling
  percentile of completion times flags nodes running
  ``straggler_factor`` times slower than their peers.

All randomness (retry jitter) flows from per-node RNGs seeded by
``(options.seed, node name)``, so the same seed produces a byte-identical
:meth:`ExecReport.render` regardless of event interleaving or
``PYTHONHASHSEED``.
"""

from __future__ import annotations

import bisect
import enum
import random
from dataclasses import dataclass, field
from typing import Generator, Iterable, Optional, Sequence, Union

from ..netsim import AnyOf, Environment, Process
from ..scheduler.rexec import (
    RemoteCommand,
    RemoteEnvironment,
    Rexec,
)
from .msgtree import MsgTree
from .nodeset import GroupResolver, NodeSet

__all__ = [
    "ExecState",
    "ExecOptions",
    "NodeResult",
    "ExecReport",
    "ExecTask",
]

_ROOT = RemoteEnvironment(user="root", uid=0, gid=0, cwd="/root")


class ExecState(enum.Enum):
    """Terminal classification of one target node."""

    OK = "OK"                                # exit code 0
    TIMEOUT = "TIMEOUT"                      # final attempt hit the deadline
    NODE_DEAD = "NODE_DEAD"                  # unreachable / died mid-command
    RETRIES_EXHAUSTED = "RETRIES_EXHAUSTED"  # kept failing (nonzero exit)


@dataclass(frozen=True)
class ExecOptions:
    """Knobs for one task; defaults suit the 10-minute reinstall scale."""

    #: sliding-window width: nodes in flight at once
    fanout: int = 64
    #: per-attempt deadline in simulated seconds (None = no deadline)
    command_timeout: Optional[float] = 300.0
    #: extra attempts after the first (timeouts and nonzero exits retry)
    max_retries: int = 2
    #: base retry delay; grows by ``backoff_factor`` per attempt
    backoff: float = 5.0
    backoff_factor: float = 2.0
    #: fractional seeded jitter on each backoff: delay *= 1 + j*U(0,1)
    jitter: float = 0.25
    seed: int = 0
    #: start flagging stragglers once this fraction of nodes finished
    straggler_after: float = 0.5
    #: rolling completion-time percentile stragglers are measured against
    straggler_percentile: float = 0.9
    #: flag nodes slower than factor x percentile
    straggler_factor: float = 3.0
    #: how often (simulated seconds) the straggler monitor looks
    straggler_interval: float = 15.0

    def __post_init__(self) -> None:
        if self.fanout < 1:
            raise ValueError("fanout must be at least 1")
        if self.command_timeout is not None and self.command_timeout <= 0:
            raise ValueError("command_timeout must be positive")
        if self.max_retries < 0:
            raise ValueError("max_retries cannot be negative")
        if self.backoff <= 0 or self.backoff_factor < 1:
            raise ValueError("backoff must be positive, factor >= 1")
        if self.jitter < 0:
            raise ValueError("jitter must be non-negative")
        if not 0 < self.straggler_percentile <= 1:
            raise ValueError("straggler_percentile must be in (0, 1]")


@dataclass
class NodeResult:
    """Everything the engine learned about one target."""

    node: str
    state: ExecState
    exit_code: Optional[int]
    attempts: int
    stdout: list[str] = field(default_factory=list)
    stderr: list[str] = field(default_factory=list)
    started_at: float = 0.0
    finished_at: float = 0.0
    straggler: bool = False
    error: Optional[str] = None

    @property
    def seconds(self) -> float:
        return self.finished_at - self.started_at


@dataclass
class ExecReport:
    """One task's complete, deterministic account."""

    targets: list[str]
    options: ExecOptions
    started_at: float
    finished_at: float
    results: dict[str, NodeResult]

    @property
    def seconds(self) -> float:
        return self.finished_at - self.started_at

    def count(self, state: ExecState) -> int:
        return sum(1 for r in self.results.values() if r.state is state)

    def nodes(self, state: ExecState) -> NodeSet:
        return NodeSet.from_names(
            name for name in sorted(self.results)
            if self.results[name].state is state
        )

    @property
    def stragglers(self) -> NodeSet:
        return NodeSet.from_names(
            name for name in sorted(self.results)
            if self.results[name].straggler
        )

    @property
    def ok(self) -> bool:
        return all(r.state is ExecState.OK for r in self.results.values())

    def msgtree(self) -> MsgTree:
        """Merged stdout of every node that produced output."""
        tree = MsgTree()
        for name in sorted(self.results):
            result = self.results[name]
            for line in result.stdout:
                tree.add(name, line)
        return tree

    def render(self) -> str:
        """The gathered report: summary, merged output, failure detail."""
        opts = self.options
        lines = [
            f"exec: {len(self.targets)} targets, fanout {opts.fanout}, "
            f"{self.seconds:.1f}s simulated"
        ]
        for state in ExecState:
            lines.append(f"  {state.value:<18} {self.count(state):>5}")
        tree = self.msgtree()
        if len(tree):
            lines.append("---")
            lines.append(tree.render())
        failures: dict[tuple[str, str], NodeSet] = {}
        for name in sorted(self.results):
            result = self.results[name]
            if result.state is ExecState.OK:
                continue
            key = (result.state.value, result.error or "")
            failures.setdefault(key, NodeSet()).add(name)
        if failures:
            lines.append("---")
            for (state, error), nodes in sorted(failures.items()):
                detail = f": {error}" if error else ""
                lines.append(f"{state} {nodes.fold()} ({len(nodes)}){detail}")
        stragglers = self.stragglers
        if stragglers:
            lines.append(
                f"stragglers ({len(stragglers)}): {stragglers.fold()}"
            )
        return "\n".join(lines)


class _TaskState:
    """Mutable bookkeeping shared by the window driver and workers."""

    __slots__ = (
        "names", "command", "launched", "active", "results",
        "durations", "flagged", "started", "done", "span",
    )

    def __init__(self, names: list[str], command: RemoteCommand, done) -> None:
        self.names = names
        self.command = command
        self.launched = 0
        #: the fanout's root `exec` span (None when tracing is off);
        #: per-node `exec-node` spans parent here
        self.span = None
        #: node -> attempt start time, insertion-ordered (live window)
        self.active: dict[str, float] = {}
        #: node -> NodeResult, completion order (render paths re-sort)
        self.results: dict[str, NodeResult] = {}
        #: sorted completion durations of finished nodes
        self.durations: list[float] = []
        #: nodes the straggler monitor has flagged while still running
        self.flagged: dict[str, None] = {}
        self.started = 0.0
        self.done = done


class ExecTask:
    """Run callables across the cluster; survives dead nodes and stragglers."""

    def __init__(
        self,
        env: Environment,
        rexec: Rexec,
        options: ExecOptions = ExecOptions(),
        environment: RemoteEnvironment = _ROOT,
        resolver: Optional[GroupResolver] = None,
    ):
        self.env = env
        self.rexec = rexec
        self.options = options
        self.environment = environment
        self.resolver = resolver

    # -- target normalization ---------------------------------------------
    def expand_targets(
        self, targets: Union[str, NodeSet, Sequence[str]]
    ) -> list[str]:
        """Nodeset text / NodeSet / explicit sequence -> ordered name list."""
        if isinstance(targets, str):
            return NodeSet(targets, resolver=self.resolver).expand()
        if isinstance(targets, NodeSet):
            return targets.expand()
        out: dict[str, None] = {}
        for name in targets:
            out[name] = None
        return list(out)

    # -- the engine --------------------------------------------------------
    def run(
        self,
        targets: Union[str, NodeSet, Sequence[str]],
        command: RemoteCommand,
    ) -> Process:
        """Drive the whole task; the process yields an :class:`ExecReport`."""
        names = self.expand_targets(targets)
        return self.env.process(
            self._drive(names, command), name=f"exec:x{len(names)}"
        )

    def _drive(self, names: list[str], command: RemoteCommand) -> Generator:
        env = self.env
        done = env.event()
        state = _TaskState(names, command, done)
        state.started = env.now
        tracer = env.tracer
        span = (
            tracer.span("exec", f"x{len(names)}",
                        targets=len(names), fanout=self.options.fanout)
            if tracer.enabled
            else None
        )
        state.span = span
        if not names:
            done.succeed()
        else:
            self._fill_window(state)
            if self.options.straggler_factor > 0 and len(names) > 1:
                env.process(self._straggle_monitor(state),
                            name="exec:straggler-monitor")
        yield done
        report = ExecReport(
            targets=names,
            options=self.options,
            started_at=state.started,
            finished_at=env.now,
            results=state.results,
        )
        if span is not None:
            span.end(**{s.value: report.count(s) for s in ExecState},
                     stragglers=len(report.stragglers))
        return report

    def _fill_window(self, state: _TaskState) -> None:
        """Launch pending targets until the fanout window is full."""
        while (state.launched < len(state.names)
               and len(state.active) < self.options.fanout):
            name = state.names[state.launched]
            rank = state.launched
            state.launched += 1
            state.active[name] = self.env.now
            worker = self.env.process(
                self._worker(state, name, rank), name=f"exec:{name}"
            )
            worker.callbacks.append(
                lambda ev, s=state: self._on_worker_done(s, ev.value)
            )

    def _on_worker_done(self, state: _TaskState, result: NodeResult) -> None:
        state.active.pop(result.node, None)
        result.straggler = result.node in state.flagged
        state.results[result.node] = result
        if result.state is ExecState.OK:
            bisect.insort(state.durations, result.seconds)
        if len(state.results) == len(state.names):
            if not state.done.triggered:
                state.done.succeed()
        else:
            self._fill_window(state)

    def _worker(self, state: _TaskState, name: str, rank: int) -> Generator:
        """One node's attempt loop: dispatch -> classify -> maybe retry."""
        env = self.env
        opts = self.options
        rng = random.Random(("repro.exec", opts.seed, name).__repr__())
        result = NodeResult(
            node=name, state=ExecState.OK, exit_code=None,
            attempts=0, started_at=env.now,
        )
        node_span = (
            env.tracer.span("exec-node", name, parent=state.span,
                            host=name, rank=rank)
            if env.tracer.enabled
            else None
        )
        try:
            result = yield from self._attempts(
                state, name, rank, rng, result, node_span
            )
        finally:
            if node_span is not None:
                node_span.end(
                    outcome=result.state.value, attempts=result.attempts
                )
        return result

    def _attempts(self, state: _TaskState, name: str, rank: int, rng,
                  result: NodeResult, node_span=None) -> Generator:
        env = self.env
        opts = self.options
        while True:
            result.attempts += 1
            state.active[name] = env.now
            dispatch = self.rexec.spawn(
                name, state.command, self.environment, rank=rank
            )
            timer = (
                env.timeout(opts.command_timeout)
                if opts.command_timeout is not None
                else None
            )
            waits = (dispatch.process,) if timer is None else (
                dispatch.process, timer)
            yield AnyOf(env, waits)
            timed_out = not dispatch.process.triggered
            if timed_out:
                dispatch.abort(f"timeout after {opts.command_timeout:g}s")
            elif timer is not None:
                env.cancel(timer)
            proc = dispatch.proc
            result.stdout = proc.stdout
            result.stderr = proc.stderr
            result.exit_code = proc.exit_code
            if timed_out:
                result.error = (
                    f"timed out after {opts.command_timeout:g}s "
                    f"(attempt {result.attempts})"
                )
                terminal = ExecState.TIMEOUT
            elif proc.node_dead:
                # Dead is terminal immediately: rebooting hardware is the
                # reinstall campaign's job, not the command fabric's.
                result.state = ExecState.NODE_DEAD
                result.error = proc.error
                result.finished_at = env.now
                return result
            elif proc.exit_code == 0:
                result.state = ExecState.OK
                result.error = None
                result.finished_at = env.now
                return result
            else:
                result.error = (
                    f"exit {proc.exit_code} (attempt {result.attempts})"
                )
                terminal = ExecState.RETRIES_EXHAUSTED
            if result.attempts > opts.max_retries:
                result.state = terminal
                result.finished_at = env.now
                return result
            delay = opts.backoff * opts.backoff_factor ** (result.attempts - 1)
            delay *= 1.0 + opts.jitter * rng.random()
            if env.tracer.enabled:
                # Backoff between command attempts: straggler time the
                # critical-path analyzer attributes to retry chains.
                with env.tracer.span("exec-retry", name, parent=node_span,
                                     host=name, attempt=result.attempts,
                                     delay=delay):
                    yield env.timeout(delay)
            else:
                yield env.timeout(delay)

    def _straggle_monitor(self, state: _TaskState) -> Generator:
        """Flag in-flight nodes running far behind the completed pack."""
        env = self.env
        opts = self.options
        while len(state.results) < len(state.names):
            yield env.timeout(opts.straggler_interval)
            finished = state.durations
            if len(finished) < max(
                2, int(opts.straggler_after * len(state.names))
            ):
                continue
            idx = min(
                len(finished) - 1,
                max(0, int(opts.straggler_percentile * len(finished)) - 1),
            )
            threshold = opts.straggler_factor * finished[idx]
            if threshold <= 0:
                continue
            for name, started in state.active.items():
                if name not in state.flagged and env.now - started > threshold:
                    state.flagged[name] = None
                    if env.tracer.enabled:
                        env.tracer.event(
                            "exec-straggler", name, parent=state.span,
                            host=name,
                            elapsed=env.now - started, threshold=threshold,
                        )
