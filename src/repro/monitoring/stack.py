"""One-call wiring: agents + aggregator + store + alerts on a cluster.

:func:`enable_cluster_monitoring` is the operator-facing switch — given
a built frontend and its machines it stands up the whole Ganglia-style
stack: one :class:`~.agent.MetricAgent` per machine (the frontend's
agent additionally samples service health, HTTP admission gauges, and
PBS queue depths), a :class:`~.aggregator.MetricAggregator` listening
on the frontend NIC, the :class:`~.rrd.RoundRobinStore`, an
:class:`~.alerts.AlertEngine` with the default rules, and an agent-fed
legacy :class:`~repro.services.monitor.ClusterMonitor` so the old
``down_hosts`` API keeps one source of truth.

Everything is opt-in and purely observational: with no stack built, the
monitoring subsystem contributes zero simulation events.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from ..cluster import Machine
from ..scheduler.pbs import JobState
from ..services.monitor import ClusterMonitor
from .agent import GMOND_MULTICAST, MetricAgent
from .aggregator import MetricAggregator
from .alerts import AlertEngine, AlertRule, default_rules
from .dashboard import render_cluster_top, to_ganglia_xml
from .rrd import DEFAULT_RESOLUTIONS, Resolution, RoundRobinStore

__all__ = ["MonitoringOptions", "MonitoringStack", "enable_cluster_monitoring",
           "frontend_sampler"]


@dataclass
class MonitoringOptions:
    """Knobs for :func:`enable_cluster_monitoring`."""

    interval: float = 15.0
    seed: int = 0
    multicast_address: str = GMOND_MULTICAST
    resolutions: tuple[Resolution, ...] = DEFAULT_RESOLUTIONS
    #: staleness threshold; None -> 3 x interval
    stale_after: Optional[float] = None
    #: alert rules; None -> :func:`~.alerts.default_rules`
    rules: Optional[tuple[AlertRule, ...]] = None
    #: also feed the legacy ClusterMonitor (single source of truth)
    legacy_monitor: bool = True


def frontend_sampler(frontend) -> Callable:
    """Extra metrics only the frontend's gmond can see.

    Service health becomes ``svc.<name>`` booleans, the install
    server's admission counters surface as ``http.*`` (the same numbers
    the telemetry registry gauges — both read
    :meth:`~repro.netsim.http.HttpServer.admission_stats`), and PBS
    queue depths as ``jobs.*``.
    """

    def sample(machine: Machine) -> tuple[dict, dict]:
        metrics: dict[str, float] = {}
        labels: dict[str, str] = {}
        for name, service in (
            ("dhcp", frontend.dhcp),
            ("install", frontend.install_server),
            ("nfs", frontend.nfs),
        ):
            metrics[f"svc.{name}"] = 1.0 if service.running else 0.0
        stats = frontend.install_server.http.admission_stats()
        metrics["http.in_flight"] = float(stats["in_flight"])
        metrics["http.queue_depth"] = float(stats["queue_depth"])
        metrics["http.rejected"] = float(stats["rejected"])
        metrics["http.queue_timeouts"] = float(stats["queue_timeouts"])
        metrics["http.requests"] = float(stats["requests_served"])
        metrics["http.bytes"] = float(stats["bytes_served"])
        metrics["jobs.queued"] = float(len(frontend.pbs.qstat(JobState.QUEUED)))
        metrics["jobs.running"] = float(len(frontend.pbs.qstat(JobState.RUNNING)))
        return metrics, labels

    return sample


class MonitoringStack:
    """Handles to every monitoring component wired on one cluster."""

    def __init__(
        self,
        env,
        group,
        agents: list[MetricAgent],
        aggregator: MetricAggregator,
        store: RoundRobinStore,
        engine: AlertEngine,
        cluster_monitor: Optional[ClusterMonitor],
        options: MonitoringOptions,
    ):
        self.env = env
        self.group = group
        self.agents = agents
        self.aggregator = aggregator
        self.store = store
        self.engine = engine
        self.cluster_monitor = cluster_monitor
        self.options = options
        self._watch_proc = None

    @property
    def alerts(self):
        return self.engine.alerts

    def render_top(self, max_alerts: Optional[int] = 10) -> str:
        return render_cluster_top(
            self.aggregator, self.engine, max_alerts=max_alerts
        )

    def render_xml(self) -> str:
        return to_ganglia_xml(self.aggregator)

    def start_watch(
        self, period: float, sink: Callable[[str], None] = print
    ) -> None:
        """Emit a cluster-top snapshot every ``period`` simulated seconds."""
        if period <= 0:
            raise ValueError("watch period must be positive")

        def loop():
            while True:
                yield self.env.slotted_timeout(period)
                sink(self.render_top())
                sink("")

        self._watch_proc = self.env.process(loop(), name="monitor:watch")

    # -- deterministic export ------------------------------------------------
    def export(self) -> dict:
        """Everything a run observed: sealed series plus the alert log."""
        self.store.close_all()
        return {
            "format": "repro-monitor",
            "version": 1,
            "end_time": self.env.now,
            "packets": {
                "sent": sum(a.packets_sent for a in self.agents),
                "received": self.aggregator.packets_received,
            },
            "series": self.store.export()["series"],
            "alerts": self.engine.to_records(),
        }

    def export_json(self) -> str:
        """Canonical JSON — byte-identical for same-seed runs."""
        return json.dumps(self.export(), sort_keys=True,
                          separators=(",", ":")) + "\n"

    def write(self, path) -> int:
        """Write the JSON export; returns the number of bytes written."""
        text = self.export_json()
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text)
        return len(text.encode("utf-8"))


def enable_cluster_monitoring(
    frontend,
    machines: Iterable[Machine],
    options: Optional[MonitoringOptions] = None,
) -> MonitoringStack:
    """Wire the full monitoring stack onto a built cluster.

    Call after the nodes are integrated (agents publish under their
    assigned hostnames).  The frontend machine always gets an agent —
    with the frontend-only sampler — in addition to one per compute
    machine; all of them are expected by the aggregator, so a machine
    that never comes up is immediately a ``node-down`` candidate.
    """
    opts = options or MonitoringOptions()
    env = frontend.env
    network = frontend.cluster.network
    group = network.multicast(opts.multicast_address)
    store = RoundRobinStore(opts.resolutions)
    rules = opts.rules if opts.rules is not None else default_rules(
        interval=opts.interval
    )
    engine = AlertEngine(rules)
    aggregator = MetricAggregator(
        env,
        group,
        frontend.machine.mac,
        store=store,
        interval=opts.interval,
        stale_after=opts.stale_after,
        engine=engine,
    )
    cluster_monitor = None
    if opts.legacy_monitor:
        cluster_monitor = ClusterMonitor(
            env, heartbeat_seconds=opts.interval
        )
        cluster_monitor.attach_source(aggregator)
    agents = []
    all_machines = [frontend.machine] + [
        m for m in machines if m is not frontend.machine
    ]
    for machine in all_machines:
        extra = frontend_sampler(frontend) if machine is frontend.machine else None
        agents.append(
            MetricAgent(
                machine,
                group,
                interval=opts.interval,
                seed=opts.seed,
                extra_sampler=extra,
            )
        )
        aggregator.expect(machine.hostid)
        if cluster_monitor is not None:
            cluster_monitor.expect(machine.hostid)
    return MonitoringStack(
        env=env,
        group=group,
        agents=agents,
        aggregator=aggregator,
        store=store,
        engine=engine,
        cluster_monitor=cluster_monitor,
        options=opts,
    )
