"""The per-node metric agent (gmond).

Every machine — compute nodes and the frontend — runs a
:class:`MetricAgent`: a perpetual process that samples local state and
multicasts a compact :class:`MetricPacket` to the well-known group
address.  Fidelity notes:

* the agent transmits whenever the node's OS (or anaconda's install
  environment, which carries the same telemetry the eKV console does)
  has the NIC up — ``INSTALLING``, ``BOOTING``, ``UP``.  A node in
  POST, HUNG, or powered off is dark, exactly the §4 "administrator in
  the dark" window, and that silence is the signal the aggregator's
  staleness logic (and the node-down alert) feeds on;
* sampling has **seeded jitter**: each agent's tick phase and period
  wobble come from a ``random.Random`` seeded with the agent's MAC, so
  broadcasts interleave like real unsynchronized daemons yet replay
  byte-identically for a given seed;
* packets are cheap value objects delivered synchronously over
  :class:`~repro.netsim.multicast.MulticastGroup` — no flows, no
  bandwidth contention, so enabling monitoring never perturbs the
  simulation it observes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional

from ..cluster import Machine, MachineState
from ..netsim import MulticastGroup

__all__ = ["MetricAgent", "MetricPacket", "GMOND_MULTICAST", "ExtraSampler"]

#: Ganglia's historical default channel; any string works as an address.
GMOND_MULTICAST = "239.2.11.71"

#: The machine states in which the NIC is configured and gmond can talk.
_VISIBLE_STATES = (
    MachineState.INSTALLING,
    MachineState.BOOTING,
    MachineState.UP,
)

#: Hook for host-specific metrics (the frontend adds service health,
#: HTTP admission gauges, and scheduler depths): machine ->
#: (numeric metrics, string labels).
ExtraSampler = Callable[[Machine], tuple[dict[str, float], dict[str, str]]]


@dataclass(frozen=True)
class MetricPacket:
    """One gmond broadcast: numeric metrics plus string labels.

    Tuples, not dicts, keep the packet hashable and its iteration order
    fixed; both views are sorted by name at construction so downstream
    storage order never depends on sampler insertion order.
    """

    host: str        # stable host identity (hostname once assigned)
    addr: str        # network address the packet left from (the MAC)
    t: float         # simulated send time
    seq: int         # per-agent sequence number
    metrics: tuple[tuple[str, float], ...]
    labels: tuple[tuple[str, str], ...]

    def __post_init__(self) -> None:
        # Cached lookup maps (not fields: excluded from eq/hash/repr).
        # The alert engine probes metrics per rule per host per tick, so
        # lookups must not rescan the tuples.
        object.__setattr__(self, "_metric_map", dict(self.metrics))
        object.__setattr__(self, "_label_map", dict(self.labels))

    def metric(self, name: str, default: float = 0.0) -> float:
        return self._metric_map.get(name, default)

    def has_metric(self, name: str) -> bool:
        return name in self._metric_map

    def label(self, name: str, default: str = "") -> str:
        return self._label_map.get(name, default)


class MetricAgent:
    """gmond: samples one machine and multicasts the readings."""

    def __init__(
        self,
        machine: Machine,
        group: MulticastGroup,
        interval: float = 15.0,
        seed: int = 0,
        extra_sampler: Optional[ExtraSampler] = None,
    ):
        if interval <= 0:
            raise ValueError("agent interval must be positive")
        self.machine = machine
        self.group = group
        self.interval = interval
        self.extra_sampler = extra_sampler
        # Seeded per-agent: phase offset and per-tick wobble are unique
        # to this MAC but identical across same-seed runs.
        self.rng = random.Random(("gmond", seed, machine.mac).__repr__())
        self.packets_sent = 0
        self.packets_heard = 0  # delivered to at least one listener
        self._seq = 0
        self._proc = machine.env.process(
            self._loop(), name=f"gmond:{machine.hostid}"
        )

    # -- sampling -----------------------------------------------------------
    def sample(self) -> MetricPacket:
        """Read the machine's current state into a packet (no side effects)."""
        machine = self.machine
        env = machine.env
        metrics: dict[str, float] = {}
        labels: dict[str, str] = {}

        n_cpus = max(machine.spec.cpu.count, 1)
        load = len(machine.user_processes)
        installing = machine.state is MachineState.INSTALLING
        metrics["load"] = load
        # cpu proxy: anaconda pegs a CPU while installing; otherwise the
        # running user processes spread over the cores.
        metrics["cpu"] = 1.0 if installing else min(load / n_cpus, 1.0)
        metrics["packages"] = len(machine.rpmdb)
        metrics["installs"] = machine.install_count
        labels["state"] = machine.state.value
        labels["phase"] = machine.install_phase or ""
        labels["kernel"] = machine.kernel_version or ""

        network = self.group.network
        if network.has_host(machine.mac):
            host = network.host(machine.mac)
            metrics["net.tx_bytes"] = host.tx.bytes_carried
            metrics["net.rx_bytes"] = host.rx.bytes_carried
            metrics["net.tx_util"] = host.tx.utilization()
            metrics["net.rx_util"] = host.rx.utilization()

        progress = machine.install_progress
        if installing and progress is not None:
            metrics["install.done_pkgs"] = progress.done_packages
            metrics["install.total_pkgs"] = progress.total_packages
            metrics["install.done_bytes"] = progress.done_bytes

        if self.extra_sampler is not None:
            extra_metrics, extra_labels = self.extra_sampler(machine)
            metrics.update(extra_metrics)
            labels.update(extra_labels)

        packet = MetricPacket(
            host=machine.hostid,
            addr=machine.mac,
            t=env.now,
            seq=self._seq,
            metrics=tuple(sorted(metrics.items())),
            labels=tuple(sorted(labels.items())),
        )
        self._seq += 1
        return packet

    @property
    def visible(self) -> bool:
        """Whether the agent can currently reach the wire."""
        return self.machine.state in _VISIBLE_STATES

    # -- the daemon loop ----------------------------------------------------
    def _loop(self):
        env = self.machine.env
        # Unsynchronized daemons: each starts at a random phase so 32
        # agents don't all broadcast on the same simulated instant.
        yield env.timeout(self.rng.uniform(0.0, self.interval))
        wobble = 0.05 * self.interval
        while True:
            if self.visible:
                packet = self.sample()
                heard = self.group.send(self.machine.mac, packet)
                self.packets_sent += 1
                if heard:
                    self.packets_heard += 1
            yield env.timeout(
                self.interval + self.rng.uniform(-wobble, wobble)
            )
