"""Ganglia-style distributed cluster monitoring, in-simulation.

Rocks shipped Matt Massie's Ganglia alongside the install machinery
because a cluster a tiny staff can manage needs a feedback loop: every
node runs a metric daemon (gmond), the frontend aggregates the
multicast stream (gmetad), round-robin databases bound the storage,
and dashboards answer "what is every node doing right now?".  This
package reproduces that architecture on the simulated cluster:

* :mod:`.agent` — per-node :class:`MetricAgent` publishing
  :class:`MetricPacket`\\ s over simulated UDP multicast, seeded jitter;
* :mod:`.aggregator` — the frontend :class:`MetricAggregator`: live
  view, staleness, packet fan-out;
* :mod:`.rrd` — :class:`RoundRobinStore`, fixed-size multi-resolution
  rings with min/mean/max cascade and byte-identical JSON export;
* :mod:`.alerts` — declarative :class:`AlertRule`\\ s edge-detected by
  an :class:`AlertEngine` into typed, traced alerts;
* :mod:`.dashboard` — ``cluster-top`` text view and a Ganglia-flavored
  XML dump;
* :mod:`.stack` — :func:`enable_cluster_monitoring`, the one-call
  wiring used by the fault/chaos driver and the ``repro monitor`` CLI.

Monitoring is opt-in and purely observational: it reads machine and
service state, never mutates it, so a monitored run's simulated
timeline is bit-identical to an unmonitored one.
"""

from .agent import GMOND_MULTICAST, MetricAgent, MetricPacket
from .aggregator import MetricAggregator
from .alerts import (
    Alert,
    AlertEngine,
    AlertRule,
    InstallStuckRule,
    LinkSaturationRule,
    NodeDownRule,
    ServiceDownRule,
    ShedRateRule,
    default_rules,
)
from .dashboard import render_cluster_top, to_ganglia_xml
from .rrd import (
    DEFAULT_RESOLUTIONS,
    Resolution,
    RoundRobinSeries,
    RoundRobinStore,
)
from .stack import (
    MonitoringOptions,
    MonitoringStack,
    enable_cluster_monitoring,
    frontend_sampler,
)

__all__ = [
    "GMOND_MULTICAST",
    "MetricAgent",
    "MetricPacket",
    "MetricAggregator",
    "Alert",
    "AlertEngine",
    "AlertRule",
    "NodeDownRule",
    "ServiceDownRule",
    "InstallStuckRule",
    "ShedRateRule",
    "LinkSaturationRule",
    "default_rules",
    "render_cluster_top",
    "to_ganglia_xml",
    "Resolution",
    "RoundRobinSeries",
    "RoundRobinStore",
    "DEFAULT_RESOLUTIONS",
    "MonitoringOptions",
    "MonitoringStack",
    "enable_cluster_monitoring",
    "frontend_sampler",
]
