"""Round-robin time-series storage (the RRDtool idea, simulation-grade).

Ganglia's gmetad persists every metric into RRD files: fixed-size rings
at several resolutions, so storage is bounded no matter how long the
cluster runs, and old data survives as coarser aggregates instead of
disappearing.  This module is that model in memory:

* a :class:`RoundRobinSeries` holds one archive per
  :class:`Resolution`, finest first; raw samples land in the finest
  ring, and every time a ring seals a bucket the sealed row **cascades**
  into the next-coarser ring (steps must divide evenly, so the cascade
  is exact, not approximate);
* each row keeps ``(count, sum, min, max)`` — mean is ``sum / count``,
  and because those aggregates are associative the cascaded coarse rows
  equal what the raw samples would have produced directly;
* rings overwrite oldest-first once full (that is the "round-robin").

Export is deliberately boring JSON — sorted keys, compact separators —
so two same-seed runs produce **byte-identical** files; the determinism
test suite diffs them raw.

A series must be explicitly :meth:`~RoundRobinSeries.close`\\ d (or the
store's :meth:`~RoundRobinStore.close_all` called) before export, which
seals the in-progress buckets.  Opening a series and discarding the
handle is the RK205 lint smell: such a series can never be fed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Iterable, Optional

__all__ = [
    "Resolution",
    "RoundRobinSeries",
    "RoundRobinStore",
    "DEFAULT_RESOLUTIONS",
    "feed_series",
]


@dataclass(frozen=True)
class Resolution:
    """One ring: ``step`` seconds per row, ``rows`` rows before wrap."""

    step: float
    rows: int

    def __post_init__(self) -> None:
        if self.step <= 0:
            raise ValueError("resolution step must be positive")
        if self.rows < 1:
            raise ValueError("resolution needs at least one row")

    @property
    def span(self) -> float:
        """Seconds of history this ring retains."""
        return self.step * self.rows


#: 15 s for an hour, 1 min for three hours, 5 min for a day — enough to
#: watch a reinstall campaign live and keep the whole run's shape after.
DEFAULT_RESOLUTIONS = (
    Resolution(15.0, 240),
    Resolution(60.0, 180),
    Resolution(300.0, 288),
)


class _Ring:
    """One fixed-size archive: sealed rows plus the in-progress bucket.

    A row is ``[bucket_t, count, sum, min, max]`` covering samples with
    ``bucket_t <= t < bucket_t + step``.
    """

    __slots__ = ("step", "capacity", "rows", "open_row")

    def __init__(self, step: float, capacity: int):
        self.step = step
        self.capacity = capacity
        self.rows: list[list[float]] = []
        self.open_row: Optional[list[float]] = None

    def add(self, t: float, count: float, vsum: float,
            vmin: float, vmax: float) -> Optional[list[float]]:
        """Merge an aggregate into the bucket containing ``t``.

        Returns the row this add sealed (time moved past its bucket),
        or None; the caller cascades sealed rows to the coarser ring.
        """
        # Float floor-division is exact (floor of the true quotient), so
        # bucket boundaries are stable without a math.floor call — this
        # is the hottest line in the monitoring stack.
        bucket = t // self.step * self.step
        sealed = None
        cur = self.open_row
        if cur is not None and bucket > cur[0]:
            sealed = self.seal()
            cur = None
        if cur is None:
            self.open_row = [bucket, count, vsum, vmin, vmax]
        else:
            cur[1] += count
            cur[2] += vsum
            if vmin < cur[3]:
                cur[3] = vmin
            if vmax > cur[4]:
                cur[4] = vmax
        return sealed

    def seal(self) -> Optional[list[float]]:
        """Finalize the in-progress bucket into the ring (trim oldest)."""
        row = self.open_row
        if row is None:
            return None
        self.open_row = None
        self.rows.append(row)
        if len(self.rows) > self.capacity:
            del self.rows[: len(self.rows) - self.capacity]
        return row


class RoundRobinSeries:
    """One metric's multi-resolution history."""

    def __init__(self, name: str, resolutions: Iterable[Resolution]):
        res = sorted(resolutions, key=lambda r: r.step)
        if not res:
            raise ValueError("a series needs at least one resolution")
        for fine, coarse in zip(res, res[1:]):
            ratio = coarse.step / fine.step
            if abs(ratio - round(ratio)) > 1e-9:
                raise ValueError(
                    f"cascade requires dividing steps: {coarse.step} is not "
                    f"a multiple of {fine.step}"
                )
        self.name = name
        self.resolutions = tuple(res)
        self._rings = [_Ring(r.step, r.rows) for r in res]
        self._fine = self._rings[0]
        self._coarser = tuple(self._rings[1:])
        self._pending: list[tuple[float, float]] = []
        self.n_samples = 0
        self.last_t: Optional[float] = None
        self.last_value: Optional[float] = None
        self.closed = False

    #: fold the pending buffer into the rings after this many samples,
    #: so memory stays bounded even on a series nobody ever reads.
    _FOLD_CHUNK = 1024

    def record(self, t: float, value: float) -> None:
        """Append one raw sample; simulated time must not go backwards.

        This is the monitoring stack's hottest call (every metric of
        every gmond packet lands here), so it only buffers: samples are
        folded into the rings in batches, on read or on close.
        """
        if self.closed:
            raise RuntimeError(f"series {self.name!r} is closed")
        if self.last_t is not None and t < self.last_t:
            raise ValueError(
                f"series {self.name!r}: sample at t={t} after t={self.last_t}"
            )
        self.n_samples += 1
        self.last_t = t
        self.last_value = value
        self._pending.append((t, value))
        if len(self._pending) >= self._FOLD_CHUNK:
            self._fold()

    def _fold(self) -> None:
        """Drain buffered samples through the rings (exact, in order)."""
        pending = self._pending
        if not pending:
            return
        self._pending = []
        fine = self._fine
        coarser = self._coarser
        step = fine.step
        cur = fine.open_row
        for t, value in pending:
            bucket = t // step * step
            if cur is None:
                cur = [bucket, 1.0, value, value, value]
            elif bucket <= cur[0]:
                cur[1] += 1.0
                cur[2] += value
                if value < cur[3]:
                    cur[3] = value
                if value > cur[4]:
                    cur[4] = value
            else:
                fine.open_row = cur
                sealed = fine.seal()
                cur = [bucket, 1.0, value, value, value]
                for ring in coarser:
                    sealed = ring.add(sealed[0], sealed[1], sealed[2],
                                      sealed[3], sealed[4])
                    if sealed is None:
                        break
        fine.open_row = cur

    def close(self) -> None:
        """Seal in-progress buckets (cascading) and freeze the series."""
        if self.closed:
            return
        self._fold()
        # Merging a carried row can itself seal a bucket in the coarser
        # ring, so each ring may hand more than one row downward here.
        carry_rows: list[list[float]] = []
        for ring in self._rings:
            next_rows: list[list[float]] = []
            for row in carry_rows:
                sealed = ring.add(*row)
                if sealed is not None:
                    next_rows.append(sealed)
            final = ring.seal()
            if final is not None:
                next_rows.append(final)
            carry_rows = next_rows
        self.closed = True

    # -- reading ------------------------------------------------------------
    def latest(self) -> Optional[tuple[float, float]]:
        """The last raw sample as ``(t, value)``, or None when empty."""
        if self.last_t is None:
            return None
        return (self.last_t, self.last_value)

    def rows(self, step: Optional[float] = None) -> list[tuple[float, ...]]:
        """Sealed+open rows of one ring (finest by default), oldest first."""
        self._fold()
        ring = self._ring_for(step)
        out = [tuple(r) for r in ring.rows]
        if ring.open_row is not None:
            out.append(tuple(ring.open_row))
        return out

    def means(self, step: Optional[float] = None) -> list[tuple[float, float]]:
        """``(bucket_t, mean)`` per bucket of one ring, oldest first."""
        return [(r[0], r[2] / r[1]) for r in self.rows(step) if r[1] > 0]

    def _ring_for(self, step: Optional[float]) -> _Ring:
        if step is None:
            return self._rings[0]
        for ring in self._rings:
            if ring.step == step:
                return ring
        raise KeyError(
            f"series {self.name!r} has no {step}s ring; "
            f"have {[r.step for r in self._rings]}"
        )

    def to_dict(self) -> dict:
        self._fold()
        return {
            "name": self.name,
            "samples": self.n_samples,
            "archives": [
                {
                    "step": ring.step,
                    "rows": [list(r) for r in ring.rows]
                    + ([list(ring.open_row)]
                       if ring.open_row is not None else []),
                }
                for ring in self._rings
            ],
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RoundRobinSeries({self.name!r}, {self.n_samples} samples)"


def feed_series(series_list, t: float, values) -> None:
    """Batched ingest: one packet's metrics into their series, inlined.

    The aggregator calls this once per gmond packet with the cached
    series (one per metric, in packet order) and the packet's
    ``(name, value)`` tuples.  It is :meth:`RoundRobinSeries.record`
    minus the per-sample monotonicity check — multicast delivery is
    synchronous, so an aggregator's feed can never go backwards in
    time — and minus one Python frame per metric, which is the
    difference between monitoring costing percents and costing noise.
    """
    for series, (_, value) in zip(series_list, values):
        if series.closed:
            raise RuntimeError(f"series {series.name!r} is closed")
        series.n_samples += 1
        series.last_t = t
        series.last_value = value
        series._pending.append((t, value))
        # Counter-based fold trigger (no len() call): pending can never
        # exceed the chunk size because a fold lands at least this often.
        if series.n_samples % RoundRobinSeries._FOLD_CHUNK == 0:
            series._fold()


class RoundRobinStore:
    """All the cluster's series, keyed ``<host>/<metric>``."""

    def __init__(self, resolutions: Iterable[Resolution] = DEFAULT_RESOLUTIONS):
        self.resolutions = tuple(resolutions)
        self._series: dict[str, RoundRobinSeries] = {}

    def open_series(self, name: str) -> RoundRobinSeries:
        """The series called ``name``, created on first open.

        Keep the handle (or use :meth:`record`): an opened-and-discarded
        series can never receive samples — the RK205 lint flags that.
        """
        series = self._series.get(name)
        if series is None:
            series = RoundRobinSeries(name, self.resolutions)
            self._series[name] = series
        return series

    def record(self, name: str, t: float, value: float) -> None:
        self.open_series(name).record(t, value)

    def get(self, name: str) -> Optional[RoundRobinSeries]:
        return self._series.get(name)

    def series_names(self) -> list[str]:
        return sorted(self._series)

    @property
    def n_series(self) -> int:
        return len(self._series)

    def close_all(self) -> None:
        """Seal every series (flush before export)."""
        for series in self._series.values():
            series.close()

    # -- deterministic export ------------------------------------------------
    def export(self) -> dict:
        """The whole store as a plain dict (series sorted by name)."""
        return {
            "format": "repro-rrd",
            "version": 1,
            "resolutions": [
                {"step": r.step, "rows": r.rows} for r in self.resolutions
            ],
            "series": {
                name: self._series[name].to_dict()
                for name in sorted(self._series)
            },
        }

    def export_json(self) -> str:
        """Canonical JSON: byte-identical across same-seed runs."""
        return json.dumps(self.export(), sort_keys=True,
                          separators=(",", ":")) + "\n"

    def write(self, path) -> int:
        """Write the JSON export to ``path``; returns bytes written."""
        text = self.export_json()
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text)
        return len(text.encode("utf-8"))
