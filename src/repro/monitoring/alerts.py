"""Declarative alerting over the aggregator's live view.

An :class:`AlertRule` reports the set of *currently true* conditions
each evaluation tick; the :class:`AlertEngine` edge-detects — a
condition that appears fires a typed :class:`Alert`, one that vanishes
records a clear — so a node that stays down for ten minutes pages once,
not forty times.  Fired and cleared alerts go to the telemetry tracer
as ``alert`` / ``alert-clear`` events (no-ops under the null tracer)
and accumulate on the engine for reports and determinism tests.

The built-in rules cover the four failures §4 of the paper says an
administrator must notice: a node gone dark (node-down), an
installation wedged in one phase (install-stuck), the install server
shedding load (http-shed), and a saturated NIC (link-saturated), plus
frontend service health (service-down).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = [
    "Alert",
    "AlertRule",
    "AlertEngine",
    "NodeDownRule",
    "ServiceDownRule",
    "InstallStuckRule",
    "ShedRateRule",
    "LinkSaturationRule",
    "default_rules",
]


@dataclass(frozen=True)
class Alert:
    """One fired (or cleared) alert: the typed payload rules emit."""

    t: float
    kind: str        # rule identity: "node-down", "install-stuck", ...
    severity: str    # "critical" | "warning"
    host: str        # subject, e.g. "compute-0-3" or "frontend-0/dhcp"
    message: str
    value: float = 0.0

    def render(self) -> str:
        tag = "CRIT" if self.severity == "critical" else "WARN"
        return f"[{self.t:8.1f}s] {tag} {self.kind:<15} {self.host}: {self.message}"


class AlertRule:
    """Base rule: subclasses report currently-true conditions.

    ``check`` returns ``{subject: (message, value)}``; the engine owns
    the fire/clear edge detection.  Rules may keep internal state
    between ticks (counters, last-seen values) — it must derive only
    from the aggregator view, never from wall time or unseeded RNG.
    """

    kind = "abstract"
    severity = "warning"

    def check(self, agg, now: float) -> dict[str, tuple[str, float]]:
        raise NotImplementedError


class NodeDownRule(AlertRule):
    """An expected host has gone silent past the staleness threshold."""

    kind = "node-down"
    severity = "critical"

    def __init__(self, stale_after: Optional[float] = None):
        self.stale_after = stale_after

    def check(self, agg, now: float) -> dict[str, tuple[str, float]]:
        limit = self.stale_after if self.stale_after is not None else agg.stale_after
        conditions: dict[str, tuple[str, float]] = {}
        for host in agg.expected_hosts():
            age = agg.age(host)
            if age > limit:
                if age == float("inf"):
                    conditions[host] = ("never heard a heartbeat", -1.0)
                else:
                    conditions[host] = (f"no heartbeat for {age:.0f}s", age)
        return conditions


class ServiceDownRule(AlertRule):
    """A ``svc.*`` gauge (frontend service health) reads 0."""

    kind = "service-down"
    severity = "critical"

    def check(self, agg, now: float) -> dict[str, tuple[str, float]]:
        conditions: dict[str, tuple[str, float]] = {}
        for host, packet in agg.snapshot().items():
            for name, value in packet.metrics:
                if name.startswith("svc.") and value == 0.0:
                    service = name[len("svc."):]
                    conditions[f"{host}/{service}"] = (
                        f"service {service} is not running", 0.0
                    )
        return conditions


class InstallStuckRule(AlertRule):
    """A node has sat in one install phase with no progress too long.

    Progress is the (phase, packages installed) pair: a healthy install
    changes it every few seconds, so a frozen pair past the threshold
    means the node is wedged (dead install server, lost route) even
    though its heartbeats still flow.
    """

    kind = "install-stuck"
    severity = "warning"

    def __init__(self, threshold: float = 360.0):
        self.threshold = threshold
        #: host -> (progress token, first time it was seen)
        self._since: dict[str, tuple[tuple, float]] = {}

    def check(self, agg, now: float) -> dict[str, tuple[str, float]]:
        conditions: dict[str, tuple[str, float]] = {}
        installing: dict[str, None] = {}
        for host, packet in agg.snapshot().items():
            if packet.label("state") != "installing":
                continue
            installing[host] = None
            token = (packet.label("phase"), packet.metric("install.done_pkgs"))
            seen = self._since.get(host)
            if seen is None or seen[0] != token:
                self._since[host] = (token, packet.t)
                continue
            stuck_for = now - seen[1]
            if stuck_for > self.threshold:
                phase = packet.label("phase") or "?"
                conditions[host] = (
                    f"no progress in phase {phase} for {stuck_for:.0f}s",
                    stuck_for,
                )
        for host in list(self._since):
            if host not in installing:
                del self._since[host]
        return conditions


class ShedRateRule(AlertRule):
    """HTTP admission control is shedding 503s faster than the floor."""

    kind = "http-shed"
    severity = "warning"

    def __init__(self, min_sheds: float = 5.0):
        #: sheds per evaluation window that count as overload
        self.min_sheds = min_sheds
        self._last: dict[str, float] = {}

    def check(self, agg, now: float) -> dict[str, tuple[str, float]]:
        conditions: dict[str, tuple[str, float]] = {}
        for host, packet in agg.snapshot().items():
            if not packet.has_metric("http.rejected"):
                continue
            total = packet.metric("http.rejected")
            delta = total - self._last.get(host, 0.0)
            self._last[host] = total
            if delta >= self.min_sheds:
                conditions[host] = (
                    f"shed {delta:.0f} requests this window "
                    f"({total:.0f} total)",
                    delta,
                )
        return conditions


class LinkSaturationRule(AlertRule):
    """A NIC has run saturated for several consecutive reports."""

    kind = "link-saturated"
    severity = "warning"

    def __init__(self, threshold: float = 0.98, sustain: int = 3):
        self.threshold = threshold
        self.sustain = sustain
        self._streak: dict[str, int] = {}

    def check(self, agg, now: float) -> dict[str, tuple[str, float]]:
        conditions: dict[str, tuple[str, float]] = {}
        for host, packet in agg.snapshot().items():
            util = max(packet.metric("net.tx_util"), packet.metric("net.rx_util"))
            if util >= self.threshold:
                streak = self._streak.get(host, 0) + 1
            else:
                streak = 0
            self._streak[host] = streak
            if streak >= self.sustain:
                conditions[host] = (
                    f"NIC at {100 * util:.0f}% for {streak} samples", util
                )
        return conditions


def default_rules(
    interval: float = 15.0,
    stuck_threshold: float = 360.0,
) -> tuple[AlertRule, ...]:
    """The standard rule set, thresholds scaled to the agent interval."""
    return (
        NodeDownRule(),
        ServiceDownRule(),
        InstallStuckRule(threshold=stuck_threshold),
        ShedRateRule(),
        LinkSaturationRule(),
    )


class AlertEngine:
    """Edge-detects rule conditions into fired/cleared alerts."""

    def __init__(self, rules: tuple[AlertRule, ...] = ()):
        self.rules = list(rules)
        #: every alert ever fired, in order
        self.alerts: list[Alert] = []
        #: every clear, in order (same Alert shape, message "cleared")
        self.cleared: list[Alert] = []
        self._active: dict[tuple[str, str], Alert] = {}
        self.evaluations = 0

    def add_rule(self, rule: AlertRule) -> None:
        self.rules.append(rule)

    def evaluate(self, agg, now: float) -> list[Alert]:
        """Run every rule against the aggregator; returns newly fired."""
        self.evaluations += 1
        tracer = agg.env.tracer
        fired: list[Alert] = []
        for rule in self.rules:
            conditions = rule.check(agg, now)
            for subject, (message, value) in conditions.items():
                key = (rule.kind, subject)
                if key in self._active:
                    continue
                alert = Alert(
                    t=now,
                    kind=rule.kind,
                    severity=rule.severity,
                    host=subject,
                    message=message,
                    value=value,
                )
                self._active[key] = alert
                self.alerts.append(alert)
                fired.append(alert)
                if tracer.enabled:
                    tracer.event(
                        "alert",
                        f"{rule.kind}:{subject}",
                        severity=rule.severity,
                        host=subject,
                        message=message,
                        value=value,
                    )
                    tracer.metrics.inc(f"alerts.fired/{rule.kind}")
            for key in [k for k in self._active if k[0] == rule.kind]:
                if key[1] not in conditions:
                    raised = self._active.pop(key)
                    clear = Alert(
                        t=now,
                        kind=raised.kind,
                        severity=raised.severity,
                        host=raised.host,
                        message=f"cleared after {now - raised.t:.0f}s",
                        value=0.0,
                    )
                    self.cleared.append(clear)
                    if tracer.enabled:
                        tracer.event(
                            "alert-clear",
                            f"{raised.kind}:{raised.host}",
                            host=raised.host,
                            raised_at=raised.t,
                        )
        return fired

    def active(self) -> list[Alert]:
        """Currently-raised alerts, in fire order."""
        return list(self._active.values())

    def kinds_fired(self) -> list[str]:
        """Distinct alert kinds ever fired, sorted."""
        return sorted({a.kind for a in self.alerts})

    def signature(self) -> str:
        """Deterministic one-line-per-alert render (for byte comparison)."""
        lines = [a.render() for a in self.alerts]
        lines += [f"[{c.t:8.1f}s] CLEAR {c.kind:<15} {c.host}: {c.message}"
                  for c in self.cleared]
        return "\n".join(lines)

    def to_records(self) -> list[dict]:
        """JSON-ready alert log (fired then cleared, each in order)."""
        def rec(a: Alert, status: str) -> dict:
            return {
                "status": status,
                "t": a.t,
                "kind": a.kind,
                "severity": a.severity,
                "host": a.host,
                "message": a.message,
                "value": a.value,
            }
        return ([rec(a, "fired") for a in self.alerts]
                + [rec(c, "cleared") for c in self.cleared])
