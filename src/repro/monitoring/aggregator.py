"""The frontend-side metric aggregator (gmetad).

One :class:`MetricAggregator` joins the gmond multicast group on the
frontend's NIC and builds the live cluster view: the last packet per
host, per-host staleness ages, and a :class:`~.rrd.RoundRobinStore`
holding every numeric series as ``<host>/<metric>``.  An attached
:class:`~.alerts.AlertEngine` is evaluated on a fixed tick, and any
number of ``on_packet`` listeners (the legacy
:class:`~repro.services.monitor.ClusterMonitor`, tests, dashboards)
see every packet as it lands.

The aggregator is a :class:`~repro.services.base.Service`, so the fault
injector can kill it like any other daemon — a dead gmetad drops
packets on the floor, and its view goes uniformly stale.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from ..netsim import Environment, MulticastGroup
from ..services.base import Service
from .agent import MetricPacket
from .rrd import RoundRobinStore, feed_series

__all__ = ["MetricAggregator"]

#: fn(packet) — called for every accepted packet, in arrival order.
PacketListener = Callable[[MetricPacket], None]


class MetricAggregator(Service):
    """Listens on the multicast group; owns the cluster's metric state."""

    def __init__(
        self,
        env: Environment,
        group: MulticastGroup,
        listen_addr: str,
        store: Optional[RoundRobinStore] = None,
        interval: float = 15.0,
        stale_after: Optional[float] = None,
        engine=None,
    ):
        super().__init__("gmetad")
        self.env = env
        self.group = group
        self.listen_addr = listen_addr
        self.store = store if store is not None else RoundRobinStore()
        self.interval = interval
        #: a host is stale once its last packet is older than this; the
        #: Ganglia rule of thumb is a few missed beats, not one.
        self.stale_after = (
            stale_after if stale_after is not None else 3.0 * interval
        )
        self.engine = engine
        self.packets_received = 0
        self.on_packet: list[PacketListener] = []
        #: hosts that *should* be reporting (dict-as-set, insertion order)
        self._expected: dict[str, None] = {}
        #: last packet per host, in first-heard order
        self._last: dict[str, MetricPacket] = {}
        #: series per (host, metric names) — the set of metrics a host
        #: reports is near-constant, so the receive path skips the name
        #: formatting and store lookup per metric.
        self._series_cache: dict[tuple, list] = {}
        group.join(listen_addr, self._receive)
        self.start()
        if engine is not None:
            self._eval_proc = env.process(self._tick(), name="gmetad:eval")
        else:
            self._eval_proc = None

    # -- expected membership ------------------------------------------------
    def expect(self, host: str) -> None:
        """Register a host whose silence should count as *down*."""
        self._expected[host] = None

    def expect_hosts(self, hosts: Iterable[str]) -> None:
        for host in hosts:
            self.expect(host)

    def expected_hosts(self) -> list[str]:
        return list(self._expected)

    def known_hosts(self) -> list[str]:
        """Expected plus anything that ever reported, stable order."""
        known = dict(self._expected)
        for host in self._last:
            known.setdefault(host, None)
        return list(known)

    # -- the receive path ---------------------------------------------------
    def _receive(self, src: str, packet: MetricPacket, t: float) -> None:
        if not self.running:
            return  # a dead gmetad hears nothing
        self.packets_received += 1
        self._last[packet.host] = packet
        metrics = packet.metrics
        key = (packet.host, tuple([name for name, _ in metrics]))
        series = self._series_cache.get(key)
        if series is None:
            series = [
                self.store.open_series(f"{packet.host}/{name}")
                for name, _ in metrics
            ]
            self._series_cache[key] = series
        feed_series(series, t, metrics)
        for listener in self.on_packet:
            listener(packet)

    # -- the live view ------------------------------------------------------
    def last_packet(self, host: str) -> Optional[MetricPacket]:
        return self._last.get(host)

    def snapshot(self) -> dict[str, MetricPacket]:
        return dict(self._last)

    def age(self, host: str) -> float:
        """Seconds since the host last reported (inf if never)."""
        packet = self._last.get(host)
        return float("inf") if packet is None else self.env.now - packet.t

    def is_stale(self, host: str) -> bool:
        return self.age(host) > self.stale_after

    def down_hosts(self, threshold: Optional[float] = None) -> list[str]:
        """Hosts silent past the threshold — shoot-node candidates.

        Expected hosts that never reported have age inf, which no
        threshold forgives.
        """
        limit = threshold if threshold is not None else self.stale_after
        return sorted(h for h in self.known_hosts() if self.age(h) > limit)

    def up_hosts(self, threshold: Optional[float] = None) -> list[str]:
        limit = threshold if threshold is not None else self.stale_after
        return sorted(h for h in self.known_hosts() if self.age(h) <= limit)

    # -- alert evaluation ---------------------------------------------------
    def _tick(self):
        while True:
            # Fixed-period tick: share the heap entry with anything else
            # due at the same instant (e.g. lockstep monitor daemons).
            yield self.env.slotted_timeout(self.interval)
            if self.running and self.engine is not None:
                self.engine.evaluate(self, self.env.now)
