"""Operator views over the aggregator: cluster-top and the XML dump.

``render_cluster_top`` is the terminal dashboard — one line per host
with state, install phase, progress, load, and NIC utilization, plus
the active alerts — the answer to "what is every node doing right
now?".  ``to_ganglia_xml`` dumps the same view in the spirit of
Ganglia's wire format (``<GANGLIA_XML><CLUSTER><HOST><METRIC .../>``),
the interchange form a real gmetad serves on its TCP port.
"""

from __future__ import annotations

from typing import Optional
from xml.sax.saxutils import quoteattr

from .aggregator import MetricAggregator

__all__ = ["render_cluster_top", "to_ganglia_xml"]


def _fmt_age(age: float) -> str:
    return "never" if age == float("inf") else f"{age:.0f}s"


def _host_row(agg: MetricAggregator, host: str) -> str:
    packet = agg.last_packet(host)
    if packet is None:
        return (f"{host:<16} {'no-contact':<12} {'-':<9} "
                f"{'-':>9} {'-':>5} {'-':>5} {'-':>4} {'-':>4}")
    state = packet.label("state")
    if agg.is_stale(host):
        state = f"{state}?"  # last known, but the host has gone quiet
    phase = packet.label("phase") or "-"
    if packet.has_metric("install.total_pkgs"):
        done = packet.metric("install.done_pkgs")
        total = packet.metric("install.total_pkgs")
        progress = f"{done:.0f}/{total:.0f}"
    else:
        progress = "-"
    return (
        f"{host:<16} {state:<12} {phase:<9} {progress:>9} "
        f"{packet.metric('load'):>5.0f} {packet.metric('packages'):>5.0f} "
        f"{100 * packet.metric('net.tx_util'):>4.0f} "
        f"{100 * packet.metric('net.rx_util'):>4.0f}"
    )


def render_cluster_top(
    agg: MetricAggregator,
    engine=None,
    cluster_name: str = "rocks",
    max_alerts: Optional[int] = 10,
) -> str:
    """The live text dashboard: one row per host, active alerts below."""
    hosts = agg.known_hosts()
    up = sum(1 for h in hosts if not agg.is_stale(h))
    header = (
        f"cluster-top — {cluster_name} at t={agg.env.now:.0f}s: "
        f"{up}/{len(hosts)} hosts reporting, "
        f"{agg.packets_received} packets"
    )
    lines = [header]
    lines.append(
        f"{'host':<16} {'state':<12} {'phase':<9} {'progress':>9} "
        f"{'load':>5} {'pkgs':>5} {'tx%':>4} {'rx%':>4}"
    )
    for host in sorted(hosts):
        lines.append(_host_row(agg, host))
    if engine is not None:
        active = engine.active()
        if active:
            lines.append(f"active alerts ({len(active)}):")
            shown = active if max_alerts is None else active[:max_alerts]
            for alert in shown:
                lines.append("  " + alert.render())
            if max_alerts is not None and len(active) > max_alerts:
                lines.append(f"  ... and {len(active) - max_alerts} more")
        else:
            lines.append("no active alerts")
    return "\n".join(lines)


def to_ganglia_xml(
    agg: MetricAggregator, cluster_name: str = "rocks"
) -> str:
    """The cluster state in the spirit of Ganglia's XML wire format."""
    now = agg.env.now
    lines = [
        '<?xml version="1.0" encoding="ISO-8859-1"?>',
        '<GANGLIA_XML VERSION="2.5.7" SOURCE="repro-gmetad">',
        f'<CLUSTER NAME={quoteattr(cluster_name)} LOCALTIME="{now:.0f}" '
        f'OWNER="repro" URL="">',
    ]
    for host in sorted(agg.known_hosts()):
        packet = agg.last_packet(host)
        if packet is None:
            lines.append(
                f'<HOST NAME={quoteattr(host)} IP="" REPORTED="never" TN="inf"/>'
            )
            continue
        lines.append(
            f'<HOST NAME={quoteattr(host)} IP={quoteattr(packet.addr)} '
            f'REPORTED="{packet.t:.0f}" TN="{now - packet.t:.0f}">'
        )
        for name, value in packet.metrics:
            lines.append(
                f'<METRIC NAME={quoteattr(name)} VAL="{value:g}" '
                f'TYPE="float" UNITS="" TN="0" SLOPE="both"/>'
            )
        for name, value in packet.labels:
            lines.append(
                f'<METRIC NAME={quoteattr(name)} VAL={quoteattr(value)} '
                f'TYPE="string" UNITS="" TN="0" SLOPE="zero"/>'
            )
        lines.append("</HOST>")
    lines.append("</CLUSTER>")
    lines.append("</GANGLIA_XML>")
    return "\n".join(lines) + "\n"
