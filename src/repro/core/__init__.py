"""The paper's contribution: the NPACI Rocks toolkit.

Subpackages:

* :mod:`repro.core.kickstart` — XML node/graph framework and the CGI
  that compiles kickstart files on the fly (§6.1);
* :mod:`repro.core.distribution` — rocks-dist (§6.2);
* :mod:`repro.core.database` — the cluster SQL database and its report
  generators (§6.4);
* :mod:`repro.core.tools` — insert-ethers, shoot-node, eKV,
  cluster-fork/cluster-kill (§6.3-6.4);
* :mod:`repro.core.frontend` — frontend bring-up tying it all together.
"""
