"""The default Rocks node files and graph.

"We develop and distribute the default set of node and graph files that
are automatically installed when a user creates a frontend node.  Users
can modify (or add) a node or graph file to tailor the cluster to their
needs" (§6.1 footnote).  These defaults describe both appliances of a
basic Rocks cluster — *frontend* and *compute* — plus the *nfs* and
*web* appliance variants that appear in Table II.

Everything here is authored as real XML text and parsed through the
same :class:`NodeFile`/:class:`Graph` machinery users employ, so the
default set doubles as an integration test of the XML framework.
"""

from __future__ import annotations

from .graph import Graph
from .nodefile import NodeFile

__all__ = ["default_node_files", "default_graph", "DEFAULT_NODE_XML", "DEFAULT_GRAPH_XML"]


#: Figure 2 of the paper, verbatim in spirit: the DHCP server module.
DHCP_SERVER_XML = """<?xml version="1.0" standalone="no"?>
<kickstart>
  <description>Setup the DHCP server for the cluster</description>
  <package>dhcp</package>
  <post seconds="2">
awk ' /^DHCPD_INTERFACES/ {
        printf("DHCPD_INTERFACES=\\"eth0\\"\\n");
        next;
      }
      { print $0; } ' /etc/sysconfig/dhcpd &gt; /tmp/dhcpd
mv /tmp/dhcpd /etc/sysconfig/dhcpd
  </post>
</kickstart>
"""

DEFAULT_NODE_XML: dict[str, str] = {
    "dhcp-server": DHCP_SERVER_XML,
    "base": """<?xml version="1.0" standalone="no"?>
<kickstart>
  <description>Core operating environment for every Rocks appliance</description>
  <package>basesystem</package>
  <package>openssh</package>
  <package>openssh-clients</package>
  <package>openssh-server</package>
  <package>wget</package>
  <package>rsync</package>
  <package>sudo</package>
  <post seconds="5">
# generate host keys and install cluster root authorized_keys
ssh-keygen -q -t rsa -f /etc/ssh/ssh_host_rsa_key -N ''
  </post>
</kickstart>
""",
    "c-development": """<?xml version="1.0" standalone="no"?>
<kickstart>
  <description>Compilers and development tools</description>
  <package>gcc</package>
  <package>gcc-g77</package>
  <package>gcc-c++</package>
  <package>make</package>
  <package>autoconf</package>
  <package>automake</package>
  <package>gdb</package>
  <package>python</package>
  <post seconds="1">/sbin/ldconfig</post>
</kickstart>
""",
    "mpi": """<?xml version="1.0" standalone="no"?>
<kickstart>
  <description>Message passing: MPICH (Ethernet and Myrinet devices), PVM, BLAS</description>
  <package>mpich</package>
  <package>mpich-devel</package>
  <package>pvm</package>
  <package>atlas</package>
  <package arch="i386,athlon">intel-mkl</package>
  <post seconds="2">
echo /usr/local/mpich/bin &gt;&gt; /etc/profile.d/mpi.sh
  </post>
</kickstart>
""",
    "myrinet": """<?xml version="1.0" standalone="no"?>
<kickstart>
  <description>Myrinet GM driver: source package rebuilt per-kernel on node</description>
  <package>kernel-source</package>
  <post seconds="0">
# GM driver is rebuilt from myrinet-gm.src.rpm on first boot;
# rebuild time is modelled separately by the installer.
  </post>
</kickstart>
""",
    "nis-client": """<?xml version="1.0" standalone="no"?>
<kickstart>
  <description>Bind to the cluster NIS domain for account information</description>
  <package>ypbind</package>
  <package>yp-tools</package>
  <post seconds="2">
echo "domain rocks server frontend-0" &gt; /etc/yp.conf
  </post>
</kickstart>
""",
    "nis-server": """<?xml version="1.0" standalone="no"?>
<kickstart>
  <description>Serve the cluster NIS domain from the frontend</description>
  <package>ypserv</package>
  <package>yp-tools</package>
  <post seconds="2">/usr/lib/yp/ypinit -m &lt; /dev/null</post>
</kickstart>
""",
    "nfs-client": """<?xml version="1.0" standalone="no"?>
<kickstart>
  <description>Mount user home directories from the frontend</description>
  <package>nfs-utils</package>
  <package>portmap</package>
  <post seconds="2">
echo "frontend-0:/export/home /home nfs defaults 0 0" &gt;&gt; /etc/fstab
  </post>
</kickstart>
""",
    "nfs-server": """<?xml version="1.0" standalone="no"?>
<kickstart>
  <description>Export home directories (the one unscalable service)</description>
  <package>nfs-utils</package>
  <package>portmap</package>
  <post seconds="2">
echo "/export/home *(rw,no_root_squash)" &gt;&gt; /etc/exports
  </post>
</kickstart>
""",
    "pbs-mom": """<?xml version="1.0" standalone="no"?>
<kickstart>
  <description>PBS execution daemon for compute nodes</description>
  <package>pbs-mom</package>
  <post seconds="2">
echo '$clienthost frontend-0' &gt; /var/spool/pbs/mom_priv/config
  </post>
</kickstart>
""",
    "pbs-server": """<?xml version="1.0" standalone="no"?>
<kickstart>
  <description>PBS server and the Maui scheduler with a default queue</description>
  <package>pbs</package>
  <package>maui</package>
  <post seconds="3">
qmgr -c "create queue default queue_type=execution"
qmgr -c "set server scheduling=true"
  </post>
</kickstart>
""",
    "rexec": """<?xml version="1.0" standalone="no"?>
<kickstart>
  <description>UC Berkeley REXEC transparent remote execution</description>
  <package>rexec</package>
  <post seconds="1">chkconfig rexecd on</post>
</kickstart>
""",
    "ekv": """<?xml version="1.0" standalone="no"?>
<kickstart>
  <description>Ethernet keyboard and video: installer console over telnet</description>
  <package>rocks-ekv</package>
  <package>telnet-server</package>
  <post seconds="1">chkconfig ekv on</post>
</kickstart>
""",
    "http-server": """<?xml version="1.0" standalone="no"?>
<kickstart>
  <description>Apache: serves RPMs and the kickstart CGI</description>
  <package>apache</package>
  <package>mod_ssl</package>
  <post seconds="2">chkconfig httpd on</post>
</kickstart>
""",
    "mysql-server": """<?xml version="1.0" standalone="no"?>
<kickstart>
  <description>The cluster configuration database (§6.4)</description>
  <package>mysql</package>
  <package>mysql-server</package>
  <package>rocks-sql</package>
  <post seconds="3">create-rocks-db --with-default-memberships</post>
</kickstart>
""",
    "install-server": """<?xml version="1.0" standalone="no"?>
<kickstart>
  <description>rocks-dist and the node integration tools</description>
  <package>rocks-dist</package>
  <package>rocks-insert-ethers</package>
  <package>rocks-shoot-node</package>
  <package>rocks-cluster-tools</package>
  <package>rocks-kickstart-profiles</package>
  <post seconds="2">rocks-dist mirror; rocks-dist dist</post>
</kickstart>
""",
    "x11": """<?xml version="1.0" standalone="no"?>
<kickstart>
  <description>X Window System for the frontend console</description>
  <package>XFree86</package>
  <package>XFree86-libs</package>
  <package>xterm</package>
</kickstart>
""",
    "compute": """<?xml version="1.0" standalone="no"?>
<kickstart>
  <description>A Rocks compute node: a container for running parallel jobs</description>
  <post seconds="1">chkconfig --del gpm</post>
</kickstart>
""",
    "frontend": """<?xml version="1.0" standalone="no"?>
<kickstart>
  <description>The Rocks frontend: every service a cluster needs</description>
  <post seconds="2">echo frontend &gt; /etc/rocks-release</post>
</kickstart>
""",
    "web": """<?xml version="1.0" standalone="no"?>
<kickstart>
  <description>A standalone web server appliance (Table II, web-1-0)</description>
</kickstart>
""",
    "nfs": """<?xml version="1.0" standalone="no"?>
<kickstart>
  <description>A standalone NFS appliance (Table II, nfs-0-0)</description>
</kickstart>
""",
}


#: Figure 3/4: appliances are roots; edges pull in shared modules.  The
#: compute appliance's traversal includes compute, mpi and c-development
#: exactly as the paper's Figure 4 walk-through describes.
DEFAULT_GRAPH_XML = """<?xml version="1.0" standalone="no"?>
<graph>
  <edge from="compute" to="base"/>
  <edge from="compute" to="mpi"/>
  <edge from="compute" to="pbs-mom"/>
  <edge from="compute" to="nis-client"/>
  <edge from="compute" to="nfs-client"/>
  <edge from="compute" to="rexec"/>
  <edge from="compute" to="ekv"/>
  <edge from="compute" to="myrinet"/>
  <edge from="mpi" to="c-development"/>
  <edge from="frontend" to="base"/>
  <edge from="frontend" to="x11"/>
  <edge from="frontend" to="mpi"/>
  <edge from="frontend" to="dhcp-server"/>
  <edge from="frontend" to="http-server"/>
  <edge from="frontend" to="mysql-server"/>
  <edge from="frontend" to="nfs-server"/>
  <edge from="frontend" to="nis-server"/>
  <edge from="frontend" to="pbs-server"/>
  <edge from="frontend" to="rexec"/>
  <edge from="frontend" to="install-server"/>
  <edge from="nfs" to="base"/>
  <edge from="nfs" to="nfs-server"/>
  <edge from="nfs" to="nis-client"/>
  <edge from="web" to="base"/>
  <edge from="web" to="http-server"/>
  <edge from="web" to="nis-client"/>
</graph>
"""


def default_node_files() -> dict[str, NodeFile]:
    """Parse the shipped node-file set."""
    return {
        name: NodeFile.from_xml(name, xml)
        for name, xml in DEFAULT_NODE_XML.items()
    }


def default_graph() -> Graph:
    """Parse the shipped graph file."""
    return Graph.from_xml(DEFAULT_GRAPH_XML, name="default")
