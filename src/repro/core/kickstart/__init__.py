"""Rocks's XML kickstart framework: node files, graph, generator, CGI."""

from .cgi import KickstartCgi, UnknownClient
from .defaults import (
    DEFAULT_GRAPH_XML,
    DEFAULT_NODE_XML,
    default_graph,
    default_node_files,
)
from .generator import GenerationError, KickstartGenerator
from .graph import Edge, Graph, GraphError
from .kickstartfile import KickstartFile
from .nodefile import NodeFile, NodeFileError, PackageRef, PostFragment

__all__ = [
    "KickstartCgi",
    "UnknownClient",
    "DEFAULT_GRAPH_XML",
    "DEFAULT_NODE_XML",
    "default_graph",
    "default_node_files",
    "GenerationError",
    "KickstartGenerator",
    "Edge",
    "Graph",
    "GraphError",
    "KickstartFile",
    "NodeFile",
    "NodeFileError",
    "PackageRef",
    "PostFragment",
]
