"""The XML *graph file*: wiring node files into appliances (§6.1, Fig 3-4).

"An XML-based graph file links all the defined modules together with
directed edges...  The roots of the graph represent 'appliances', such
as compute and frontend."  Generating a kickstart for an appliance is a
traversal: Figure 4's example — a *compute* appliance reaches the
``compute``, ``mpi`` and ``c-development`` node files.

Edges may be architecture-conditional (``arch="ia64"``), which is how a
*single* graph describes every hardware variant in the Meteor cluster
(§3.1 / §6.1).
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass
from typing import Iterable, Optional

__all__ = ["Graph", "Edge", "GraphError"]


class GraphError(Exception):
    """Malformed graph XML or a bad traversal request."""


def _archs(value: Optional[str]) -> Optional[frozenset[str]]:
    if value is None or not value.strip():
        return None
    return frozenset(a.strip() for a in value.split(",") if a.strip())


@dataclass(frozen=True)
class Edge:
    """A directed relation: ``frm`` includes ``to`` (optionally per-arch)."""

    frm: str
    to: str
    archs: Optional[frozenset[str]] = None

    def applies_to(self, arch: str) -> bool:
        return self.archs is None or arch in self.archs


class Graph:
    """A mutable module graph with deterministic traversal."""

    def __init__(self, name: str = "default"):
        self.name = name
        # The list preserves declaration order (traversal is defined by
        # it); the set is a pure duplicate index so add_edge is O(1)
        # instead of scanning the list — O(n²) over a whole graph load.
        self._edges: list[Edge] = []
        self._edge_index: set[Edge] = set()

    # -- construction -----------------------------------------------------------
    def add_edge(self, frm: str, to: str, archs: Optional[Iterable[str]] = None) -> None:
        arch_set = frozenset(archs) if archs is not None else None
        edge = Edge(frm, to, arch_set)
        if edge not in self._edge_index:
            self._edge_index.add(edge)
            self._edges.append(edge)

    def remove_edge(self, frm: str, to: str) -> None:
        before = len(self._edges)
        self._edges = [e for e in self._edges if not (e.frm == frm and e.to == to)]
        if len(self._edges) == before:
            raise GraphError(f"no edge {frm} -> {to}")
        self._edge_index = set(self._edges)

    @property
    def edges(self) -> tuple[Edge, ...]:
        return tuple(self._edges)

    def nodes(self) -> list[str]:
        names = {e.frm for e in self._edges} | {e.to for e in self._edges}
        return sorted(names)

    def successors(self, name: str, arch: str = "i386") -> list[str]:
        return [e.to for e in self._edges if e.frm == name and e.applies_to(arch)]

    def roots(self) -> list[str]:
        """Nodes with no incoming edges — the appliances."""
        targets = {e.to for e in self._edges}
        return sorted({e.frm for e in self._edges} - targets)

    # -- traversal (the kickstart generation order) -----------------------------------
    def traverse(self, root: str, arch: str = "i386") -> list[str]:
        """Depth-first pre-order from ``root``, deduplicated, edge order kept.

        This is the module list the CGI script parses into one kickstart
        file.  Cycles are tolerated (each module contributes once).
        """
        if root not in {e.frm for e in self._edges} and root not in {
            e.to for e in self._edges
        }:
            raise GraphError(f"{root!r} is not in graph {self.name!r}")
        seen: list[str] = []
        stack = [root]
        visited: set[str] = set()
        while stack:
            current = stack.pop()
            if current in visited:
                continue
            visited.add(current)
            seen.append(current)
            # push reversed so the first-declared edge is visited first
            for succ in reversed(self.successors(current, arch)):
                if succ not in visited:
                    stack.append(succ)
        return seen

    # -- XML round trip -----------------------------------------------------------------
    @classmethod
    def from_xml(cls, text: str, name: str = "default") -> "Graph":
        try:
            root = ET.fromstring(text)
        except ET.ParseError as err:
            raise GraphError(f"graph {name!r}: bad XML: {err}") from err
        if root.tag.lower() != "graph":
            raise GraphError(f"graph root element must be <graph>, got <{root.tag}>")
        graph = cls(name=name)
        for child in root:
            if child.tag.lower() != "edge":
                raise GraphError(f"unknown graph element <{child.tag}>")
            frm, to = child.get("from"), child.get("to")
            if not frm or not to:
                raise GraphError("<edge> needs 'from' and 'to' attributes")
            graph.add_edge(frm, to, _archs(child.get("arch")))
        return graph

    def to_xml(self) -> str:
        root = ET.Element("graph")
        for edge in self._edges:
            el = ET.SubElement(root, "edge")
            el.set("from", edge.frm)
            el.set("to", edge.to)
            if edge.archs is not None:
                el.set("arch", ",".join(sorted(edge.archs)))
        ET.indent(root)
        return (
            '<?xml version="1.0" standalone="no"?>\n'
            + ET.tostring(root, encoding="unicode")
            + "\n"
        )

    def to_dot(self) -> str:
        """GraphViz rendering — Figure 4's visualisation."""
        lines = [f"digraph {self.name} {{"]
        for appliance in self.roots():
            lines.append(f'  "{appliance}" [shape=box];')
        for edge in self._edges:
            attrs = ""
            if edge.archs is not None:
                attrs = f' [label="{",".join(sorted(edge.archs))}"]'
            lines.append(f'  "{edge.frm}" -> "{edge.to}"{attrs};')
        lines.append("}")
        return "\n".join(lines)
