"""The kickstart generator: graph traversal + SQL -> kickstart (§6.1).

"In Rocks, we actively manage kickstart files by building them on-the-fly
with a CGI script.  This script merges two major functions...: it
constructs a general configuration file from a set of XML-based
configuration files and applies node-specific parameters by querying a
local SQL database."

:class:`KickstartGenerator` is the reusable half (XML traversal and
rendering); :mod:`repro.core.kickstart.cgi` adds the per-request SQL
lookups.
"""

from __future__ import annotations

from typing import Callable, Optional

from ...installer import InstallProfile, PartitionPlan, PartitionRequest, PostScript
from ...rpm import DependencyError, Repository, resolve
from ..database import ClusterDatabase, NodeRow
from .graph import Graph
from .kickstartfile import KickstartFile
from .nodefile import NodeFile

__all__ = ["KickstartGenerator", "GenerationError"]


class GenerationError(Exception):
    """The graph references a missing module or packages do not resolve."""


#: maps a distribution name to the Repository that backs it
DistResolver = Callable[[str], Repository]

#: appliance-specific partition layouts; compute is the paper's default
_PARTITION_PLANS: dict[str, PartitionPlan] = {
    "frontend": PartitionPlan(
        (
            PartitionRequest("/", 8192),
            PartitionRequest("swap", 2048),
            PartitionRequest("/export", 1, grow=True),
        )
    ),
}


class KickstartGenerator:
    """Compiles (graph, node files, DB row) into kickstart + profile."""

    def __init__(
        self,
        graph: Graph,
        node_files: dict[str, NodeFile],
        dist_resolver: DistResolver,
        install_url_base: str = "http://frontend-0/install",
        xml_resolver: Optional[Callable[[str], tuple[Graph, dict[str, NodeFile]]]] = None,
    ):
        self.graph = graph
        self.node_files = dict(node_files)
        self.dist_resolver = dist_resolver
        self.install_url_base = install_url_base
        #: per-distribution XML build directories (§6.2.3): when set, a
        #: distribution's own graph/node files drive its kickstarts,
        #: falling back to the generator's default set.
        self.xml_resolver = xml_resolver
        self.generated = 0
        # Resolved-profile cache: generation is deterministic in
        # (appliance, arch, dist, repo identity), so concurrent node
        # requests reuse one dependency resolution.  invalidate() on any
        # XML customisation; a rebuilt distribution changes repo identity.
        self._cache: dict[tuple, InstallProfile] = {}

    def invalidate(self) -> None:
        """Drop cached profiles after node-file/graph customisation."""
        self._cache.clear()

    # -- customisation (what site admins do, §6.1 footnote) ---------------------
    def add_node_file(self, node: NodeFile) -> None:
        self.node_files[node.name] = node
        self.invalidate()

    # -- generation -----------------------------------------------------------------
    def _xml_for(self, dist_name: str) -> tuple[Graph, dict[str, NodeFile]]:
        """The XML infrastructure that drives ``dist_name``'s kickstarts."""
        if self.xml_resolver is not None:
            try:
                return self.xml_resolver(dist_name)
            except KeyError:
                pass
        return self.graph, self.node_files

    def traverse(
        self,
        appliance_root: str,
        arch: str,
        dist_name: Optional[str] = None,
    ) -> list[NodeFile]:
        """Resolve the graph traversal to actual node files."""
        graph, node_files = (
            self._xml_for(dist_name)
            if dist_name is not None
            else (self.graph, self.node_files)
        )
        order = graph.traverse(appliance_root, arch)
        missing = [name for name in order if name not in node_files]
        if missing:
            raise GenerationError(
                f"graph references undefined node files: {', '.join(missing)}"
            )
        return [node_files[name] for name in order]

    def kickstart(
        self,
        appliance_root: str,
        arch: str,
        dist_name: str,
        node_name: str = "",
        rootpw: str = "--iscrypted unset",
    ) -> KickstartFile:
        """Build the Red Hat-compliant kickstart file."""
        ks = KickstartFile(
            url=f"{self.install_url_base}/{dist_name}",
            rootpw=rootpw,
            partitions=_PARTITION_PLANS.get(appliance_root, PartitionPlan.default()),
        )
        for node_file in self.traverse(appliance_root, arch, dist_name):
            for pkg in node_file.package_names(arch):
                ks.add_package(pkg)
            for frag in node_file.post_for(arch):
                ks.add_post(node_file.name, frag.script)
            for key, value in node_file.main.items():
                ks.extra_commands.append(f"{key} {value}")
        return ks

    def profile(
        self,
        appliance_root: str,
        arch: str,
        dist_name: str,
        node_name: str = "",
    ) -> InstallProfile:
        """Build the resolved install profile (what anaconda executes)."""
        repo = self.dist_resolver(dist_name)
        graph, _files = self._xml_for(dist_name)
        key = (appliance_root, arch, dist_name, id(repo), id(graph), len(graph.edges))
        cached = self._cache.get(key)
        if cached is not None:
            self.generated += 1
            return cached
        ks = self.kickstart(appliance_root, arch, dist_name, node_name)
        try:
            transaction = resolve(repo, ks.packages, arch=arch)
        except DependencyError as err:
            raise GenerationError(
                f"packages for {appliance_root}/{arch} do not resolve "
                f"against {dist_name}: {err}"
            ) from err
        post_scripts = []
        for node_file in self.traverse(appliance_root, arch, dist_name):
            for frag in node_file.post_for(arch):
                post_scripts.append(
                    PostScript(name=node_file.name, seconds=frag.seconds)
                )
        self.generated += 1
        profile = InstallProfile(
            dist_name=dist_name,
            packages=list(transaction),
            partitions=ks.partitions,
            post_scripts=post_scripts,
            kickstart_text=ks.render(),
            appliance=appliance_root,
        )
        self._cache[key] = profile
        return profile

    def lint_diagnostics(
        self, dist_name: str, arches: tuple[str, ...] = ("i386",)
    ):
        """Run the typed config analyzers (:mod:`repro.analysis`).

        Returns sorted :class:`~repro.analysis.Diagnostic` objects for
        every defect class the engine knows — dangling edges, orphans,
        cycles, dead arch edges, duplicate declarations, unresolvable
        packages with their chains, unknown database attributes, and
        unknown distributions.  Site admins run this after editing the
        XML (§6.1 footnote) and before reinstalling anything.
        """
        from ...analysis import ConfigContext, analyze_config

        graph, node_files = self._xml_for(dist_name)
        ctx = ConfigContext(
            graph=graph,
            node_files=node_files,
            dist_name=dist_name,
            dist_resolver=self.dist_resolver,
            arches=tuple(arches),
        )
        return analyze_config(ctx)

    #: diagnostic codes the legacy string API covered; the shim reports
    #: exactly these so pre-engine callers see unchanged behaviour
    _LEGACY_LINT_CODES = ("RK101", "RK102", "RK106", "RK110")

    def lint(self, dist_name: str, arches: tuple[str, ...] = ("i386",)) -> list[str]:
        """Back-compat shim: legacy flat strings over the typed engine.

        Messages and ordering match the original linter (missing node
        files, then orphans, then unresolvable packages, then an unknown
        distribution last); new defect classes are only visible through
        :meth:`lint_diagnostics` or ``repro lint``.
        """
        diags = [
            d
            for d in self.lint_diagnostics(dist_name, arches)
            if d.code in self._LEGACY_LINT_CODES
        ]
        # Legacy order was by check, not by location: code order matches.
        diags.sort(key=lambda d: (d.code, d.sort_key))
        return [d.message for d in diags]

    def profile_for_row(self, row: NodeRow, db: ClusterDatabase) -> InstallProfile:
        """Per-node generation: appliance/arch/dist come from the database."""
        appliance, root_node = db.appliance_for_membership(row.membership)
        return self.profile(
            root_node, row.arch, row.os_dist, node_name=row.name
        )
