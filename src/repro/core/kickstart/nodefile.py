"""XML *node files*: single-purpose software modules (§6.1, Figure 2).

"A node file is a small single-purpose module that specifies the
packages and per-package post configuration commands for a specific
service."  Example from the paper (Figure 2): the DHCP-server module
lists the ``dhcp`` package and an awk %post that pins dhcpd to eth0.

The XML dialect is the paper's (tags are matched case-insensitively,
since the figure uses ``<KICKSTART>`` while prose uses lowercase):

* ``<kickstart>`` root
* ``<description>`` free text
* ``<package arch="i386,ia64">name</package>`` — zero or more; the
  optional ``arch`` attribute restricts the package to listed
  architectures (how one graph drives x86 *and* IA-64, §3.1)
* ``<post arch=... seconds=...>script</post>`` — zero or more; the
  ``seconds`` attribute is this reproduction's install-time model hook
* ``<main>`` — optional kickstart main-section directives
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from typing import Iterable, Optional

__all__ = ["NodeFile", "PackageRef", "PostFragment", "NodeFileError"]


class NodeFileError(Exception):
    """Malformed node-file XML."""


def _archs(value: Optional[str]) -> Optional[frozenset[str]]:
    if value is None or not value.strip():
        return None
    return frozenset(a.strip() for a in value.split(",") if a.strip())


@dataclass(frozen=True)
class PackageRef:
    """A package listed by a node file, optionally arch-restricted."""

    name: str
    archs: Optional[frozenset[str]] = None  # None = all architectures

    def applies_to(self, arch: str) -> bool:
        return self.archs is None or arch in self.archs


@dataclass(frozen=True)
class PostFragment:
    """One %post script chunk contributed by a node file."""

    script: str
    archs: Optional[frozenset[str]] = None
    seconds: float = 1.0  # simulated execution time at reference CPU

    def applies_to(self, arch: str) -> bool:
        return self.archs is None or arch in self.archs


@dataclass
class NodeFile:
    """A parsed node file: name + description + packages + %post chunks."""

    name: str
    description: str = ""
    packages: list[PackageRef] = field(default_factory=list)
    post: list[PostFragment] = field(default_factory=list)
    main: dict[str, str] = field(default_factory=dict)

    # -- parsing ---------------------------------------------------------------
    @classmethod
    def from_xml(cls, name: str, text: str) -> "NodeFile":
        try:
            root = ET.fromstring(text)
        except ET.ParseError as err:
            raise NodeFileError(f"node file {name!r}: bad XML: {err}") from err
        if root.tag.lower() != "kickstart":
            raise NodeFileError(
                f"node file {name!r}: root element must be <kickstart>, "
                f"got <{root.tag}>"
            )
        node = cls(name=name)
        for child in root:
            tag = child.tag.lower()
            if tag == "description":
                node.description = (child.text or "").strip()
            elif tag == "package":
                pkg = (child.text or "").strip()
                if not pkg:
                    raise NodeFileError(f"node file {name!r}: empty <package>")
                node.packages.append(
                    PackageRef(pkg, _archs(child.get("arch")))
                )
            elif tag == "post":
                node.post.append(
                    PostFragment(
                        script=(child.text or "").strip(),
                        archs=_archs(child.get("arch")),
                        seconds=float(child.get("seconds", "1.0")),
                    )
                )
            elif tag == "main":
                for directive in child:
                    node.main[directive.tag.lower()] = (directive.text or "").strip()
            else:
                raise NodeFileError(
                    f"node file {name!r}: unknown element <{child.tag}>"
                )
        return node

    # -- rendering ---------------------------------------------------------------
    def to_xml(self) -> str:
        root = ET.Element("kickstart")
        if self.description:
            ET.SubElement(root, "description").text = self.description
        for pkg in self.packages:
            el = ET.SubElement(root, "package")
            el.text = pkg.name
            if pkg.archs is not None:
                el.set("arch", ",".join(sorted(pkg.archs)))
        for frag in self.post:
            el = ET.SubElement(root, "post")
            el.text = frag.script
            if frag.archs is not None:
                el.set("arch", ",".join(sorted(frag.archs)))
            el.set("seconds", str(frag.seconds))
        if self.main:
            main = ET.SubElement(root, "main")
            for key, value in self.main.items():
                ET.SubElement(main, key).text = value
        ET.indent(root)
        return (
            '<?xml version="1.0" standalone="no"?>\n'
            + ET.tostring(root, encoding="unicode")
            + "\n"
        )

    # -- queries ------------------------------------------------------------------
    def package_names(self, arch: str) -> list[str]:
        return [p.name for p in self.packages if p.applies_to(arch)]

    def post_for(self, arch: str) -> list[PostFragment]:
        return [f for f in self.post if f.applies_to(arch)]
