"""The kickstart CGI script (§6.1).

"At installation time, a machine requests its kickstart file via HTTP
from a CGI script on the frontend server.  This script uses the
requesting node's IP address to drive a series of SQL queries that
determine the appliance type, software distribution, and localization
of the node."

On the simulated Ethernet a client is identified by its MAC (its only
pre-assignment identity); the CGI accepts either a MAC or an IP and runs
the same SQL lookups — behaviourally identical, since both are the L2/L3
identities the nodes table binds together.
"""

from __future__ import annotations

from typing import Any

from ...installer import InstallProfile
from ..database import ClusterDatabase
from .generator import KickstartGenerator

__all__ = ["KickstartCgi", "UnknownClient"]


class UnknownClient(Exception):
    """The requesting address is not in the nodes table (HTTP 403 in Rocks)."""


class KickstartCgi:
    """The callable mounted at /install/kickstart.cgi."""

    def __init__(self, db: ClusterDatabase, generator: KickstartGenerator):
        self.db = db
        self.generator = generator
        self.requests = 0

    def __call__(self, client: str, path: str) -> tuple[InstallProfile, float]:
        """HTTP CGI entry point: (client identity, URL) -> (body, bytes)."""
        profile = self.generate(client)
        return profile, float(len(profile.kickstart_text.encode()))

    def generate(self, client: str) -> InstallProfile:
        """SQL lookups (MAC or IP -> node row) then graph compilation."""
        self.requests += 1
        row = self.db.node_by_mac(client)
        if row is None:
            row = self.db.node_by_ip(client)
        if row is None:
            raise UnknownClient(
                f"kickstart request from unknown client {client!r}"
            )
        return self.generator.profile_for_row(row, self.db)
