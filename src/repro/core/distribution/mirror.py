"""Mirroring a parent distribution over HTTP (§6.2.3, Figure 6).

"When building a new distribution, rocks-dist replicates the software
from its parent distribution using wget over HTTP."  On the simulated
network this is a sequence of HTTP GETs against the parent's install
server, so a campus child mirroring from a loaded parent competes for
bandwidth like everything else.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from ...netsim import Environment, HttpError
from ...rpm import Package, Repository
from ...services import InstallServer

__all__ = ["mirror_over_http", "MirrorReport"]


@dataclass
class MirrorReport:
    """Outcome of one wget-style replication run."""

    dist_name: str
    n_fetched: int = 0
    n_skipped: int = 0  # already present at the right version
    bytes_transferred: float = 0.0
    seconds: float = 0.0
    errors: list[str] = None

    def __post_init__(self):
        if self.errors is None:
            self.errors = []


def mirror_over_http(
    env: Environment,
    server: InstallServer,
    dist_name: str,
    client_host: str,
    into: Repository,
) -> Generator:
    """Process: replicate ``dist_name`` from ``server`` into ``into``.

    Skips packages already mirrored at the same EVR (incremental, like
    wget's timestamping).  Yields the :class:`MirrorReport`.
    """
    report = MirrorReport(dist_name=dist_name)
    started = env.now
    index = server.package_index(dist_name)
    for filename in sorted(index):
        pkg: Package = index[filename]
        existing = [
            p for p in into.versions(pkg.name) if p.evr == pkg.evr and p.arch == pkg.arch
        ] if pkg.name in into else []
        if existing:
            report.n_skipped += 1
            continue
        try:
            resp = yield server.fetch_package(client_host, dist_name, pkg)
        except HttpError as err:
            report.errors.append(f"{filename}: {err}")
            continue
        into.add(pkg)
        report.bytes_transferred += resp.size
        report.n_fetched += 1
    report.seconds = env.now - started
    return report
