"""rocks-dist: building, composing, and mirroring Rocks distributions."""

from .mirror import MirrorReport, mirror_over_http
from .rocksdist import (
    BUILD_BASE_SECONDS,
    BUILD_SECONDS_PER_PACKAGE,
    BuildReport,
    RocksDist,
)
from .tree import TREE_COST, Distribution

__all__ = [
    "MirrorReport",
    "mirror_over_http",
    "BUILD_BASE_SECONDS",
    "BUILD_SECONDS_PER_PACKAGE",
    "BuildReport",
    "RocksDist",
    "TREE_COST",
    "Distribution",
]
