"""rocks-dist: gather sources, resolve versions, build the tree (§6.2).

"Rocks-dist gathers software components from the following sources and
constructs a single new distribution: Red Hat software (stock + updates),
third party software, local software...  Rocks-dist resolves version
numbers of RPMs and only includes the most recent software."  (Fig. 5)

Source precedence for equal versions follows gather order — later
sources (site-local packages) shadow earlier ones, which is how a campus
overrides an NPACI package without renaming it (Fig. 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from ...netsim import Environment
from ...rpm import Package, Repository
from ..kickstart import Graph, NodeFile, default_graph, default_node_files
from .tree import Distribution

__all__ = ["RocksDist", "BuildReport", "BUILD_SECONDS_PER_PACKAGE", "BUILD_BASE_SECONDS"]

#: simulated cost of creating one symlink + hdlist entry
BUILD_SECONDS_PER_PACKAGE = 0.02
#: fixed cost: tree scaffolding, boot images, hdlist header
BUILD_BASE_SECONDS = 5.0


@dataclass(frozen=True)
class BuildReport:
    """What one ``rocks-dist dist`` run did."""

    dist_name: str
    n_packages: int
    n_sources: int
    dropped_older: int  # builds shadowed by newer versions
    build_seconds: float
    tree_bytes: int


class RocksDist:
    """One frontend's rocks-dist configuration and workflow."""

    def __init__(
        self,
        name: str = "rocks-dist",
        version: str = "2.2.1",
        arch: str = "i386",
        parent: Optional[Distribution] = None,
    ):
        self.name = name
        self.version = version
        self.arch = arch
        self.parent = parent
        self._sources: list[Repository] = []
        if parent is not None:
            # "rocks-dist replicates the software from its parent
            # distribution" (§6.2.3) — the parent is the first source.
            self._sources.append(parent.as_source())
        self.reports: list[BuildReport] = []

    # -- configuration -------------------------------------------------------------
    def add_source(self, repo: Repository) -> None:
        """Append a software source (later sources win version ties)."""
        self._sources.append(repo)

    @property
    def sources(self) -> tuple[Repository, ...]:
        return tuple(self._sources)

    # -- the 'mirror' step -----------------------------------------------------------
    def gather(self) -> tuple[Repository, int]:
        """Merge all sources, newest version per package name.

        Returns (resolved repository, count of shadowed older builds).
        """
        best: dict[tuple[str, str], Package] = {}
        dropped = 0
        for repo in self._sources:
            for candidate in repo:
                key = (candidate.name, candidate.arch)
                current = best.get(key)
                if current is None:
                    best[key] = candidate
                elif candidate.newer_than(current) or candidate.evr == current.evr:
                    # newer wins; equal EVR from a later source shadows too
                    best[key] = candidate
                    dropped += 1
                else:
                    dropped += 1
        resolved = Repository(self.name)
        resolved.add_all(best.values())
        return resolved, dropped

    # -- the 'dist' step ----------------------------------------------------------------
    def dist(
        self,
        graph: Optional[Graph] = None,
        node_files: Optional[dict[str, NodeFile]] = None,
        env: Optional[Environment] = None,
    ) -> Distribution:
        """Build the distribution tree (optionally on the simulated clock).

        When ``env`` is given, the build consumes simulated time; either
        way the :class:`BuildReport` records the modelled duration —
        which the paper bounds at "under a minute".
        """
        if not self._sources:
            raise ValueError("rocks-dist has no software sources configured")
        graph = graph if graph is not None else default_graph()
        node_files = (
            dict(node_files) if node_files is not None else default_node_files()
        )
        resolved, dropped = self.gather()
        build_seconds = BUILD_BASE_SECONDS + len(resolved) * BUILD_SECONDS_PER_PACKAGE
        if env is not None:
            env.run(until=env.now + build_seconds)
        distribution = Distribution(
            name=self.name,
            version=self.version,
            arch=self.arch,
            repository=resolved,
            graph=graph,
            node_files=node_files,
            parent=self.parent.name if self.parent is not None else None,
            build_seconds=build_seconds,
        )
        self.reports.append(
            BuildReport(
                dist_name=self.name,
                n_packages=len(resolved),
                n_sources=len(self._sources),
                dropped_older=dropped,
                build_seconds=build_seconds,
                tree_bytes=distribution.tree_bytes(),
            )
        )
        return distribution

    # -- convenience: the whole §6.2.1 pipeline ----------------------------------------------
    @classmethod
    def standard(
        cls,
        stock: Repository,
        updates: Optional[Repository] = None,
        contrib: Optional[Repository] = None,
        local: Optional[Repository] = None,
        name: str = "rocks-dist",
        arch: str = "i386",
    ) -> "RocksDist":
        """Wire the Figure 5 source stack in canonical order."""
        rd = cls(name=name, arch=arch)
        rd.add_source(stock)
        if updates is not None:
            rd.add_source(updates)
        if contrib is not None:
            rd.add_source(contrib)
        if local is not None:
            rd.add_source(local)
        return rd
