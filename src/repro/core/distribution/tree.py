"""A materialised Rocks distribution tree (§6.2.3).

"rocks-dist ... creates a new tree comprised mostly of symbolic links to
the mirrored software.  Inside this tree is a build directory that
contains the XML configuration infrastructure...  because each
distribution is composed mainly of symbolic links, each distribution is
lightweight (on the order of 25MB) and can be built in under a minute."

The tree model tracks what a real one occupies on disk: symlinks and
package metadata (the hdlist anaconda reads), the XML build directory,
and boot images — *not* the RPM payloads, which stay in the mirror.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ...rpm import Package, Repository
from ..kickstart import Graph, NodeFile

__all__ = ["Distribution", "TREE_COST"]


@dataclass(frozen=True)
class _TreeCost:
    """On-disk bytes per tree component (calibrated to the ~25 MB claim)."""

    symlink: int = 64  # a symlink inode/dirent
    hdlist_per_package: int = 18_000  # anaconda package metadata
    boot_images: int = 2_500_000  # vmlinuz + initrd + stage2 for installs
    xml_file_overhead: int = 256


TREE_COST = _TreeCost()


@dataclass
class Distribution:
    """One built distribution: resolved packages + the XML infrastructure."""

    name: str
    version: str
    arch: str
    repository: Repository  # resolved, newest-only view
    graph: Graph
    node_files: dict[str, NodeFile]
    parent: Optional[str] = None  # lineage (Figure 6)
    build_seconds: float = 0.0
    generation: int = 1

    # -- layout ------------------------------------------------------------------
    def paths(self) -> list[str]:
        """Relative paths of the tree (RedHat/RPMS symlinks + build dir)."""
        out = [f"RedHat/RPMS/{pkg.filename}" for pkg in self.repository]
        out.append("RedHat/base/hdlist")
        out.extend(f"build/nodes/{name}.xml" for name in sorted(self.node_files))
        out.append("build/graphs/default.xml")
        out.extend(["images/vmlinuz", "images/initrd.img"])
        return out

    def tree_bytes(self) -> int:
        """Disk footprint of the tree itself (symlinks, not payloads)."""
        n = len(self.repository)
        xml_bytes = sum(
            len(nf.to_xml().encode()) + TREE_COST.xml_file_overhead
            for nf in self.node_files.values()
        )
        xml_bytes += len(self.graph.to_xml().encode()) + TREE_COST.xml_file_overhead
        return (
            n * TREE_COST.symlink
            + n * TREE_COST.hdlist_per_package
            + TREE_COST.boot_images
            + xml_bytes
        )

    def payload_bytes(self) -> int:
        """Bytes behind the symlinks (what nodes actually download)."""
        return self.repository.total_size()

    # -- queries --------------------------------------------------------------------
    def latest(self, name: str) -> Package:
        return self.repository.latest(name)

    def package_names(self) -> list[str]:
        return self.repository.names()

    def lineage(self) -> str:
        return f"{self.parent} -> {self.name}" if self.parent else self.name

    def as_source(self) -> Repository:
        """Use this distribution as a parent for a child rocks-dist run.

        "A consequence of this is repeatability -- a Rocks distribution
        can be run through the identical process to produce an enhanced
        Rocks distribution" (§6.2.2).
        """
        return self.repository

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"Distribution({self.name!r}, {len(self.repository)} packages, "
            f"{self.tree_bytes() / 1e6:.1f} MB tree)"
        )
