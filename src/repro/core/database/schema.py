"""The cluster database schema (§6.4, Tables II and III).

The paper's two key tables are the site-wide *app_globals* configuration
table and the *nodes* table; *memberships* and *appliances* classify
what each node is.  MySQL in the paper, SQLite here — the usage is plain
SQL (SELECTs, INSERTs, multi-table JOINs for cluster-kill), so the
engine swap preserves every behaviour the paper exercises.
"""

from __future__ import annotations

__all__ = ["SCHEMA", "DEFAULT_APPLIANCES", "DEFAULT_MEMBERSHIPS"]

SCHEMA = """
CREATE TABLE IF NOT EXISTS appliances (
    id        INTEGER PRIMARY KEY,
    name      TEXT NOT NULL UNIQUE,
    graph     TEXT NOT NULL DEFAULT 'default',
    node      TEXT NOT NULL    -- root node file in the kickstart graph
);

CREATE TABLE IF NOT EXISTS memberships (
    id        INTEGER PRIMARY KEY,
    name      TEXT NOT NULL UNIQUE,
    appliance INTEGER NOT NULL REFERENCES appliances(id),
    compute   TEXT NOT NULL DEFAULT 'no'   -- 'yes' | 'no' (Table III)
);

CREATE TABLE IF NOT EXISTS nodes (
    id         INTEGER PRIMARY KEY,
    mac        TEXT UNIQUE,
    name       TEXT NOT NULL UNIQUE,
    membership INTEGER NOT NULL REFERENCES memberships(id),
    cpus       INTEGER NOT NULL DEFAULT 1,
    rack       INTEGER NOT NULL DEFAULT 0,
    rank       INTEGER NOT NULL DEFAULT 0,
    ip         TEXT UNIQUE,
    arch       TEXT NOT NULL DEFAULT 'i386',
    os_dist    TEXT NOT NULL DEFAULT 'rocks-dist',
    comment    TEXT DEFAULT ''
);

CREATE TABLE IF NOT EXISTS app_globals (
    id        INTEGER PRIMARY KEY,
    service   TEXT NOT NULL,
    component TEXT NOT NULL,
    value     TEXT NOT NULL,
    UNIQUE (service, component)
);
"""

#: Appliance catalog — the roots of the kickstart graph (§6.1).  The
#: numeric ids echo Table II/III's Appliance column.
DEFAULT_APPLIANCES = [
    # (id, name, graph root node)
    (1, "frontend", "frontend"),
    (2, "compute", "compute"),
    (4, "switch", "switch"),
    (5, "power", "power"),
    (7, "nfs", "nfs"),
    (8, "web", "web"),
]

#: Membership catalog mirroring Table III (name, appliance id, compute?).
DEFAULT_MEMBERSHIPS = [
    (1, "Frontend", 1, "no"),
    (2, "Compute", 2, "yes"),
    (3, "External", 1, "no"),
    (4, "Ethernet Switches", 4, "no"),
    (5, "Power Units", 5, "no"),
    (6, "Myrinet Switches", 4, "no"),
    (7, "NFS Servers", 7, "no"),
    (8, "Web Servers", 8, "no"),
]
