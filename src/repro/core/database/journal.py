"""Write-ahead journal for the cluster configuration database.

The paper's §3 makes the MySQL database the single source of truth for
the whole cluster — lose it and insert-ethers registrations, appliance
assignments, and every generated config file are gone.  The CERN and BNL
large-cluster reports both call out configuration-state loss as a
dominant failure mode, so the resilience layer journals every mutation
as a typed record *before* it executes:

* ``checkpoint``  — a full canonical SQL dump (taken when the journal is
  attached, so state that predates journaling is recoverable too);
* ``add-node`` / ``remove-node`` / ``set-global`` / ``set-os-dist`` —
  the typed mutator calls, with every derived value (e.g. the
  auto-assigned IP) already resolved;
* ``sql``         — raw ``execute()`` statements.

After a frontend crash wipes the live database, :meth:`replay_into`
rebuilds it: restore the checkpoint dump, then reapply each mutation in
order.  Replay onto the same starting state is deterministic, so the
recovered database is byte-identical to the pre-crash one (verified by
comparing canonical ``snapshot()`` dumps in the end-to-end test).
"""

from __future__ import annotations

import json
import sqlite3
from typing import Any, Optional

from .clusterdb import ClusterDatabase, DatabaseError

__all__ = ["DatabaseJournal", "JournalError"]


class JournalError(Exception):
    """Malformed or unreplayable journal content."""


class DatabaseJournal:
    """An append-only, typed mutation log for one :class:`ClusterDatabase`.

    Records live in memory (the simulation's stable storage); passing
    ``path`` additionally appends each record as a JSONL line to a real
    file, which is what a physical frontend would fsync.
    """

    def __init__(self, path: Optional[str] = None):
        self.path = path
        self._records: list[dict[str, Any]] = []
        self._seq = 0
        #: True while replay_into() is reapplying records — suppresses
        #: re-journaling of the mutations the replay itself performs.
        self.replaying = False
        self.replays = 0

    # -- recording ---------------------------------------------------------
    def append(self, op: str, **args: Any) -> None:
        """Record one mutation; a no-op during replay."""
        if self.replaying:
            return
        self._seq += 1
        record = {"seq": self._seq, "op": op, "args": args}
        self._records.append(record)
        if self.path is not None:
            with open(self.path, "a", encoding="utf-8") as fh:
                fh.write(json.dumps(record, sort_keys=True) + "\n")

    def checkpoint(self, db: ClusterDatabase) -> None:
        """Truncate the log and start over from a full dump of ``db``.

        Everything before the checkpoint is subsumed by the dump, so the
        journal stays bounded across long campaigns.
        """
        self._records.clear()
        if self.path is not None:
            open(self.path, "w", encoding="utf-8").close()
        self.append("checkpoint", dump=db.snapshot())

    # -- inspection --------------------------------------------------------
    def records(self) -> list[dict[str, Any]]:
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def to_jsonl(self) -> str:
        return "\n".join(
            json.dumps(record, sort_keys=True) for record in self._records
        )

    # -- recovery ----------------------------------------------------------
    def replay_into(self, db: ClusterDatabase) -> int:
        """Reapply every record to ``db``; returns the count applied.

        The target's own journal hook is suspended for the duration so
        recovery does not re-journal itself.  A failed ``add-node`` or raw
        ``sql`` record is tolerated: the original call failed identically
        (e.g. a duplicate-MAC insert), leaving the database unchanged, so
        skipping it reproduces the same end state.
        """
        saved, db.journal = db.journal, None
        self.replaying = True
        applied = 0
        try:
            for record in self._records:
                op = record["op"]
                args = record["args"]
                if op == "checkpoint":
                    db.restore_from_dump(args["dump"])
                elif op == "add-node":
                    try:
                        db.add_node(**args)
                    except DatabaseError:
                        pass
                elif op == "remove-node":
                    db.remove_node(**args)
                elif op == "set-global":
                    db.set_global(**args)
                elif op == "set-os-dist":
                    db.set_os_dist(**args)
                elif op == "sql":
                    try:
                        db.execute(args["sql"], tuple(args["params"]))
                    except sqlite3.Error:
                        pass
                else:
                    raise JournalError(f"unknown journal op {op!r}")
                applied += 1
        finally:
            self.replaying = False
            db.journal = saved
        self.replays += 1
        return applied
