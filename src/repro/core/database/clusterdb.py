"""The cluster configuration database (§6.4).

"Rocks clusters use a MySQL database for site configuration...  From
these tables we generate the /etc/hosts, /etc/dhcpd.conf, and PBS
configuration files."  This class wraps an SQLite database behind the
same schema and exposes both a typed API (used by insert-ethers and the
kickstart CGI) and raw SQL (``query()``), because arbitrary
``--query="select ..."`` strings are a headline feature of the Rocks
cluster tools.
"""

from __future__ import annotations

import ipaddress
import sqlite3
from dataclasses import dataclass
from typing import Any, Iterable, Optional, Sequence

from .schema import DEFAULT_APPLIANCES, DEFAULT_MEMBERSHIPS, SCHEMA

__all__ = ["ClusterDatabase", "NodeRow", "DatabaseError"]


class DatabaseError(Exception):
    """Constraint violations and bad lookups."""


@dataclass(frozen=True)
class NodeRow:
    """One row of the nodes table (Table II)."""

    id: int
    mac: Optional[str]
    name: str
    membership: int
    cpus: int
    rack: int
    rank: int
    ip: Optional[str]
    arch: str
    os_dist: str
    comment: str


class ClusterDatabase:
    """Typed facade + raw SQL over the Rocks site database."""

    #: Rocks hands addresses out of 10.0.0.0/8, descending from the top
    #: (Table II: compute-0-0 gets 10.255.255.254 side of the space).
    NETWORK = ipaddress.ip_network("10.0.0.0/8")

    def __init__(self, path: str = ":memory:"):
        self._conn = sqlite3.connect(path)
        self._conn.row_factory = sqlite3.Row
        self._conn.executescript(SCHEMA)
        self._seed_catalogs()
        #: Optional write-ahead journal; every mutator logs through it.
        self.journal = None

    def attach_journal(self, journal, checkpoint: bool = True) -> None:
        """Route every subsequent mutation through ``journal``.

        ``checkpoint`` (the default) first snapshots the current state
        into the journal, so rows that predate journaling — the frontend's
        own node row, seeded catalogs — survive a replay too.
        """
        if checkpoint:
            journal.checkpoint(self)
        self.journal = journal

    def _journal(self, op: str, **args: Any) -> None:
        if self.journal is not None:
            self.journal.append(op, **args)

    def _seed_catalogs(self) -> None:
        cur = self._conn.execute("SELECT COUNT(*) FROM appliances")
        if cur.fetchone()[0] == 0:
            self._conn.executemany(
                "INSERT INTO appliances (id, name, node) VALUES (?, ?, ?)",
                DEFAULT_APPLIANCES,
            )
            self._conn.executemany(
                "INSERT INTO memberships (id, name, appliance, compute) "
                "VALUES (?, ?, ?, ?)",
                DEFAULT_MEMBERSHIPS,
            )
            self._conn.commit()

    # -- raw SQL (the cluster-kill --query path) ---------------------------------
    def query(self, sql: str, params: Sequence[Any] = ()) -> list[tuple]:
        """Run any SELECT (joins welcome); returns rows as tuples."""
        cur = self._conn.execute(sql, params)
        return [tuple(r) for r in cur.fetchall()]

    def execute(self, sql: str, params: Sequence[Any] = ()) -> None:
        self._journal("sql", sql=sql, params=list(params))
        self._conn.execute(sql, params)
        self._conn.commit()

    # -- app_globals ----------------------------------------------------------------
    def set_global(self, service: str, component: str, value: str) -> None:
        self._journal(
            "set-global", service=service, component=component, value=value
        )
        self._conn.execute(
            "INSERT INTO app_globals (service, component, value) VALUES (?,?,?) "
            "ON CONFLICT (service, component) DO UPDATE SET value = excluded.value",
            (service, component, value),
        )
        self._conn.commit()

    def get_global(self, service: str, component: str, default: str = "") -> str:
        cur = self._conn.execute(
            "SELECT value FROM app_globals WHERE service=? AND component=?",
            (service, component),
        )
        row = cur.fetchone()
        return row[0] if row else default

    # -- memberships / appliances ------------------------------------------------------
    def membership_id(self, name: str) -> int:
        cur = self._conn.execute("SELECT id FROM memberships WHERE name=?", (name,))
        row = cur.fetchone()
        if row is None:
            raise DatabaseError(f"no membership named {name!r}")
        return row[0]

    def memberships(self) -> list[tuple[int, str, int, str]]:
        return self.query(
            "SELECT id, name, appliance, compute FROM memberships ORDER BY id"
        )

    def appliance_for_membership(self, membership_id: int) -> tuple[str, str]:
        """(appliance name, graph root node file) for a membership."""
        cur = self._conn.execute(
            "SELECT a.name, a.node FROM appliances a, memberships m "
            "WHERE m.id=? AND m.appliance = a.id",
            (membership_id,),
        )
        row = cur.fetchone()
        if row is None:
            raise DatabaseError(f"membership {membership_id} has no appliance")
        return (row[0], row[1])

    # -- nodes ---------------------------------------------------------------------------
    def add_node(
        self,
        name: str,
        membership: str = "Compute",
        mac: Optional[str] = None,
        ip: Optional[str] = None,
        rack: int = 0,
        rank: int = 0,
        cpus: int = 1,
        arch: str = "i386",
        os_dist: str = "rocks-dist",
        comment: str = "",
    ) -> NodeRow:
        """Insert a node (what insert-ethers does per new MAC)."""
        mid = self.membership_id(membership)
        if ip is None:
            ip = self.next_free_ip()
        # Journal with the *resolved* IP: replay must not re-run the
        # allocator against whatever state it happens to see.
        self._journal(
            "add-node",
            name=name,
            membership=membership,
            mac=mac,
            ip=ip,
            rack=rack,
            rank=rank,
            cpus=cpus,
            arch=arch,
            os_dist=os_dist,
            comment=comment,
        )
        try:
            self._conn.execute(
                "INSERT INTO nodes (mac, name, membership, cpus, rack, rank, "
                "ip, arch, os_dist, comment) VALUES (?,?,?,?,?,?,?,?,?,?)",
                (mac, name, mid, cpus, rack, rank, ip, arch, os_dist, comment),
            )
        except sqlite3.IntegrityError as err:
            raise DatabaseError(f"cannot add node {name!r}: {err}") from err
        self._conn.commit()
        return self.node_by_name(name)

    def remove_node(self, name: str) -> None:
        self._journal("remove-node", name=name)
        self._conn.execute("DELETE FROM nodes WHERE name=?", (name,))
        self._conn.commit()

    def nodes(self, membership: Optional[str] = None) -> list[NodeRow]:
        if membership is None:
            cur = self._conn.execute("SELECT * FROM nodes ORDER BY id")
        else:
            cur = self._conn.execute(
                "SELECT n.* FROM nodes n, memberships m "
                "WHERE n.membership = m.id AND m.name=? ORDER BY n.id",
                (membership,),
            )
        return [self._row(r) for r in cur.fetchall()]

    def compute_nodes(self) -> list[NodeRow]:
        """The Table III join: nodes whose membership is marked compute."""
        cur = self._conn.execute(
            "SELECT n.* FROM nodes n, memberships m "
            "WHERE n.membership = m.id AND m.compute = 'yes' ORDER BY n.id"
        )
        return [self._row(r) for r in cur.fetchall()]

    def node_by_name(self, name: str) -> NodeRow:
        cur = self._conn.execute("SELECT * FROM nodes WHERE name=?", (name,))
        row = cur.fetchone()
        if row is None:
            raise DatabaseError(f"no node named {name!r}")
        return self._row(row)

    def node_by_mac(self, mac: str) -> Optional[NodeRow]:
        cur = self._conn.execute("SELECT * FROM nodes WHERE mac=?", (mac,))
        row = cur.fetchone()
        return self._row(row) if row else None

    def node_by_ip(self, ip: str) -> Optional[NodeRow]:
        cur = self._conn.execute("SELECT * FROM nodes WHERE ip=?", (ip,))
        row = cur.fetchone()
        return self._row(row) if row else None

    def has_mac(self, mac: str) -> bool:
        return self.node_by_mac(mac) is not None

    def next_rank(self, rack: int, membership: str = "Compute") -> int:
        mid = self.membership_id(membership)
        cur = self._conn.execute(
            "SELECT MAX(rank) FROM nodes WHERE rack=? AND membership=?",
            (rack, mid),
        )
        row = cur.fetchone()
        return 0 if row[0] is None else row[0] + 1

    def set_os_dist(self, name: str, os_dist: str) -> None:
        """Point a node at a different distribution (§6.2.3 heterogeneity)."""
        self.node_by_name(name)  # raises on unknown
        self._journal("set-os-dist", name=name, os_dist=os_dist)
        self._conn.execute(
            "UPDATE nodes SET os_dist=? WHERE name=?", (os_dist, name)
        )
        self._conn.commit()

    def next_free_ip(self) -> str:
        """Highest unassigned address, descending — Table II's pattern.

        10.255.255.254 goes to the first inserted non-frontend node, then
        .253, and so on; the frontend conventionally holds 10.1.1.1.
        """
        taken = {
            row[0]
            for row in self.query("SELECT ip FROM nodes WHERE ip IS NOT NULL")
        }
        candidate = int(self.NETWORK.broadcast_address) - 1
        floor = int(self.NETWORK.network_address)
        while candidate > floor:
            ip = str(ipaddress.ip_address(candidate))
            if ip not in taken:
                return ip
            candidate -= 1
        raise DatabaseError("address space exhausted")

    # -- crash / recovery --------------------------------------------------
    def snapshot(self) -> str:
        """Canonical SQL dump of the full database state.

        ``iterdump`` emits schema plus rows in a stable order, so two
        databases holding identical state produce identical text — the
        byte-identity check the crash-recovery test relies on.
        """
        return "\n".join(self._conn.iterdump())

    def lose_state(self) -> None:
        """Simulate a crash that destroys the database contents.

        The connection object survives (other components hold references
        to this ``ClusterDatabase``), but every row is gone; only the
        seeded appliance/membership catalogs of a fresh install remain.
        """
        for (name,) in self._conn.execute(
            "SELECT name FROM sqlite_master WHERE type='table' "
            "AND name NOT LIKE 'sqlite_%'"
        ).fetchall():
            self._conn.execute(f'DELETE FROM "{name}"')
        self._conn.commit()
        self._seed_catalogs()

    def restore_from_dump(self, dump: str) -> None:
        """Replace the entire database with a prior :meth:`snapshot`."""
        for (name,) in self._conn.execute(
            "SELECT name FROM sqlite_master WHERE type='table' "
            "AND name NOT LIKE 'sqlite_%'"
        ).fetchall():
            self._conn.execute(f'DROP TABLE IF EXISTS "{name}"')
        self._conn.commit()
        self._conn.executescript(dump)
        self._conn.commit()

    @staticmethod
    def _row(r: sqlite3.Row) -> NodeRow:
        return NodeRow(
            id=r["id"],
            mac=r["mac"],
            name=r["name"],
            membership=r["membership"],
            cpus=r["cpus"],
            rack=r["rack"],
            rank=r["rank"],
            ip=r["ip"],
            arch=r["arch"],
            os_dist=r["os_dist"],
            comment=r["comment"],
        )

    def close(self) -> None:
        self._conn.close()
