"""The Rocks cluster configuration database and its report generators."""

from .clusterdb import ClusterDatabase, DatabaseError, NodeRow
from .journal import DatabaseJournal, JournalError
from .reports import dhcp_bindings, report_dhcpd, report_hosts, report_pbs_nodes
from .schema import DEFAULT_APPLIANCES, DEFAULT_MEMBERSHIPS, SCHEMA

__all__ = [
    "ClusterDatabase",
    "DatabaseError",
    "DatabaseJournal",
    "JournalError",
    "NodeRow",
    "dhcp_bindings",
    "report_dhcpd",
    "report_hosts",
    "report_pbs_nodes",
    "DEFAULT_APPLIANCES",
    "DEFAULT_MEMBERSHIPS",
    "SCHEMA",
]
