"""The crash cart — a monitor and a keyboard (§4).

"If the compute node is still unresponsive, physical intervention is
required.  For this case, we have a crash cart."  Unlike eKV, the cart
works whenever the node has power (it reads the VGA console directly),
which is exactly its value: it covers the window where the administrator
is otherwise in the dark.
"""

from __future__ import annotations

from ...cluster import Machine, PowerState

__all__ = ["CrashCart", "NoVideoSignal"]


class NoVideoSignal(Exception):
    """The node is powered off — even the cart shows nothing."""


class CrashCart:
    """One shared cart; wheeling it over takes real minutes."""

    #: simulated seconds to wheel the cart to a rack and plug in
    WHEEL_TIME = 120.0

    def __init__(self, env):
        self.env = env
        self.attached_to: Machine | None = None
        self.attach_count = 0

    def attach(self, machine: Machine):
        """Process: wheel over, plug in, return the live console."""

        def go():
            yield self.env.timeout(self.WHEEL_TIME)
            if machine.power is PowerState.OFF:
                raise NoVideoSignal(f"{machine.hostid} is powered off")
            self.attached_to = machine
            self.attach_count += 1
            return machine.console

        return self.env.process(go(), name=f"crash-cart:{machine.hostid}")

    def detach(self) -> None:
        self.attached_to = None
