"""shoot-node: remote reinstallation with eKV monitoring (§6.3).

"A compute node reinstalls itself when an administrator invokes
shoot-node, or after a hard power cycle.  Shoot-node is a command-line
tool that, over Ethernet, instructs a compute node to reboot itself into
installation mode.  It monitors the node's progress and pops open an
xterm window which displays the status of the Red Hat Kickstart
installation."

When the node does not answer over Ethernet, the §4 escalation applies:
hard power cycle its PDU outlet (which itself forces the reinstall).

Shooting can *fail* — the node hangs during installation, never comes
back before the deadline, or has no PDU outlet to fall back on.  A
:class:`ShootReport` therefore has a terminal failed state instead of
raising, so campaign supervisors (:mod:`repro.core.tools.campaign`) can
always render a complete per-node account.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Generator, Optional

from ...cluster import Machine, MachineState, PowerState
from ...netsim import AllOf, AnyOf, Process
from ..frontend import RocksFrontend
from .ekv import EkvConsole

__all__ = ["shoot_node", "shoot_nodes", "ShootReport"]


@dataclass
class ShootReport:
    """One node's reinstall as observed by shoot-node."""

    host: str
    method: str  # "ethernet" | "pdu" | "none"
    started_at: float
    finished_at: Optional[float] = None
    ekv: Optional[EkvConsole] = None
    failed: bool = False
    error: Optional[str] = None

    @property
    def finished(self) -> bool:
        return self.finished_at is not None

    @property
    def seconds(self) -> float:
        """Reinstall duration; NaN while unfinished (renderable, not raisy)."""
        if self.finished_at is None:
            return math.nan
        return self.finished_at - self.started_at

    @property
    def minutes(self) -> float:
        return self.seconds / 60.0

    @property
    def ok(self) -> bool:
        return self.finished and not self.failed

    def __str__(self) -> str:
        if self.ok:
            return f"{self.host}: up after {self.minutes:.1f} min via {self.method}"
        return f"{self.host}: FAILED via {self.method} ({self.error or 'unknown'})"


def shoot_node(
    frontend: RocksFrontend,
    machine: Machine,
    deadline: Optional[float] = None,
    force_pdu: bool = False,
    parent=None,
) -> Process:
    """Reinstall one node; the process yields a :class:`ShootReport`.

    ``deadline`` bounds the wait for the node to come back UP (seconds);
    without one, shoot-node watches forever, as the original tool did.
    ``force_pdu`` skips the Ethernet attempt — the escalation step a
    campaign supervisor takes after a soft reinstall already failed.
    ``parent`` (a tracer span) is stashed on the machine so the install
    it triggers parents on the shooter's span.
    """
    return frontend.env.process(
        _shoot(frontend, machine, deadline, force_pdu, parent),
        name=f"shoot-node:{machine.hostid}",
    )


def shoot_nodes(
    frontend: RocksFrontend,
    machines: list[Machine],
    deadline: Optional[float] = None,
    parent=None,
) -> Process:
    """Reinstall many nodes concurrently; yields a list of reports.

    This is the §6.3 experiment: N simultaneous reinstalls against one
    install server.  Every node gets a report — failed shoots return a
    report in its failed terminal state rather than poisoning the batch.
    """
    env = frontend.env

    def run_all() -> Generator:
        procs = [
            shoot_node(frontend, m, deadline=deadline, parent=parent)
            for m in machines
        ]
        reports = yield AllOf(env, procs)
        return list(reports)

    return env.process(run_all(), name=f"shoot-nodes:x{len(machines)}")


def _shoot(
    frontend: RocksFrontend,
    machine: Machine,
    deadline: Optional[float],
    force_pdu: bool,
    parent=None,
) -> Generator:
    env = frontend.env
    report = ShootReport(
        host=machine.hostid, method="ethernet", started_at=env.now
    )
    # One span per shoot, covering the whole wall-to-wall window (reboot,
    # POST, install, OS boot, the wait for UP) — the per-node unit a
    # critical-path walk attributes as node-boot time.  The install the
    # shoot triggers parents here via machine.trace_parent.
    span = (
        env.tracer.span("shoot", machine.hostid, parent=parent)
        if env.tracer.enabled
        else None
    )
    if env.tracer.enabled:
        machine.trace_parent = span
    try:
        report = yield from _shoot_body(
            frontend, machine, deadline, force_pdu, report, span
        )
        return report
    finally:
        if span is not None:
            span.end(
                outcome="ok" if report.ok else "failed",
                method=report.method,
            )


def _shoot_body(
    frontend: RocksFrontend,
    machine: Machine,
    deadline: Optional[float],
    force_pdu: bool,
    report: ShootReport,
    span,
) -> Generator:
    env = frontend.env
    reachable = (
        not force_pdu
        and machine.state is MachineState.UP
        and frontend.cluster.ethernet_reachable(frontend.machine, machine)
    )
    if reachable:
        # "over Ethernet, instructs a compute node to reboot itself into
        # installation mode"
        machine.request_reinstall()
    else:
        pdu_outlet = frontend.cluster.pdu_for(machine)
        if pdu_outlet is None:
            report.method = "none"
            report.failed = True
            report.error = "unreachable over Ethernet and no PDU outlet wired"
            return report
        pdu, outlet = pdu_outlet
        report.method = "pdu"
        yield env.process(pdu.hard_cycle(outlet))

    # "pops open an xterm window which displays the status" — the eKV view
    report.ekv = EkvConsole(frontend.cluster, machine)
    t_wait = env.now
    up = machine.wait_for_state(MachineState.UP)
    if deadline is None:
        yield up
    else:
        hung = machine.wait_for_state(MachineState.HUNG)
        timer = env.timeout(deadline)
        yield AnyOf(env, (up, hung, timer))
        if not up.triggered:
            report.failed = True
            if hung.triggered:
                report.error = "node hung during reinstallation"
            else:
                report.error = f"not back up after {deadline:.0f}s"
            if env.tracer.enabled:
                # The whole attempt window was spent waiting on a node
                # that never answered: straggler time a critical-path
                # analysis must see as "dead-wait", not silence.
                env.tracer.record_span(
                    "dead-wait", machine.hostid, t_wait, parent=span,
                    method=report.method, error=report.error,
                )
            return report
    report.finished_at = env.now
    return report
