"""shoot-node: remote reinstallation with eKV monitoring (§6.3).

"A compute node reinstalls itself when an administrator invokes
shoot-node, or after a hard power cycle.  Shoot-node is a command-line
tool that, over Ethernet, instructs a compute node to reboot itself into
installation mode.  It monitors the node's progress and pops open an
xterm window which displays the status of the Red Hat Kickstart
installation."

When the node does not answer over Ethernet, the §4 escalation applies:
hard power cycle its PDU outlet (which itself forces the reinstall).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional

from ...cluster import Machine, MachineState, PowerState
from ...netsim import AllOf, Process
from ..frontend import RocksFrontend
from .ekv import EkvConsole

__all__ = ["shoot_node", "shoot_nodes", "ShootReport"]


@dataclass
class ShootReport:
    """One node's reinstall as observed by shoot-node."""

    host: str
    method: str  # "ethernet" | "pdu" | "failed"
    started_at: float
    finished_at: Optional[float] = None
    ekv: Optional[EkvConsole] = None

    @property
    def seconds(self) -> float:
        if self.finished_at is None:
            raise RuntimeError(f"{self.host} has not finished reinstalling")
        return self.finished_at - self.started_at

    @property
    def minutes(self) -> float:
        return self.seconds / 60.0

    @property
    def ok(self) -> bool:
        return self.finished_at is not None and self.method != "failed"


def shoot_node(frontend: RocksFrontend, machine: Machine) -> Process:
    """Reinstall one node; the process yields a :class:`ShootReport`."""
    return frontend.env.process(
        _shoot(frontend, machine), name=f"shoot-node:{machine.hostid}"
    )


def shoot_nodes(frontend: RocksFrontend, machines: list[Machine]) -> Process:
    """Reinstall many nodes concurrently; yields a list of reports.

    This is the §6.3 experiment: N simultaneous reinstalls against one
    install server.
    """
    env = frontend.env

    def run_all() -> Generator:
        procs = [shoot_node(frontend, m) for m in machines]
        reports = yield AllOf(env, procs)
        return list(reports)

    return env.process(run_all(), name=f"shoot-nodes:x{len(machines)}")


def _shoot(frontend: RocksFrontend, machine: Machine) -> Generator:
    env = frontend.env
    report = ShootReport(
        host=machine.hostid, method="ethernet", started_at=env.now
    )
    reachable = (
        machine.state is MachineState.UP
        and frontend.cluster.ethernet_reachable(frontend.machine, machine)
    )
    if reachable:
        # "over Ethernet, instructs a compute node to reboot itself into
        # installation mode"
        machine.request_reinstall()
    else:
        pdu_outlet = frontend.cluster.pdu_for(machine)
        if pdu_outlet is None:
            report.method = "failed"
            return report
        pdu, outlet = pdu_outlet
        report.method = "pdu"
        yield env.process(pdu.hard_cycle(outlet))

    # "pops open an xterm window which displays the status" — the eKV view
    report.ekv = EkvConsole(frontend.cluster, machine)
    yield machine.wait_for_state(MachineState.UP)
    report.finished_at = env.now
    return report
