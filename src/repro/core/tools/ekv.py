"""eKV — Ethernet Keyboard and Video (§6.3, Figure 7).

"This is accomplished by slightly modifying Red Hat's Kickstart
installation program, anaconda, to capture standard output and present
it on a telnet-compatible port.  Should something go wrong, we've also
inserted code that allows users to interact with the installation
through the same xterm window."

The console content is the machine's console buffer (the installer
writes there); eKV adds the remote-access semantics: it only answers
while the node's Ethernet is actually up — during POST the administrator
is "in the dark" (§4) and needs the crash cart.
"""

from __future__ import annotations

from ...cluster import ClusterHardware, Machine, MachineState

__all__ = ["EkvConsole", "EkvUnreachable", "EKV_PORT"]

#: the telnet-compatible port the modified anaconda listens on
EKV_PORT = 8023


class EkvUnreachable(Exception):
    """The node's Ethernet is dark (POST, powered off, or hung early)."""


class EkvConsole:
    """A remote view of one installing (or running) node's console."""

    def __init__(self, cluster: ClusterHardware, machine: Machine):
        self.cluster = cluster
        self.machine = machine
        self._cursor = 0
        self.keys_sent: list[str] = []

    # -- reachability ------------------------------------------------------------
    @property
    def reachable(self) -> bool:
        """eKV works once Linux brings up eth0: install/boot/up states."""
        return self.machine.state in (
            MachineState.INSTALLING,
            MachineState.BOOTING,
            MachineState.UP,
        ) and self.cluster.network.has_host(self.machine.mac)

    def _require(self) -> None:
        if not self.reachable:
            raise EkvUnreachable(
                f"{self.machine.hostid} is {self.machine.state.value}; "
                "no eKV until Linux configures the Ethernet (use the crash cart)"
            )

    # -- the telnet session ---------------------------------------------------------
    def read(self) -> list[str]:
        """New console lines since the last read."""
        self._require()
        lines = self.machine.console[self._cursor:]
        self._cursor = len(self.machine.console)
        return lines

    def tail(self, n: int = 10) -> list[str]:
        self._require()
        return self.machine.console[-n:]

    def screen(self) -> str:
        """Render the Figure 7 anaconda installation screen."""
        from ...installer.screen import render_install_screen

        self._require()
        progress = self.machine.install_progress
        if progress is None:
            raise EkvUnreachable(
                f"{self.machine.hostid} is not in the package-installation phase"
            )
        progress.now = self.machine.env.now
        return render_install_screen(progress)

    def send_key(self, key: str) -> None:
        """Interact with the installation (Figure 7's <Tab>/<Space>/F12)."""
        self._require()
        self.keys_sent.append(key)
        self.machine.console_write(f"eKV: operator pressed <{key}>")

    def abort_install(self) -> None:
        """Operator bail-out: reboot the node (restarts the install)."""
        self._require()
        self.send_key("ctrl-alt-del")
        self.machine.reboot()
