"""Self-healing reinstall campaigns: shoot-node with a typed escalation.

The paper's recovery primitive is complete reinstallation, escalating
from an Ethernet request to a hard PDU power cycle when a node is
unresponsive (§4, §6.3).  At production scale the dominant cost is
*partial failure during mass reinstallation* — some nodes hang, some
never answer, the install server crashes mid-campaign — so the
supervisor here drives shoot-node over N nodes with bounded per-node
retries and reports graceful degradation (installed / retried /
escalated / abandoned) instead of raising on the first casualty.

Escalation ladder per node: Ethernet reinstall → retry → PDU hard
power cycle → mark dead.  Every node is accounted for in the
:class:`CampaignReport`, whatever happened to it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Generator, Optional, Sequence

from ...cluster import Machine
from ...netsim import AllOf, Process
from ..frontend import RocksFrontend
from .shoot_node import ShootReport, shoot_node

__all__ = [
    "EscalationPolicy",
    "NodeOutcome",
    "NodeCampaignReport",
    "CampaignReport",
    "ReinstallCampaign",
]


@dataclass(frozen=True)
class EscalationPolicy:
    """How hard the supervisor fights for each node."""

    #: total reinstall attempts per node before marking it dead
    max_attempts: int = 3
    #: seconds to wait for a node to come back UP per attempt; a §5
    #: reinstall is 5-10 minutes, so 45 min flags only real casualties
    attempt_deadline: float = 2700.0
    #: attempts made over Ethernet before escalating to the PDU
    ethernet_attempts: int = 1
    #: pause between attempts on the same node
    retry_pause: float = 10.0


class NodeOutcome(enum.Enum):
    """Final per-node verdict, in escalation order."""

    INSTALLED = "installed"  # first attempt, no drama
    RETRIED = "retried"  # needed extra attempts, no PDU
    ESCALATED = "escalated"  # needed a hard PDU power cycle
    ABANDONED = "abandoned"  # all attempts spent; marked dead


@dataclass
class NodeCampaignReport:
    """Everything the campaign did to (and learned about) one node."""

    host: str
    outcome: NodeOutcome
    attempts: int
    methods: list[str]
    seconds: float
    error: Optional[str] = None
    shoots: list[ShootReport] = field(default_factory=list)

    @property
    def installed(self) -> bool:
        return self.outcome is not NodeOutcome.ABANDONED


@dataclass
class CampaignReport:
    """The graceful-degradation account for one campaign."""

    started_at: float
    finished_at: float
    nodes: list[NodeCampaignReport]

    @property
    def seconds(self) -> float:
        return self.finished_at - self.started_at

    @property
    def minutes(self) -> float:
        return self.seconds / 60.0

    def count(self, outcome: NodeOutcome) -> int:
        return sum(1 for n in self.nodes if n.outcome is outcome)

    @property
    def n_installed(self) -> int:
        return sum(1 for n in self.nodes if n.installed)

    @property
    def completion_rate(self) -> float:
        return self.n_installed / len(self.nodes) if self.nodes else 1.0

    def summary(self) -> dict[str, int]:
        return {o.value: self.count(o) for o in NodeOutcome}

    def render(self) -> str:
        """The report an administrator reads after the campaign."""
        lines = [
            f"reinstall campaign: {len(self.nodes)} nodes in "
            f"{self.minutes:.1f} min, "
            f"{100 * self.completion_rate:.0f}% installed"
        ]
        for o in NodeOutcome:
            lines.append(f"  {o.value:<10} {self.count(o):>3}")
        for n in sorted(self.nodes, key=lambda n: n.host):
            detail = "" if n.error is None else f"  [{n.error}]"
            lines.append(
                f"  {n.host:<14} {n.outcome.value:<10} "
                f"attempts={n.attempts} via {'+'.join(n.methods) or '-'} "
                f"{n.seconds / 60:.1f} min{detail}"
            )
        return "\n".join(lines)


class ReinstallCampaign:
    """Drives shoot-node over many nodes, surviving partial failure."""

    def __init__(
        self,
        frontend: RocksFrontend,
        policy: EscalationPolicy = EscalationPolicy(),
    ):
        self.frontend = frontend
        self.policy = policy

    def run(self, machines: Sequence[Machine]) -> Process:
        """Supervise a whole campaign; the process yields a CampaignReport."""
        env = self.frontend.env
        targets = list(machines)

        def supervise() -> Generator:
            started = env.now
            span = (
                env.tracer.span("campaign", f"x{len(targets)}", nodes=len(targets))
                if env.tracer.enabled
                else None
            )
            procs = [
                env.process(self._drive(m, span), name=f"campaign:{m.hostid}")
                for m in targets
            ]
            node_reports = yield AllOf(env, procs)
            report = CampaignReport(
                started_at=started,
                finished_at=env.now,
                nodes=list(node_reports),
            )
            if span is not None:
                span.end(**{o.value: report.count(o) for o in NodeOutcome})
            return report

        return env.process(supervise(), name=f"campaign:x{len(targets)}")

    def _drive(self, machine: Machine, campaign_span=None) -> Generator:
        """One node's escalation ladder: ethernet → retry → PDU → dead."""
        env = self.frontend.env
        policy = self.policy
        tracer = env.tracer
        t0 = env.now
        span = (
            tracer.span("campaign-node", machine.hostid, parent=campaign_span)
            if tracer.enabled
            else None
        )
        methods: list[str] = []
        shoots: list[ShootReport] = []
        error: Optional[str] = None
        # Campaign state lives in app_globals so it survives a frontend
        # crash via the database journal, like any other §6.4 state.
        self.frontend.db.set_global("campaign", machine.hostid, "installing")
        for attempt in range(1, policy.max_attempts + 1):
            force_pdu = attempt > policy.ethernet_attempts
            if tracer.enabled and force_pdu:
                tracer.event(
                    "campaign-escalation", machine.hostid, parent=span,
                    attempt=attempt, method="pdu", after=str(error or ""),
                )
            report = yield shoot_node(
                self.frontend,
                machine,
                deadline=policy.attempt_deadline,
                force_pdu=force_pdu,
                parent=span,
            )
            methods.append(report.method)
            shoots.append(report)
            if tracer.enabled:
                tracer.event(
                    "campaign-attempt", machine.hostid, parent=span,
                    attempt=attempt, method=report.method, ok=report.ok,
                )
            if report.ok:
                if attempt == 1 and report.method == "ethernet":
                    outcome = NodeOutcome.INSTALLED
                elif "pdu" in methods:
                    outcome = NodeOutcome.ESCALATED
                else:
                    outcome = NodeOutcome.RETRIED
                self.frontend.db.set_global(
                    "campaign", machine.hostid, outcome.value
                )
                if span is not None:
                    span.end(outcome=outcome.value, attempts=attempt)
                return NodeCampaignReport(
                    host=machine.hostid,
                    outcome=outcome,
                    attempts=attempt,
                    methods=methods,
                    seconds=env.now - t0,
                    shoots=shoots,
                )
            error = report.error
            if attempt < policy.max_attempts:
                yield env.timeout(policy.retry_pause)
        # Out of attempts: power the node down so it stops thrashing the
        # install server, and report it dead for the crash cart.
        machine.power_off()
        self.frontend.db.set_global(
            "campaign", machine.hostid, NodeOutcome.ABANDONED.value
        )
        if span is not None:
            span.end(
                outcome=NodeOutcome.ABANDONED.value,
                attempts=policy.max_attempts,
                error=str(error or ""),
            )
        return NodeCampaignReport(
            host=machine.hostid,
            outcome=NodeOutcome.ABANDONED,
            attempts=policy.max_attempts,
            methods=methods,
            seconds=env.now - t0,
            error=error,
            shoots=shoots,
        )
