"""Rolling cluster upgrade through the batch queue (§5).

"Software on production machines can be systematically and continually
upgraded...  After the updates are validated on a small test cluster,
the production system can be upgraded by submitting a 'reinstall
cluster' job to Maui, as not to disturb any running applications.  Once
the reinstallation is complete, the next job will have a known,
consistent software base."

The implementation submits one high-priority *system* job per compute
node; each job claims its node only when the node is free (running
applications are never disturbed), reinstalls it via shoot-node, and
releases it with the new software base.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional

from ...scheduler import Job
from ..frontend import RocksFrontend
from .shoot_node import shoot_node

__all__ = ["queue_cluster_reinstall", "QueuedReinstallCampaign"]

#: generous per-node walltime bound; the job completes early when the
#: node is back up (a reinstall is 5-10 minutes, §5)
REINSTALL_WALLTIME = 3600.0


@dataclass
class QueuedReinstallCampaign:
    """Tracks one queued 'reinstall cluster' operation.

    Distinct from :class:`repro.core.tools.campaign.ReinstallCampaign`
    (the fault-tolerant supervisor): this one rides the batch queue so
    running applications are never disturbed.
    """

    jobs: list[Job] = field(default_factory=list)
    reports: list = field(default_factory=list)

    @property
    def complete(self) -> bool:
        return all(j.done is not None and j.done.triggered for j in self.jobs)

    def wait_event(self, env):
        from ...netsim import AllOf

        return AllOf(env, [j.done for j in self.jobs])


def queue_cluster_reinstall(
    frontend: RocksFrontend,
    priority: int = 100,
    owner: str = "root",
) -> QueuedReinstallCampaign:
    """Submit per-node reinstall system jobs for every compute node."""
    campaign = QueuedReinstallCampaign()
    for machine in frontend.compute_machines():
        job = frontend.pbs.qsub(
            owner=owner,
            name=f"reinstall-{machine.hostid}",
            nodes=1,
            walltime=REINSTALL_WALLTIME,
            priority=priority,
            system=True,
            on_start=_make_reinstaller(frontend, machine, campaign),
            required_nodes=[machine.hostid],
        )
        campaign.jobs.append(job)
    return campaign


def _make_reinstaller(frontend: RocksFrontend, machine, campaign: QueuedReinstallCampaign):
    env = frontend.env

    def on_start(job: Job) -> None:
        def run() -> Generator:
            report = yield shoot_node(frontend, machine)
            campaign.reports.append(report)
            frontend.pbs.finish_job(job)

        env.process(run(), name=f"reinstall-job:{machine.hostid}")

    return on_start
