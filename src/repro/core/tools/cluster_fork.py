"""cluster-fork / cluster-kill: SQL-directed parallel commands (§6.4).

"By simply adding an SQL interface to the script makes it more powerful
as the user can intelligently direct the script to a subset of the
nodes...  Any SQL query, including joins, can be fed to cluster-kill."

The target list comes from an explicit ``nodes`` list, a *nodeset
expression* (``compute-0-[0-15],@compute`` — see :mod:`repro.exec`), an
SQL ``query`` returning hostnames (first column), or — the brute-force
default the paper starts from — every name with the ``compute-`` prefix
in /etc/hosts.

Two transports share that targeting:

* :func:`cluster_fork` — the original synchronous rexec sweep;
* :func:`cluster_fork_exec` — the fault-tolerant engine
  (:class:`~repro.exec.task.ExecTask`): sliding fanout window, per-node
  timeout/retry, typed ``NODE_DEAD`` results, gathered-output report.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from ...exec import ExecOptions, ExecReport, ExecTask, GroupResolver, NodeSet
from ...scheduler import RemoteEnvironment, Rexec, RexecSession
from ..frontend import RocksFrontend

__all__ = [
    "cluster_fork",
    "cluster_fork_exec",
    "cluster_kill",
    "frontend_groups",
    "targets_from_query",
]

_ROOT = RemoteEnvironment(user="root", uid=0, gid=0, cwd="/root")

#: targets may be a nodeset expression, an explicit name sequence, or a
#: pre-built NodeSet
Targets = Union[str, NodeSet, Sequence[str]]


def targets_from_query(frontend: RocksFrontend, query: str) -> list[str]:
    """Run an arbitrary SELECT; the first column is the hostname list."""
    return [row[0] for row in frontend.db.query(query)]


def frontend_groups(frontend: RocksFrontend) -> GroupResolver:
    """Group source backed by the cluster database.

    ``@all`` — every compute node; ``@cabinetN`` — the nodes racked in
    cabinet *N*; ``@<membership>`` — the nodes of that membership
    (``@compute``, ``@nfs``, ... — case-insensitive, per Table III).
    """

    def resolve(group: str) -> list[str]:
        db = frontend.db
        if group == "all":
            names = [row.name for row in db.compute_nodes()]
            if names:
                return names
            raise KeyError(group)
        if group.startswith("cabinet") and group[len("cabinet"):].isdigit():
            rack = int(group[len("cabinet"):])
            names = [
                row.name for row in db.compute_nodes() if row.rack == rack
            ]
            if names:
                return names
            raise KeyError(group)
        for _id, name, _appliance, _compute in db.memberships():
            if name.lower() == group.lower():
                rows = db.nodes(membership=name)
                if rows:
                    return [row.name for row in rows]
        raise KeyError(group)

    return resolve


def _resolve_targets(
    frontend: RocksFrontend,
    nodes: Optional[Targets],
    query: Optional[str],
) -> list[str]:
    if nodes is not None and query is not None:
        raise ValueError("give either nodes or query, not both")
    if isinstance(nodes, str):
        return NodeSet(nodes, resolver=frontend_groups(frontend)).expand()
    if isinstance(nodes, NodeSet):
        return nodes.expand()
    if nodes is not None:
        return list(nodes)
    if query is not None:
        return targets_from_query(frontend, query)
    # the paper's first-cut heuristic: grep compute- out of /etc/hosts
    return [
        line.split("\t")[1].split()[-1]
        for line in frontend.hosts_file.splitlines()
        if "\t" in line and line.split("\t")[1].startswith("compute-")
    ]


def cluster_fork(
    frontend: RocksFrontend,
    command,
    nodes: Optional[Targets] = None,
    query: Optional[str] = None,
    environment: RemoteEnvironment = _ROOT,
) -> RexecSession:
    """Run ``command`` (a RemoteCommand callable) on the selected nodes."""
    targets = _resolve_targets(frontend, nodes, query)
    return frontend.rexec.run(targets, command, environment)


def cluster_fork_exec(
    frontend: RocksFrontend,
    command,
    nodes: Optional[Targets] = None,
    query: Optional[str] = None,
    environment: RemoteEnvironment = _ROOT,
    options: ExecOptions = ExecOptions(),
) -> ExecReport:
    """cluster-fork over the fault-tolerant engine; runs to completion.

    Unlike :func:`cluster_fork` this survives nodes that are down, die
    mid-command, or straggle: the returned
    :class:`~repro.exec.task.ExecReport` classifies every target.
    """
    targets = _resolve_targets(frontend, nodes, query)
    task = ExecTask(
        frontend.env,
        frontend.rexec,
        options,
        environment=environment,
        resolver=frontend_groups(frontend),
    )
    driver = task.run(targets, command)
    frontend.env.run(until=driver)
    return driver.value


def cluster_kill(
    frontend: RocksFrontend,
    process_name: str,
    nodes: Optional[Targets] = None,
    query: Optional[str] = None,
) -> RexecSession:
    """Kill every process matching ``process_name`` on the selected nodes.

    The paper's §6.4 example:

        cluster-kill --query="select nodes.name from nodes,memberships
            where nodes.membership = memberships.id and
            memberships.name = 'Compute'" bad-job
    """

    def killer(machine, proc):
        victims = [p for p in machine.user_processes if p == process_name]
        for v in victims:
            machine.user_processes.remove(v)
        proc.stdout.append(f"killed {len(victims)} {process_name!r} process(es)")
        return 0

    return cluster_fork(frontend, killer, nodes=nodes, query=query)
