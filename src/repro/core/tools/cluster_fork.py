"""cluster-fork / cluster-kill: SQL-directed parallel commands (§6.4).

"By simply adding an SQL interface to the script makes it more powerful
as the user can intelligently direct the script to a subset of the
nodes...  Any SQL query, including joins, can be fed to cluster-kill."

The target list comes either from an explicit ``nodes`` list, an SQL
``query`` returning hostnames (first column), or — the brute-force
default the paper starts from — every name with the ``compute-`` prefix
in /etc/hosts.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ...scheduler import RemoteEnvironment, Rexec, RexecSession
from ..frontend import RocksFrontend

__all__ = ["cluster_fork", "cluster_kill", "targets_from_query"]

_ROOT = RemoteEnvironment(user="root", uid=0, gid=0, cwd="/root")


def targets_from_query(frontend: RocksFrontend, query: str) -> list[str]:
    """Run an arbitrary SELECT; the first column is the hostname list."""
    return [row[0] for row in frontend.db.query(query)]


def _resolve_targets(
    frontend: RocksFrontend,
    nodes: Optional[Sequence[str]],
    query: Optional[str],
) -> list[str]:
    if nodes is not None and query is not None:
        raise ValueError("give either nodes or query, not both")
    if nodes is not None:
        return list(nodes)
    if query is not None:
        return targets_from_query(frontend, query)
    # the paper's first-cut heuristic: grep compute- out of /etc/hosts
    return [
        line.split("\t")[1].split()[-1]
        for line in frontend.hosts_file.splitlines()
        if "\t" in line and line.split("\t")[1].startswith("compute-")
    ]


def cluster_fork(
    frontend: RocksFrontend,
    command,
    nodes: Optional[Sequence[str]] = None,
    query: Optional[str] = None,
    environment: RemoteEnvironment = _ROOT,
) -> RexecSession:
    """Run ``command`` (a RemoteCommand callable) on the selected nodes."""
    targets = _resolve_targets(frontend, nodes, query)
    return frontend.rexec.run(targets, command, environment)


def cluster_kill(
    frontend: RocksFrontend,
    process_name: str,
    nodes: Optional[Sequence[str]] = None,
    query: Optional[str] = None,
) -> RexecSession:
    """Kill every process matching ``process_name`` on the selected nodes.

    The paper's §6.4 example:

        cluster-kill --query="select nodes.name from nodes,memberships
            where nodes.membership = memberships.id and
            memberships.name = 'Compute'" bad-job
    """

    def killer(machine, proc):
        victims = [p for p in machine.user_processes if p == process_name]
        for v in victims:
            machine.user_processes.remove(v)
        proc.stdout.append(f"killed {len(victims)} {process_name!r} process(es)")
        return 0

    return cluster_fork(frontend, killer, nodes=nodes, query=query)
