"""Scalable Unix commands over the cluster (§6.4's reference [21]).

"We, like many people who run parallel machines [Ong, Lusk, Gropp], have
our own set of rudimentary scripts to interactively control and monitor
the nodes."  These are those scripts, built on cluster-fork and hence on
REXEC: parallel ps/uptime/rpm-query with merged, host-tagged output, and
the same ``--query`` SQL targeting as cluster-kill.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..frontend import RocksFrontend
from .cluster_fork import cluster_fork

__all__ = ["cluster_ps", "cluster_uptime", "cluster_rpm_q", "cluster_lsmod"]


def cluster_ps(
    frontend: RocksFrontend,
    nodes: Optional[Sequence[str]] = None,
    query: Optional[str] = None,
) -> dict[str, list[str]]:
    """Parallel ps: host -> running user processes."""

    def ps(machine, proc):
        for name in machine.user_processes:
            proc.stdout.append(name)
        return 0

    session = cluster_fork(frontend, ps, nodes=nodes, query=query)
    return {p.host: list(p.stdout) for p in session.processes}


def cluster_uptime(
    frontend: RocksFrontend,
    nodes: Optional[Sequence[str]] = None,
    query: Optional[str] = None,
) -> dict[str, str]:
    """Parallel uptime: host -> state/load one-liner."""

    def uptime(machine, proc):
        proc.stdout.append(
            f"{machine.state.value}, {len(machine.user_processes)} procs, "
            f"kernel {machine.kernel_version}"
        )
        return 0

    session = cluster_fork(frontend, uptime, nodes=nodes, query=query)
    return {p.host: p.stdout[0] for p in session.processes}


def cluster_rpm_q(
    frontend: RocksFrontend,
    package: str,
    nodes: Optional[Sequence[str]] = None,
    query: Optional[str] = None,
) -> dict[str, Optional[str]]:
    """Parallel ``rpm -q <package>``: the §3.2 question, asked scalably.

    ("What version of software X do I have on node Y?" — the question
    the reinstall philosophy makes unnecessary, but handy to verify.)
    """

    def rpm_q(machine, proc):
        pkg = machine.rpmdb.query(package)
        proc.stdout.append(pkg.nevra if pkg else f"package {package} is not installed")
        return 0 if pkg else 1

    session = cluster_fork(frontend, rpm_q, nodes=nodes, query=query)
    out: dict[str, Optional[str]] = {}
    for p in session.processes:
        out[p.host] = p.stdout[0] if p.exit_code == 0 else None
    return out


def cluster_lsmod(
    frontend: RocksFrontend,
    nodes: Optional[Sequence[str]] = None,
    query: Optional[str] = None,
) -> dict[str, list[str]]:
    """Parallel lsmod: host -> loaded driver modules."""

    def lsmod(machine, proc):
        for mod in machine.loaded_modules:
            proc.stdout.append(mod)
        return 0

    session = cluster_fork(frontend, lsmod, nodes=nodes, query=query)
    return {p.host: list(p.stdout) for p in session.processes}
